//! Versioned, byte-budgeted store of truncated SVD factors.
//!
//! A decompose-rarely / apply-constantly serving system keeps the rank-r
//! factors (U_r, Σ_r, V_r) of each client model resident between
//! requests. This crate provides that residency layer:
//!
//! * **Versioning** — each successful decompose publishes a new immutable
//!   [`PublishedFactors`] version behind an `Arc`. Readers clone the
//!   `Arc` and never block writers; in-flight applies pin whatever
//!   version they admitted against even if a republish or eviction
//!   replaces it mid-flight.
//! * **LRU byte-budget eviction** — the store charges each model its
//!   factor payload ([`svd_kernels::TruncatedSvd::approx_bytes`]) and
//!   evicts least-recently-used models when the total exceeds the
//!   budget, mirroring the `PlanCache` idiom in `heterosvd::plan_cache`.
//! * **Accuracy metadata** — every version carries the retained-energy
//!   fraction and tail singular value of its truncation, so serving can
//!   report how lossy each model's compression is.
//! * **Counters** — hit / miss / eviction / publish totals surface
//!   through [`FactorStore::stats`] for the metrics path.

#![warn(missing_docs)]

use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use svd_kernels::TruncatedSvd;

/// Identifier of a client model whose factors the store holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct ModelId(pub u64);

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model-{}", self.0)
    }
}

/// Rank / accuracy metadata attached to a published factor version.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FactorMeta {
    /// Row count `m` of the decomposed matrix.
    pub rows: usize,
    /// Column count `n` of the decomposed matrix.
    pub cols: usize,
    /// Retained rank `r`.
    pub rank: usize,
    /// First discarded singular value `σ_{r+1}` (Eckart–Young spectral
    /// error of the truncation; zero at full rank).
    pub tail_sigma: f32,
    /// Fraction of squared Frobenius energy the truncation keeps.
    pub retained_energy: f64,
    /// Resident payload the store charges for this version.
    pub bytes: usize,
}

/// One immutable published version of a model's truncated factors.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishedFactors {
    /// Which model this version belongs to.
    pub model: ModelId,
    /// Monotonic per-model version number, starting at 1. The counter
    /// survives eviction: re-publishing an evicted model continues the
    /// sequence rather than restarting it.
    pub version: u64,
    /// The rank-r factors served for this version.
    pub factors: TruncatedSvd<f32>,
    /// Rank / accuracy metadata of the truncation.
    pub meta: FactorMeta,
}

/// Counter snapshot of a [`FactorStore`] (serialized into the serving
/// metrics report).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct FactorStoreStats {
    /// Lookups that found a resident version.
    pub hits: u64,
    /// Lookups for models not resident (never published or evicted).
    pub misses: u64,
    /// Models removed by the byte-budget LRU policy.
    pub evictions: u64,
    /// Versions published.
    pub publishes: u64,
    /// Bytes currently charged against the budget.
    pub resident_bytes: u64,
    /// Models currently resident.
    pub resident_models: u64,
    /// The configured byte budget.
    pub byte_budget: u64,
    /// Hit fraction over the window since the previous
    /// [`FactorStore::stats`] call (0.0 when the window saw no
    /// lookups). Lifetime totals above never reset; this windowed view
    /// is what an autoscaler or dashboard should watch — the same
    /// idiom as the serving throughput gauge.
    pub hit_rate_window: f64,
}

struct StoreInner {
    /// model id -> (latest published version, last-touch stamp).
    models: HashMap<u64, (Arc<PublishedFactors>, u64)>,
    /// Next version number per model; survives eviction.
    next_version: HashMap<u64, u64>,
    resident_bytes: usize,
    clock: u64,
}

/// Thread-safe versioned store of truncated factors with LRU
/// byte-budget eviction.
///
/// Lock discipline matches `heterosvd::plan_cache::PlanCache`: one std
/// `Mutex` around the map, held only for map manipulation (factor
/// payloads are `Arc`-shared, so gets are O(1) pointer clones and
/// publishes never copy factor data under the lock).
pub struct FactorStore {
    byte_budget: usize,
    inner: Mutex<StoreInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    publishes: AtomicU64,
    /// (hits, lookups) at the start of the current stats window.
    window: Mutex<(u64, u64)>,
}

impl std::fmt::Debug for FactorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FactorStore")
            .field("byte_budget", &self.byte_budget)
            .field("stats", &stats)
            .finish()
    }
}

impl FactorStore {
    /// Creates a store that evicts least-recently-used models once the
    /// resident factor payload exceeds `byte_budget` bytes. The most
    /// recently published model is always retained, even when it alone
    /// exceeds the budget — a store that cannot hold the model it was
    /// just asked to serve would livelock the decompose-publish path.
    pub fn new(byte_budget: usize) -> Self {
        FactorStore {
            byte_budget,
            inner: Mutex::new(StoreInner {
                models: HashMap::new(),
                next_version: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            publishes: AtomicU64::new(0),
            window: Mutex::new((0, 0)),
        }
    }

    /// Publishes `factors` as the next version of `model`, returning the
    /// immutable published handle. The previous version (if any) is
    /// unlinked immediately — in-flight readers holding its `Arc` keep
    /// it alive until they finish — and least-recently-used *other*
    /// models are evicted while the store exceeds its byte budget.
    pub fn publish(&self, model: ModelId, factors: TruncatedSvd<f32>) -> Arc<PublishedFactors> {
        let bytes = factors.approx_bytes();
        let meta = FactorMeta {
            rows: factors.rows(),
            cols: factors.cols(),
            rank: factors.rank(),
            tail_sigma: factors.tail_sigma,
            retained_energy: factors.retained_energy,
            bytes,
        };
        let mut inner = self.inner.lock().expect("factor store poisoned");
        let version = {
            let slot = inner.next_version.entry(model.0).or_insert(1);
            let v = *slot;
            *slot += 1;
            v
        };
        let published = Arc::new(PublishedFactors {
            model,
            version,
            factors,
            meta,
        });
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some((old, _)) = inner
            .models
            .insert(model.0, (Arc::clone(&published), stamp))
        {
            inner.resident_bytes -= old.meta.bytes;
        }
        inner.resident_bytes += bytes;
        self.publishes.fetch_add(1, Ordering::Relaxed);
        while inner.resident_bytes > self.byte_budget && inner.models.len() > 1 {
            let victim = inner
                .models
                .iter()
                .filter(|(&id, _)| id != model.0)
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    if let Some((evicted, _)) = inner.models.remove(&id) {
                        inner.resident_bytes -= evicted.meta.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        published
    }

    /// Looks up the latest resident version of `model`, bumping its LRU
    /// stamp. Returns `None` (a recorded miss) when the model was never
    /// published or has been evicted.
    pub fn get(&self, model: ModelId) -> Option<Arc<PublishedFactors>> {
        let mut inner = self.inner.lock().expect("factor store poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.models.get_mut(&model.0) {
            Some((published, last_used)) => {
                *last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(published))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Latest published version number of `model`, if resident.
    pub fn version_of(&self, model: ModelId) -> Option<u64> {
        let inner = self.inner.lock().expect("factor store poisoned");
        inner.models.get(&model.0).map(|(p, _)| p.version)
    }

    /// Number of models currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("factor store poisoned")
            .models
            .len()
    }

    /// Whether the store holds no models.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> usize {
        self.byte_budget
    }

    /// Counter snapshot for the metrics path. Reading the snapshot
    /// closes the current hit-rate window and opens the next one.
    pub fn stats(&self) -> FactorStoreStats {
        let (resident_bytes, resident_models) = {
            let inner = self.inner.lock().expect("factor store poisoned");
            (inner.resident_bytes as u64, inner.models.len() as u64)
        };
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let hit_rate_window = {
            let mut window = self.window.lock().expect("factor store poisoned");
            let (hits0, lookups0) = *window;
            *window = (hits, lookups);
            let delta = lookups.saturating_sub(lookups0);
            if delta == 0 {
                0.0
            } else {
                hits.saturating_sub(hits0) as f64 / delta as f64
            }
        };
        FactorStoreStats {
            hits,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            resident_bytes,
            resident_models,
            byte_budget: self.byte_budget as u64,
            hit_rate_window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svd_kernels::{hestenes_jacobi, JacobiOptions, Matrix};

    fn factors(m: usize, n: usize, rank: usize, seed: u64) -> TruncatedSvd<f32> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0f32..1.0));
        let svd = hestenes_jacobi(
            &a,
            &JacobiOptions {
                precision: 1e-5,
                compute_v: false,
                ..Default::default()
            },
        )
        .unwrap();
        svd.truncate(&a, rank).unwrap()
    }

    #[test]
    fn publish_then_get_round_trips() {
        let store = FactorStore::new(1 << 20);
        let f = factors(8, 4, 2, 1);
        let published = store.publish(ModelId(7), f.clone());
        assert_eq!(published.version, 1);
        assert_eq!(published.meta.rank, 2);
        assert_eq!(published.meta.bytes, f.approx_bytes());
        let got = store.get(ModelId(7)).unwrap();
        assert!(Arc::ptr_eq(&published, &got));
        assert!(store.get(ModelId(8)).is_none());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.publishes), (1, 1, 1));
        assert_eq!(stats.resident_models, 1);
        assert_eq!(stats.resident_bytes, f.approx_bytes() as u64);
    }

    #[test]
    fn republish_bumps_version_and_keeps_old_readers_alive() {
        let store = FactorStore::new(1 << 20);
        let v1 = store.publish(ModelId(1), factors(8, 4, 2, 1));
        let v2 = store.publish(ModelId(1), factors(8, 4, 3, 2));
        assert_eq!((v1.version, v2.version), (1, 2));
        // The store serves the newest version...
        assert_eq!(store.get(ModelId(1)).unwrap().version, 2);
        // ...while the pinned v1 Arc still resolves (readers never block
        // or see freed data).
        assert_eq!(v1.meta.rank, 2);
        assert_eq!(store.stats().resident_models, 1);
    }

    #[test]
    fn version_counter_survives_eviction() {
        let f = factors(8, 4, 2, 1);
        let budget = f.approx_bytes(); // exactly one model fits
        let store = FactorStore::new(budget);
        store.publish(ModelId(1), f.clone());
        store.publish(ModelId(2), factors(8, 4, 2, 2)); // evicts model 1
        assert!(store.get(ModelId(1)).is_none());
        let republished = store.publish(ModelId(1), f);
        assert_eq!(republished.version, 2, "version continues after eviction");
    }

    #[test]
    fn lru_evicts_least_recently_used_not_most() {
        let f = factors(8, 4, 2, 1);
        let budget = 2 * f.approx_bytes();
        let store = FactorStore::new(budget);
        store.publish(ModelId(1), factors(8, 4, 2, 1));
        store.publish(ModelId(2), factors(8, 4, 2, 2));
        // Touch model 1 so model 2 is the LRU.
        store.get(ModelId(1)).unwrap();
        store.publish(ModelId(3), factors(8, 4, 2, 3));
        assert!(store.get(ModelId(1)).is_some());
        assert!(store.get(ModelId(2)).is_none(), "LRU model evicted");
        assert!(store.get(ModelId(3)).is_some());
        assert_eq!(store.stats().evictions, 1);
    }

    #[test]
    fn just_published_model_is_never_evicted() {
        let f = factors(32, 16, 8, 1); // bigger than the budget below
        let store = FactorStore::new(16);
        let published = store.publish(ModelId(5), f);
        assert_eq!(store.get(ModelId(5)).unwrap().version, published.version);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let f = factors(8, 4, 2, 1);
        let one = f.approx_bytes();
        let store = FactorStore::new(3 * one);
        for id in 0..8u64 {
            store.publish(ModelId(id), factors(8, 4, 2, id));
        }
        let stats = store.stats();
        assert!(stats.resident_bytes <= 3 * one as u64);
        assert_eq!(stats.resident_models, 3);
        assert_eq!(stats.evictions, 5);
        // The most recent publishes survive.
        assert!(store.get(ModelId(7)).is_some());
        assert!(store.get(ModelId(0)).is_none());
    }

    #[test]
    fn stats_window_tracks_recent_hit_rate() {
        let store = FactorStore::new(1 << 20);
        store.publish(ModelId(1), factors(8, 4, 2, 1));
        store.get(ModelId(1)).unwrap(); // hit
        assert!(store.get(ModelId(2)).is_none()); // miss
        let first = store.stats();
        assert!((first.hit_rate_window - 0.5).abs() < 1e-12);
        // The window restarts: an all-hit stretch reads 1.0 even though
        // the lifetime rate is 3/4.
        store.get(ModelId(1)).unwrap();
        store.get(ModelId(1)).unwrap();
        let second = store.stats();
        assert!((second.hit_rate_window - 1.0).abs() < 1e-12);
        assert_eq!((second.hits, second.misses), (3, 1));
        // An empty window reads 0.0, not NaN.
        assert_eq!(store.stats().hit_rate_window, 0.0);
    }

    #[test]
    fn concurrent_gets_and_publishes_are_safe() {
        let store = Arc::new(FactorStore::new(1 << 20));
        store.publish(ModelId(0), factors(8, 4, 2, 0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let store = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    if i % 10 == 0 {
                        store.publish(ModelId(t), factors(8, 4, 2, t * 100 + i));
                    }
                    if let Some(p) = store.get(ModelId(t % 2)) {
                        assert!(p.version >= 1);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.publishes, 1 + 4 * 5);
    }
}
