//! Property-based tests of the analytic performance model.

use perf_model::{estimate, DesignPoint, PerfEstimate};
use proptest::prelude::*;

fn valid_point(n_exp: u32, p_eng: usize, p_task: usize, mhz: f64, iters: usize) -> DesignPoint {
    let n = 1usize << n_exp;
    DesignPoint {
        rows: n,
        cols: n,
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        pl_freq_mhz: mhz,
        iterations: iters,
    }
}

fn total(e: &PerfEstimate, iters: usize) -> u64 {
    e.ddr.0 + iters as u64 * e.iteration.0 + e.norm.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The task latency contains its parts (Eq. 14 composition).
    #[test]
    fn task_contains_components(
        n_exp in 5u32..10,
        p_eng in prop::sample::select(vec![1usize, 2, 4, 8]),
        iters in 1usize..8,
        mhz in 150.0f64..460.0,
    ) {
        let p = valid_point(n_exp, p_eng, 1, mhz, iters);
        let e = estimate(&p);
        prop_assert!(e.task.0 >= total(&e, iters));
        prop_assert!(e.iteration.0 >= p.num_block_pairs() as u64 * e.pass_interval.0);
        prop_assert!(e.fill.0 >= e.pass_interval.0);
    }

    /// Latency is monotone in iterations and anti-monotone in frequency
    /// (given everything else fixed).
    #[test]
    fn monotonicity(
        n_exp in 5u32..10,
        p_eng in prop::sample::select(vec![2usize, 4, 8]),
        mhz in 150.0f64..400.0,
    ) {
        let base = estimate(&valid_point(n_exp, p_eng, 1, mhz, 2));
        let more_iters = estimate(&valid_point(n_exp, p_eng, 1, mhz, 3));
        prop_assert!(more_iters.task > base.task);
        let faster = estimate(&valid_point(n_exp, p_eng, 1, mhz * 1.5, 2));
        prop_assert!(faster.task <= base.task);
    }

    /// System time follows the wave formula exactly for any batch and
    /// task parallelism.
    #[test]
    fn system_time_is_wave_exact(
        batch in 1usize..300,
        p_task in 1usize..27,
    ) {
        let e = estimate(&valid_point(6, 4, p_task, 310.0, 2));
        let waves = batch.div_ceil(p_task) as u64;
        prop_assert_eq!(e.system_time(batch, p_task).0, e.task.0 * waves);
        let tput = e.throughput(batch, p_task);
        prop_assert!(tput > 0.0);
        // Throughput never exceeds the perfect-parallel bound.
        let perfect = p_task as f64 / e.task.as_secs();
        prop_assert!(tput <= perfect * 1.0000001);
    }

    /// Engine parallelism reduces per-iteration latency at every size
    /// in the paper's range.
    #[test]
    fn p_eng_reduces_iteration_latency(n_exp in 6u32..11) {
        let t2 = estimate(&valid_point(n_exp, 2, 1, 208.3, 1)).iteration;
        let t8 = estimate(&valid_point(n_exp, 8, 1, 208.3, 1)).iteration;
        prop_assert!(t8 < t2);
    }
}
