#![warn(missing_docs)]

//! Analytic performance model of the HeteroSVD pipeline (§IV-B,
//! Eq. 8–14).
//!
//! The model estimates the latency and throughput of a HeteroSVD design
//! point *without* running the cycle-approximate simulator — the
//! fast-evaluation half of the automatic design optimization framework.
//! Its structure mirrors the paper's Fig. 7 decomposition:
//!
//! * **Transfer terms** (Eq. 8): the PLIO streaming time of a column and
//!   the per-port occupancy of a block-pair pass (Tx over four ports, Rx
//!   over two).
//! * **Steady-state pass interval**: the pipeline processes one block
//!   pair per interval `t_pass = max(bottleneck occupancies)` — the AIE
//!   kernel time (with the Eq. 9 AIE-wait folded in), the Tx/Rx port
//!   occupancies, and the DMA chains (wraparound tile; band-break corner
//!   chain).
//! * **Dependency terms** (Eq. 10–11): the round-robin data dependency
//!   inserts a stall at each round boundary when the pipeline fill path
//!   exceeds roughly half a round of steady passes (the `t_algo` /
//!   `t_datawait` analog).
//! * **DDR serialization** (Eq. 12) and the normalization stage.
//! * **System composition** (Eq. 14): `t_sys = ⌈B / P_task⌉ · t_task`.
//!
//! Validation: [`estimate`] tracks the `heterosvd` simulator within a few
//! percent across the Table IV/V configurations (see the `table4`
//! regenerator in `heterosvd-bench`).
//!
//! # Example
//!
//! ```
//! use perf_model::{estimate, DesignPoint};
//!
//! let point = DesignPoint {
//!     rows: 128,
//!     cols: 128,
//!     engine_parallelism: 8,
//!     task_parallelism: 1,
//!     pl_freq_mhz: 208.3,
//!     iterations: 1,
//! };
//! let est = estimate(&point);
//! assert!(est.iteration.as_millis() > 0.0);
//! ```

use aie_sim::calibration::Calibration;
use aie_sim::ddr::DdrModel;
use aie_sim::dma::DmaModel;
use aie_sim::kernel::KernelCostModel;
use aie_sim::pl::PlModel;
use aie_sim::plio::{PlioDirection, PlioModel};
use aie_sim::time::{Frequency, TimePs};
use serde::{Deserialize, Serialize};

/// Which resource bounds the steady-state pass interval — the
/// diagnostic that tells a designer *why* a configuration performs as
/// it does (the Fig. 9 discussion in machine-readable form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The orth kernel occupies each core longest (compute-bound).
    OrthKernel,
    /// The four input PLIOs limit the pass rate (ingress-bound).
    TxPorts,
    /// The two output PLIOs limit the pass rate (egress-bound).
    RxPorts,
    /// The wraparound DMA through the DMA-layer tile limits it.
    WrapDma,
    /// The band-break corner chain through the mem-layer limits it.
    BandBreakChain,
}

/// PL → AIE orth input ports per task (fixed by the routing plan).
const ORTH_IN_PORTS: usize = 4;
/// AIE → PL orth output ports per task.
const ORTH_OUT_PORTS: usize = 2;

/// Inputs to the performance model: the problem and the first-order
/// micro-architecture parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Matrix rows `m`.
    pub rows: usize,
    /// Matrix columns `n`.
    pub cols: usize,
    /// Engine parallelism `P_eng`.
    pub engine_parallelism: usize,
    /// Task parallelism `P_task`.
    pub task_parallelism: usize,
    /// PL clock in MHz.
    pub pl_freq_mhz: f64,
    /// Orthogonalization iterations (`ITER` in Eq. 14).
    pub iterations: usize,
}

impl DesignPoint {
    /// Number of column blocks.
    pub fn num_blocks(&self) -> usize {
        self.cols / self.engine_parallelism.max(1)
    }

    /// Block pairs per iteration (`num`).
    pub fn num_block_pairs(&self) -> usize {
        let p = self.num_blocks();
        p * p.saturating_sub(1) / 2
    }
}

/// The model's latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfEstimate {
    /// Streaming time of one column over one PLIO (Eq. 8).
    pub column_tx: TimePs,
    /// Steady-state interval between block-pair completions.
    pub pass_interval: TimePs,
    /// Pipeline fill path of one pass (Tx → layers → Rx).
    pub fill: TimePs,
    /// Stall inserted at each round-robin round boundary (Eq. 10–11
    /// analog).
    pub round_stall: TimePs,
    /// One orthogonalization iteration (`t_iter`, Eq. 13).
    pub iteration: TimePs,
    /// Serialized first-iteration DDR loads (`t_DDR`, Eq. 12).
    pub ddr: TimePs,
    /// Normalization stage (`t_norm`).
    pub norm: TimePs,
    /// Single-task latency (`t_task`, Eq. 14).
    pub task: TimePs,
    /// The resource bounding the steady-state pass rate.
    pub bottleneck: Bottleneck,
}

impl PerfEstimate {
    /// System time for a batch of `num_tasks` (Eq. 14).
    pub fn system_time(&self, num_tasks: usize, p_task: usize) -> TimePs {
        TimePs(self.task.0 * num_tasks.div_ceil(p_task.max(1)) as u64)
    }

    /// Throughput in tasks/second for a batch.
    pub fn throughput(&self, num_tasks: usize, p_task: usize) -> f64 {
        let t = self.system_time(num_tasks, p_task).as_secs();
        if t == 0.0 {
            0.0
        } else {
            num_tasks as f64 / t
        }
    }
}

/// Estimates the performance of a design point with the default
/// calibration.
pub fn estimate(point: &DesignPoint) -> PerfEstimate {
    estimate_with(point, &Calibration::DEFAULT)
}

/// [`estimate`] with an explicit calibration.
pub fn estimate_with(point: &DesignPoint, cal: &Calibration) -> PerfEstimate {
    let k = point.engine_parallelism.max(1);
    let m_bytes = point.rows * 4;
    let pl_freq = Frequency::from_mhz(point.pl_freq_mhz);
    let plio = PlioModel::new(*cal, pl_freq);
    let kernels = KernelCostModel::new(*cal);
    let dma = DmaModel::new(*cal);
    let pl = PlModel::new(*cal);
    let ddr_model = DdrModel::new(*cal);

    // The 24/32 GB/s PLIO caps are per interface group (one task's port
    // set); independent pipelines use separate interface tiles.
    let active_in = ORTH_IN_PORTS;
    let active_out = ORTH_OUT_PORTS;
    let column_tx = plio.throttled_transfer_time(m_bytes, 1, PlioDirection::ToAie, active_in);
    let column_rx = plio.throttled_transfer_time(m_bytes, 1, PlioDirection::ToPl, active_out);

    // Per-port occupancy of one pass: 2k columns over 4 in / 2 out ports.
    let tx_occ = TimePs(column_tx.0 * (2 * k).div_ceil(ORTH_IN_PORTS) as u64);
    let rx_occ = TimePs(column_rx.0 * (2 * k).div_ceil(ORTH_OUT_PORTS) as u64);

    let t_orth = kernels.orth_time(point.rows);
    // Wraparound DMA spans the band (k columns + DMA-layer tile);
    // band-break copies climb through the boundary mem-layer.
    let t_wrap = dma.transfer_time_with_hops(m_bytes, k as u64 + 1);
    let t_break = dma.transfer_time_with_hops(m_bytes, 3);
    let t_move = kernels.neighbor_handoff_time();

    // Placement geometry: layers fold into bands of rows-2 usable rows.
    let layers = 2 * k - 1;
    let usable_rows = 6; // VCK190: 8 rows minus the two boundary mem rows
    let num_bands = layers.div_ceil(usable_rows);
    let band_breaks = num_bands - 1;

    // Band-break corner chain: the last producer forwards its two columns
    // plus the wraparound through the mem-layer — 3 movements × 2 hops.
    let chain = if band_breaks > 0 && k >= 2 {
        TimePs(6 * t_break.0)
    } else {
        TimePs::ZERO
    };

    let candidates = [
        (t_orth, Bottleneck::OrthKernel),
        (tx_occ, Bottleneck::TxPorts),
        (rx_occ, Bottleneck::RxPorts),
        (t_wrap, Bottleneck::WrapDma),
        (chain, Bottleneck::BandBreakChain),
    ];
    let (pass_interval, bottleneck) = candidates
        .into_iter()
        .max_by_key(|(t, _)| *t)
        .expect("candidate list is non-empty");

    // Fill path: Tx, the layer chain (kernel + hand-off each), band-break
    // double-hops, Rx, and the HLS loop switch (t_hls per pass).
    let hls = pl.hls_overhead(1, pl_freq);
    let fill = TimePs(
        tx_occ.0
            + layers as u64 * (t_orth.0 + t_move.0)
            + band_breaks as u64 * 2 * t_break.0
            + rx_occ.0
            + hls.0,
    );

    // Round-robin dependency (Eq. 10-11 analog): the first pass of a round
    // depends on a block received mid-previous-round; a stall appears when
    // the fill path exceeds ~half a round of steady passes.
    let p = point.num_blocks();
    let passes_per_round = (p / 2).max(1);
    let rounds = p.saturating_sub(1);
    let covered = TimePs((passes_per_round as u64 / 2 + 1) * pass_interval.0);
    let round_stall = fill.saturating_sub(covered);

    let num = point.num_block_pairs();
    let iteration = TimePs(
        num as u64 * pass_interval.0 + rounds.saturating_sub(1) as u64 * round_stall.0 + fill.0,
    );

    // DDR: serialized block loads (Eq. 12).
    let block_bytes = k * m_bytes;
    let ddr = TimePs(ddr_model.burst_time(block_bytes).0 * p as u64);

    // Normalization: n columns stream through one in / one out port and k
    // norm cores; the stage is limited by its slowest serial resource.
    let t_norm_kernel = kernels.norm_time(point.rows);
    let norm_in = TimePs(column_tx.0 * point.cols as u64);
    let norm_out = TimePs(column_rx.0 * point.cols as u64);
    let norm_cores = TimePs(t_norm_kernel.0 * point.cols.div_ceil(k) as u64);
    let norm = TimePs(
        norm_in.max(norm_out).max(norm_cores).0 + column_tx.0 + t_norm_kernel.0 + column_rx.0,
    );

    // Result store to DDR.
    let store = ddr_model.burst_time(point.rows * point.cols * 4 + point.cols * 4);

    let task = TimePs(ddr.0 + point.iterations as u64 * iteration.0 + norm.0 + store.0);

    PerfEstimate {
        column_tx,
        pass_interval,
        fill,
        round_stall,
        iteration,
        ddr,
        norm,
        task,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(n: usize, p_eng: usize, mhz: f64) -> DesignPoint {
        DesignPoint {
            rows: n,
            cols: n,
            engine_parallelism: p_eng,
            task_parallelism: 1,
            pl_freq_mhz: mhz,
            iterations: 1,
        }
    }

    #[test]
    fn iteration_matches_paper_table4_within_20_percent() {
        // Paper Table IV on-board single-iteration times (ms) at 208.3 MHz.
        let rows = [
            (128usize, 2usize, 0.993),
            (256, 2, 6.151),
            (512, 2, 43.229),
            (128, 4, 0.395),
            (256, 4, 2.853),
            (512, 4, 21.584),
            (128, 8, 0.214),
            (256, 8, 1.475),
            (512, 8, 10.965),
        ];
        for (n, p_eng, paper_ms) in rows {
            let est = estimate(&point(n, p_eng, 208.3));
            let model_ms = est.iteration.as_millis();
            let rel = (model_ms - paper_ms).abs() / paper_ms;
            assert!(
                rel < 0.20,
                "{n}x{n} P_eng={p_eng}: model {model_ms:.3} ms vs paper {paper_ms:.3} ms ({rel:.3})"
            );
        }
    }

    #[test]
    fn latency_decreases_with_engine_parallelism() {
        let t2 = estimate(&point(256, 2, 208.3)).iteration;
        let t4 = estimate(&point(256, 4, 208.3)).iteration;
        let t8 = estimate(&point(256, 8, 208.3)).iteration;
        assert!(t4 < t2);
        assert!(t8 < t4);
    }

    #[test]
    fn latency_scales_superlinearly_with_size() {
        let t128 = estimate(&point(128, 4, 208.3)).iteration;
        let t256 = estimate(&point(256, 4, 208.3)).iteration;
        // 4x the pairs, 2x the column length: between 4x and 9x slower.
        let ratio = t256.0 as f64 / t128.0 as f64;
        assert!((4.0..9.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn higher_frequency_reduces_transfer_bound_latency() {
        let slow = estimate(&point(128, 8, 208.3));
        let fast = estimate(&point(128, 8, 450.0));
        assert!(fast.iteration < slow.iteration);
        assert!(fast.column_tx < slow.column_tx);
    }

    #[test]
    fn task_composition_adds_all_stages() {
        let p = DesignPoint {
            iterations: 6,
            ..point(128, 4, 208.3)
        };
        let est = estimate(&p);
        assert!(est.task.0 >= est.ddr.0 + 6 * est.iteration.0 + est.norm.0);
    }

    #[test]
    fn system_time_and_throughput() {
        let mut p = point(128, 4, 208.3);
        p.task_parallelism = 9;
        let est = estimate(&p);
        assert_eq!(est.system_time(9, 9), est.task);
        assert_eq!(est.system_time(100, 9).0, est.task.0 * 12);
        let tput = est.throughput(100, 9);
        assert!(tput > 0.0);
        assert!((tput - 100.0 / est.system_time(100, 9).as_secs()).abs() < 1e-9);
    }

    #[test]
    fn group_cap_binds_only_at_extreme_frequencies() {
        // At 450 MHz, four 7.2 GB/s ports stay under the 32 GB/s group
        // cap; at 600 MHz (9.6 GB/s each) they exceed it and throttle.
        let nominal = estimate(&point(128, 4, 450.0));
        let extreme = estimate(&point(128, 4, 600.0));
        let expected_unthrottled = nominal.column_tx.0 as f64 * 450.0 / 600.0;
        assert!(extreme.column_tx.0 as f64 > expected_unthrottled * 1.1);
    }

    #[test]
    fn bottleneck_diagnosis_matches_the_regimes() {
        // P_eng = 2 at 128: kernel-bound; P_eng = 8 at 128: Rx-bound
        // (8 columns per output port); P_eng = 4 at 128: the band-break
        // corner chain binds (Table IV cadence analysis).
        assert_eq!(
            estimate(&point(128, 2, 208.3)).bottleneck,
            Bottleneck::OrthKernel
        );
        assert_eq!(
            estimate(&point(128, 8, 208.3)).bottleneck,
            Bottleneck::RxPorts
        );
        assert_eq!(
            estimate(&point(128, 4, 208.3)).bottleneck,
            Bottleneck::BandBreakChain
        );
    }

    #[test]
    fn degenerate_point_is_finite() {
        let p = point(16, 1, 208.3);
        let est = estimate(&p);
        assert!(est.task.0 > 0);
        assert!(est.iteration.0 > 0);
    }
}
