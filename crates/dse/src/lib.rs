#![warn(missing_docs)]

//! Design-space exploration for HeteroSVD micro-architectures
//! (§IV-C, Eq. 15–16).
//!
//! Given a problem (`M × N`, batch size `B`), the DSE selects the
//! first-order parameters of Table I — engine parallelism `P_eng`, task
//! parallelism `P_task`, and the PL frequency — minimizing runtime subject
//! to the AIE / PLIO / BRAM / URAM budgets:
//!
//! ```text
//! min  runtime(P_eng, P_task, Freq)
//! s.t. Resourceᵢ(P_eng, P_task) ≤ Cᵢ,  i ∈ {AIE, PLIO, BRAM, URAM}
//! ```
//!
//! The two-stage flow of Fig. 8:
//!
//! 1. **Stage 1 — feasibility.** Enumerate `P_eng`; for each, place the
//!    design ([`heterosvd::Placement`]) and keep every `P_task` whose
//!    resource usage fits the VCK190 budgets (Eq. 16).
//! 2. **Stage 2 — evaluation.** Score each feasible point with the
//!    analytic performance model ([`perf_model::estimate`]) and the
//!    power model, then pick the optimum for the requested objective
//!    (latency or throughput).
//!
//! The sweep parallelizes over `P_eng` on the workspace's shared
//! [`heterosvd::BatchPool`] — the full space (≤ 286 points, §IV-A)
//! evaluates in milliseconds, compared to "more than seven hours" per
//! point through the vendor EDA flow.
//!
//! # Example
//!
//! ```
//! use heterosvd_dse::{DseConfig, Objective, run_dse};
//!
//! let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
//! let best = result.best(Objective::MaxThroughput).expect("feasible design");
//! assert!(best.point.task_parallelism >= 1);
//! ```

use aie_sim::calibration::{Calibration, PowerCalibration};
use aie_sim::device::DeviceProfile;
use aie_sim::resources::{ResourceBudget, ResourceUsage};
use aie_sim::time::TimePs;
use heterosvd::{tenant_capacity, HeteroSvdConfig, Placement};
use perf_model::{estimate_with, Bottleneck, DesignPoint};
use serde::{Deserialize, Serialize};

/// Optimization objective (the paper optimizes either latency or
/// throughput depending on the application scenario, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize single-task latency (`t_task`).
    MinLatency,
    /// Maximize batch throughput (tasks/s).
    MaxThroughput,
    /// Maximize energy efficiency (tasks/s/W).
    MaxEnergyEfficiency,
}

/// DSE problem description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseConfig {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Batch size `B` (number of independent tasks).
    pub batch: usize,
    /// Orthogonalization iterations per task.
    pub iterations: usize,
    /// Optional fixed PL frequency in MHz (default: each design's
    /// achievable frequency).
    pub freq_mhz: Option<f64>,
    /// Optional candidate frequency grid in MHz: each candidate at or
    /// below a design's achievable frequency is evaluated as a separate
    /// point (the third first-order parameter of Table I). Ignored when
    /// `freq_mhz` is set.
    pub freq_candidates_mhz: Vec<f64>,
    /// Resource budgets (default VCK190). Checked *in addition to* the
    /// device's own budget — override to model what-if capacities.
    pub budget: ResourceBudget,
    /// Target device profile (default VCK190).
    pub device: DeviceProfile,
    /// Timing calibration.
    pub calibration: Calibration,
    /// Power calibration.
    pub power: PowerCalibration,
}

impl DseConfig {
    /// A DSE problem for an `rows × cols` matrix, batch 1, six iterations.
    pub fn new(rows: usize, cols: usize) -> Self {
        DseConfig {
            rows,
            cols,
            batch: 1,
            iterations: 6,
            freq_mhz: None,
            freq_candidates_mhz: Vec::new(),
            budget: ResourceBudget::VCK190,
            device: DeviceProfile::VCK190,
            calibration: Calibration::DEFAULT,
            power: PowerCalibration::DEFAULT,
        }
    }

    /// Sets the batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Fixes the PL frequency in MHz for every design point.
    pub fn freq_mhz(mut self, mhz: f64) -> Self {
        self.freq_mhz = Some(mhz);
        self
    }

    /// Sets a candidate frequency grid (MHz); candidates above a design's
    /// achievable frequency are skipped for that design.
    pub fn freq_candidates_mhz(mut self, candidates: Vec<f64>) -> Self {
        self.freq_candidates_mhz = candidates;
        self
    }

    /// Targets a different device profile (its budget replaces the
    /// default one too).
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.budget = device.budget;
        self.device = device;
        self
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEvaluation {
    /// The first-order parameters.
    pub point: DesignPoint,
    /// Resource usage after placement.
    pub usage: ResourceUsage,
    /// Single-task latency.
    pub latency: TimePs,
    /// Batch system time (Eq. 14).
    pub system_time: TimePs,
    /// Batch throughput in tasks/s.
    pub throughput: f64,
    /// Estimated power in watts.
    pub power_watts: f64,
    /// Energy efficiency in tasks/s/W.
    pub energy_efficiency: f64,
    /// The resource bounding this design's pass rate.
    pub bottleneck: Bottleneck,
}

/// Result of a DSE sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// All feasible design points, in `(P_eng, P_task)` order.
    pub evaluations: Vec<DesignEvaluation>,
    /// Number of candidate points rejected by stage 1.
    pub infeasible: usize,
}

impl DseResult {
    /// The best feasible design for an objective.
    pub fn best(&self, objective: Objective) -> Option<&DesignEvaluation> {
        match objective {
            Objective::MinLatency => self.evaluations.iter().min_by(|a, b| {
                a.latency
                    .cmp(&b.latency)
                    .then(a.power_watts.total_cmp(&b.power_watts))
            }),
            Objective::MaxThroughput => self.evaluations.iter().max_by(|a, b| {
                a.throughput
                    .total_cmp(&b.throughput)
                    .then(b.power_watts.total_cmp(&a.power_watts))
            }),
            Objective::MaxEnergyEfficiency => self
                .evaluations
                .iter()
                .max_by(|a, b| a.energy_efficiency.total_cmp(&b.energy_efficiency)),
        }
    }

    /// The Pareto frontier over (latency ↓, throughput ↑, power ↓):
    /// points not dominated by any other feasible point.
    pub fn pareto_frontier(&self) -> Vec<&DesignEvaluation> {
        let dominates = |a: &DesignEvaluation, b: &DesignEvaluation| {
            a.latency <= b.latency
                && a.throughput >= b.throughput
                && a.power_watts <= b.power_watts
                && (a.latency < b.latency
                    || a.throughput > b.throughput
                    || a.power_watts < b.power_watts)
        };
        self.evaluations
            .iter()
            .filter(|cand| !self.evaluations.iter().any(|other| dominates(other, cand)))
            .collect()
    }

    /// Stage-1 style selection: for each `P_eng`, the point with the
    /// maximum feasible `P_task` ("maximize task parallelism by fully
    /// utilizing resource", Fig. 8).
    pub fn max_task_points(&self) -> Vec<&DesignEvaluation> {
        let mut out: Vec<&DesignEvaluation> = Vec::new();
        for eval in &self.evaluations {
            match out
                .iter_mut()
                .find(|e| e.point.engine_parallelism == eval.point.engine_parallelism)
            {
                Some(slot) => {
                    if eval.point.task_parallelism > slot.point.task_parallelism {
                        *slot = eval;
                    }
                }
                None => out.push(eval),
            }
        }
        out
    }
}

/// Evaluates one `(P_eng, P_task)` candidate at the configured (or
/// achievable) frequency: stage-1 placement + feasibility, then stage-2
/// performance/power scoring. Returns `None` when the point is invalid
/// or infeasible.
pub fn evaluate_point(cfg: &DseConfig, p_eng: usize, p_task: usize) -> Option<DesignEvaluation> {
    evaluate_point_at(cfg, p_eng, p_task, cfg.freq_mhz)
}

/// [`evaluate_point`] at an explicit frequency override (MHz).
pub fn evaluate_point_at(
    cfg: &DseConfig,
    p_eng: usize,
    p_task: usize,
    freq_mhz: Option<f64>,
) -> Option<DesignEvaluation> {
    if p_eng == 0 || !cfg.cols.is_multiple_of(2 * p_eng) {
        return None;
    }
    // The accelerator checks the device budget itself; the DSE's own
    // (possibly what-if) budget is checked below.
    let mut device = cfg.device;
    device.budget = cfg.budget;
    let mut builder = HeteroSvdConfig::builder(cfg.rows, cfg.cols)
        .engine_parallelism(p_eng)
        .task_parallelism(p_task)
        .device(device)
        .calibration(cfg.calibration);
    if let Some(mhz) = freq_mhz {
        builder = builder.pl_freq_mhz(mhz);
    }
    let hw_cfg = builder.build().ok()?;
    let placement = Placement::plan(&hw_cfg).ok()?;
    let usage = placement.usage();
    cfg.budget.check(&usage).ok()?;

    let point = DesignPoint {
        rows: cfg.rows,
        cols: cfg.cols,
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        pl_freq_mhz: hw_cfg.pl_freq.mhz(),
        iterations: cfg.iterations,
    };
    let est = estimate_with(&point, &cfg.calibration);
    let system_time = est.system_time(cfg.batch, p_task);
    let throughput = est.throughput(cfg.batch, p_task);
    let power_watts = cfg.power.power_watts(
        usage.aie,
        usage.uram,
        usage.bram,
        point.pl_freq_mhz,
        usage.luts,
    );
    Some(DesignEvaluation {
        point,
        usage,
        latency: est.task,
        system_time,
        throughput,
        power_watts,
        energy_efficiency: throughput / power_watts,
        bottleneck: est.bottleneck,
    })
}

/// Runs the full two-stage DSE sweep over `P_eng ∈ [1, 11]` and
/// `P_task ∈ [1, 26]` (Table I), parallelized over `P_eng`.
pub fn run_dse(cfg: &DseConfig) -> DseResult {
    // One pool task per P_eng column of the sweep. The shared pool's
    // workers are long-lived (not scoped), so each task owns a clone of
    // the config; results come back in submission = P_eng order.
    let tasks: Vec<_> = (1..=heterosvd::config::MAX_ENGINE_PARALLELISM)
        .map(|p_eng| {
            let cfg = cfg.clone();
            move || -> Result<(Vec<DesignEvaluation>, usize), heterosvd::HeteroSvdError> {
                let mut evals = Vec::new();
                let mut infeasible = 0usize;
                for p_task in 1..=heterosvd::config::MAX_TASK_PARALLELISM {
                    match evaluate_point(&cfg, p_eng, p_task) {
                        Some(e) => {
                            // Explore lower candidate frequencies too
                            // (they trade latency for power).
                            let achievable = e.point.pl_freq_mhz;
                            for &mhz in &cfg.freq_candidates_mhz {
                                if cfg.freq_mhz.is_none() && mhz < achievable && mhz > 0.0 {
                                    if let Some(extra) =
                                        evaluate_point_at(&cfg, p_eng, p_task, Some(mhz))
                                    {
                                        evals.push(extra);
                                    }
                                }
                            }
                            evals.push(e);
                        }
                        None => infeasible += 1,
                    }
                }
                Ok((evals, infeasible))
            }
        })
        .collect();
    let per_eng = heterosvd::batch_pool::global()
        .run_batch_with(tasks)
        .expect("dse worker panicked");

    let mut evaluations = Vec::new();
    let mut infeasible = 0;
    for (evals, inf) in per_eng {
        evaluations.extend(evals);
        infeasible += inf;
    }
    DseResult {
        evaluations,
        infeasible,
    }
}

// --------------------------------------------------------- workload mix

/// One shape class of an observed serving workload: how much array-bound
/// traffic it contributes and how full its same-shape batches run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObservedShape {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Relative array-bound request weight (any positive scale; the mix
    /// objective normalizes). Apply traffic and cache-absorbed low-rank
    /// updates never reach the array, so they carry no weight here.
    pub weight: f64,
    /// Mean same-shape batch fill observed (clamped to `>= 1`).
    pub batch_fill: f64,
}

/// An observed serving workload: the per-shape traffic mix plus the
/// packing evidence the controller gathered over its window. This is the
/// model the online DSE re-plans against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Shape classes with their traffic weights and batch fills.
    pub shapes: Vec<ObservedShape>,
    /// Orthogonalization iterations per task charged by the estimate.
    pub iterations: usize,
    /// Whether the service co-schedules same-shape batches as tenants on
    /// disjoint sub-arrays (PR 7 packing). When set, a candidate `P_eng`
    /// is credited its stripe capacity as the Eq. 14 wave divisor.
    pub array_packing: bool,
    /// Mean packed-wave width observed over the window (0 when no packed
    /// wave ran yet). Widths `>= 2` cap the packing credit: the model
    /// never assumes wider waves than the traffic actually forms.
    pub observed_wave_width: f64,
}

impl WorkloadMix {
    /// `true` when the mix carries no positively-weighted shape.
    pub fn is_empty(&self) -> bool {
        !self.shapes.iter().any(|s| s.weight > 0.0)
    }

    /// Sum of the shape weights.
    pub fn total_weight(&self) -> f64 {
        self.shapes.iter().map(|s| s.weight.max(0.0)).sum()
    }

    /// Whether `other` describes the same traffic within a relative
    /// tolerance: identical shape sets and packing flag, normalized
    /// weights / batch fills / wave width each within `rel_tol`. The
    /// incremental re-search reuses its cached sweep across ticks whose
    /// mixes are similar.
    pub fn similar_to(&self, other: &WorkloadMix, rel_tol: f64) -> bool {
        if self.array_packing != other.array_packing
            || self.iterations != other.iterations
            || self.shapes.len() != other.shapes.len()
        {
            return false;
        }
        let close = |a: f64, b: f64| {
            let scale = a.abs().max(b.abs());
            scale <= f64::EPSILON || (a - b).abs() <= rel_tol * scale
        };
        if !close(self.observed_wave_width, other.observed_wave_width) {
            return false;
        }
        let (wa, wb) = (
            self.total_weight().max(1e-12),
            other.total_weight().max(1e-12),
        );
        self.shapes.iter().all(|s| {
            other.shapes.iter().any(|o| {
                o.rows == s.rows
                    && o.cols == s.cols
                    && close(s.weight / wa, o.weight / wb)
                    && close(s.batch_fill, o.batch_fill)
            })
        })
    }
}

/// Per-shape contribution to a mix evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixShapeScore {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// The Eq. 14 wave divisor used: the credited packed-wave width when
    /// the candidate packs this shape, else the candidate's `P_task`.
    pub wave: usize,
    /// Modeled tasks/s for this shape under the candidate plan.
    pub throughput: f64,
}

/// A `(P_eng, P_task)` candidate scored against a whole [`WorkloadMix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixEvaluation {
    /// Candidate engine parallelism.
    pub engine_parallelism: usize,
    /// Candidate task parallelism.
    pub task_parallelism: usize,
    /// The objective: weight-normalized aggregate throughput (tasks/s)
    /// over the mix's shapes.
    pub weighted_throughput: f64,
    /// Worst-case (max over shapes) estimated power in watts.
    pub power_watts: f64,
    /// Per-shape breakdown, in mix order.
    pub per_shape: Vec<MixShapeScore>,
}

/// Result of a mix-parameterized DSE sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixDseResult {
    /// All candidates feasible for *every* shape of the mix, in
    /// `(P_eng, P_task)` order.
    pub evaluations: Vec<MixEvaluation>,
    /// Candidates rejected (invalid blocking or infeasible placement for
    /// at least one observed shape).
    pub infeasible: usize,
}

impl MixDseResult {
    /// The candidate maximizing the mix objective (ties prefer lower
    /// power, mirroring [`DseResult::best`]).
    pub fn best(&self) -> Option<&MixEvaluation> {
        self.evaluations.iter().max_by(|a, b| {
            a.weighted_throughput
                .total_cmp(&b.weighted_throughput)
                .then(b.power_watts.total_cmp(&a.power_watts))
        })
    }

    /// The mix objective of a specific candidate, if it was feasible.
    pub fn score_of(&self, p_eng: usize, p_task: usize) -> Option<f64> {
        self.evaluations
            .iter()
            .find(|e| e.engine_parallelism == p_eng && e.task_parallelism == p_task)
            .map(|e| e.weighted_throughput)
    }
}

/// Scores one `(P_eng, P_task)` candidate against an observed workload
/// mix: Eq. 15–16 feasibility and the analytic estimate run per shape
/// (`base` supplies budgets / device / calibration; rows, cols, batch and
/// iterations come from the mix), extended with the PR 7 packing
/// dimension — when the service packs, a candidate's stripe capacity
/// (bounded by the shape's batch fill and the observed wave width)
/// replaces `P_task` as the Eq. 14 wave divisor. Returns `None` when the
/// candidate cannot serve every observed shape.
pub fn evaluate_mix_point(
    base: &DseConfig,
    mix: &WorkloadMix,
    p_eng: usize,
    p_task: usize,
) -> Option<MixEvaluation> {
    if mix.is_empty() || p_eng == 0 {
        return None;
    }
    // A swap must keep all observed traffic admissible: a candidate that
    // cannot block any observed shape is rejected outright.
    if mix.shapes.iter().any(|s| !s.cols.is_multiple_of(2 * p_eng)) {
        return None;
    }
    let capacity = tenant_capacity(base.device.geometry, p_eng);
    let mut per_shape = Vec::with_capacity(mix.shapes.len());
    let mut weighted = 0.0;
    let mut power_watts: f64 = 0.0;
    for shape in &mix.shapes {
        let fill = shape.batch_fill.max(1.0);
        let batch = fill.round().max(1.0) as usize;
        let mut cfg = base.clone();
        cfg.rows = shape.rows;
        cfg.cols = shape.cols;
        cfg.batch = batch;
        cfg.iterations = mix.iterations;
        let eval = evaluate_point_at(&cfg, p_eng, p_task, base.freq_mhz)?;
        let wave = if mix.array_packing && capacity >= 2 && batch >= 2 {
            let mut wave = capacity.min(batch);
            if mix.observed_wave_width >= 2.0 {
                wave = wave.min(mix.observed_wave_width.ceil() as usize).max(2);
            }
            wave
        } else {
            p_task
        };
        let est = estimate_with(&eval.point, &base.calibration);
        let throughput = est.throughput(batch, wave);
        per_shape.push(MixShapeScore {
            rows: shape.rows,
            cols: shape.cols,
            wave,
            throughput,
        });
        weighted += shape.weight.max(0.0) * throughput;
        power_watts = power_watts.max(eval.power_watts);
    }
    let total = mix.total_weight();
    if total <= 0.0 {
        return None;
    }
    Some(MixEvaluation {
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        weighted_throughput: weighted / total,
        power_watts,
        per_shape,
    })
}

/// Runs the full mix-parameterized sweep over the Table I ranges,
/// parallelized over `P_eng` like [`run_dse`].
pub fn run_mix_dse(base: &DseConfig, mix: &WorkloadMix) -> MixDseResult {
    let tasks: Vec<_> = (1..=heterosvd::config::MAX_ENGINE_PARALLELISM)
        .map(|p_eng| {
            let base = base.clone();
            let mix = mix.clone();
            move || -> Result<(Vec<MixEvaluation>, usize), heterosvd::HeteroSvdError> {
                let mut evals = Vec::new();
                let mut infeasible = 0usize;
                for p_task in 1..=heterosvd::config::MAX_TASK_PARALLELISM {
                    match evaluate_mix_point(&base, &mix, p_eng, p_task) {
                        Some(e) => evals.push(e),
                        None => infeasible += 1,
                    }
                }
                Ok((evals, infeasible))
            }
        })
        .collect();
    let per_eng = heterosvd::batch_pool::global()
        .run_batch_with(tasks)
        .expect("mix dse worker panicked");
    let mut evaluations = Vec::new();
    let mut infeasible = 0;
    for (evals, inf) in per_eng {
        evaluations.extend(evals);
        infeasible += inf;
    }
    MixDseResult {
        evaluations,
        infeasible,
    }
}

/// Incremental re-search over successive observed mixes: a full sweep
/// runs only when the mix actually moved ([`WorkloadMix::similar_to`]);
/// stationary traffic reuses the cached result, so the controller's
/// steady-state tick costs one similarity check instead of a sweep.
#[derive(Debug, Default)]
pub struct MixSearch {
    cached: Option<(WorkloadMix, MixDseResult)>,
    rel_tol: f64,
    /// Full sweeps executed.
    pub searches: u64,
    /// Ticks served from the cached sweep.
    pub reused: u64,
}

impl MixSearch {
    /// A search that reuses its cached sweep while successive mixes stay
    /// within `rel_tol` relative change (see [`WorkloadMix::similar_to`]).
    pub fn new(rel_tol: f64) -> Self {
        MixSearch {
            cached: None,
            rel_tol: rel_tol.max(0.0),
            searches: 0,
            reused: 0,
        }
    }

    /// The sweep result for `mix`, cached or fresh.
    pub fn research(&mut self, base: &DseConfig, mix: &WorkloadMix) -> MixDseResult {
        if let Some((prev, result)) = &self.cached {
            if prev.similar_to(mix, self.rel_tol) {
                self.reused += 1;
                return result.clone();
            }
        }
        let result = run_mix_dse(base, mix);
        self.searches += 1;
        self.cached = Some((mix.clone(), result.clone()));
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_feasible_points_for_256() {
        let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
        assert!(!result.evaluations.is_empty());
        // Points must honor Table I ranges and the budgets.
        for e in &result.evaluations {
            assert!(e.point.engine_parallelism <= 11);
            assert!(e.point.task_parallelism <= 26);
            assert!(e.usage.aie <= 400);
            assert!(e.usage.uram <= 463);
            assert!(e.power_watts > 0.0);
        }
        assert!(result.infeasible > 0);
    }

    #[test]
    fn latency_optimum_prefers_high_engine_parallelism() {
        // Table VI: high P_eng minimizes latency.
        let result = run_dse(&DseConfig::new(256, 256).freq_mhz(208.3));
        let best = result.best(Objective::MinLatency).unwrap();
        assert!(
            best.point.engine_parallelism >= 8,
            "latency-optimal P_eng = {}",
            best.point.engine_parallelism
        );
    }

    #[test]
    fn throughput_optimum_prefers_high_task_parallelism() {
        // Table VI: low P_eng + high P_task maximizes throughput.
        let result = run_dse(&DseConfig::new(256, 256).batch(100).freq_mhz(208.3));
        let best = result.best(Objective::MaxThroughput).unwrap();
        let latency_best = result.best(Objective::MinLatency).unwrap();
        assert!(best.point.task_parallelism > latency_best.point.task_parallelism);
        assert!(best.point.engine_parallelism < latency_best.point.engine_parallelism);
    }

    #[test]
    fn max_task_points_are_resource_saturated() {
        let result = run_dse(&DseConfig::new(256, 256).freq_mhz(208.3));
        for e in result.max_task_points() {
            // One more task must be infeasible (or at the Table I cap).
            if e.point.task_parallelism < 26 {
                let cfg = DseConfig::new(256, 256).freq_mhz(208.3);
                assert!(
                    evaluate_point(
                        &cfg,
                        e.point.engine_parallelism,
                        e.point.task_parallelism + 1
                    )
                    .is_none(),
                    "P_eng={} P_task={} is not saturated",
                    e.point.engine_parallelism,
                    e.point.task_parallelism
                );
            }
        }
    }

    #[test]
    fn power_increases_with_resources() {
        let cfg = DseConfig::new(256, 256).freq_mhz(208.3);
        let small = evaluate_point(&cfg, 2, 1).unwrap();
        let large = evaluate_point(&cfg, 2, 20).unwrap();
        assert!(large.power_watts > small.power_watts);
    }

    #[test]
    fn invalid_blocking_is_skipped() {
        // P_eng = 3 does not divide 256 columns evenly (256 % 6 != 0).
        let cfg = DseConfig::new(256, 256);
        assert!(evaluate_point(&cfg, 3, 1).is_none());
        // P_eng = 0 and giant P_task also rejected.
        assert!(evaluate_point(&cfg, 0, 1).is_none());
        assert!(evaluate_point(&cfg, 2, 27).is_none());
    }

    #[test]
    fn table6_trend_latency_and_throughput() {
        // Reproduce Table VI's qualitative trade-off at 256x256, 208.3 MHz:
        // P_eng up => latency down; P_task up => throughput up.
        let cfg = DseConfig::new(256, 256)
            .batch(100)
            .iterations(6)
            .freq_mhz(208.3);
        let e2 = evaluate_point(&cfg, 2, 26).unwrap();
        let e4 = evaluate_point(&cfg, 4, 9).unwrap();
        let e8 = evaluate_point(&cfg, 8, 2).unwrap();
        assert!(e8.latency < e4.latency && e4.latency < e2.latency);
        assert!(e2.throughput > e4.throughput && e4.throughput > e8.throughput);
        assert!(e2.power_watts > e8.power_watts);
    }

    #[test]
    fn aie_ml_device_changes_the_feasible_set() {
        // The estimated AIE-ML device has fewer AIEs and less URAM: its
        // feasible set shrinks, but designs still exist.
        let vck = run_dse(&DseConfig::new(256, 256).batch(100));
        let aie_ml = run_dse(
            &DseConfig::new(256, 256)
                .batch(100)
                .device(DeviceProfile::VE2802_ESTIMATE),
        );
        assert!(!aie_ml.evaluations.is_empty());
        assert!(aie_ml.evaluations.len() < vck.evaluations.len());
        for e in &aie_ml.evaluations {
            assert!(e.usage.aie <= DeviceProfile::VE2802_ESTIMATE.budget.aie);
            assert!(e.usage.uram <= DeviceProfile::VE2802_ESTIMATE.budget.uram);
        }
    }

    #[test]
    fn pareto_frontier_is_nonempty_and_undominated() {
        let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
        let frontier = result.pareto_frontier();
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= result.evaluations.len());
        // Both single-objective optima must be on the frontier.
        let lat = result.best(Objective::MinLatency).unwrap();
        let tput = result.best(Objective::MaxThroughput).unwrap();
        assert!(frontier.iter().any(|e| e.point == lat.point));
        assert!(frontier.iter().any(|e| e.point == tput.point));
        // No frontier point dominates another frontier point.
        for a in &frontier {
            for b in &frontier {
                if a.point != b.point {
                    let dominates = a.latency <= b.latency
                        && a.throughput >= b.throughput
                        && a.power_watts <= b.power_watts
                        && (a.latency < b.latency
                            || a.throughput > b.throughput
                            || a.power_watts < b.power_watts);
                    assert!(!dominates, "{:?} dominates {:?}", a.point, b.point);
                }
            }
        }
    }

    #[test]
    fn frequency_candidates_expand_the_space() {
        let base = run_dse(&DseConfig::new(128, 128));
        let swept = run_dse(&DseConfig::new(128, 128).freq_candidates_mhz(vec![208.3, 310.0]));
        assert!(swept.evaluations.len() > base.evaluations.len());
        // Lower frequencies cost latency but save power.
        let slow = swept
            .evaluations
            .iter()
            .filter(|e| e.point.engine_parallelism == 8 && e.point.task_parallelism == 1)
            .collect::<Vec<_>>();
        assert!(slow.len() >= 2);
        let fastest = slow
            .iter()
            .max_by(|a, b| a.point.pl_freq_mhz.total_cmp(&b.point.pl_freq_mhz))
            .unwrap();
        let slowest = slow
            .iter()
            .min_by(|a, b| a.point.pl_freq_mhz.total_cmp(&b.point.pl_freq_mhz))
            .unwrap();
        assert!(slowest.latency > fastest.latency);
        assert!(slowest.power_watts < fastest.power_watts);
    }

    #[test]
    fn energy_efficiency_objective_selects_consistently() {
        let result = run_dse(&DseConfig::new(128, 128).batch(100));
        let best = result.best(Objective::MaxEnergyEfficiency).unwrap();
        for e in &result.evaluations {
            assert!(best.energy_efficiency >= e.energy_efficiency);
        }
    }

    fn mix(shapes: &[(usize, usize, f64, f64)], packing: bool) -> WorkloadMix {
        WorkloadMix {
            shapes: shapes
                .iter()
                .map(|&(rows, cols, weight, batch_fill)| ObservedShape {
                    rows,
                    cols,
                    weight,
                    batch_fill,
                })
                .collect(),
            iterations: 6,
            array_packing: packing,
            observed_wave_width: 0.0,
        }
    }

    #[test]
    fn small_batched_mix_prefers_packing_capacity() {
        // Full 16-deep batches of 64x64: the stripe capacity at low P_eng
        // (16 tenants at P_eng = 2 on VCK190) divides Eq. 14, so the mix
        // optimum sits at low engine parallelism.
        let base = DseConfig::new(64, 64).freq_mhz(208.3);
        let result = run_mix_dse(&base, &mix(&[(64, 64, 1.0, 16.0)], true));
        let best = result.best().unwrap();
        assert!(
            best.engine_parallelism <= 2,
            "packed-mix optimum P_eng = {}",
            best.engine_parallelism
        );
        assert!(best.per_shape[0].wave >= 2, "packing credit missing");
    }

    #[test]
    fn large_single_mix_prefers_high_engine_parallelism() {
        // Singleton 256x256 arrivals: throughput = 1 / t_task, so the
        // optimum is the latency-optimal high-P_eng corner (Table VI).
        let base = DseConfig::new(256, 256).freq_mhz(208.3);
        let result = run_mix_dse(&base, &mix(&[(256, 256, 1.0, 1.0)], true));
        let best = result.best().unwrap();
        assert!(
            best.engine_parallelism >= 8,
            "single-mix optimum P_eng = {}",
            best.engine_parallelism
        );
    }

    #[test]
    fn candidates_must_serve_every_observed_shape() {
        // 40 columns block at P_eng ∈ {1, 2, 4, 5, 10} only; P_eng = 8
        // (2·8 = 16 does not divide 40) must be absent even though the
        // other shape would accept it.
        let base = DseConfig::new(64, 64).freq_mhz(208.3);
        let result = run_mix_dse(&base, &mix(&[(64, 64, 1.0, 1.0), (40, 40, 1.0, 1.0)], true));
        assert!(!result.evaluations.is_empty());
        assert!(result.evaluations.iter().all(|e| e.engine_parallelism != 8));
        assert!(evaluate_mix_point(&base, &mix(&[(40, 40, 1.0, 1.0)], true), 8, 1).is_none());
    }

    #[test]
    fn observed_wave_width_caps_the_packing_credit() {
        let base = DseConfig::new(64, 64).freq_mhz(208.3);
        let mut m = mix(&[(64, 64, 1.0, 16.0)], true);
        let uncapped = evaluate_mix_point(&base, &m, 2, 4).unwrap();
        m.observed_wave_width = 4.0;
        let capped = evaluate_mix_point(&base, &m, 2, 4).unwrap();
        assert!(uncapped.per_shape[0].wave > capped.per_shape[0].wave);
        assert_eq!(capped.per_shape[0].wave, 4);
        assert!(uncapped.weighted_throughput > capped.weighted_throughput);
    }

    #[test]
    fn mix_search_reuses_stationary_mixes_and_resweeps_on_shift() {
        let base = DseConfig::new(64, 64).freq_mhz(208.3);
        let mut search = MixSearch::new(0.1);
        let a = mix(&[(64, 64, 10.0, 4.0)], true);
        let first = search.research(&base, &a);
        // Same traffic at a different counter scale: still one sweep.
        let second = search.research(&base, &mix(&[(64, 64, 20.0, 4.0)], true));
        assert_eq!(first, second);
        assert_eq!((search.searches, search.reused), (1, 1));
        // A real mix shift re-sweeps.
        search.research(&base, &mix(&[(128, 128, 10.0, 1.0)], true));
        assert_eq!((search.searches, search.reused), (2, 1));
    }

    #[test]
    fn empty_mix_scores_nothing() {
        let base = DseConfig::new(64, 64).freq_mhz(208.3);
        let empty = mix(&[], true);
        assert!(empty.is_empty());
        assert!(evaluate_mix_point(&base, &empty, 2, 1).is_none());
    }
}
