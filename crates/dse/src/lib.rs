#![warn(missing_docs)]

//! Design-space exploration for HeteroSVD micro-architectures
//! (§IV-C, Eq. 15–16).
//!
//! Given a problem (`M × N`, batch size `B`), the DSE selects the
//! first-order parameters of Table I — engine parallelism `P_eng`, task
//! parallelism `P_task`, and the PL frequency — minimizing runtime subject
//! to the AIE / PLIO / BRAM / URAM budgets:
//!
//! ```text
//! min  runtime(P_eng, P_task, Freq)
//! s.t. Resourceᵢ(P_eng, P_task) ≤ Cᵢ,  i ∈ {AIE, PLIO, BRAM, URAM}
//! ```
//!
//! The two-stage flow of Fig. 8:
//!
//! 1. **Stage 1 — feasibility.** Enumerate `P_eng`; for each, place the
//!    design ([`heterosvd::Placement`]) and keep every `P_task` whose
//!    resource usage fits the VCK190 budgets (Eq. 16).
//! 2. **Stage 2 — evaluation.** Score each feasible point with the
//!    analytic performance model ([`perf_model::estimate`]) and the
//!    power model, then pick the optimum for the requested objective
//!    (latency or throughput).
//!
//! The sweep parallelizes over `P_eng` on the workspace's shared
//! [`heterosvd::BatchPool`] — the full space (≤ 286 points, §IV-A)
//! evaluates in milliseconds, compared to "more than seven hours" per
//! point through the vendor EDA flow.
//!
//! # Example
//!
//! ```
//! use heterosvd_dse::{DseConfig, Objective, run_dse};
//!
//! let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
//! let best = result.best(Objective::MaxThroughput).expect("feasible design");
//! assert!(best.point.task_parallelism >= 1);
//! ```

use aie_sim::calibration::{Calibration, PowerCalibration};
use aie_sim::device::DeviceProfile;
use aie_sim::resources::{ResourceBudget, ResourceUsage};
use aie_sim::time::TimePs;
use heterosvd::{HeteroSvdConfig, Placement};
use perf_model::{estimate_with, Bottleneck, DesignPoint};
use serde::{Deserialize, Serialize};

/// Optimization objective (the paper optimizes either latency or
/// throughput depending on the application scenario, §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize single-task latency (`t_task`).
    MinLatency,
    /// Maximize batch throughput (tasks/s).
    MaxThroughput,
    /// Maximize energy efficiency (tasks/s/W).
    MaxEnergyEfficiency,
}

/// DSE problem description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseConfig {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Batch size `B` (number of independent tasks).
    pub batch: usize,
    /// Orthogonalization iterations per task.
    pub iterations: usize,
    /// Optional fixed PL frequency in MHz (default: each design's
    /// achievable frequency).
    pub freq_mhz: Option<f64>,
    /// Optional candidate frequency grid in MHz: each candidate at or
    /// below a design's achievable frequency is evaluated as a separate
    /// point (the third first-order parameter of Table I). Ignored when
    /// `freq_mhz` is set.
    pub freq_candidates_mhz: Vec<f64>,
    /// Resource budgets (default VCK190). Checked *in addition to* the
    /// device's own budget — override to model what-if capacities.
    pub budget: ResourceBudget,
    /// Target device profile (default VCK190).
    pub device: DeviceProfile,
    /// Timing calibration.
    pub calibration: Calibration,
    /// Power calibration.
    pub power: PowerCalibration,
}

impl DseConfig {
    /// A DSE problem for an `rows × cols` matrix, batch 1, six iterations.
    pub fn new(rows: usize, cols: usize) -> Self {
        DseConfig {
            rows,
            cols,
            batch: 1,
            iterations: 6,
            freq_mhz: None,
            freq_candidates_mhz: Vec::new(),
            budget: ResourceBudget::VCK190,
            device: DeviceProfile::VCK190,
            calibration: Calibration::DEFAULT,
            power: PowerCalibration::DEFAULT,
        }
    }

    /// Sets the batch size.
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the iteration count.
    pub fn iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Fixes the PL frequency in MHz for every design point.
    pub fn freq_mhz(mut self, mhz: f64) -> Self {
        self.freq_mhz = Some(mhz);
        self
    }

    /// Sets a candidate frequency grid (MHz); candidates above a design's
    /// achievable frequency are skipped for that design.
    pub fn freq_candidates_mhz(mut self, candidates: Vec<f64>) -> Self {
        self.freq_candidates_mhz = candidates;
        self
    }

    /// Targets a different device profile (its budget replaces the
    /// default one too).
    pub fn device(mut self, device: DeviceProfile) -> Self {
        self.budget = device.budget;
        self.device = device;
        self
    }
}

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignEvaluation {
    /// The first-order parameters.
    pub point: DesignPoint,
    /// Resource usage after placement.
    pub usage: ResourceUsage,
    /// Single-task latency.
    pub latency: TimePs,
    /// Batch system time (Eq. 14).
    pub system_time: TimePs,
    /// Batch throughput in tasks/s.
    pub throughput: f64,
    /// Estimated power in watts.
    pub power_watts: f64,
    /// Energy efficiency in tasks/s/W.
    pub energy_efficiency: f64,
    /// The resource bounding this design's pass rate.
    pub bottleneck: Bottleneck,
}

/// Result of a DSE sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseResult {
    /// All feasible design points, in `(P_eng, P_task)` order.
    pub evaluations: Vec<DesignEvaluation>,
    /// Number of candidate points rejected by stage 1.
    pub infeasible: usize,
}

impl DseResult {
    /// The best feasible design for an objective.
    pub fn best(&self, objective: Objective) -> Option<&DesignEvaluation> {
        match objective {
            Objective::MinLatency => self.evaluations.iter().min_by(|a, b| {
                a.latency
                    .cmp(&b.latency)
                    .then(a.power_watts.total_cmp(&b.power_watts))
            }),
            Objective::MaxThroughput => self.evaluations.iter().max_by(|a, b| {
                a.throughput
                    .total_cmp(&b.throughput)
                    .then(b.power_watts.total_cmp(&a.power_watts))
            }),
            Objective::MaxEnergyEfficiency => self
                .evaluations
                .iter()
                .max_by(|a, b| a.energy_efficiency.total_cmp(&b.energy_efficiency)),
        }
    }

    /// The Pareto frontier over (latency ↓, throughput ↑, power ↓):
    /// points not dominated by any other feasible point.
    pub fn pareto_frontier(&self) -> Vec<&DesignEvaluation> {
        let dominates = |a: &DesignEvaluation, b: &DesignEvaluation| {
            a.latency <= b.latency
                && a.throughput >= b.throughput
                && a.power_watts <= b.power_watts
                && (a.latency < b.latency
                    || a.throughput > b.throughput
                    || a.power_watts < b.power_watts)
        };
        self.evaluations
            .iter()
            .filter(|cand| !self.evaluations.iter().any(|other| dominates(other, cand)))
            .collect()
    }

    /// Stage-1 style selection: for each `P_eng`, the point with the
    /// maximum feasible `P_task` ("maximize task parallelism by fully
    /// utilizing resource", Fig. 8).
    pub fn max_task_points(&self) -> Vec<&DesignEvaluation> {
        let mut out: Vec<&DesignEvaluation> = Vec::new();
        for eval in &self.evaluations {
            match out
                .iter_mut()
                .find(|e| e.point.engine_parallelism == eval.point.engine_parallelism)
            {
                Some(slot) => {
                    if eval.point.task_parallelism > slot.point.task_parallelism {
                        *slot = eval;
                    }
                }
                None => out.push(eval),
            }
        }
        out
    }
}

/// Evaluates one `(P_eng, P_task)` candidate at the configured (or
/// achievable) frequency: stage-1 placement + feasibility, then stage-2
/// performance/power scoring. Returns `None` when the point is invalid
/// or infeasible.
pub fn evaluate_point(cfg: &DseConfig, p_eng: usize, p_task: usize) -> Option<DesignEvaluation> {
    evaluate_point_at(cfg, p_eng, p_task, cfg.freq_mhz)
}

/// [`evaluate_point`] at an explicit frequency override (MHz).
pub fn evaluate_point_at(
    cfg: &DseConfig,
    p_eng: usize,
    p_task: usize,
    freq_mhz: Option<f64>,
) -> Option<DesignEvaluation> {
    if p_eng == 0 || !cfg.cols.is_multiple_of(2 * p_eng) {
        return None;
    }
    // The accelerator checks the device budget itself; the DSE's own
    // (possibly what-if) budget is checked below.
    let mut device = cfg.device;
    device.budget = cfg.budget;
    let mut builder = HeteroSvdConfig::builder(cfg.rows, cfg.cols)
        .engine_parallelism(p_eng)
        .task_parallelism(p_task)
        .device(device)
        .calibration(cfg.calibration);
    if let Some(mhz) = freq_mhz {
        builder = builder.pl_freq_mhz(mhz);
    }
    let hw_cfg = builder.build().ok()?;
    let placement = Placement::plan(&hw_cfg).ok()?;
    let usage = placement.usage();
    cfg.budget.check(&usage).ok()?;

    let point = DesignPoint {
        rows: cfg.rows,
        cols: cfg.cols,
        engine_parallelism: p_eng,
        task_parallelism: p_task,
        pl_freq_mhz: hw_cfg.pl_freq.mhz(),
        iterations: cfg.iterations,
    };
    let est = estimate_with(&point, &cfg.calibration);
    let system_time = est.system_time(cfg.batch, p_task);
    let throughput = est.throughput(cfg.batch, p_task);
    let power_watts = cfg.power.power_watts(
        usage.aie,
        usage.uram,
        usage.bram,
        point.pl_freq_mhz,
        usage.luts,
    );
    Some(DesignEvaluation {
        point,
        usage,
        latency: est.task,
        system_time,
        throughput,
        power_watts,
        energy_efficiency: throughput / power_watts,
        bottleneck: est.bottleneck,
    })
}

/// Runs the full two-stage DSE sweep over `P_eng ∈ [1, 11]` and
/// `P_task ∈ [1, 26]` (Table I), parallelized over `P_eng`.
pub fn run_dse(cfg: &DseConfig) -> DseResult {
    // One pool task per P_eng column of the sweep. The shared pool's
    // workers are long-lived (not scoped), so each task owns a clone of
    // the config; results come back in submission = P_eng order.
    let tasks: Vec<_> = (1..=heterosvd::config::MAX_ENGINE_PARALLELISM)
        .map(|p_eng| {
            let cfg = cfg.clone();
            move || -> Result<(Vec<DesignEvaluation>, usize), heterosvd::HeteroSvdError> {
                let mut evals = Vec::new();
                let mut infeasible = 0usize;
                for p_task in 1..=heterosvd::config::MAX_TASK_PARALLELISM {
                    match evaluate_point(&cfg, p_eng, p_task) {
                        Some(e) => {
                            // Explore lower candidate frequencies too
                            // (they trade latency for power).
                            let achievable = e.point.pl_freq_mhz;
                            for &mhz in &cfg.freq_candidates_mhz {
                                if cfg.freq_mhz.is_none() && mhz < achievable && mhz > 0.0 {
                                    if let Some(extra) =
                                        evaluate_point_at(&cfg, p_eng, p_task, Some(mhz))
                                    {
                                        evals.push(extra);
                                    }
                                }
                            }
                            evals.push(e);
                        }
                        None => infeasible += 1,
                    }
                }
                Ok((evals, infeasible))
            }
        })
        .collect();
    let per_eng = heterosvd::batch_pool::global()
        .run_batch_with(tasks)
        .expect("dse worker panicked");

    let mut evaluations = Vec::new();
    let mut infeasible = 0;
    for (evals, inf) in per_eng {
        evaluations.extend(evals);
        infeasible += inf;
    }
    DseResult {
        evaluations,
        infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_feasible_points_for_256() {
        let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
        assert!(!result.evaluations.is_empty());
        // Points must honor Table I ranges and the budgets.
        for e in &result.evaluations {
            assert!(e.point.engine_parallelism <= 11);
            assert!(e.point.task_parallelism <= 26);
            assert!(e.usage.aie <= 400);
            assert!(e.usage.uram <= 463);
            assert!(e.power_watts > 0.0);
        }
        assert!(result.infeasible > 0);
    }

    #[test]
    fn latency_optimum_prefers_high_engine_parallelism() {
        // Table VI: high P_eng minimizes latency.
        let result = run_dse(&DseConfig::new(256, 256).freq_mhz(208.3));
        let best = result.best(Objective::MinLatency).unwrap();
        assert!(
            best.point.engine_parallelism >= 8,
            "latency-optimal P_eng = {}",
            best.point.engine_parallelism
        );
    }

    #[test]
    fn throughput_optimum_prefers_high_task_parallelism() {
        // Table VI: low P_eng + high P_task maximizes throughput.
        let result = run_dse(&DseConfig::new(256, 256).batch(100).freq_mhz(208.3));
        let best = result.best(Objective::MaxThroughput).unwrap();
        let latency_best = result.best(Objective::MinLatency).unwrap();
        assert!(best.point.task_parallelism > latency_best.point.task_parallelism);
        assert!(best.point.engine_parallelism < latency_best.point.engine_parallelism);
    }

    #[test]
    fn max_task_points_are_resource_saturated() {
        let result = run_dse(&DseConfig::new(256, 256).freq_mhz(208.3));
        for e in result.max_task_points() {
            // One more task must be infeasible (or at the Table I cap).
            if e.point.task_parallelism < 26 {
                let cfg = DseConfig::new(256, 256).freq_mhz(208.3);
                assert!(
                    evaluate_point(
                        &cfg,
                        e.point.engine_parallelism,
                        e.point.task_parallelism + 1
                    )
                    .is_none(),
                    "P_eng={} P_task={} is not saturated",
                    e.point.engine_parallelism,
                    e.point.task_parallelism
                );
            }
        }
    }

    #[test]
    fn power_increases_with_resources() {
        let cfg = DseConfig::new(256, 256).freq_mhz(208.3);
        let small = evaluate_point(&cfg, 2, 1).unwrap();
        let large = evaluate_point(&cfg, 2, 20).unwrap();
        assert!(large.power_watts > small.power_watts);
    }

    #[test]
    fn invalid_blocking_is_skipped() {
        // P_eng = 3 does not divide 256 columns evenly (256 % 6 != 0).
        let cfg = DseConfig::new(256, 256);
        assert!(evaluate_point(&cfg, 3, 1).is_none());
        // P_eng = 0 and giant P_task also rejected.
        assert!(evaluate_point(&cfg, 0, 1).is_none());
        assert!(evaluate_point(&cfg, 2, 27).is_none());
    }

    #[test]
    fn table6_trend_latency_and_throughput() {
        // Reproduce Table VI's qualitative trade-off at 256x256, 208.3 MHz:
        // P_eng up => latency down; P_task up => throughput up.
        let cfg = DseConfig::new(256, 256)
            .batch(100)
            .iterations(6)
            .freq_mhz(208.3);
        let e2 = evaluate_point(&cfg, 2, 26).unwrap();
        let e4 = evaluate_point(&cfg, 4, 9).unwrap();
        let e8 = evaluate_point(&cfg, 8, 2).unwrap();
        assert!(e8.latency < e4.latency && e4.latency < e2.latency);
        assert!(e2.throughput > e4.throughput && e4.throughput > e8.throughput);
        assert!(e2.power_watts > e8.power_watts);
    }

    #[test]
    fn aie_ml_device_changes_the_feasible_set() {
        // The estimated AIE-ML device has fewer AIEs and less URAM: its
        // feasible set shrinks, but designs still exist.
        let vck = run_dse(&DseConfig::new(256, 256).batch(100));
        let aie_ml = run_dse(
            &DseConfig::new(256, 256)
                .batch(100)
                .device(DeviceProfile::VE2802_ESTIMATE),
        );
        assert!(!aie_ml.evaluations.is_empty());
        assert!(aie_ml.evaluations.len() < vck.evaluations.len());
        for e in &aie_ml.evaluations {
            assert!(e.usage.aie <= DeviceProfile::VE2802_ESTIMATE.budget.aie);
            assert!(e.usage.uram <= DeviceProfile::VE2802_ESTIMATE.budget.uram);
        }
    }

    #[test]
    fn pareto_frontier_is_nonempty_and_undominated() {
        let result = run_dse(&DseConfig::new(256, 256).batch(100).iterations(6));
        let frontier = result.pareto_frontier();
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= result.evaluations.len());
        // Both single-objective optima must be on the frontier.
        let lat = result.best(Objective::MinLatency).unwrap();
        let tput = result.best(Objective::MaxThroughput).unwrap();
        assert!(frontier.iter().any(|e| e.point == lat.point));
        assert!(frontier.iter().any(|e| e.point == tput.point));
        // No frontier point dominates another frontier point.
        for a in &frontier {
            for b in &frontier {
                if a.point != b.point {
                    let dominates = a.latency <= b.latency
                        && a.throughput >= b.throughput
                        && a.power_watts <= b.power_watts
                        && (a.latency < b.latency
                            || a.throughput > b.throughput
                            || a.power_watts < b.power_watts);
                    assert!(!dominates, "{:?} dominates {:?}", a.point, b.point);
                }
            }
        }
    }

    #[test]
    fn frequency_candidates_expand_the_space() {
        let base = run_dse(&DseConfig::new(128, 128));
        let swept = run_dse(&DseConfig::new(128, 128).freq_candidates_mhz(vec![208.3, 310.0]));
        assert!(swept.evaluations.len() > base.evaluations.len());
        // Lower frequencies cost latency but save power.
        let slow = swept
            .evaluations
            .iter()
            .filter(|e| e.point.engine_parallelism == 8 && e.point.task_parallelism == 1)
            .collect::<Vec<_>>();
        assert!(slow.len() >= 2);
        let fastest = slow
            .iter()
            .max_by(|a, b| a.point.pl_freq_mhz.total_cmp(&b.point.pl_freq_mhz))
            .unwrap();
        let slowest = slow
            .iter()
            .min_by(|a, b| a.point.pl_freq_mhz.total_cmp(&b.point.pl_freq_mhz))
            .unwrap();
        assert!(slowest.latency > fastest.latency);
        assert!(slowest.power_watts < fastest.power_watts);
    }

    #[test]
    fn energy_efficiency_objective_selects_consistently() {
        let result = run_dse(&DseConfig::new(128, 128).batch(100));
        let best = result.best(Objective::MaxEnergyEfficiency).unwrap();
        for e in &result.evaluations {
            assert!(best.energy_efficiency >= e.energy_efficiency);
        }
    }
}
