use std::error::Error;
use std::fmt;

/// Errors produced by the SVD kernels.
///
/// Every fallible public function in this crate returns `Result<_, SvdError>`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SvdError {
    /// Matrix dimensions are invalid for the requested operation.
    ///
    /// Carries a human-readable description of the mismatch.
    DimensionMismatch(String),
    /// The requested block size does not evenly relate to the matrix shape.
    InvalidBlocking {
        /// Number of matrix columns.
        cols: usize,
        /// Requested columns per block.
        block_cols: usize,
    },
    /// The iteration failed to converge within the allowed sweep budget.
    NotConverged {
        /// Number of sweeps performed.
        sweeps: usize,
        /// Off-diagonal convergence measure after the final sweep.
        off_diagonal: f64,
    },
    /// A non-finite value (NaN/∞) appeared during iteration, typically from
    /// a non-finite input matrix.
    NonFinite,
    /// An invalid configuration value was supplied.
    InvalidParameter(String),
}

impl fmt::Display for SvdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvdError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            SvdError::InvalidBlocking { cols, block_cols } => write!(
                f,
                "invalid blocking: {block_cols} columns per block does not divide {cols} columns"
            ),
            SvdError::NotConverged {
                sweeps,
                off_diagonal,
            } => write!(
                f,
                "jacobi iteration did not converge after {sweeps} sweeps \
                 (off-diagonal measure {off_diagonal:.3e})"
            ),
            SvdError::NonFinite => write!(f, "non-finite value encountered during iteration"),
            SvdError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for SvdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SvdError::DimensionMismatch("a is 3x4, b is 5x6".into());
        assert!(e.to_string().starts_with("dimension mismatch"));

        let e = SvdError::InvalidBlocking {
            cols: 10,
            block_cols: 3,
        };
        assert!(e.to_string().contains("3 columns per block"));
        assert!(e.to_string().contains("10 columns"));

        let e = SvdError::NotConverged {
            sweeps: 30,
            off_diagonal: 1e-3,
        };
        assert!(e.to_string().contains("30 sweeps"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SvdError>();
    }
}
