//! Intra-layer parallel execution of independent column-pair rotations.
//!
//! Every orthogonalization layer of the shifting-ring schedule rotates `k`
//! column pairs that are pairwise disjoint by construction (each column
//! appears in exactly one pair of the layer). Those rotations are therefore
//! embarrassingly parallel, and the paper's hardware exploits exactly this:
//! the `k` orthogonalization kernel groups of a layer run concurrently on
//! separate AIE columns. This module is the software analog — a small
//! persistent worker pool that executes a layer's rotations across threads
//! while preserving *bit-identical* results:
//!
//! * each pair is processed by exactly the same fused kernel
//!   ([`crate::rotation::orthogonalize_pair_gated`]) regardless of which
//!   worker claims it, and pairs touch disjoint columns, so the matrix
//!   contents after a layer are independent of claim order;
//! * per-pair convergence values are written to a caller-provided slot
//!   array and reduced *in slot order* by the caller, so floating-point
//!   summation order matches the serial path exactly.
//!
//! The pool is created once per accelerator run ([`with_pool`]) and reused
//! for every layer of every pass — spawning threads per layer would cost
//! more than the rotations themselves at the matrix sizes the simulator
//! models. Work distribution is a lock-free claim counter: workers CAS a
//! shared cursor to claim pair indices, so load balances even when column
//! lengths differ. A generation tag folded into the cursor prevents a
//! stale worker (one that observed an old job) from claiming slots of a
//! newer job.

use crate::adaptive::{visit_via_view, AdaptiveState, AdaptiveView};
use crate::matrix::Matrix;
use crate::rotation::orthogonalize_pair_gated;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of workers to use when the caller asks for "all available":
/// the host's reported parallelism, with a fallback of 1.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Checks that `pairs` are in bounds, distinct, and pairwise disjoint —
/// the precondition that makes parallel execution race-free.
///
/// # Panics
///
/// Panics (never data-races) if any pair repeats a column, exceeds
/// `cols`, or shares a column with another pair.
fn validate_pairs(cols: usize, pairs: &[(usize, usize)]) {
    // Quadratic disjointness scan, allocation-free: layers hold at most
    // P_eng <= 11 pairs, so this costs a few dozen comparisons per layer.
    for (i, &(u, v)) in pairs.iter().enumerate() {
        assert!(u != v, "pair {i} repeats column {u}");
        assert!(
            u < cols && v < cols,
            "pair {i} = ({u}, {v}) out of range for {cols} columns"
        );
        for &(u2, v2) in &pairs[..i] {
            assert!(
                u != u2 && u != v2 && v != u2 && v != v2,
                "pairs share a column: ({u}, {v}) vs ({u2}, {v2})"
            );
        }
    }
}

/// Serially orthogonalizes each `(u, v)` column pair of `m`, writing the
/// per-pair convergence value to `conv_out[i]`.
///
/// This is the `workers == 1` path and the reference the parallel path
/// must match bit-for-bit.
///
/// # Panics
///
/// Panics if `conv_out.len() < pairs.len()` or any pair is invalid.
pub fn orthogonalize_pairs_serial(
    m: &mut Matrix<f32>,
    pairs: &[(usize, usize)],
    floor_sq: f32,
    conv_out: &mut [f32],
) {
    assert!(conv_out.len() >= pairs.len(), "conv_out too short");
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let (x, y) = m.col_pair_mut(u, v);
        conv_out[i] = orthogonalize_pair_gated(x, y, floor_sq);
    }
}

/// [`orthogonalize_pairs_serial`] through the convergence-adaptive state:
/// each pair either memo-skips, gates, or rotates per `state`'s threshold
/// (see [`crate::adaptive`]). The conv slots receive the exact Eq. (6)
/// measure in every case. With a zero threshold this is bit-identical to
/// [`orthogonalize_pairs_serial`].
///
/// This is the `workers == 1` path and the reference
/// [`RotationPool::execute_adaptive`] must match bit-for-bit.
///
/// # Panics
///
/// Panics if `conv_out.len() < pairs.len()` or any pair is invalid.
pub fn orthogonalize_pairs_serial_adaptive(
    m: &mut Matrix<f32>,
    pairs: &[(usize, usize)],
    floor_sq: f32,
    conv_out: &mut [f32],
    state: &mut AdaptiveState<f32>,
) {
    assert!(conv_out.len() >= pairs.len(), "conv_out too short");
    for (i, &(u, v)) in pairs.iter().enumerate() {
        conv_out[i] = state.visit(m, u, v, floor_sq);
    }
}

/// A layer's worth of rotation work, published to workers.
///
/// Raw pointers let workers slice disjoint columns without aliasing
/// `&mut` borrows; [`validate_pairs`] guarantees disjointness before a
/// job is published.
struct Job {
    data: *mut f32,
    rows: usize,
    pairs: *const (usize, usize),
    npairs: usize,
    floor_sq: f32,
    conv: *mut f32,
    adaptive: Option<AdaptiveView<f32>>,
}

// SAFETY: a Job only grants access to pairwise-disjoint column slices
// (checked by validate_pairs) and disjoint conv slots (one per claimed
// index), so sharing it across threads is race-free. The adaptive view's
// per-column version slots and per-pair cache entries are disjoint for
// exactly the same reason (a layer's pairs share no column and no pair
// id), and its skip counters are atomics.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

/// By-value copy of a [`Job`]'s fields, taken under the control lock and
/// carried into the lock-free claim loop.
#[derive(Clone, Copy)]
struct JobSnapshot {
    data: *mut f32,
    rows: usize,
    pairs: *const (usize, usize),
    npairs: usize,
    floor_sq: f32,
    conv: *mut f32,
    adaptive: Option<AdaptiveView<f32>>,
}

impl JobSnapshot {
    fn of(job: &Job) -> Self {
        JobSnapshot {
            data: job.data,
            rows: job.rows,
            pairs: job.pairs,
            npairs: job.npairs,
            floor_sq: job.floor_sq,
            conv: job.conv,
            adaptive: job.adaptive,
        }
    }
}

struct Control {
    /// Monotonic job generation; folded into the claim cursor so stale
    /// workers cannot claim slots of a newer job.
    gen: u32,
    job: Option<Job>,
    shutdown: bool,
}

/// Persistent pool of rotation workers for one accelerator run.
///
/// Created via [`with_pool`]; [`RotationPool::execute`] runs one layer.
pub struct RotationPool {
    control: Mutex<Control>,
    work_cv: Condvar,
    /// `(gen << 32) | next_unclaimed_index`.
    cursor: AtomicU64,
    /// `(gen << 32) | completed_count`.
    completed: AtomicU64,
}

fn tag(gen: u32, n: usize) -> u64 {
    ((gen as u64) << 32) | n as u64
}

impl RotationPool {
    fn new() -> Self {
        RotationPool {
            control: Mutex::new(Control {
                gen: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            cursor: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// Orthogonalizes every `(u, v)` pair of `m` across the pool, writing
    /// per-pair convergence values to `conv_out` (indexed by pair slot).
    ///
    /// Blocks until all pairs complete. The calling thread participates,
    /// so a pool with `w` workers applies `w + 1` threads to the layer.
    ///
    /// # Panics
    ///
    /// Panics if pairs alias, are out of range, or `conv_out` is short.
    pub fn execute(
        &self,
        m: &mut Matrix<f32>,
        pairs: &[(usize, usize)],
        floor_sq: f32,
        conv_out: &mut [f32],
    ) {
        self.execute_inner(m, pairs, floor_sq, conv_out, None);
    }

    /// [`RotationPool::execute`] through the convergence-adaptive state:
    /// the pooled counterpart of [`orthogonalize_pairs_serial_adaptive`],
    /// bit-identical to it for any worker count. Version bumps and cache
    /// writes are race-free because a layer's pairs are column-disjoint
    /// (so no two claimed pairs touch the same version slot or cache
    /// entry), and the result is claim-order independent because each
    /// pair's visit reads only its own columns' versions and its own
    /// cache entry.
    ///
    /// # Panics
    ///
    /// Panics if pairs alias, are out of range, or `conv_out` is short.
    pub fn execute_adaptive(
        &self,
        m: &mut Matrix<f32>,
        pairs: &[(usize, usize)],
        floor_sq: f32,
        conv_out: &mut [f32],
        state: &mut AdaptiveState<f32>,
    ) {
        let view = state.view();
        self.execute_inner(m, pairs, floor_sq, conv_out, Some(view));
    }

    fn execute_inner(
        &self,
        m: &mut Matrix<f32>,
        pairs: &[(usize, usize)],
        floor_sq: f32,
        conv_out: &mut [f32],
        adaptive: Option<AdaptiveView<f32>>,
    ) {
        assert!(conv_out.len() >= pairs.len(), "conv_out too short");
        validate_pairs(m.cols(), pairs);
        if pairs.is_empty() {
            return;
        }
        let rows = m.rows();
        let job = Job {
            data: m.as_mut_slice().as_mut_ptr(),
            rows,
            pairs: pairs.as_ptr(),
            npairs: pairs.len(),
            floor_sq,
            conv: conv_out.as_mut_ptr(),
            adaptive,
        };
        let snapshot = JobSnapshot::of(&job);
        let gen;
        {
            let mut ctl = self.control.lock().unwrap();
            ctl.gen = ctl.gen.wrapping_add(1);
            gen = ctl.gen;
            // Reset the counters *before* publishing the job: a worker
            // that wakes and reads the job must see a fresh cursor.
            self.cursor.store(tag(gen, 0), Ordering::SeqCst);
            self.completed.store(tag(gen, 0), Ordering::SeqCst);
            ctl.job = Some(job);
            self.work_cv.notify_all();
        }
        // The caller claims work too — with small layers it often
        // finishes everything before a worker even wakes.
        self.run_tasks(gen, snapshot);
        let done = tag(gen, pairs.len());
        while self.completed.load(Ordering::Acquire) != done {
            std::hint::spin_loop();
        }
        self.control.lock().unwrap().job = None;
    }

    /// Claims and runs tasks of generation `gen` until the cursor drains
    /// or a newer generation supersedes it.
    ///
    /// The snapshot's pointers are valid for as long as `gen` is the
    /// current generation: `execute` keeps the job published (and its
    /// borrows alive) until `completed` reaches `npairs`, which cannot
    /// happen before every claimed index below has finished.
    fn run_tasks(&self, gen: u32, job: JobSnapshot) {
        loop {
            let cur = self.cursor.load(Ordering::Acquire);
            if (cur >> 32) as u32 != gen {
                return; // a newer job took over; our snapshot is stale
            }
            let idx = (cur & 0xffff_ffff) as usize;
            if idx >= job.npairs {
                return;
            }
            // Claim index `idx`. The generation folded into the value
            // makes this CAS fail if another `execute` reset the cursor
            // between our load and here — a stale claim is impossible.
            if self
                .cursor
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            // SAFETY: idx < npairs; pairs are disjoint and in bounds
            // (validate_pairs), so these column slices alias nothing any
            // other claimant touches; conv slot idx is exclusively ours;
            // the adaptive view's version slots and cache entry for this
            // pair are exclusively ours for the same disjointness reason;
            // the pointers outlive this claim (see doc comment above).
            unsafe {
                let &(u, v) = &*job.pairs.add(idx);
                let x = std::slice::from_raw_parts_mut(job.data.add(u * job.rows), job.rows);
                let y = std::slice::from_raw_parts_mut(job.data.add(v * job.rows), job.rows);
                *job.conv.add(idx) = match &job.adaptive {
                    Some(view) => visit_via_view(view, u, v, x, y, job.floor_sq),
                    None => orthogonalize_pair_gated(x, y, job.floor_sq),
                };
            }
            self.completed.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Worker thread body: wait for jobs, drain them, exit on shutdown.
    fn worker_loop(&self) {
        let mut last_seen: u32 = 0;
        loop {
            let (gen, snapshot) = {
                let mut ctl = self.control.lock().unwrap();
                loop {
                    if ctl.shutdown {
                        return;
                    }
                    if let Some(job) = ctl.job.as_ref() {
                        if ctl.gen != last_seen {
                            break (ctl.gen, JobSnapshot::of(job));
                        }
                    }
                    ctl = self.work_cv.wait(ctl).unwrap();
                }
            };
            last_seen = gen;
            self.run_tasks(gen, snapshot);
        }
    }

    fn shutdown(&self) {
        self.control.lock().unwrap().shutdown = true;
        self.work_cv.notify_all();
    }
}

/// Runs `f` with a [`RotationPool`] backed by `workers` total threads
/// (the calling thread counts as one; `workers - 1` are spawned).
///
/// `workers <= 1` spawns nothing: [`RotationPool::execute`] then runs
/// entirely on the caller, matching today's serial behavior. Worker
/// threads are always joined before `with_pool` returns, even if `f`
/// panics.
pub fn with_pool<R>(workers: usize, f: impl FnOnce(&RotationPool) -> R) -> R {
    let pool = RotationPool::new();
    let extra = workers.max(1) - 1;
    if extra == 0 {
        return f(&pool);
    }
    std::thread::scope(|s| {
        for _ in 0..extra {
            s.spawn(|| pool.worker_loop());
        }
        // Shut the workers down when `f` returns *or* panics — otherwise
        // the scope would join forever.
        struct ShutdownGuard<'a>(&'a RotationPool);
        impl Drop for ShutdownGuard<'_> {
            fn drop(&mut self) {
                self.0.shutdown();
            }
        }
        let _guard = ShutdownGuard(&pool);
        f(&pool)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f32> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f32 - 1000.0) / 100.0
        })
    }

    fn layer_pairs(cols: usize) -> Vec<(usize, usize)> {
        (0..cols / 2).map(|i| (2 * i, 2 * i + 1)).collect()
    }

    #[test]
    fn pool_matches_serial_bitwise() {
        for workers in [1, 2, 4, 8] {
            let pairs = layer_pairs(12);
            let mut serial = test_matrix(33, 12, 7);
            let mut pooled = serial.clone();
            let mut conv_s = vec![0.0f32; pairs.len()];
            let mut conv_p = vec![0.0f32; pairs.len()];
            orthogonalize_pairs_serial(&mut serial, &pairs, 0.0, &mut conv_s);
            with_pool(workers, |pool| {
                pool.execute(&mut pooled, &pairs, 0.0, &mut conv_p);
            });
            assert_eq!(serial.as_slice(), pooled.as_slice(), "workers = {workers}");
            assert_eq!(conv_s, conv_p, "workers = {workers}");
        }
    }

    #[test]
    fn adaptive_pool_matches_adaptive_serial_bitwise() {
        for workers in [1, 2, 4, 8] {
            let pairs = layer_pairs(12);
            let mut serial = test_matrix(33, 12, 9);
            let mut pooled = serial.clone();
            let mut state_s = AdaptiveState::new(12);
            let mut state_p = AdaptiveState::new(12);
            let mut conv_s = vec![0.0f32; pairs.len()];
            let mut conv_p = vec![0.0f32; pairs.len()];
            with_pool(workers, |pool| {
                // Several sweeps with a contracting threshold so all three
                // visit outcomes occur (rotate, gate, memo-skip).
                for (sweep, threshold) in [0.0f32, 0.5, 0.05, 0.05].into_iter().enumerate() {
                    state_s.set_threshold(threshold);
                    state_p.set_threshold(threshold);
                    orthogonalize_pairs_serial_adaptive(
                        &mut serial,
                        &pairs,
                        0.0,
                        &mut conv_s,
                        &mut state_s,
                    );
                    pool.execute_adaptive(&mut pooled, &pairs, 0.0, &mut conv_p, &mut state_p);
                    assert_eq!(conv_s, conv_p, "workers={workers} sweep={sweep}");
                }
            });
            assert_eq!(serial.as_slice(), pooled.as_slice(), "workers={workers}");
            assert_eq!(state_s.memo_skips(), state_p.memo_skips());
            assert_eq!(state_s.gated_rotations(), state_p.gated_rotations());
        }
    }

    #[test]
    fn adaptive_pool_with_zero_threshold_matches_exact_execute() {
        let pairs = layer_pairs(8);
        let mut exact = test_matrix(21, 8, 5);
        let mut adaptive = exact.clone();
        let mut state = AdaptiveState::new(8);
        let mut conv_e = vec![0.0f32; pairs.len()];
        let mut conv_a = vec![0.0f32; pairs.len()];
        with_pool(3, |pool| {
            for _ in 0..4 {
                pool.execute(&mut exact, &pairs, 0.0, &mut conv_e);
                pool.execute_adaptive(&mut adaptive, &pairs, 0.0, &mut conv_a, &mut state);
                assert_eq!(conv_e, conv_a);
            }
        });
        assert_eq!(exact.as_slice(), adaptive.as_slice());
        assert_eq!(state.memo_skips(), 0);
    }

    #[test]
    fn pool_is_reusable_across_many_layers() {
        let pairs_a = layer_pairs(8);
        let pairs_b: Vec<_> = (0..4).map(|i| (i, i + 4)).collect();
        let mut serial = test_matrix(20, 8, 3);
        let mut pooled = serial.clone();
        let mut conv = vec![0.0f32; 4];
        with_pool(3, |pool| {
            for sweep in 0..10 {
                let pairs = if sweep % 2 == 0 { &pairs_a } else { &pairs_b };
                pool.execute(&mut pooled, pairs, 0.0, &mut conv);
                orthogonalize_pairs_serial(&mut serial, pairs, 0.0, &mut conv);
            }
        });
        assert_eq!(serial.as_slice(), pooled.as_slice());
    }

    #[test]
    fn empty_layer_is_a_no_op() {
        let mut m = test_matrix(5, 4, 1);
        let before = m.clone();
        with_pool(2, |pool| {
            pool.execute(&mut m, &[], 0.0, &mut []);
        });
        assert_eq!(before.as_slice(), m.as_slice());
    }

    #[test]
    #[should_panic(expected = "share a column")]
    fn aliasing_pairs_are_rejected() {
        let mut m = test_matrix(5, 4, 2);
        let mut conv = [0.0f32; 2];
        with_pool(1, |pool| {
            pool.execute(&mut m, &[(0, 1), (1, 2)], 0.0, &mut conv);
        });
    }

    #[test]
    fn panic_in_body_still_joins_workers() {
        let caught = std::panic::catch_unwind(|| {
            with_pool(4, |_pool| panic!("body panicked"));
        });
        assert!(caught.is_err());
        // Reaching here at all proves the scope joined its workers.
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
