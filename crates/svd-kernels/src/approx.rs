//! Low-rank approximation utilities on top of an SVD.
//!
//! Algorithm 1 (and therefore the accelerator) outputs `U` and `Σ` only.
//! The applications the paper motivates — beamforming, recommender
//! denoising, compression — need the rank-k approximation
//! `A_k = Σᵢ σᵢ·uᵢ·vᵢᵀ`; the right singular vectors are recovered from
//! `vᵢ = Aᵀuᵢ / σᵢ`, which is exact for the nonzero singular values.

use crate::jacobi::SvdResult;
use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::SvdError;

/// The rank-`r` truncation of an SVD: `U_r` (m×r), `Σ_r` (descending),
/// and `V_r` (n×r), plus the accuracy metadata the Eckart–Young theorem
/// attaches to the cut — the retained-energy fraction
/// `Σ_{i≤r} σᵢ² / Σ σᵢ²` and the tail singular value `σ_{r+1}` (the
/// spectral-norm error of the truncation; zero at full rank).
///
/// This is the unit a factor store serves: applying it to a vector
/// computes `y = U_r·Σ_r·V_rᵀ·x` without ever materializing the rank-r
/// matrix, in `O((m + n)·r)` flops instead of `O(m·n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedSvd<T> {
    /// Left singular vectors, one column per retained component (m×r).
    pub u: Matrix<T>,
    /// Retained singular values, sorted descending (length r).
    pub sigma: Vec<T>,
    /// Right singular vectors, one column per retained component (n×r).
    pub v: Matrix<T>,
    /// The first discarded singular value `σ_{r+1}` — the Eckart–Young
    /// spectral-norm error bound. Zero when nothing was discarded.
    pub tail_sigma: T,
    /// Fraction of the squared Frobenius energy the truncation keeps:
    /// `Σ_{i≤r} σᵢ² / Σ σᵢ²` (1.0 for a zero matrix).
    pub retained_energy: f64,
}

impl<T: Real> TruncatedSvd<T> {
    /// Number of retained components.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Row count `m` of the matrix the factors approximate.
    pub fn rows(&self) -> usize {
        self.u.rows()
    }

    /// Column count `n` of the matrix the factors approximate.
    pub fn cols(&self) -> usize {
        self.v.rows()
    }

    /// Approximate resident size of the factors in bytes (the payload a
    /// byte-budgeted store should charge for them).
    pub fn approx_bytes(&self) -> usize {
        let elem = std::mem::size_of::<T>();
        (self.u.rows() * self.u.cols() + self.v.rows() * self.v.cols() + self.sigma.len()) * elem
    }

    /// Applies the full retained rank: `y = U_r·Σ_r·V_rᵀ·x`.
    ///
    /// # Errors
    ///
    /// See [`TruncatedSvd::apply_rank`].
    pub fn apply(&self, x: &[T]) -> Result<Vec<T>, SvdError> {
        self.apply_rank(x, self.rank())
    }

    /// Applies the leading `rank ≤ r` components: `y = U_k·Σ_k·V_kᵀ·x`
    /// over the `rank` largest singular values.
    ///
    /// The evaluation order is fixed — `t = Vᵀx` (per-component dot
    /// products in ascending component order), `s = Σ·t`, then
    /// `y = Σⱼ sⱼ·uⱼ` accumulated component by component — so the result
    /// is bit-identical across calls, stores, and serving replicas.
    ///
    /// # Errors
    ///
    /// * [`SvdError::DimensionMismatch`] — `x.len() != n`.
    /// * [`SvdError::InvalidParameter`] — `rank` is zero or exceeds the
    ///   retained rank.
    pub fn apply_rank(&self, x: &[T], rank: usize) -> Result<Vec<T>, SvdError> {
        if x.len() != self.cols() {
            return Err(SvdError::DimensionMismatch(format!(
                "input has {} elements but the factors expect {}",
                x.len(),
                self.cols()
            )));
        }
        if rank == 0 || rank > self.rank() {
            return Err(SvdError::InvalidParameter(format!(
                "apply rank {rank} outside 1..={}",
                self.rank()
            )));
        }
        let mut y = vec![T::ZERO; self.rows()];
        for j in 0..rank {
            let t: T = self
                .v
                .col(j)
                .iter()
                .zip(x.iter())
                .map(|(&vj, &xi)| vj * xi)
                .sum();
            let s = self.sigma[j] * t;
            if s == T::ZERO {
                continue;
            }
            for (slot, &uj) in y.iter_mut().zip(self.u.col(j).iter()) {
                *slot += s * uj;
            }
        }
        Ok(y)
    }

    /// Materializes the rank-r approximation `A_r = U_r·Σ_r·V_rᵀ`
    /// (diagnostics / tests; serving should use [`TruncatedSvd::apply`]).
    pub fn reconstruct(&self) -> Matrix<T> {
        let (m, n) = (self.rows(), self.cols());
        let mut a = Matrix::zeros(m, n);
        for j in 0..self.rank() {
            let sigma = self.sigma[j];
            if sigma <= T::ZERO {
                continue;
            }
            for c in 0..n {
                let w = sigma * self.v[(c, j)];
                if w == T::ZERO {
                    continue;
                }
                let col = a.col_mut(c);
                for (slot, &ur) in col.iter_mut().zip(self.u.col(j).iter()) {
                    *slot += ur * w;
                }
            }
        }
        a
    }
}

impl<T: Real> SvdResult<T> {
    /// Cuts this factorization to its `rank` largest components,
    /// recovering `V` from `a` when the solver did not accumulate it
    /// (the accelerator never does — see [`SvdResult::recover_v`]).
    ///
    /// Components whose singular value sits at the numerical noise
    /// floor (`σⱼ ≤ 64·ε·σ_max`, the same gate [`SvdResult::recover_v`]
    /// applies) keep their σ but get **zero** `u`/`v` columns: past the
    /// matrix's numerical rank the iterate columns are normalized
    /// round-off, not orthonormal directions, and a downstream
    /// [`lowrank_update`](crate::incremental::lowrank_update) projecting
    /// against them would leak energy through the complement.
    ///
    /// # Errors
    ///
    /// * [`SvdError::InvalidParameter`] — `rank` is zero or exceeds the
    ///   number of singular values.
    /// * [`SvdError::DimensionMismatch`] — from [`SvdResult::recover_v`].
    pub fn truncate(&self, a: &Matrix<T>, rank: usize) -> Result<TruncatedSvd<T>, SvdError> {
        if rank == 0 || rank > self.sigma.len() {
            return Err(SvdError::InvalidParameter(format!(
                "truncation rank {rank} outside 1..={}",
                self.sigma.len()
            )));
        }
        let v_full = match &self.v {
            Some(v) => v.clone(),
            None => self.recover_v(a)?,
        };
        let order = self.descending_order();
        let (m, n) = (self.u.rows(), v_full.rows());
        let sigma_max = order.first().map_or(T::ZERO, |&j| self.sigma[j]);
        let gate = T::from_f64(64.0) * T::EPSILON * sigma_max;
        let mut u = Matrix::zeros(m, rank);
        let mut v = Matrix::zeros(n, rank);
        let mut sigma = Vec::with_capacity(rank);
        for (slot, &j) in order.iter().take(rank).enumerate() {
            if self.sigma[j] > gate {
                u.col_mut(slot).copy_from_slice(self.u.col(j));
                v.col_mut(slot).copy_from_slice(v_full.col(j));
            }
            sigma.push(self.sigma[j]);
        }
        let tail_sigma = order
            .get(rank)
            .map_or(T::ZERO, |&j| self.sigma[j].max(T::ZERO));
        let total: f64 = self.sigma.iter().map(|s| s.to_f64() * s.to_f64()).sum();
        let kept: f64 = sigma.iter().map(|s| s.to_f64() * s.to_f64()).sum();
        let retained_energy = if total > 0.0 { kept / total } else { 1.0 };
        Ok(TruncatedSvd {
            u,
            sigma,
            v,
            tail_sigma,
            retained_energy,
        })
    }
}

impl<T: Real> SvdResult<T> {
    /// Recovers the right singular vectors from the original matrix:
    /// `vⱼ = Aᵀuⱼ / σⱼ`.
    ///
    /// Columns whose singular value sits at the numerical noise floor
    /// (`σⱼ ≤ 64·ε·σ_max`) become zero columns: dividing by a noise-level
    /// σ amplifies round-off into garbage directions whose contributions
    /// would *worsen* any reconstruction built from them.
    ///
    /// Useful when the factorization came from the accelerator, which —
    /// like Algorithm 1 — does not accumulate `V`.
    ///
    /// # Errors
    ///
    /// Returns [`SvdError::DimensionMismatch`] when `a`'s shape does not
    /// match the factors.
    pub fn recover_v(&self, a: &Matrix<T>) -> Result<Matrix<T>, SvdError> {
        if a.rows() != self.u.rows() || a.cols() != self.u.cols() {
            return Err(SvdError::DimensionMismatch(format!(
                "matrix is {}x{} but factors are {}x{}",
                a.rows(),
                a.cols(),
                self.u.rows(),
                self.u.cols()
            )));
        }
        let n = a.cols();
        let sigma_max = self
            .sigma
            .iter()
            .fold(T::ZERO, |acc, &s| if s > acc { s } else { acc });
        let gate = T::from_f64(64.0) * T::EPSILON * sigma_max;
        let mut v = Matrix::zeros(n, n);
        for j in 0..n {
            let sigma = self.sigma[j];
            if sigma <= gate {
                continue;
            }
            let u_j = self.u.col(j);
            for c in 0..n {
                let dot: T = a.col(c).iter().zip(u_j.iter()).map(|(&x, &y)| x * y).sum();
                v[(c, j)] = dot / sigma;
            }
        }
        Ok(v)
    }

    /// Indices of the singular values sorted descending.
    pub fn descending_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.sigma.len()).collect();
        order.sort_by(|&a, &b| {
            self.sigma[b]
                .partial_cmp(&self.sigma[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
    }

    /// The best rank-`k` approximation `A_k = Σᵢ σᵢ·uᵢ·vᵢᵀ` over the `k`
    /// largest singular values (Eckart–Young optimal in Frobenius norm).
    ///
    /// # Example
    ///
    /// ```
    /// use svd_kernels::{hestenes_jacobi, JacobiOptions, Matrix};
    ///
    /// # fn main() -> Result<(), svd_kernels::SvdError> {
    /// let a = Matrix::from_fn(6, 4, |r, c| (r + 1) as f64 * (c + 1) as f64);
    /// let svd = hestenes_jacobi(&a, &JacobiOptions::default())?;
    /// // A is rank one: its rank-1 approximation is exact.
    /// let a1 = svd.low_rank_approximation(&a, 1)?;
    /// assert!(a1.sub(&a)?.frobenius_norm() < 1e-9);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// * [`SvdError::InvalidParameter`] when `k` exceeds the number of
    ///   singular values.
    /// * [`SvdError::DimensionMismatch`] from [`SvdResult::recover_v`].
    pub fn low_rank_approximation(&self, a: &Matrix<T>, k: usize) -> Result<Matrix<T>, SvdError> {
        if k > self.sigma.len() {
            return Err(SvdError::InvalidParameter(format!(
                "rank {k} exceeds the {} singular values",
                self.sigma.len()
            )));
        }
        let v = match &self.v {
            Some(v) => v.clone(),
            None => self.recover_v(a)?,
        };
        let order = self.descending_order();
        let (rows, cols) = (self.u.rows(), v.rows());
        let mut approx = Matrix::zeros(rows, cols);
        for &j in order.iter().take(k) {
            let sigma = self.sigma[j];
            if sigma <= T::ZERO {
                continue;
            }
            let u_j = self.u.col(j);
            for c in 0..cols {
                let w = sigma * v[(c, j)];
                if w == T::ZERO {
                    continue;
                }
                let col = approx.col_mut(c);
                for (slot, &ur) in col.iter_mut().zip(u_j.iter()) {
                    *slot += ur * w;
                }
            }
        }
        Ok(approx)
    }

    /// Numerical rank: singular values above `tol · σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self
            .sigma
            .iter()
            .map(|s| s.to_f64())
            .fold(0.0_f64, f64::max);
        if max == 0.0 {
            return 0;
        }
        self.sigma.iter().filter(|s| s.to_f64() > tol * max).count()
    }

    /// Nuclear norm `Σ σᵢ` (used for compression/energy diagnostics).
    pub fn nuclear_norm(&self) -> f64 {
        self.sigma.iter().map(|s| s.to_f64()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{hestenes_jacobi, JacobiOptions};
    use crate::verify;

    fn sample(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |r, c| {
            ((r * 31 + c * 7 + 3) % 17) as f64 / 4.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        })
    }

    fn svd_without_v(a: &Matrix<f64>) -> SvdResult<f64> {
        hestenes_jacobi(
            a,
            &JacobiOptions {
                compute_v: false,
                precision: 1e-13,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn recovered_v_matches_accumulated_v() {
        let a = sample(10, 6);
        let with_v = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let without_v = svd_without_v(&a);
        let v_acc = with_v.v.as_ref().unwrap();
        let v_rec = without_v.recover_v(&a).unwrap();
        // Columns may differ in order between the two runs; compare via
        // reconstruction instead.
        let err = verify::reconstruction_error(&a, &without_v.u, &without_v.sigma, &v_rec);
        assert!(err < 1e-10, "reconstruction via recovered V: {err}");
        let err_acc = verify::reconstruction_error(&a, &with_v.u, &with_v.sigma, v_acc);
        assert!(err_acc < 1e-10);
    }

    #[test]
    fn recover_v_is_orthogonal() {
        let a = sample(12, 8);
        let svd = svd_without_v(&a);
        let v = svd.recover_v(&a).unwrap();
        assert!(verify::column_orthogonality_error(&v) < 1e-8);
    }

    #[test]
    fn recover_v_shape_mismatch_errors() {
        let a = sample(10, 6);
        let svd = svd_without_v(&a);
        let wrong = sample(8, 6);
        assert!(matches!(
            svd.recover_v(&wrong),
            Err(SvdError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn full_rank_approximation_reconstructs() {
        let a = sample(9, 5);
        let svd = svd_without_v(&a);
        let full = svd.low_rank_approximation(&a, 5).unwrap();
        let err = full.sub(&a).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(err < 1e-10, "full-rank reconstruction error {err}");
    }

    #[test]
    fn truncation_error_is_tail_energy() {
        // Eckart-Young: ||A - A_k||_F^2 = sum of discarded sigma^2.
        let a = sample(10, 6);
        let svd = svd_without_v(&a);
        let order = svd.descending_order();
        for k in [1usize, 3, 5] {
            let ak = svd.low_rank_approximation(&a, k).unwrap();
            let err = ak.sub(&a).unwrap().frobenius_norm();
            let tail: f64 = order[k..]
                .iter()
                .map(|&j| svd.sigma[j] * svd.sigma[j])
                .sum::<f64>()
                .sqrt();
            assert!(
                (err - tail).abs() < 1e-9 * a.frobenius_norm().max(1.0),
                "k={k}: err {err} vs tail {tail}"
            );
        }
    }

    #[test]
    fn rank_detects_planted_rank() {
        let left = sample(12, 3);
        let right = sample(3, 7);
        let a = left.matmul(&right).unwrap();
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert_eq!(svd.rank(1e-9), 3);
    }

    #[test]
    fn oversized_rank_rejected() {
        let a = sample(6, 4);
        let svd = svd_without_v(&a);
        assert!(matches!(
            svd.low_rank_approximation(&a, 5),
            Err(SvdError::InvalidParameter(_))
        ));
    }

    #[test]
    fn nuclear_norm_sums_singular_values() {
        let mut a: Matrix<f64> = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 2.0;
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert!((svd.nuclear_norm() - 5.0).abs() < 1e-10);
    }

    #[test]
    fn noise_floor_sigmas_do_not_pollute_reconstruction() {
        // A rank-2 matrix factorized in low precision: singular values
        // beyond the true rank are round-off noise. Including them in a
        // "higher rank" approximation must not make it worse (this was a
        // real bug: v = A^T u / sigma amplifies noise for tiny sigma).
        let left = sample(12, 2);
        let right = sample(2, 8);
        let a = left.matmul(&right).unwrap();
        let a32: Matrix<f32> = a.cast();
        let svd32 = hestenes_jacobi(
            &a32,
            &JacobiOptions {
                precision: 1e-6,
                compute_v: false,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = a32.frobenius_norm();
        let err_at = |k: usize| {
            let ak = svd32.low_rank_approximation(&a32, k).unwrap();
            ak.sub(&a32).unwrap().frobenius_norm() / norm
        };
        let e2 = err_at(2);
        let e8 = err_at(8);
        assert!(e2 < 1e-5, "rank-2 error {e2}");
        assert!(
            e8 <= e2 * 1.01 + 1e-6,
            "rank-8 error {e8} worse than rank-2 {e2}"
        );
    }

    #[test]
    fn zero_rank_of_zero_matrix() {
        let a: Matrix<f64> = Matrix::zeros(4, 4);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert_eq!(svd.rank(1e-12), 0);
        let ak = svd.low_rank_approximation(&a, 2).unwrap();
        assert_eq!(ak.frobenius_norm(), 0.0);
    }

    #[test]
    fn truncate_reconstruct_matches_low_rank_approximation() {
        let a = sample(10, 6);
        let svd = svd_without_v(&a);
        for k in [1usize, 3, 6] {
            let trunc = svd.truncate(&a, k).unwrap();
            assert_eq!(trunc.rank(), k);
            assert_eq!(trunc.rows(), 10);
            assert_eq!(trunc.cols(), 6);
            let direct = svd.low_rank_approximation(&a, k).unwrap();
            let err = trunc.reconstruct().sub(&direct).unwrap().frobenius_norm();
            assert!(err < 1e-10 * a.frobenius_norm(), "k={k}: {err}");
        }
    }

    #[test]
    fn truncate_sigma_is_descending_with_tail_metadata() {
        let a = sample(12, 8);
        let svd = svd_without_v(&a);
        let trunc = svd.truncate(&a, 3).unwrap();
        assert!(trunc.sigma.windows(2).all(|w| w[0] >= w[1]));
        let order = svd.descending_order();
        assert!((trunc.tail_sigma - svd.sigma[order[3]]).abs() < 1e-12);
        assert!(trunc.retained_energy > 0.0 && trunc.retained_energy < 1.0);
        let full = svd.truncate(&a, 8).unwrap();
        assert_eq!(full.tail_sigma, 0.0);
        assert!((full.retained_energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn truncate_past_numerical_rank_zeroes_dead_columns() {
        // An exactly rank-3 matrix truncated to rank 6: the three dead
        // components keep their (noise-level) σ but their u/v columns
        // must be exactly zero, so the cached factors stay a valid
        // partial isometry for downstream Brand updates.
        let g = sample(12, 3);
        let h = sample(8, 3);
        let a = g.matmul(&h.transpose()).unwrap();
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let t = svd.truncate(&a, 6).unwrap();
        assert_eq!(t.rank(), 6);
        for j in 3..6 {
            assert!(t.u.col(j).iter().all(|&x| x == 0.0), "u col {j} not zero");
            assert!(t.v.col(j).iter().all(|&x| x == 0.0), "v col {j} not zero");
        }
        // Live columns stay orthonormal and reconstruct A.
        let recon_err = a.sub(&t.reconstruct()).unwrap().frobenius_norm() / a.frobenius_norm();
        assert!(recon_err < 1e-10, "reconstruction error {recon_err}");
    }

    #[test]
    fn apply_matches_materialized_matvec() {
        let a = sample(9, 5);
        let svd = svd_without_v(&a);
        let trunc = svd.truncate(&a, 4).unwrap();
        let x: Vec<f64> = (0..5).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let y = trunc.apply(&x).unwrap();
        let ak = trunc.reconstruct();
        for (r, &yr) in y.iter().enumerate() {
            let direct: f64 = (0..5).map(|c| ak[(r, c)] * x[c]).sum();
            assert!((yr - direct).abs() < 1e-9, "row {r}: {yr} vs {direct}");
        }
    }

    #[test]
    fn apply_rank_prefix_matches_smaller_truncation() {
        // Applying rank k through a rank-r store entry must equal the
        // rank-k truncation applied at full rank: prefix semantics.
        let a = sample(10, 6);
        let svd = svd_without_v(&a);
        let big = svd.truncate(&a, 5).unwrap();
        let small = svd.truncate(&a, 2).unwrap();
        let x: Vec<f64> = (0..6).map(|i| 1.0 - (i as f64) * 0.3).collect();
        let via_big = big.apply_rank(&x, 2).unwrap();
        let via_small = small.apply(&x).unwrap();
        assert_eq!(via_big, via_small);
    }

    #[test]
    fn apply_is_deterministic_in_f32() {
        let a = sample(16, 8);
        let a32: Matrix<f32> = a.cast();
        let svd = hestenes_jacobi(
            &a32,
            &JacobiOptions {
                precision: 1e-6,
                compute_v: false,
                ..Default::default()
            },
        )
        .unwrap();
        let trunc = svd.truncate(&a32, 4).unwrap();
        let x: Vec<f32> = (0..8).map(|i| (i as f32) * 0.25 - 1.0).collect();
        let first = trunc.apply(&x).unwrap();
        for _ in 0..4 {
            assert_eq!(trunc.apply(&x).unwrap(), first);
        }
    }

    #[test]
    fn truncate_and_apply_reject_bad_arguments() {
        let a = sample(8, 4);
        let svd = svd_without_v(&a);
        assert!(matches!(
            svd.truncate(&a, 0),
            Err(SvdError::InvalidParameter(_))
        ));
        assert!(matches!(
            svd.truncate(&a, 5),
            Err(SvdError::InvalidParameter(_))
        ));
        let trunc = svd.truncate(&a, 2).unwrap();
        assert!(matches!(
            trunc.apply(&[1.0; 3]),
            Err(SvdError::DimensionMismatch(_))
        ));
        assert!(matches!(
            trunc.apply_rank(&[1.0; 4], 3),
            Err(SvdError::InvalidParameter(_))
        ));
        assert!(matches!(
            trunc.apply_rank(&[1.0; 4], 0),
            Err(SvdError::InvalidParameter(_))
        ));
    }

    #[test]
    fn approx_bytes_counts_factor_payload() {
        let a = sample(10, 6);
        let svd = svd_without_v(&a);
        let trunc = svd.truncate(&a, 3).unwrap();
        // f64: (10*3 + 6*3 + 3) * 8 bytes.
        assert_eq!(trunc.approx_bytes(), (30 + 18 + 3) * 8);
    }
}
