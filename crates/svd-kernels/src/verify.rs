//! Golden verification helpers: reconstruction error, orthogonality,
//! and singular-value comparison.

use crate::matrix::Matrix;
use crate::scalar::Real;

/// Relative reconstruction error `‖A − U·diag(σ)·Vᵀ‖_F / ‖A‖_F`.
///
/// Returns the absolute error when `‖A‖_F == 0`.
///
/// # Panics
///
/// Panics if the factor shapes are inconsistent with `A`.
pub fn reconstruction_error<T: Real>(
    a: &Matrix<T>,
    u: &Matrix<T>,
    sigma: &[T],
    v: &Matrix<T>,
) -> f64 {
    assert_eq!(u.rows(), a.rows(), "u row count mismatch");
    assert_eq!(v.rows(), a.cols(), "v row count mismatch");
    assert_eq!(u.cols(), sigma.len(), "sigma length mismatch");

    // Compute U·diag(σ)·Vᵀ column by column: (UΣVᵀ)[:,j] = Σ_k u_k σ_k V[j,k]
    let mut err_sq = 0.0_f64;
    for j in 0..a.cols() {
        let mut recon = vec![0.0_f64; a.rows()];
        for k in 0..u.cols() {
            let w = sigma[k].to_f64() * v[(j, k)].to_f64();
            if w == 0.0 {
                continue;
            }
            for (r, &ukr) in u.col(k).iter().enumerate() {
                recon[r] += ukr.to_f64() * w;
            }
        }
        for (r, &rv) in recon.iter().enumerate() {
            let d = a[(r, j)].to_f64() - rv;
            err_sq += d * d;
        }
    }
    let norm_a = a.frobenius_norm();
    let err = err_sq.sqrt();
    if norm_a == 0.0 {
        err
    } else {
        err / norm_a
    }
}

/// Maximum deviation of `MᵀM` from the identity over column pairs with
/// nonzero norm: measures how orthonormal the columns of `M` are.
///
/// # Example
///
/// ```
/// use svd_kernels::{verify, Matrix};
///
/// let identity: Matrix<f64> = Matrix::identity(4);
/// assert_eq!(verify::column_orthogonality_error(&identity), 0.0);
/// ```
///
/// Zero columns (from zero singular values) are skipped, matching the
/// convention of [`crate::jacobi::normalize`].
pub fn column_orthogonality_error<T: Real>(m: &Matrix<T>) -> f64 {
    let n = m.cols();
    let mut worst = 0.0_f64;
    for i in 0..n {
        let ci = m.col(i);
        let norm_i: f64 = ci.iter().map(|x| x.to_f64() * x.to_f64()).sum();
        if norm_i == 0.0 {
            continue;
        }
        worst = worst.max((norm_i - 1.0).abs());
        for j in i + 1..n {
            let cj = m.col(j);
            let norm_j: f64 = cj.iter().map(|x| x.to_f64() * x.to_f64()).sum();
            if norm_j == 0.0 {
                continue;
            }
            let dot: f64 = ci
                .iter()
                .zip(cj.iter())
                .map(|(&a, &b)| a.to_f64() * b.to_f64())
                .sum();
            worst = worst.max(dot.abs());
        }
    }
    worst
}

/// Maximum relative difference between two descending-sorted singular-value
/// lists, normalized by the largest singular value.
///
/// # Panics
///
/// Panics if the lists have different lengths.
pub fn singular_value_error<T: Real, U: Real>(reference: &[T], measured: &[U]) -> f64 {
    assert_eq!(
        reference.len(),
        measured.len(),
        "singular value count mismatch"
    );
    let mut r: Vec<f64> = reference.iter().map(|v| v.to_f64()).collect();
    let mut m: Vec<f64> = measured.iter().map(|v| v.to_f64()).collect();
    r.sort_by(|a, b| b.total_cmp(a));
    m.sort_by(|a, b| b.total_cmp(a));
    let scale = r.first().copied().unwrap_or(0.0).max(1e-300);
    r.iter()
        .zip(m.iter())
        .map(|(a, b)| (a - b).abs() / scale)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{hestenes_jacobi, JacobiOptions};

    #[test]
    fn reconstruction_of_exact_factorization_is_zero() {
        // A = I: U = V = I, sigma = 1.
        let a: Matrix<f64> = Matrix::identity(3);
        let u = Matrix::identity(3);
        let v = Matrix::identity(3);
        let sigma = vec![1.0; 3];
        assert!(reconstruction_error(&a, &u, &sigma, &v) < 1e-15);
    }

    #[test]
    fn reconstruction_detects_wrong_sigma() {
        let a: Matrix<f64> = Matrix::identity(2);
        let u = Matrix::identity(2);
        let v = Matrix::identity(2);
        let err = reconstruction_error(&a, &u, &[2.0, 1.0], &v);
        assert!(err > 0.4);
    }

    #[test]
    fn orthogonality_error_of_identity_is_zero() {
        let i: Matrix<f64> = Matrix::identity(4);
        assert_eq!(column_orthogonality_error(&i), 0.0);
    }

    #[test]
    fn orthogonality_error_detects_correlation() {
        let mut m: Matrix<f64> = Matrix::identity(2);
        m[(0, 1)] = 0.5; // second column no longer orthogonal to first
        assert!(column_orthogonality_error(&m) >= 0.25);
    }

    #[test]
    fn orthogonality_skips_zero_columns() {
        let mut m: Matrix<f64> = Matrix::zeros(3, 2);
        m[(0, 0)] = 1.0;
        assert_eq!(column_orthogonality_error(&m), 0.0);
    }

    #[test]
    fn singular_value_error_is_order_insensitive() {
        let e = singular_value_error(&[3.0, 1.0, 2.0], &[1.0_f32, 2.0, 3.0]);
        assert!(e < 1e-6);
    }

    #[test]
    fn end_to_end_verification_of_reference_svd() {
        let a = Matrix::from_fn(7, 5, |r, c| ((r * 13 + c * 7) % 11) as f64 - 5.0);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let v = svd.v.as_ref().unwrap();
        assert!(reconstruction_error(&a, &svd.u, &svd.sigma, v) < 1e-10);
        assert!(column_orthogonality_error(v) < 1e-10);
    }
}
