//! Convergence-adaptive sweep state: threshold-Jacobi gating plus
//! dirty-column pair skipping.
//!
//! Classic cyclic Jacobi visits every one of the `n·(n−1)/2` column pairs
//! in every sweep, even in late sweeps where almost all pairs already
//! satisfy the Eq. (6) criterion and the rotation is numerically a no-op.
//! Two classic refinements cut that waste without giving up convergence:
//!
//! 1. **Threshold gating** (de Rijk / Demmel–Veselić): a per-sweep
//!    threshold gates each rotation — after the fused α/β/γ products, a
//!    pair whose measure `|γ|/√(αβ)` falls below the threshold skips the
//!    rotation and the O(n) apply traversal. The schedule
//!    ([`sweep_threshold`]) contracts with the measured convergence and is
//!    floored at the target precision, so a gated rotation is always one
//!    the final accuracy could have absorbed anyway.
//! 2. **Dirty-column pair skipping**: every column carries a version
//!    counter bumped when a rotation touches it, and every pair caches the
//!    measure of its last visit together with the column versions it was
//!    computed from ([`PairVisit`]). If neither column changed since a
//!    visit that was gated, the inner products would be *bitwise
//!    identical* — so the cached measure is reused and even the O(n) dot
//!    products are skipped. This is exact memoization, not an
//!    approximation: only the threshold gate itself perturbs the
//!    iteration.
//!
//! The memoization invariant in one line: a [`PairVisit`] entry stores the
//! *pre-rotation* column versions, and an applied rotation bumps both
//! columns' versions afterwards — so an entry written by a rotating visit
//! can never match and a stale measure can never be replayed.
//!
//! With `threshold == 0` the state is inert (the measure is non-negative,
//! so neither the gate nor the memo can ever fire) and the sweep is
//! bit-identical to the exact engine. All bookkeeping lives in two flat
//! vectors allocated up front, preserving the zero-alloc steady state of
//! the orthogonalization pipeline.

use crate::matrix::Matrix;
use crate::rotation::orthogonalize_pair_thresholded;
use crate::scalar::Real;
use std::sync::atomic::{AtomicU64, Ordering};

/// Convergence level at which the threshold schedule trusts the
/// quadratic tail of one-sided Jacobi (see [`sweep_threshold`]).
///
/// Above this level the iteration is still in its chaotic early phase:
/// gating *any* rotation there defers work whose off-diagonal mass
/// compounds and measurably delays convergence (deferred pairs interact
/// with every rotation sharing a column, so even sub-dominant skips
/// stretch the pre-quadratic phase by whole sweeps). Below it the sweep
/// maximum contracts at least quadratically, and a pair gated at `prev²`
/// sits exactly where the exact sweep would have left it anyway.
pub const QUADRATIC_ONSET: f64 = 1e-2;

/// The per-sweep rotation threshold of the adaptive engine.
///
/// * First sweep (`prev_max_conv == None`) and any sweep while the
///   previous maximum is above [`QUADRATIC_ONSET`]: the target
///   `precision`. Only pairs that already satisfy the final Eq. (6)
///   criterion are gated — skipping them perturbs the factorization at
///   the level the accuracy budget absorbs by definition, so the early
///   trajectory is preserved sweep for sweep.
/// * Once the previous maximum falls below [`QUADRATIC_ONSET`]:
///   `max(precision, prev²)`. In the quadratic regime the exact sweep
///   would contract every measure to ~`prev²` anyway; gating below that
///   level leaves the next sweep's maximum — which gated pairs still
///   feed, since the measure is reported exactly — on the natural
///   trajectory. The threshold stays below `prev`, so the dominant pair
///   always rotates and the iteration cannot livelock.
pub fn sweep_threshold(prev_max_conv: Option<f64>, precision: f64) -> f64 {
    match prev_max_conv {
        Some(prev) if prev < QUADRATIC_ONSET => (prev * prev).max(precision),
        _ => precision,
    }
}

/// `true` when a call to
/// [`orthogonalize_pair_thresholded`] with this measure and threshold
/// applied a rotation: the measure is positive (not the identity) and at
/// or above the gate.
#[inline]
pub fn did_rotate<T: Real>(conv: T, threshold: T) -> bool {
    conv > T::ZERO && conv >= threshold
}

/// Canonical index of the unordered pair `{u, v}` in a flat triangular
/// array: with `i < j`, `pair_id = j·(j−1)/2 + i`, covering
/// `0..cols·(cols−1)/2`.
#[inline]
pub fn pair_id(u: usize, v: usize) -> usize {
    let (i, j) = if u < v { (u, v) } else { (v, u) };
    j * (j - 1) / 2 + i
}

/// One pair's last-visit record: the Eq. (6) measure it computed and the
/// versions both columns had *before* any rotation of that visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairVisit<T> {
    /// Measure `|γ|/√(αβ)` computed at the last visit.
    pub conv: T,
    /// Version of the lower-indexed column when `conv` was computed.
    pub ver_lo: u32,
    /// Version of the higher-indexed column when `conv` was computed.
    pub ver_hi: u32,
}

/// Raw-pointer view of an [`AdaptiveState`], published to the rotation
/// worker pool. Only `svd_kernels::parallel` constructs and consumes it;
/// the layer-disjointness precondition of the pool makes the per-pair
/// writes race-free.
#[derive(Clone, Copy)]
pub(crate) struct AdaptiveView<T> {
    pub threshold: T,
    pub col_version: *mut u32,
    pub cache: *mut PairVisit<T>,
    pub memo_skips: *const AtomicU64,
    pub gated_rotations: *const AtomicU64,
}

/// Dirty-column versions plus the per-pair last-visit cache for one
/// matrix, with the current sweep's threshold.
///
/// Allocated once up front (`cols` version counters plus
/// `cols·(cols−1)/2` cache entries); every visit afterwards is
/// allocation-free.
#[derive(Debug)]
pub struct AdaptiveState<T> {
    threshold: T,
    col_version: Vec<u32>,
    cache: Vec<PairVisit<T>>,
    memo_skips: AtomicU64,
    gated_rotations: AtomicU64,
}

impl<T: Real> AdaptiveState<T> {
    /// Fresh state for a matrix with `cols` columns. Column versions start
    /// at 1 and cache entries at version 0, so no pair can memo-skip
    /// before its first real visit.
    pub fn new(cols: usize) -> Self {
        AdaptiveState {
            threshold: T::ZERO,
            col_version: vec![1; cols],
            cache: vec![
                PairVisit {
                    conv: T::ZERO,
                    ver_lo: 0,
                    ver_hi: 0,
                };
                cols * cols.saturating_sub(1) / 2
            ],
            memo_skips: AtomicU64::new(0),
            gated_rotations: AtomicU64::new(0),
        }
    }

    /// Sets the rotation threshold for the next sweep (see
    /// [`sweep_threshold`]). `0` makes the state inert (exact sweeps).
    pub fn set_threshold(&mut self, threshold: T) {
        self.threshold = threshold;
    }

    /// The current rotation threshold.
    pub fn threshold(&self) -> T {
        self.threshold
    }

    /// Number of visits answered from the pair cache (both columns clean
    /// since a gated visit): even the dot products were skipped.
    pub fn memo_skips(&self) -> u64 {
        self.memo_skips.load(Ordering::Relaxed)
    }

    /// Number of visits that ran the products but gated the rotation
    /// (measure below the threshold, identity pairs included).
    pub fn gated_rotations(&self) -> u64 {
        self.gated_rotations.load(Ordering::Relaxed)
    }

    pub(crate) fn view(&mut self) -> AdaptiveView<T> {
        AdaptiveView {
            threshold: self.threshold,
            col_version: self.col_version.as_mut_ptr(),
            cache: self.cache.as_mut_ptr(),
            memo_skips: &self.memo_skips,
            gated_rotations: &self.gated_rotations,
        }
    }

    /// Visits the column pair `(u, v)` of `m`: memo-skip when both columns
    /// are clean since a gated visit, otherwise run the threshold-gated
    /// kernel and update the dirty-column/cache state. Returns the exact
    /// Eq. (6) measure of the pair in both cases.
    pub fn visit(&mut self, m: &mut Matrix<T>, u: usize, v: usize, floor_sq: T) -> T {
        let view = self.view();
        let (x, y) = m.col_pair_mut(u, v);
        // SAFETY: `&mut self` and `&mut m` make this call exclusive — no
        // concurrent visitor exists.
        unsafe { visit_via_view(&view, u, v, x, y, floor_sq) }
    }
}

/// The per-pair visit against a raw [`AdaptiveView`].
///
/// # Safety
///
/// The caller must guarantee that no other thread concurrently visits a
/// pair sharing column `u` or `v` (the pool's layer-disjointness
/// precondition), and that `x`/`y` are the columns the view's matrix
/// indexes `u`/`v` refer to.
pub(crate) unsafe fn visit_via_view<T: Real>(
    view: &AdaptiveView<T>,
    u: usize,
    v: usize,
    x: &mut [T],
    y: &mut [T],
    floor_sq: T,
) -> T {
    let (lo, hi) = if u < v { (u, v) } else { (v, u) };
    let pid = pair_id(lo, hi);
    let ver_lo = *view.col_version.add(lo);
    let ver_hi = *view.col_version.add(hi);
    let entry = *view.cache.add(pid);
    if entry.ver_lo == ver_lo && entry.ver_hi == ver_hi && entry.conv < view.threshold {
        // Both columns untouched since a gated visit: the products would
        // be bitwise identical, so the cached measure stands in exactly.
        (*view.memo_skips).fetch_add(1, Ordering::Relaxed);
        return entry.conv;
    }
    let conv = orthogonalize_pair_thresholded(x, y, floor_sq, view.threshold);
    // Record the *pre-rotation* versions: if the rotation fired, the bumps
    // below immediately invalidate this entry, so a stale measure can
    // never be replayed.
    *view.cache.add(pid) = PairVisit {
        conv,
        ver_lo,
        ver_hi,
    };
    if did_rotate(conv, view.threshold) {
        *view.col_version.add(lo) = ver_lo.wrapping_add(1);
        *view.col_version.add(hi) = ver_hi.wrapping_add(1);
    } else {
        (*view.gated_rotations).fetch_add(1, Ordering::Relaxed);
    }
    conv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::orthogonalize_pair_gated;

    fn test_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state % 2000) as f64 - 1000.0) / 100.0
        })
    }

    #[test]
    fn pair_id_is_a_bijection_over_the_triangle() {
        let cols = 9;
        let mut seen = vec![false; cols * (cols - 1) / 2];
        for j in 1..cols {
            for i in 0..j {
                let id = pair_id(i, j);
                assert_eq!(id, pair_id(j, i), "order-independent");
                assert!(!seen[id], "duplicate id {id} for ({i},{j})");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn schedule_starts_at_precision_and_contracts() {
        let precision = 1e-6;
        assert_eq!(sweep_threshold(None, precision), precision);
        // Pre-quadratic phase: the gate stays pinned at precision so no
        // trajectory-relevant rotation is ever deferred.
        assert_eq!(sweep_threshold(Some(0.5), precision), precision);
        assert_eq!(sweep_threshold(Some(QUADRATIC_ONSET), precision), precision);
        // Quadratic tail: the gate tracks the natural contraction rate.
        let t = sweep_threshold(Some(1e-3), precision);
        assert_eq!(t, 1e-6);
        assert!(t < 1e-3, "dominant pair stays eligible");
        assert_eq!(
            sweep_threshold(Some(2e-4), precision),
            4e-8_f64.max(precision)
        );
        // Floored at precision once convergence gets close.
        assert_eq!(sweep_threshold(Some(2e-6), precision), precision);
    }

    #[test]
    fn zero_threshold_state_is_inert_and_bit_identical() {
        let mut exact = test_matrix(12, 6, 3);
        let mut adaptive = exact.clone();
        let mut state = AdaptiveState::new(6);
        state.set_threshold(0.0);
        for _ in 0..3 {
            for j in 1..6 {
                for i in 0..j {
                    let (x, y) = exact.col_pair_mut(i, j);
                    let c1 = orthogonalize_pair_gated(x, y, 0.0);
                    let c2 = state.visit(&mut adaptive, i, j, 0.0);
                    assert_eq!(c1, c2);
                }
            }
        }
        assert_eq!(exact.as_slice(), adaptive.as_slice());
        assert_eq!(state.memo_skips(), 0, "nothing can memo-skip at 0");
    }

    #[test]
    fn clean_gated_pair_memo_skips_and_reports_cached_measure() {
        let mut m = test_matrix(10, 4, 7);
        let mut state = AdaptiveState::new(4);
        // Huge threshold: every visit is gated, nothing rotates, so the
        // second full cycle must be answered entirely from the cache.
        state.set_threshold(1e9);
        let mut first = Vec::new();
        for j in 1..4 {
            for i in 0..j {
                first.push(state.visit(&mut m, i, j, 0.0));
            }
        }
        assert_eq!(state.memo_skips(), 0);
        let before = m.as_slice().to_vec();
        let mut second = Vec::new();
        for j in 1..4 {
            for i in 0..j {
                second.push(state.visit(&mut m, i, j, 0.0));
            }
        }
        assert_eq!(first, second, "cached measures are exact");
        assert_eq!(state.memo_skips(), 6);
        assert_eq!(m.as_slice(), &before[..]);
    }

    #[test]
    fn rotation_dirties_both_columns() {
        let mut m = test_matrix(10, 4, 11);
        let mut state = AdaptiveState::new(4);
        // Small threshold: the random pair (0,1) rotates.
        state.set_threshold(1e-12);
        let skips_before = state.memo_skips();
        state.visit(&mut m, 0, 1, 0.0);
        // Both columns now dirty: revisiting (0,1) — and any pair touching
        // column 0 or 1 — must recompute, not memo-skip.
        state.visit(&mut m, 0, 1, 0.0);
        state.visit(&mut m, 1, 2, 0.0);
        assert_eq!(state.memo_skips(), skips_before);
    }

    #[test]
    fn recompute_when_threshold_drops_below_cached_measure() {
        let mut m = test_matrix(10, 4, 5);
        let mut state = AdaptiveState::new(4);
        state.set_threshold(1e9);
        let conv = state.visit(&mut m, 0, 1, 0.0); // gated, cached
        assert!(conv > 0.0);
        // Tighten the threshold below the cached measure: the pair is no
        // longer converged for this sweep and must rotate.
        state.set_threshold(conv / 2.0);
        let skips = state.memo_skips();
        let conv2 = state.visit(&mut m, 0, 1, 0.0);
        assert_eq!(conv, conv2, "clean columns reproduce the measure");
        assert_eq!(state.memo_skips(), skips, "not a memo skip");
        // The rotation fired, so the pair is now (nearly) orthogonal.
        let conv3 = state.visit(&mut m, 0, 1, 0.0);
        assert!(conv3 < conv2);
    }
}
