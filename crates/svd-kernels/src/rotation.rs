//! Jacobi plane rotations (Eq. 3–5 of the paper).
//!
//! The one-sided Hestenes–Jacobi method orthogonalizes a pair of columns
//! `(aᵢ, aⱼ)` by post-multiplying with a 2×2 rotation
//!
//! ```text
//! [bᵢ, bⱼ] = [aᵢ, aⱼ] · [ c  -s ]
//!                        [ s   c ]
//! ```
//!
//! chosen such that `bᵢᵀ·bⱼ = 0`. The rotation is computed from the three
//! inner products `α = aᵢᵀaᵢ`, `β = aⱼᵀaⱼ`, `γ = aᵢᵀaⱼ` — exactly the
//! quantities the orth-AIE kernel computes on hardware.
//!
//! The inner products are accumulated in [`VECTOR_LANES`]-wide chunks with
//! one partial accumulator per lane, mirroring the AIE vector unit's
//! 8-lane fp32 MACs, and reduced in a fixed tree order so results are
//! deterministic run to run. For `f32` the accumulation dispatches to the
//! bit-identical AVX kernel in [`crate::simd`] when the CPU supports it.
//! [`column_products_scalar`] keeps the strict sequential accumulation as
//! a reference.

use crate::scalar::Real;
use serde::{Deserialize, Serialize};

/// Accumulator lanes of the modeled AIE vector unit (8 × fp32 per MAC).
pub const VECTOR_LANES: usize = 8;

/// A computed plane rotation `(c, s)` together with the convergence measure
/// of the column pair it was derived from.
///
/// # Example
///
/// ```
/// use svd_kernels::rotation::{compute_rotation, apply_rotation};
///
/// let mut x = vec![3.0_f64, 0.0];
/// let mut y = vec![1.0_f64, 1.0];
/// let rot = compute_rotation(
///     x.iter().map(|v| v * v).sum(),
///     y.iter().map(|v| v * v).sum(),
///     x.iter().zip(&y).map(|(a, b)| a * b).sum(),
/// );
/// apply_rotation(&mut x, &mut y, rot);
/// let dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
/// assert!(dot.abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JacobiRotation<T> {
    /// Cosine component `c = 1 / sqrt(1 + t²)`.
    pub c: T,
    /// Sine component `s = t·c` with the sign convention of Eq. (4).
    pub s: T,
    /// Convergence measure `|γ| / sqrt(α·β)` of Eq. (6) *before* rotation.
    pub convergence: T,
    /// `true` when the pair was already orthogonal (within machine noise)
    /// and no rotation needs to be applied.
    pub identity: bool,
}

impl<T: Real> JacobiRotation<T> {
    /// The identity rotation (applied to an already-orthogonal pair).
    pub fn identity() -> Self {
        JacobiRotation {
            c: T::ONE,
            s: T::ZERO,
            convergence: T::ZERO,
            identity: true,
        }
    }
}

/// Computes the Jacobi rotation for a column pair from its inner products.
///
/// `alpha = aᵢᵀaᵢ`, `beta = aⱼᵀaⱼ`, `gamma = aᵢᵀaⱼ` (Eq. 4–5):
///
/// ```text
/// τ = (β − α) / (2γ),   t = sign(τ) / (|τ| + sqrt(1 + τ²)),
/// c = 1 / sqrt(1 + t²), s = t·c
/// ```
///
/// When `gamma` is zero (columns already orthogonal) or either norm is zero
/// (degenerate column), the identity rotation is returned.
pub fn compute_rotation<T: Real>(alpha: T, beta: T, gamma: T) -> JacobiRotation<T> {
    let norm_prod = alpha * beta;
    if gamma == T::ZERO || norm_prod == T::ZERO {
        return JacobiRotation::identity();
    }
    let convergence = gamma.abs() / norm_prod.sqrt();

    // Note on signs: the paper (Eq. 4-5) defines τ with |γ| and folds
    // sign(γ) into s. For the rotation convention of Eq. (3)
    // (B = [aᵢ,aⱼ]·[[c,−s],[s,c]]), the orthogonality condition
    // cs(β−α) + (c²−s²)γ = 0 has the small-magnitude root
    // t = sign(τ)/(|τ| + sqrt(1+τ²)) with τ = (α−β)/(2γ), which is the
    // algebraically equivalent form used here.
    //
    // The τ → t → (c, s) chain runs in f64 and rounds once at the end.
    // In f32 the five chained roundings leave a correlated bias in
    // c² + s² − 1 of order ε/8 per rotation; over the ~n·sweeps
    // applications a column sees during a full SVD the bias compounds
    // into an O(n·sweeps·ε) drift of the column norm (≈ 8e-5 relative at
    // n = 512 — well above the 1e-5 singular-value gate). Rounding the
    // f64 coefficients once leaves only an unbiased ±ε/2 cast error, so
    // the drift reverts to a random walk (observed ≈ 3e-6 at n = 512).
    // For T = f64 the conversions are the identity and nothing changes.
    let tau = (alpha.to_f64() - beta.to_f64()) / (2.0 * gamma.to_f64());
    let sign = if tau < 0.0 { -1.0 } else { 1.0 };
    let t = sign / (tau.abs() + (1.0 + tau * tau).sqrt());
    let c64 = 1.0 / (1.0 + t * t).sqrt();
    let c = T::from_f64(c64);
    let s = T::from_f64(t * c64);
    JacobiRotation {
        c,
        s,
        convergence,
        identity: false,
    }
}

/// Applies the rotation in place to a column pair:
/// `x ← c·x + s·y`, `y ← −s·x + c·y` (the two columns of Eq. 3).
///
/// The identity rotation leaves the data untouched (and costs no FLOPs on
/// the accelerator).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn apply_rotation<T: Real>(x: &mut [T], y: &mut [T], rot: JacobiRotation<T>) {
    assert_eq!(x.len(), y.len(), "column pair length mismatch");
    if rot.identity {
        return;
    }
    let (c, s) = (rot.c, rot.s);
    if T::simd_apply_rotation(x, y, c, s) {
        return;
    }
    apply_rotation_portable(x, y, c, s);
}

/// The portable apply traversal `x ← c·x + s·y`, `y ← c·y − s·x`, shared
/// by [`apply_rotation`]'s non-SIMD path and the scalar baseline kernel.
///
/// The update is element-independent (no accumulation), so the plain zip
/// loop auto-vectorizes onto packed multiply-adds and is bit-identical to
/// any chunked rewrite of it; only the inner-product reductions need
/// explicit [`VECTOR_LANES`] chunking.
#[inline]
pub fn apply_rotation_portable<T: Real>(x: &mut [T], y: &mut [T], c: T, s: T) {
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        let xv = *xi;
        let yv = *yi;
        *xi = c * xv + s * yv;
        *yi = c * yv - s * xv;
    }
}

/// Reduces the lane accumulators in a fixed tree order (pairwise, then
/// pairwise again), matching the AIE shift-rotate reduction and keeping
/// the summation order independent of slice length.
#[inline]
pub(crate) fn reduce_lanes<T: Real>(l: [T; VECTOR_LANES]) -> T {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Inner products `(α, β, γ)` of a column pair, the input to
/// [`compute_rotation`].
///
/// Accumulates in [`VECTOR_LANES`]-wide chunks with one partial sum per
/// lane (the vectorized form the orth-AIE executes), reduced by
/// [`reduce_lanes`]; the trailing `len % VECTOR_LANES` elements are added
/// sequentially afterwards. The result is deterministic but differs from
/// [`column_products_scalar`] by the usual floating-point reassociation
/// error.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn column_products<T: Real>(x: &[T], y: &[T]) -> (T, T, T) {
    assert_eq!(x.len(), y.len(), "column pair length mismatch");
    if let Some(products) = T::simd_column_products(x, y) {
        return products;
    }
    let split = x.len() - x.len() % VECTOR_LANES;
    let (xv, xt) = x.split_at(split);
    let (yv, yt) = y.split_at(split);
    let mut a = [T::ZERO; VECTOR_LANES];
    let mut b = [T::ZERO; VECTOR_LANES];
    let mut g = [T::ZERO; VECTOR_LANES];
    for (xc, yc) in xv
        .chunks_exact(VECTOR_LANES)
        .zip(yv.chunks_exact(VECTOR_LANES))
    {
        for l in 0..VECTOR_LANES {
            let xi = xc[l];
            let yi = yc[l];
            a[l] += xi * xi;
            b[l] += yi * yi;
            g[l] += xi * yi;
        }
    }
    let mut alpha = reduce_lanes(a);
    let mut beta = reduce_lanes(b);
    let mut gamma = reduce_lanes(g);
    for (&xi, &yi) in xt.iter().zip(yt.iter()) {
        alpha += xi * xi;
        beta += yi * yi;
        gamma += xi * yi;
    }
    (alpha, beta, gamma)
}

/// [`column_products`] with strict sequential accumulation (one running
/// sum per product). This is the pre-vectorization reference used by the
/// hot-path benchmarks and by tests bounding the reassociation error of
/// the chunked kernel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn column_products_scalar<T: Real>(x: &[T], y: &[T]) -> (T, T, T) {
    assert_eq!(x.len(), y.len(), "column pair length mismatch");
    let mut alpha = T::ZERO;
    let mut beta = T::ZERO;
    let mut gamma = T::ZERO;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        alpha += xi * xi;
        beta += yi * yi;
        gamma += xi * yi;
    }
    (alpha, beta, gamma)
}

/// [`compute_rotation`] gated by a numerical-noise floor: when either
/// column's squared norm is at or below `floor_sq`, the column is
/// numerically zero (its singular value is below the round-off level of
/// the factorization) and the pair counts as converged.
///
/// Without this gate, a rank-deficient matrix never converges in finite
/// precision: its zero columns keep a noise-level mutual correlation whose
/// Eq. (6) measure stays O(1). Use
/// [`crate::matrix::Matrix::column_norm_floor_sq`] to derive the floor.
pub fn compute_rotation_gated<T: Real>(
    alpha: T,
    beta: T,
    gamma: T,
    floor_sq: T,
) -> JacobiRotation<T> {
    if alpha <= floor_sq || beta <= floor_sq {
        return JacobiRotation::identity();
    }
    compute_rotation(alpha, beta, gamma)
}

/// Orthogonalizes a column pair in place and returns the pre-rotation
/// convergence measure of Eq. (6). This is the exact unit of work performed
/// by one orth-AIE invocation (Algorithm 1, lines 8–12).
pub fn orthogonalize_pair<T: Real>(x: &mut [T], y: &mut [T]) -> T {
    orthogonalize_pair_gated(x, y, T::ZERO)
}

/// [`orthogonalize_pair`] with the numerical-noise gate of
/// [`compute_rotation_gated`]: the fused product → rotation → apply unit
/// of work of one orth-AIE invocation. The product traversal accumulates
/// [`VECTOR_LANES`] wide (AVX-accelerated for `f32` where available, see
/// [`crate::simd`]); identity rotations skip the apply traversal entirely
/// (zero FLOPs on the accelerator).
pub fn orthogonalize_pair_gated<T: Real>(x: &mut [T], y: &mut [T], floor_sq: T) -> T {
    let (alpha, beta, gamma) = column_products(x, y);
    let rot = compute_rotation_gated(alpha, beta, gamma, floor_sq);
    apply_rotation(x, y, rot);
    rot.convergence
}

/// [`orthogonalize_pair_gated`] built on [`column_products_scalar`]: the
/// pre-vectorization hot path, kept as the baseline the hot-path
/// benchmarks compare against.
pub fn orthogonalize_pair_gated_scalar<T: Real>(x: &mut [T], y: &mut [T], floor_sq: T) -> T {
    let (alpha, beta, gamma) = column_products_scalar(x, y);
    let rot = compute_rotation_gated(alpha, beta, gamma, floor_sq);
    if !rot.identity {
        apply_rotation_portable(x, y, rot.c, rot.s);
    }
    rot.convergence
}

/// [`orthogonalize_pair_gated`] with a threshold-Jacobi gate (de Rijk /
/// Demmel–Veselić): the fused α/β/γ products always run, but when the
/// Eq. (6) measure falls below `threshold` the `compute_rotation` tail and
/// the O(n) apply traversal are skipped entirely — the pair is already
/// orthogonal *enough* for this sweep.
///
/// Returns the exact pre-rotation measure either way, so convergence
/// accounting is unaffected by gating. With `threshold == 0` this is
/// bit-identical to [`orthogonalize_pair_gated`] (the measure is
/// non-negative, so the gate never fires).
///
/// A rotation was applied iff the returned measure is positive and
/// `>= threshold` — see [`crate::adaptive::did_rotate`].
pub fn orthogonalize_pair_thresholded<T: Real>(
    x: &mut [T],
    y: &mut [T],
    floor_sq: T,
    threshold: T,
) -> T {
    let (alpha, beta, gamma) = column_products(x, y);
    let rot = compute_rotation_gated(alpha, beta, gamma, floor_sq);
    if rot.convergence >= threshold {
        apply_rotation(x, y, rot);
    }
    rot.convergence
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(x: &[f64], y: &[f64]) -> f64 {
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn rotation_orthogonalizes_pair() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0];
        let mut y = vec![0.5, -1.0, 2.0, 4.0];
        let conv = orthogonalize_pair(&mut x, &mut y);
        assert!(conv > 0.0);
        assert!(dot(&x, &y).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_frobenius_norm() {
        // The rotation is orthogonal, so ||x||² + ||y||² is invariant.
        let mut x = vec![1.0, 2.0, 3.0];
        let mut y = vec![-4.0, 5.0, 6.0];
        let before = dot(&x, &x) + dot(&y, &y);
        orthogonalize_pair(&mut x, &mut y);
        let after = dot(&x, &x) + dot(&y, &y);
        assert!((before - after).abs() < 1e-10 * before);
    }

    #[test]
    fn orthogonal_input_returns_identity() {
        let x = vec![1.0, 0.0];
        let y = vec![0.0, 1.0];
        let (a, b, g) = column_products(&x, &y);
        let rot = compute_rotation(a, b, g);
        assert!(rot.identity);
        assert_eq!(rot.convergence, 0.0);
    }

    #[test]
    fn zero_column_returns_identity() {
        let rot = compute_rotation(0.0, 4.0, 0.0);
        assert!(rot.identity);
    }

    #[test]
    fn convergence_measure_matches_eq6() {
        let x = vec![2.0, 0.0];
        let y = vec![1.0, 1.0];
        let (a, b, g) = column_products(&x, &y);
        let rot = compute_rotation(a, b, g);
        // |γ|/sqrt(αβ) = 2 / sqrt(4·2) = 1/sqrt(2)
        assert!((rot.convergence - 1.0 / 2.0_f64.sqrt()).abs() < 1e-14);
    }

    #[test]
    fn c_s_satisfy_unit_circle() {
        let rot = compute_rotation(3.0, 5.0, 1.5);
        assert!((rot.c * rot.c + rot.s * rot.s - 1.0).abs() < 1e-14);
    }

    #[test]
    fn works_in_f32() {
        let mut x = vec![1.0_f32, 2.0, 3.0];
        let mut y = vec![3.0_f32, -1.0, 0.5];
        orthogonalize_pair(&mut x, &mut y);
        let d: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(d.abs() < 1e-5);
    }

    #[test]
    fn apply_identity_is_noop() {
        let mut x = vec![1.0, 2.0];
        let mut y = vec![3.0, 4.0];
        apply_rotation(&mut x, &mut y, JacobiRotation::identity());
        assert_eq!(x, vec![1.0, 2.0]);
        assert_eq!(y, vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut x = vec![1.0];
        let mut y = vec![1.0, 2.0];
        let _ = orthogonalize_pair(&mut x, &mut y);
    }

    #[test]
    fn chunked_products_match_scalar_reference() {
        // Lengths around the lane width exercise both the vector body and
        // the scalar tail.
        for n in [1, 5, 7, 8, 9, 16, 23, 64, 100] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
            let y: Vec<f64> = (0..n).map(|i| ((i * 5 + 1) % 13) as f64 - 6.0).collect();
            let (a1, b1, g1) = column_products(&x, &y);
            let (a2, b2, g2) = column_products_scalar(&x, &y);
            let tol = 1e-12 * (n as f64).max(1.0);
            assert!((a1 - a2).abs() <= tol * a2.abs().max(1.0), "alpha n={n}");
            assert!((b1 - b2).abs() <= tol * b2.abs().max(1.0), "beta n={n}");
            assert!((g1 - g2).abs() <= tol * g2.abs().max(1.0), "gamma n={n}");
        }
    }

    #[test]
    fn chunked_products_are_deterministic() {
        let x: Vec<f32> = (0..97).map(|i| (i as f32 * 0.37).sin()).collect();
        let y: Vec<f32> = (0..97).map(|i| (i as f32 * 0.61).cos()).collect();
        let first = column_products(&x, &y);
        for _ in 0..8 {
            assert_eq!(column_products(&x, &y), first);
        }
    }

    #[test]
    fn fused_and_scalar_paths_orthogonalize_identically_well() {
        let mk = || {
            let x: Vec<f32> = (0..40).map(|i| ((i * 13 + 5) % 17) as f32 - 8.0).collect();
            let y: Vec<f32> = (0..40).map(|i| ((i * 11 + 2) % 19) as f32 - 9.0).collect();
            (x, y)
        };
        let (mut x1, mut y1) = mk();
        let (mut x2, mut y2) = mk();
        let c1 = orthogonalize_pair_gated(&mut x1, &mut y1, 0.0);
        let c2 = orthogonalize_pair_gated_scalar(&mut x2, &mut y2, 0.0);
        assert!((c1 - c2).abs() < 1e-5);
        let d1: f32 = x1.iter().zip(&y1).map(|(a, b)| a * b).sum();
        let d2: f32 = x2.iter().zip(&y2).map(|(a, b)| a * b).sum();
        assert!(d1.abs() < 1e-3 && d2.abs() < 1e-3);
    }

    #[test]
    fn thresholded_with_zero_threshold_is_bit_identical_to_gated() {
        let mk = || {
            let x: Vec<f32> = (0..40).map(|i| ((i * 13 + 5) % 17) as f32 - 8.0).collect();
            let y: Vec<f32> = (0..40).map(|i| ((i * 11 + 2) % 19) as f32 - 9.0).collect();
            (x, y)
        };
        let (mut x1, mut y1) = mk();
        let (mut x2, mut y2) = mk();
        let c1 = orthogonalize_pair_gated(&mut x1, &mut y1, 0.0);
        let c2 = orthogonalize_pair_thresholded(&mut x2, &mut y2, 0.0, 0.0);
        assert_eq!(c1, c2);
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn thresholded_skips_apply_below_threshold() {
        // Pair with a small but nonzero measure: a threshold above it must
        // leave the columns untouched while still reporting the measure.
        let mut x = vec![1.0_f64, 0.0, 0.0, 0.0];
        let mut y = vec![1e-4_f64, 1.0, 0.0, 0.0];
        let (a, b, g) = column_products(&x, &y);
        let exact = compute_rotation(a, b, g).convergence;
        let before = (x.clone(), y.clone());
        let conv = orthogonalize_pair_thresholded(&mut x, &mut y, 0.0, 1e-2);
        assert_eq!(conv, exact);
        assert!(conv > 0.0 && conv < 1e-2);
        assert_eq!((x, y), before, "gated pair must not be rotated");
    }

    #[test]
    fn thresholded_rotates_at_or_above_threshold() {
        let mut x = vec![1.0_f64, 2.0, 3.0, -1.0];
        let mut y = vec![0.5_f64, -1.0, 2.0, 4.0];
        let conv = orthogonalize_pair_thresholded(&mut x, &mut y, 0.0, 1e-3);
        assert!(conv >= 1e-3);
        assert!(dot(&x, &y).abs() < 1e-12, "pair must be orthogonalized");
    }

    #[test]
    fn tau_sign_symmetry() {
        // Swapping the roles of alpha/beta flips the sign of t (and s).
        let r1 = compute_rotation(2.0, 8.0, 1.0);
        let r2 = compute_rotation(8.0, 2.0, 1.0);
        assert!((r1.s + r2.s).abs() < 1e-14);
        assert!((r1.c - r2.c).abs() < 1e-14);
    }
}
