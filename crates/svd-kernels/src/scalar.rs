//! Floating-point scalar abstraction.
//!
//! The accelerator kernels run in `f32` (the AI engine's native vector
//! type), while the golden reference runs in `f64`. [`Real`] is the minimal
//! trait both share, so every algorithm in this crate is written once and
//! instantiated for both precisions.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar type usable in the SVD kernels (`f32` or `f64`).
///
/// This trait is sealed: it is implemented for exactly the two primitive
/// float types, and downstream crates cannot add implementations. This
/// keeps numeric behaviour predictable across the workspace.
///
/// # Example
///
/// ```
/// use svd_kernels::Real;
///
/// fn hypot2<T: Real>(a: T, b: T) -> T {
///     (a * a + b * b).sqrt()
/// }
/// assert_eq!(hypot2(3.0_f64, 4.0_f64), 5.0);
/// ```
pub trait Real:
    Copy
    + Debug
    + Display
    + Default
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + sealed::Sealed
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Machine epsilon of the underlying type.
    const EPSILON: Self;

    /// Converts from `f64`, rounding to the target precision.
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` exactly (`f32` → `f64` is lossless).
    fn to_f64(self) -> f64;
    /// Square root.
    fn sqrt(self) -> Self;
    /// Absolute value.
    fn abs(self) -> Self;
    /// `max` that propagates the larger of two values (NaN-naive).
    fn max(self, other: Self) -> Self;
    /// `min` counterpart of [`Real::max`].
    fn min(self, other: Self) -> Self;
    /// Sign of the value: `1` for non-negative, `-1` for negative.
    fn signum_or_one(self) -> Self;
    /// `true` when the value is finite (not NaN or infinite).
    fn is_finite(self) -> bool;

    /// Architecture-specific fused inner products `(α, β, γ)` of a column
    /// pair, or `None` when no accelerated path applies (the caller runs
    /// the portable chunked loop). Implementations must be bit-identical
    /// to [`crate::rotation::column_products`]'s portable accumulation —
    /// see the contract in [`crate::simd`]. Only `f32` overrides this.
    #[inline]
    fn simd_column_products(_x: &[Self], _y: &[Self]) -> Option<(Self, Self, Self)> {
        None
    }

    /// Architecture-specific in-place rotation apply `x ← c·x + s·y`,
    /// `y ← c·y − s·x`. Returns `false` when no accelerated path applies
    /// and the caller must run the portable loop. Implementations must be
    /// bit-identical to the scalar expressions (no FMA contraction). Only
    /// `f32` overrides this.
    #[inline]
    fn simd_apply_rotation(_x: &mut [Self], _y: &mut [Self], _c: Self, _s: Self) -> bool {
        false
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_real {
    // Shared primitive delegation, plus optional per-type items (the `f32`
    // impl adds the SIMD fast-path overrides here).
    ($t:ty $(, $extra:item)*) => {
        impl Real for $t {
            $($extra)*
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const EPSILON: Self = <$t>::EPSILON;

            #[inline]
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn signum_or_one(self) -> Self {
                if self < 0.0 {
                    -1.0
                } else {
                    1.0
                }
            }
            #[inline]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(
    f32,
    #[inline]
    fn simd_column_products(x: &[Self], y: &[Self]) -> Option<(Self, Self, Self)> {
        crate::simd::column_products_f32(x, y)
    },
    #[inline]
    fn simd_apply_rotation(x: &mut [Self], y: &mut [Self], c: Self, s: Self) -> bool {
        crate::simd::apply_rotation_f32(x, y, c, s)
    }
);
impl_real!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_primitives() {
        assert_eq!(<f64 as Real>::ZERO, 0.0);
        assert_eq!(<f64 as Real>::ONE, 1.0);
        assert_eq!(<f32 as Real>::EPSILON, f32::EPSILON);
        assert_eq!(<f64 as Real>::EPSILON, f64::EPSILON);
    }

    #[test]
    fn conversion_round_trip_f32() {
        let x = 1.5_f32;
        assert_eq!(<f32 as Real>::from_f64(x.to_f64()), x);
    }

    #[test]
    fn signum_or_one_treats_zero_as_positive() {
        assert_eq!(0.0_f64.signum_or_one(), 1.0);
        assert_eq!((-0.5_f64).signum_or_one(), -1.0);
        assert_eq!(2.0_f32.signum_or_one(), 1.0);
    }

    #[test]
    fn sqrt_and_abs_delegate() {
        assert_eq!(Real::sqrt(9.0_f64), 3.0);
        assert_eq!(Real::abs(-4.0_f32), 4.0);
    }

    #[test]
    fn max_min_delegate() {
        assert_eq!(Real::max(1.0_f64, 2.0), 2.0);
        assert_eq!(Real::min(1.0_f32, 2.0), 1.0);
    }

    #[test]
    fn is_finite_detects_nan_and_inf() {
        assert!(Real::is_finite(1.0_f64));
        assert!(!Real::is_finite(f64::NAN));
        assert!(!Real::is_finite(f32::INFINITY));
    }
}
