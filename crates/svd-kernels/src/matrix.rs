//! Column-major dense matrix.
//!
//! The one-sided Jacobi method operates on whole columns, so [`Matrix`]
//! stores its elements column-major: column `j` occupies the contiguous
//! slice `data[j*rows .. (j+1)*rows]`, retrievable with [`Matrix::col`].

use crate::scalar::Real;
use crate::SvdError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense column-major matrix over a [`Real`] scalar.
///
/// # Example
///
/// ```
/// use svd_kernels::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
/// assert_eq!(m[(1, 2)], 12.0);
/// assert_eq!(m.col(1), &[1.0, 11.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix<T = f64> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Real> Matrix<T> {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize");
        Matrix {
            rows,
            cols,
            data: vec![T::ZERO; len],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut m = Self::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from column-major data.
    ///
    /// # Errors
    ///
    /// Returns [`SvdError::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_column_major(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, SvdError> {
        if data.len() != rows * cols {
            return Err(SvdError::DimensionMismatch(format!(
                "expected {} elements for a {rows}x{cols} matrix, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        assert!(j < self.cols, "column index {j} out of range {}", self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        assert!(j < self.cols, "column index {j} out of range {}", self.cols);
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct columns as mutable slices, for in-place rotation.
    ///
    /// # Panics
    ///
    /// Panics if `i == j` or either index is out of range.
    pub fn col_pair_mut(&mut self, i: usize, j: usize) -> (&mut [T], &mut [T]) {
        assert!(i != j, "column pair indices must be distinct");
        assert!(
            i < self.cols && j < self.cols,
            "column index out of range {}",
            self.cols
        );
        let rows = self.rows;
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        let (head, tail) = self.data.split_at_mut(hi * rows);
        let lo_col = &mut head[lo * rows..(lo + 1) * rows];
        let hi_col = &mut tail[..rows];
        if i < j {
            (lo_col, hi_col)
        } else {
            (hi_col, lo_col)
        }
    }

    /// Flat column-major view of the backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable column-major view of the backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning its column-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Copies a contiguous range of columns `[start, start + count)` into a
    /// new matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the column count.
    pub fn columns_range(&self, start: usize, count: usize) -> Matrix<T> {
        assert!(
            start + count <= self.cols,
            "column range {start}..{} out of bounds {}",
            start + count,
            self.cols
        );
        let data = self.data[start * self.rows..(start + count) * self.rows].to_vec();
        Matrix {
            rows: self.rows,
            cols: count,
            data,
        }
    }

    /// Transpose (copies).
    pub fn transpose(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SvdError::DimensionMismatch`] when the inner dimensions
    /// disagree.
    pub fn matmul(&self, rhs: &Matrix<T>) -> Result<Matrix<T>, SvdError> {
        if self.cols != rhs.rows {
            return Err(SvdError::DimensionMismatch(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for j in 0..rhs.cols {
            let rhs_col = rhs.col(j);
            let out_col = out.col_mut(j);
            for (k, &rjk) in rhs_col.iter().enumerate() {
                if rjk == T::ZERO {
                    continue;
                }
                let self_col = self.col(k);
                for (o, &s) in out_col.iter_mut().zip(self_col.iter()) {
                    *o += s * rjk;
                }
            }
        }
        Ok(out)
    }

    /// Scales every element by `s`, returning a new matrix.
    pub fn scaled(&self, s: T) -> Matrix<T> {
        let data = self.data.iter().map(|&v| v * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm `sqrt(Σ aᵢⱼ²)`, accumulated in `f64`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| {
                let x = v.to_f64();
                x * x
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SvdError::DimensionMismatch`] when shapes differ.
    pub fn sub(&self, rhs: &Matrix<T>) -> Result<Matrix<T>, SvdError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(SvdError::DimensionMismatch(format!(
                "cannot subtract {}x{} from {}x{}",
                rhs.rows, rhs.cols, self.rows, self.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// `true` when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// The squared numerical-noise floor for column norms: a column whose
    /// squared norm is at or below this value is numerically zero at this
    /// matrix's scale (its singular value is below the round-off error of
    /// the factorization). Used to gate Jacobi rotations on
    /// rank-deficient inputs; see
    /// [`crate::rotation::compute_rotation_gated`].
    pub fn column_norm_floor_sq(&self) -> T {
        let norm = T::from_f64(self.frobenius_norm());
        let scale = T::from_f64(8.0) * T::EPSILON * norm;
        scale * scale
    }

    /// Converts the scalar type element-wise (e.g. `f64` golden input to the
    /// accelerator's `f32`).
    pub fn cast<U: Real>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }
}

impl<T: Real> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &self.data[c * self.rows + r]
    }
}

impl<T: Real> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[c * self.rows + r]
    }
}

impl<T: Real> fmt::Display for Matrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{} x {}]", self.rows, self.cols)?;
        let max_show = 8;
        for r in 0..self.rows.min(max_show) {
            for c in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z: Matrix<f64> = Matrix::zeros(3, 2);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 2);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));

        let i: Matrix<f64> = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 0)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn column_major_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (10 * r + c) as f64);
        // Column 1 is contiguous: elements (0,1) and (1,1).
        assert_eq!(m.col(1), &[1.0, 11.0]);
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0, 2.0, 12.0]);
    }

    #[test]
    fn from_column_major_validates_length() {
        let err = Matrix::<f64>::from_column_major(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, SvdError::DimensionMismatch(_)));
        let ok = Matrix::<f64>::from_column_major(2, 2, vec![1.0; 4]).unwrap();
        assert_eq!(ok[(1, 1)], 1.0);
    }

    #[test]
    fn col_pair_mut_returns_correct_order() {
        let mut m = Matrix::from_fn(2, 3, |r, c| (10 * r + c) as f64);
        {
            let (ci, cj) = m.col_pair_mut(2, 0);
            assert_eq!(ci, &[2.0, 12.0]);
            assert_eq!(cj, &[0.0, 10.0]);
            ci[0] = -1.0;
        }
        assert_eq!(m[(0, 2)], -1.0);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn col_pair_mut_rejects_equal_indices() {
        let mut m: Matrix<f64> = Matrix::zeros(2, 2);
        let _ = m.col_pair_mut(1, 1);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |r, c| (r + 2 * c) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = Matrix::from_column_major(2, 2, vec![1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = Matrix::from_column_major(2, 2, vec![5.0, 7.0, 6.0, 8.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a: Matrix<f64> = Matrix::zeros(2, 3);
        let b: Matrix<f64> = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let a = Matrix::from_column_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn columns_range_extracts_block() {
        let a = Matrix::from_fn(2, 6, |_, c| c as f64);
        let b = a.columns_range(2, 3);
        assert_eq!(b.cols(), 3);
        assert_eq!(b.col(0), &[2.0, 2.0]);
        assert_eq!(b.col(2), &[4.0, 4.0]);
    }

    #[test]
    fn cast_f64_to_f32_and_back() {
        let a = Matrix::from_fn(2, 2, |r, c| 0.5 + r as f64 + c as f64);
        let b: Matrix<f32> = a.cast();
        let c: Matrix<f64> = b.cast();
        assert_eq!(a, c);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut a: Matrix<f64> = Matrix::zeros(2, 2);
        assert!(a.is_finite());
        a[(0, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }

    #[test]
    fn sub_and_scaled() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let d = a.sub(&a).unwrap();
        assert_eq!(d.frobenius_norm(), 0.0);
        let s = a.scaled(2.0);
        assert_eq!(s[(1, 1)], 4.0);
    }

    #[test]
    fn display_is_nonempty() {
        let a: Matrix<f64> = Matrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
