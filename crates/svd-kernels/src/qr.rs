//! Householder QR factorization and QR-preconditioned SVD.
//!
//! A classic acceleration for one-sided Jacobi on tall matrices
//! (`m ≫ n`): factor `A = Q·R` first, run the Jacobi iteration on the
//! small `n × n` factor `R` (whose columns are far better conditioned
//! per sweep), then lift the left singular vectors back through `Q`.
//! The paper's accelerator streams full-height columns; this module is
//! the software-side preprocessing a host CPU can apply before
//! dispatching to hardware — one of the natural extensions of the
//! block-Jacobi flow.

use crate::jacobi::{hestenes_jacobi, JacobiOptions, SvdResult};
use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::SvdError;

/// A QR factorization `A = Q·R` with `Q` `m × n` (thin, orthonormal
/// columns) and `R` `n × n` upper triangular.
#[derive(Debug, Clone, PartialEq)]
pub struct QrFactors<T> {
    /// Orthonormal columns spanning `A`'s column space.
    pub q: Matrix<T>,
    /// Upper-triangular factor.
    pub r: Matrix<T>,
}

/// Computes the thin QR factorization by Householder reflections.
///
/// # Example
///
/// ```
/// use svd_kernels::qr::householder_qr;
/// use svd_kernels::{verify, Matrix};
///
/// # fn main() -> Result<(), svd_kernels::SvdError> {
/// let a = Matrix::from_fn(8, 3, |r, c| ((r * 3 + c) % 5) as f64 + 1.0);
/// let qr = householder_qr(&a)?;
/// assert!(verify::column_orthogonality_error(&qr.q) < 1e-12);
/// let recon = qr.q.matmul(&qr.r)?;
/// assert!(recon.sub(&a)?.frobenius_norm() < 1e-12);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`SvdError::DimensionMismatch`] when `rows < cols`.
/// * [`SvdError::NonFinite`] for non-finite input.
pub fn householder_qr<T: Real>(a: &Matrix<T>) -> Result<QrFactors<T>, SvdError> {
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        return Err(SvdError::DimensionMismatch(format!(
            "qr requires rows >= cols, got {m}x{n}"
        )));
    }
    if !a.is_finite() {
        return Err(SvdError::NonFinite);
    }

    // Factor in place on a working copy; store the Householder vectors.
    let mut work = a.clone();
    let mut vs: Vec<Vec<T>> = Vec::with_capacity(n);
    for k in 0..n {
        // Build the Householder vector for column k below the diagonal.
        let col = work.col(k);
        let tail = &col[k..];
        let norm_sq: T = tail.iter().map(|&x| x * x).sum();
        let norm = norm_sq.sqrt();
        let mut v: Vec<T> = tail.to_vec();
        if norm > T::ZERO {
            let alpha = if v[0] >= T::ZERO { -norm } else { norm };
            v[0] -= alpha;
            let v_norm_sq: T = v.iter().map(|&x| x * x).sum();
            if v_norm_sq > T::ZERO {
                // Apply H = I - 2 v vᵀ / (vᵀv) to columns k..n of work.
                let two = T::from_f64(2.0);
                for j in k..n {
                    let cj = work.col_mut(j);
                    let dot: T = v.iter().zip(cj[k..].iter()).map(|(&vi, &x)| vi * x).sum();
                    let scale = two * dot / v_norm_sq;
                    for (vi, x) in v.iter().zip(cj[k..].iter_mut()) {
                        *x -= scale * *vi;
                    }
                }
            }
        }
        vs.push(v);
    }

    // R is the upper triangle of the worked matrix.
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..=j {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Q = H_0 H_1 ... H_{n-1} applied to the thin identity.
    let mut q = Matrix::from_fn(m, n, |i, j| if i == j { T::ONE } else { T::ZERO });
    for k in (0..n).rev() {
        let v = &vs[k];
        let v_norm_sq: T = v.iter().map(|&x| x * x).sum();
        if v_norm_sq == T::ZERO {
            continue;
        }
        let two = T::from_f64(2.0);
        for j in 0..n {
            let cj = q.col_mut(j);
            let dot: T = v.iter().zip(cj[k..].iter()).map(|(&vi, &x)| vi * x).sum();
            let scale = two * dot / v_norm_sq;
            for (vi, x) in v.iter().zip(cj[k..].iter_mut()) {
                *x -= scale * *vi;
            }
        }
    }

    Ok(QrFactors { q, r })
}

/// QR-preconditioned Hestenes–Jacobi SVD: factors `A = Q·R`, runs the
/// Jacobi iteration on `R`, and lifts `U = Q·U_R`. For tall matrices
/// this both shrinks the per-rotation work (columns of length `n`
/// instead of `m`) and typically saves sweeps.
///
/// # Errors
///
/// Propagates [`householder_qr`] and [`hestenes_jacobi`] errors.
pub fn qr_preconditioned_svd<T: Real>(
    a: &Matrix<T>,
    opts: &JacobiOptions,
) -> Result<SvdResult<T>, SvdError> {
    let qr = householder_qr(a)?;
    let inner = hestenes_jacobi(&qr.r, opts)?;
    let u = qr.q.matmul(&inner.u)?;
    Ok(SvdResult { u, ..inner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    fn tall(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |r, c| {
            ((r * 23 + c * 7 + 1) % 13) as f64 / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn qr_reconstructs_and_q_is_orthonormal() {
        let a = tall(20, 6);
        let qr = householder_qr(&a).unwrap();
        assert!(verify::column_orthogonality_error(&qr.q) < 1e-12);
        let recon = qr.q.matmul(&qr.r).unwrap();
        assert!(recon.sub(&a).unwrap().frobenius_norm() < 1e-10);
        // R is upper triangular.
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn qr_rejects_wide_and_non_finite() {
        assert!(householder_qr(&tall(3, 5)).is_err());
        let mut a = tall(5, 3);
        a[(1, 1)] = f64::NAN;
        assert!(matches!(householder_qr(&a), Err(SvdError::NonFinite)));
    }

    #[test]
    fn preconditioned_svd_matches_direct() {
        let a = tall(40, 8);
        let direct = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let pre = qr_preconditioned_svd(&a, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &direct.sorted_singular_values(),
            &pre.sorted_singular_values(),
        );
        assert!(err < 1e-10, "singular value error {err}");
        assert!(verify::column_orthogonality_error(&pre.u) < 1e-10);
        // U spans the right space: reconstruction through recovered V.
        let v = pre.recover_v(&a).unwrap();
        assert!(verify::reconstruction_error(&a, &pre.u, &pre.sigma, &v) < 1e-9);
    }

    #[test]
    fn preconditioning_never_needs_more_sweeps() {
        // For strongly tall matrices the R iteration converges in at most
        // as many sweeps as the direct iteration.
        let a = tall(96, 8);
        let opts = JacobiOptions {
            precision: 1e-10,
            ..Default::default()
        };
        let direct = hestenes_jacobi(&a, &opts).unwrap();
        let pre = qr_preconditioned_svd(&a, &opts).unwrap();
        assert!(
            pre.sweeps <= direct.sweeps,
            "preconditioned {} vs direct {}",
            pre.sweeps,
            direct.sweeps
        );
    }

    #[test]
    fn rank_deficient_qr_is_stable() {
        // Two identical columns: R gets a zero diagonal; the pipeline
        // must not produce NaNs.
        let base = tall(10, 3);
        let a = Matrix::from_fn(10, 4, |r, c| base[(r, c.min(2))]);
        let qr = householder_qr(&a).unwrap();
        assert!(qr.q.is_finite());
        assert!(qr.r.is_finite());
        let pre = qr_preconditioned_svd(&a, &JacobiOptions::default()).unwrap();
        assert_eq!(pre.rank(1e-9), 3);
    }
}
