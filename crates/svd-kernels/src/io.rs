//! Matrix I/O: CSV reading and writing.
//!
//! The format is plain rows of comma-separated numbers; blank lines and
//! `#` comments are skipped. This is the interchange format of the
//! `hsvd` command-line tool.

use crate::matrix::Matrix;
use crate::scalar::Real;
use crate::SvdError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Reads a CSV matrix from a reader. The reader can be a `File`, a byte
/// slice, or `&mut R` for any `R: Read`.
///
/// # Example
///
/// ```
/// use svd_kernels::io::read_csv;
/// use svd_kernels::Matrix;
///
/// # fn main() -> Result<(), svd_kernels::SvdError> {
/// let m: Matrix<f64> = read_csv("1,2\n3,4\n".as_bytes())?;
/// assert_eq!(m[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SvdError::InvalidParameter`] on I/O errors, unparsable
/// cells, ragged rows, or empty input.
pub fn read_csv<T: Real, R: Read>(reader: R) -> Result<Matrix<T>, SvdError> {
    let reader = BufReader::new(reader);
    let mut rows: Vec<Vec<T>> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| SvdError::InvalidParameter(format!("read error: {e}")))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row: Result<Vec<T>, SvdError> = trimmed
            .split(',')
            .map(|cell| {
                cell.trim()
                    .parse::<f64>()
                    .map(T::from_f64)
                    .map_err(|e| SvdError::InvalidParameter(format!("line {}: {e}", lineno + 1)))
            })
            .collect();
        let row = row?;
        if let Some(first) = rows.first() {
            if row.len() != first.len() {
                return Err(SvdError::InvalidParameter(format!(
                    "line {}: row has {} columns, expected {}",
                    lineno + 1,
                    row.len(),
                    first.len()
                )));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err(SvdError::InvalidParameter("no data rows".into()));
    }
    let (m, n) = (rows.len(), rows[0].len());
    Ok(Matrix::from_fn(m, n, |r, c| rows[r][c]))
}

/// Reads a CSV matrix from a file path.
///
/// # Errors
///
/// See [`read_csv`]; file-open failures are reported the same way.
pub fn read_csv_path<T: Real>(path: impl AsRef<Path>) -> Result<Matrix<T>, SvdError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)
        .map_err(|e| SvdError::InvalidParameter(format!("cannot open {}: {e}", path.display())))?;
    read_csv(file)
}

/// Writes a matrix as CSV. A mut reference can be passed for any
/// `W: Write`.
///
/// # Errors
///
/// Returns [`SvdError::InvalidParameter`] on I/O errors.
pub fn write_csv<T: Real, W: Write>(matrix: &Matrix<T>, mut writer: W) -> Result<(), SvdError> {
    for r in 0..matrix.rows() {
        let mut line = String::new();
        for c in 0..matrix.cols() {
            if c > 0 {
                line.push(',');
            }
            line.push_str(&format!("{}", matrix[(r, c)].to_f64()));
        }
        line.push('\n');
        writer
            .write_all(line.as_bytes())
            .map_err(|e| SvdError::InvalidParameter(format!("write error: {e}")))?;
    }
    Ok(())
}

/// Writes a matrix to a CSV file.
///
/// # Errors
///
/// See [`write_csv`].
pub fn write_csv_path<T: Real>(matrix: &Matrix<T>, path: impl AsRef<Path>) -> Result<(), SvdError> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).map_err(|e| {
        SvdError::InvalidParameter(format!("cannot create {}: {e}", path.display()))
    })?;
    write_csv(matrix, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_csv() {
        let a = Matrix::from_fn(3, 4, |r, c| r as f64 * 1.5 - c as f64 / 3.0);
        let mut buf = Vec::new();
        write_csv(&a, &mut buf).unwrap();
        let b: Matrix<f64> = read_csv(buf.as_slice()).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for c in 0..a.cols() {
            for r in 0..a.rows() {
                assert!((a[(r, c)] - b[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\n1, 2\n# middle\n3,4\n";
        let m: Matrix<f64> = read_csv(text.as_bytes()).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = read_csv::<f64, _>("1,2\n3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, SvdError::InvalidParameter(_)));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_bad_cells_and_empty_input() {
        assert!(read_csv::<f64, _>("1,x\n".as_bytes()).is_err());
        assert!(read_csv::<f64, _>("# only comments\n".as_bytes()).is_err());
    }

    #[test]
    fn reads_f32_matrices() {
        let m: Matrix<f32> = read_csv("0.5,1.5\n-2,3\n".as_bytes()).unwrap();
        assert_eq!(m[(1, 0)], -2.0_f32);
    }

    #[test]
    fn path_helpers_round_trip() {
        let dir = std::env::temp_dir().join("svd_kernels_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.csv");
        let a = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        write_csv_path(&a, &path).unwrap();
        let b: Matrix<f64> = read_csv_path(&path).unwrap();
        assert_eq!(a, b);
        let missing = read_csv_path::<f64>(dir.join("missing.csv"));
        assert!(missing.is_err());
    }
}
