//! Architecture-specific fast paths for the rotation hot-path kernels,
//! selected by runtime feature detection.
//!
//! The portable chunked loops in [`crate::rotation`] express the orth-AIE's
//! 8-lane accumulation, but on the default x86-64 target (SSE2, 128-bit
//! registers) the fused triple inner product needs six accumulator
//! registers plus two streams and spills to the stack, capping throughput
//! well below the machine's. The AVX kernels here keep each 8-lane
//! accumulator in a single 256-bit register.
//!
//! **Semantics contract:** every function in this module performs the same
//! IEEE-754 operations in the same per-lane order as the portable loop it
//! replaces — the same [`VECTOR_LANES`] partial accumulators, the same
//! fixed reduction tree ([`crate::rotation`]'s `reduce_lanes`), the same
//! sequential scalar tail, and no FMA contraction (`mul` then `add` as two
//! rounded operations). The fast path is therefore bit-identical to the
//! portable path, and enabling or disabling it cannot change any result.
//! The unit tests below assert exact equality, not tolerance.
//!
//! Only `f32` (the accelerator's native precision) is accelerated; the
//! `f64` golden reference always takes the portable loop.

use crate::rotation::VECTOR_LANES;

/// Fused inner products `(α, β, γ)` of an `f32` column pair via the best
/// available vector ISA, or `None` when no accelerated path applies on
/// this CPU (the caller falls back to the portable chunked loop).
#[inline]
pub fn column_products_f32(x: &[f32], y: &[f32]) -> Option<(f32, f32, f32)> {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was verified at runtime just above.
        return Some(unsafe { x86::column_products_avx(x, y) });
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (x, y);
    None
}

/// In-place rotation apply `x ← c·x + s·y`, `y ← c·y − s·x` via the best
/// available vector ISA. Returns `false` when no accelerated path applies
/// and the caller must run the portable loop.
#[inline]
pub fn apply_rotation_f32(x: &mut [f32], y: &mut [f32], c: f32, s: f32) -> bool {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx") {
        // SAFETY: AVX support was verified at runtime just above.
        unsafe { x86::apply_rotation_avx(x, y, c, s) };
        return true;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (x, y, c, s);
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::VECTOR_LANES;
    use crate::rotation::reduce_lanes;
    use std::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps, _mm256_sub_ps,
    };

    /// AVX form of the portable chunked `column_products` loop: one ymm
    /// register per 8-lane accumulator, `vmulps` + `vaddps` per chunk (no
    /// FMA), lanes reduced by the shared fixed tree, scalar tail appended
    /// sequentially.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX (e.g. via
    /// `is_x86_feature_detected!("avx")`). `x` and `y` must have equal
    /// lengths (checked by `debug_assert` in the dispatcher).
    #[target_feature(enable = "avx")]
    pub unsafe fn column_products_avx(x: &[f32], y: &[f32]) -> (f32, f32, f32) {
        let split = x.len() - x.len() % VECTOR_LANES;
        let xp = x.as_ptr();
        let yp = y.as_ptr();
        let mut acc_a = _mm256_setzero_ps();
        let mut acc_b = _mm256_setzero_ps();
        let mut acc_g = _mm256_setzero_ps();
        let mut i = 0;
        while i < split {
            let xv = _mm256_loadu_ps(xp.add(i));
            let yv = _mm256_loadu_ps(yp.add(i));
            acc_a = _mm256_add_ps(acc_a, _mm256_mul_ps(xv, xv));
            acc_b = _mm256_add_ps(acc_b, _mm256_mul_ps(yv, yv));
            acc_g = _mm256_add_ps(acc_g, _mm256_mul_ps(xv, yv));
            i += VECTOR_LANES;
        }
        let mut a = [0.0f32; VECTOR_LANES];
        let mut b = [0.0f32; VECTOR_LANES];
        let mut g = [0.0f32; VECTOR_LANES];
        _mm256_storeu_ps(a.as_mut_ptr(), acc_a);
        _mm256_storeu_ps(b.as_mut_ptr(), acc_b);
        _mm256_storeu_ps(g.as_mut_ptr(), acc_g);
        let mut alpha = reduce_lanes(a);
        let mut beta = reduce_lanes(b);
        let mut gamma = reduce_lanes(g);
        let mut j = split;
        while j < x.len() {
            let xi = *xp.add(j);
            let yi = *yp.add(j);
            alpha += xi * xi;
            beta += yi * yi;
            gamma += xi * yi;
            j += 1;
        }
        (alpha, beta, gamma)
    }

    /// AVX form of the element-independent rotation apply: per chunk two
    /// loads, four `vmulps`, one `vaddps`, one `vsubps`, two stores — the
    /// same `c·x + s·y` / `c·y − s·x` expressions as the scalar loop,
    /// without FMA contraction.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX (e.g. via
    /// `is_x86_feature_detected!("avx")`). `x` and `y` must have equal
    /// lengths (checked by `debug_assert` in the dispatcher).
    #[target_feature(enable = "avx")]
    pub unsafe fn apply_rotation_avx(x: &mut [f32], y: &mut [f32], c: f32, s: f32) {
        let split = x.len() - x.len() % VECTOR_LANES;
        let xp = x.as_mut_ptr();
        let yp = y.as_mut_ptr();
        let cv = _mm256_set1_ps(c);
        let sv = _mm256_set1_ps(s);
        let mut i = 0;
        while i < split {
            let xv = _mm256_loadu_ps(xp.add(i));
            let yv = _mm256_loadu_ps(yp.add(i));
            let xn = _mm256_add_ps(_mm256_mul_ps(cv, xv), _mm256_mul_ps(sv, yv));
            let yn = _mm256_sub_ps(_mm256_mul_ps(cv, yv), _mm256_mul_ps(sv, xv));
            _mm256_storeu_ps(xp.add(i), xn);
            _mm256_storeu_ps(yp.add(i), yn);
            i += VECTOR_LANES;
        }
        let mut j = split;
        while j < x.len() {
            let xv = *xp.add(j);
            let yv = *yp.add(j);
            *xp.add(j) = c * xv + s * yv;
            *yp.add(j) = c * yv - s * xv;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The portable chunked accumulation, replicated here verbatim so the
    /// tests can compare the SIMD path against it even though
    /// `rotation::column_products` itself dispatches to the SIMD path.
    fn portable_products(x: &[f32], y: &[f32]) -> (f32, f32, f32) {
        let split = x.len() - x.len() % VECTOR_LANES;
        let (xv, xt) = x.split_at(split);
        let (yv, yt) = y.split_at(split);
        let mut a = [0.0f32; VECTOR_LANES];
        let mut b = [0.0f32; VECTOR_LANES];
        let mut g = [0.0f32; VECTOR_LANES];
        for (xc, yc) in xv
            .chunks_exact(VECTOR_LANES)
            .zip(yv.chunks_exact(VECTOR_LANES))
        {
            for l in 0..VECTOR_LANES {
                let xi = xc[l];
                let yi = yc[l];
                a[l] += xi * xi;
                b[l] += yi * yi;
                g[l] += xi * yi;
            }
        }
        let tree = |l: [f32; VECTOR_LANES]| {
            ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
        };
        let (mut alpha, mut beta, mut gamma) = (tree(a), tree(b), tree(g));
        for (&xi, &yi) in xt.iter().zip(yt.iter()) {
            alpha += xi * xi;
            beta += yi * yi;
            gamma += xi * yi;
        }
        (alpha, beta, gamma)
    }

    fn test_columns(n: usize) -> (Vec<f32>, Vec<f32>) {
        let x = (0..n).map(|i| (i as f32 * 0.37).sin() * 2.5).collect();
        let y = (0..n)
            .map(|i| (i as f32 * 0.73).cos() * 1.5 - 0.25)
            .collect();
        (x, y)
    }

    #[test]
    fn simd_products_bit_identical_to_portable() {
        // Exact equality, not tolerance: the SIMD path performs the same
        // IEEE operations in the same order. Lengths cover the empty body,
        // pure-tail, chunk boundaries, and mixed body+tail cases.
        for n in [0, 1, 7, 8, 9, 15, 16, 17, 64, 100, 256, 1000] {
            let (x, y) = test_columns(n);
            match column_products_f32(&x, &y) {
                Some(fast) => assert_eq!(fast, portable_products(&x, &y), "n={n}"),
                None => return, // no accelerated path on this CPU
            }
        }
    }

    #[test]
    fn simd_apply_bit_identical_to_scalar() {
        let (c, s) = (0.8f32, 0.6f32);
        for n in [0, 1, 7, 8, 9, 31, 100, 256] {
            let (x0, y0) = test_columns(n);
            let (mut xf, mut yf) = (x0.clone(), y0.clone());
            if !apply_rotation_f32(&mut xf, &mut yf, c, s) {
                return; // no accelerated path on this CPU
            }
            let (mut xs, mut ys) = (x0, y0);
            for (xi, yi) in xs.iter_mut().zip(ys.iter_mut()) {
                let xv = *xi;
                let yv = *yi;
                *xi = c * xv + s * yv;
                *yi = c * yv - s * xv;
            }
            assert_eq!(xf, xs, "x n={n}");
            assert_eq!(yf, ys, "y n={n}");
        }
    }
}
