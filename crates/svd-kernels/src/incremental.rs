//! Incremental SVD: warm-start seeding and Brand-style low-rank updates.
//!
//! Production SVD traffic is update-heavy: a client re-submits a matrix
//! that differs from its previous request by a few rows or columns
//! (streaming covariance, recommender-style rank-1 bumps). One-sided
//! Jacobi converges in one or two sweeps from a good starting basis, so
//! a cached right basis `V` from the previous solve turns a full
//! factorization into a near-no-op:
//!
//! * [`warm_start`] — seed the iteration with the cached basis: form
//!   `B = A·V_prev` (whose columns are already nearly orthogonal when
//!   `A ≈ A_prev`), sweep `B` to convergence, and compose the right
//!   basis `V = V_prev·V_B`. Because `V_prev` is orthogonal, `U` and
//!   `Σ` of `B` *are* those of `A`.
//! * [`lowrank_update`] — Brand's append/bump: when `ΔA = A − A_prev`
//!   factors as `C·Wᵀ` with small numerical rank `k`, rotate a cached
//!   rank-`r` [`TruncatedSvd`] through one `(r+k)×(r+k)` inner SVD
//!   instead of touching the full matrix at all.
//! * [`classify_update`] — the staleness bound: measure
//!   `‖ΔA‖_F / ‖A‖_F`, probe the delta's numerical rank, and route to
//!   the low-rank bump, the warm start, or a full recompute. The full
//!   route is *exactly* the cold path, so exceeding the bound is
//!   bit-identical to never having cached anything.

use crate::approx::TruncatedSvd;
use crate::jacobi::{hestenes_jacobi, JacobiOptions, SvdResult};
use crate::matrix::Matrix;
use crate::qr::householder_qr;
use crate::scalar::Real;
use crate::SvdError;

/// When the incremental paths must give up and recompute from scratch.
///
/// Both limits bound *accumulated* drift: `max_delta_rel` bounds the
/// single-step relative change `‖ΔA‖_F / ‖A‖_F`, and `max_warm_solves`
/// bounds how many consecutive warm/low-rank solves may reuse a basis
/// before a full solve refreshes it (each warm solve is accurate, but
/// the cached `V` ages with every low-rank bump that skips refreshing
/// it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessBound {
    /// Largest `‖ΔA‖_F / ‖A‖_F` the warm paths accept.
    pub max_delta_rel: f64,
    /// Largest number of warm/low-rank solves since the last full solve.
    pub max_warm_solves: u32,
}

impl Default for StalenessBound {
    fn default() -> Self {
        StalenessBound {
            max_delta_rel: 0.25,
            max_warm_solves: 8,
        }
    }
}

/// Why an update routed to full recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackReason {
    /// The new matrix's shape differs from the cached one.
    ShapeChanged,
    /// `‖ΔA‖_F / ‖A‖_F` exceeded [`StalenessBound::max_delta_rel`].
    DeltaTooLarge,
    /// Too many warm solves since the last full solve.
    WarmBudgetExhausted,
    /// No cached factors existed for this client — never produced by
    /// [`classify_update`] (which requires a previous matrix), only by
    /// callers reporting a cache miss as a full solve.
    ColdStart,
}

/// The execution route chosen for one update request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateRoute {
    /// Brand-style bump of the cached truncated factors; `rank` is the
    /// numerical rank of the delta (`0` = identical resubmission, serve
    /// the cached factors directly).
    LowRank {
        /// Numerical rank of `ΔA` (columns of the `C·Wᵀ` factorization).
        rank: usize,
    },
    /// Seed Jacobi from the cached right basis.
    WarmStart,
    /// Full recompute — exactly the cold path.
    Full(FallbackReason),
}

/// A low-rank factorization `ΔA ≈ C·Wᵀ` of the update delta.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaFactor<T> {
    /// Left factor, `m × k`.
    pub c: Matrix<T>,
    /// Right factor, `n × k`.
    pub w: Matrix<T>,
}

/// The outcome of [`classify_update`]: the route plus the measured
/// staleness and (for the low-rank route) the factored delta.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateClass<T> {
    /// Chosen route.
    pub route: UpdateRoute,
    /// Measured `‖ΔA‖_F / ‖A_new‖_F` (`∞` on shape change).
    pub delta_rel: f64,
    /// `ΔA ≈ C·Wᵀ` when the route is a positive-rank low-rank bump.
    pub factor: Option<DeltaFactor<T>>,
}

/// Routes one update against the cached previous matrix.
///
/// `warm_solves_since_full` is the caller's counter of consecutive
/// non-full solves on this cache entry; `max_update_rank` bounds the
/// delta rank the low-rank path accepts (larger deltas that still pass
/// the staleness bound take the warm start).
///
/// # Errors
///
/// [`SvdError::NonFinite`] when `a_new` contains NaN or infinities.
pub fn classify_update<T: Real>(
    a_new: &Matrix<T>,
    a_prev: &Matrix<T>,
    warm_solves_since_full: u32,
    bound: &StalenessBound,
    max_update_rank: usize,
) -> Result<UpdateClass<T>, SvdError> {
    if !a_new.is_finite() {
        return Err(SvdError::NonFinite);
    }
    if a_new.rows() != a_prev.rows() || a_new.cols() != a_prev.cols() {
        return Ok(UpdateClass {
            route: UpdateRoute::Full(FallbackReason::ShapeChanged),
            delta_rel: f64::INFINITY,
            factor: None,
        });
    }
    let delta = a_new.sub(a_prev)?;
    let delta_norm = delta.frobenius_norm();
    let a_norm = a_new.frobenius_norm();
    let delta_rel = if delta_norm == 0.0 {
        0.0
    } else if a_norm == 0.0 {
        f64::INFINITY
    } else {
        delta_norm / a_norm
    };
    if delta_rel == 0.0 {
        // Identical resubmission: the cached factors already answer it.
        return Ok(UpdateClass {
            route: UpdateRoute::LowRank { rank: 0 },
            delta_rel,
            factor: None,
        });
    }
    if warm_solves_since_full >= bound.max_warm_solves {
        return Ok(UpdateClass {
            route: UpdateRoute::Full(FallbackReason::WarmBudgetExhausted),
            delta_rel,
            factor: None,
        });
    }
    if delta_rel > bound.max_delta_rel {
        return Ok(UpdateClass {
            route: UpdateRoute::Full(FallbackReason::DeltaTooLarge),
            delta_rel,
            factor: None,
        });
    }
    match factor_delta(&delta, max_update_rank) {
        Some(factor) => Ok(UpdateClass {
            route: UpdateRoute::LowRank {
                rank: factor.c.cols(),
            },
            delta_rel,
            factor: Some(factor),
        }),
        None => Ok(UpdateClass {
            route: UpdateRoute::WarmStart,
            delta_rel,
            factor: None,
        }),
    }
}

/// Attempts to factor `delta ≈ C·Wᵀ` with at most `max_rank` columns.
///
/// Three probes run in order of cost: dirty-*column* scan (a column
/// perturbation touches few columns, so `C` = those columns and `W` =
/// the selection), dirty-*row* scan (the transposed pattern), then a
/// randomized range finder (one power iteration, deterministic test
/// matrix) for dense-but-low-rank deltas such as rank-1 outer-product
/// bumps. Returns `None` when no probe captures the delta to machine
/// precision within the rank budget.
pub fn factor_delta<T: Real>(delta: &Matrix<T>, max_rank: usize) -> Option<DeltaFactor<T>> {
    let (m, n) = (delta.rows(), delta.cols());
    if max_rank == 0 || m == 0 || n == 0 {
        return None;
    }
    let total_norm = delta.frobenius_norm();
    if total_norm == 0.0 {
        return None;
    }
    // The dust floor: entries this far below the delta's own scale are
    // rounding noise, not signal (the residual check below uses the
    // same scale).
    let floor = total_norm * T::EPSILON.to_f64() * 4.0;
    let floor_sq = floor * floor;

    // ---- Probe 1: column-sparse delta.
    let dirty_cols: Vec<usize> = (0..n)
        .filter(|&j| {
            let norm_sq: f64 = delta.col(j).iter().map(|x| x.to_f64() * x.to_f64()).sum();
            norm_sq > floor_sq
        })
        .collect();
    if !dirty_cols.is_empty() && dirty_cols.len() <= max_rank {
        let k = dirty_cols.len();
        let c = Matrix::from_fn(m, k, |i, j| delta[(i, dirty_cols[j])]);
        let w = Matrix::from_fn(
            n,
            k,
            |i, j| {
                if i == dirty_cols[j] {
                    T::ONE
                } else {
                    T::ZERO
                }
            },
        );
        return Some(DeltaFactor { c, w });
    }

    // ---- Probe 2: row-sparse delta (`Δ = Σ e_i·r_iᵀ`).
    let mut row_norm_sq = vec![0.0_f64; m];
    for j in 0..n {
        for (i, x) in delta.col(j).iter().enumerate() {
            row_norm_sq[i] += x.to_f64() * x.to_f64();
        }
    }
    let dirty_rows: Vec<usize> = (0..m).filter(|&i| row_norm_sq[i] > floor_sq).collect();
    if !dirty_rows.is_empty() && dirty_rows.len() <= max_rank {
        let k = dirty_rows.len();
        let c = Matrix::from_fn(
            m,
            k,
            |i, j| {
                if i == dirty_rows[j] {
                    T::ONE
                } else {
                    T::ZERO
                }
            },
        );
        let w = Matrix::from_fn(n, k, |i, j| delta[(dirty_rows[j], i)]);
        return Some(DeltaFactor { c, w });
    }

    // ---- Probe 3: randomized range finder with one power iteration.
    // The test matrix is a deterministic SplitMix64 stream so repeated
    // classifications of the same delta agree bit-for-bit.
    let probe = (max_rank + 4).min(m).min(n);
    if probe == 0 {
        return None;
    }
    let mut seed = 0x9E37_79B9_7F4A_7C15_u64 ^ ((m as u64) << 32) ^ n as u64;
    let omega = Matrix::from_fn(n, probe, |_, _| {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        T::from_f64((z >> 11) as f64 * (2.0 / (1u64 << 53) as f64) - 1.0)
    });
    let y = delta.matmul(&omega).ok()?;
    // One power step sharpens the captured subspace: Y ← Δ·(Δᵀ·Y).
    let y = delta.matmul(&delta.transpose().matmul(&y).ok()?).ok()?;
    let q = householder_qr(&y).ok()?.q;
    let w = delta.transpose().matmul(&q).ok()?; // n × probe, Wᵀ = QᵀΔ
                                                // Compress the oversampled capture back to the rank budget. The
                                                // probe deliberately overshoots (`max_rank + 4` columns) so the
                                                // range finder converges, but handing the caller a probe-width
                                                // factor would let a rank-(max_rank+1) delta masquerade as "low
                                                // rank". A small SVD of the `n × probe` right factor re-expresses
                                                // `Δ ≈ Q·Wᵀ = Q·V_w·Σ_w·U_wᵀ` in singular directions; only the top
                                                // `max_rank` survive, and the residual test then decides honestly.
    let small_opts = JacobiOptions {
        precision: (T::EPSILON.to_f64() * 64.0).max(1e-13),
        ..JacobiOptions::default()
    };
    let w_svd = hestenes_jacobi(&w, &small_opts).ok()?;
    let w_v = w_svd.v.as_ref()?;
    let keep: Vec<usize> = w_svd
        .descending_order()
        .into_iter()
        .take(max_rank)
        .filter(|&j| w_svd.sigma[j].to_f64() > floor)
        .collect();
    if keep.is_empty() {
        return None;
    }
    let k = keep.len();
    // C = Q·V_w·Σ_w (m × k), W = U_w (n × k) over the kept directions.
    let mut v_keep = Matrix::zeros(probe, k);
    let mut w_k = Matrix::zeros(n, k);
    for (t, &j) in keep.iter().enumerate() {
        let s = w_svd.sigma[j];
        for (slot, &x) in v_keep.col_mut(t).iter_mut().zip(w_v.col(j).iter()) {
            *slot = s * x;
        }
        w_k.col_mut(t).copy_from_slice(w_svd.u.col(j));
    }
    let c = q.matmul(&v_keep).ok()?;
    // Residual check: ‖Δ − C·Wᵀ‖_F must be machine-level noise.
    let recon = c.matmul(&w_k.transpose()).ok()?;
    let residual = delta.sub(&recon).ok()?.frobenius_norm();
    if residual <= total_norm * T::EPSILON.to_f64() * 64.0 {
        Some(DeltaFactor { c, w: w_k })
    } else {
        None
    }
}

/// Completes an orthonormal-but-rank-deficient basis to a full rotation.
///
/// The input's columns must each be either unit-norm (pairwise
/// orthogonal — the live directions) or exactly zero (the dead slots
/// [`SvdResult::recover_v`]'s noise gate leaves behind a rank-deficient
/// solve). The dead slots are filled with an orthonormal basis of the
/// live span's complement, so the result is orthogonal and agrees with
/// the input on every live column.
///
/// Cost is `O(n²·r)` for `r` live columns — *not* the `O(n³)` of a full
/// QR re-factorization. The trick: Householder-factor just the live
/// columns (a tall `n × r` QR), whose full orthogonal factor
/// `Q = H_0···H_{r-1}` sends `e_0..e_{r-1}` onto the live span — so its
/// trailing columns `Q·e_r .. Q·e_{n-1}` are exactly the complement
/// basis, each costing `r` reflector applications. Reflectors are
/// orthogonal by construction, so there is no Gram matrix to condition
/// and no degenerate case to special-case.
///
/// # Errors
///
/// [`SvdError::DimensionMismatch`] when the input is not square;
/// [`SvdError::NonFinite`] for non-finite input.
pub fn complete_basis<T: Real>(v_prev: &Matrix<T>) -> Result<Matrix<T>, SvdError> {
    let n = v_prev.rows();
    if v_prev.cols() != n {
        return Err(SvdError::DimensionMismatch(format!(
            "basis must be square, got {}x{}",
            v_prev.rows(),
            v_prev.cols()
        )));
    }
    if !v_prev.is_finite() {
        return Err(SvdError::NonFinite);
    }
    let (live, dead) = dead_live_split(v_prev);
    if dead.is_empty() {
        return Ok(v_prev.clone());
    }
    if live.is_empty() {
        return Ok(Matrix::identity(n));
    }
    let (out64, _) = completion_f64(&v_prev.cast::<f64>(), &live, &dead);
    let mut out = out64.cast::<T>();
    // The f64 round trip is exact for widened values, but copy the live
    // columns back anyway so the bit-preservation contract never hinges
    // on cast semantics.
    for &j in &live {
        out.col_mut(j).copy_from_slice(v_prev.col(j));
    }
    Ok(out)
}

/// Splits basis columns into live (non-zero) and dead (all-zero) slots.
fn dead_live_split<T: Real>(v_prev: &Matrix<T>) -> (Vec<usize>, Vec<usize>) {
    let (mut live, mut dead) = (Vec::new(), Vec::new());
    for j in 0..v_prev.cols() {
        if v_prev.col(j).iter().all(|&x| x == T::ZERO) {
            dead.push(j);
        } else {
            live.push(j);
        }
    }
    (live, dead)
}

/// The `f64` core of [`complete_basis`]: Householder-factors the live
/// columns (an `n × r` tall QR, `O(n·r²)`) and fills the dead slots with
/// trailing columns of the full orthogonal factor `Q = H_0·H_1···H_{r-1}`.
/// `Q` maps `e_0..e_{r-1}` onto an orthonormal basis of the live span, so
/// `Q·e_r .. Q·e_{n-1}` are exactly the complement basis — each one costs
/// `r` reflector applications, `O(n·r)`, so the whole completion is
/// `O(n²·r)`. No Gram matrix, no conditioning hazard: reflectors are
/// orthogonal by construction. Returns the completed basis and the
/// reflectors (reflector `k` spans rows `k..n`), which [`warm_seed`]
/// reuses to form `A·Q`'s trailing columns without a dense GEMM.
fn completion_f64(
    v64: &Matrix<f64>,
    live: &[usize],
    dead: &[usize],
) -> (Matrix<f64>, Vec<Vec<f64>>) {
    let n = v64.rows();
    let r = live.len();
    let mut work = Matrix::from_fn(n, r, |i, j| v64[(i, live[j])]);
    let mut reflectors: Vec<Vec<f64>> = Vec::with_capacity(r);
    for k in 0..r {
        let col = work.col(k);
        let tail = &col[k..];
        let norm_sq: f64 = tail.iter().map(|&x| x * x).sum();
        let norm = norm_sq.sqrt();
        let mut v: Vec<f64> = tail.to_vec();
        if norm > 0.0 {
            let alpha = if v[0] >= 0.0 { -norm } else { norm };
            v[0] -= alpha;
            let v_norm_sq: f64 = v.iter().map(|&x| x * x).sum();
            if v_norm_sq > 0.0 {
                for j in k..r {
                    let cj = work.col_mut(j);
                    let dot: f64 = v.iter().zip(cj[k..].iter()).map(|(&vi, &x)| vi * x).sum();
                    let scale = 2.0 * dot / v_norm_sq;
                    for (vi, x) in v.iter().zip(cj[k..].iter_mut()) {
                        *x -= scale * *vi;
                    }
                }
            }
        }
        reflectors.push(v);
    }
    let mut out = v64.clone();
    let mut x = vec![0.0f64; n];
    for (t, &slot) in dead.iter().enumerate() {
        x.fill(0.0);
        x[r + t] = 1.0;
        for k in (0..r).rev() {
            let v = &reflectors[k];
            let v_norm_sq: f64 = v.iter().map(|&vi| vi * vi).sum();
            if v_norm_sq == 0.0 {
                continue;
            }
            let dot: f64 = v.iter().zip(x[k..].iter()).map(|(&vi, &xi)| vi * xi).sum();
            let scale = 2.0 * dot / v_norm_sq;
            for (vi, xi) in v.iter().zip(x[k..].iter_mut()) {
                *xi -= scale * *vi;
            }
        }
        out.col_mut(slot).copy_from_slice(&x);
    }
    (out, reflectors)
}

/// Forms the warm-start seed pair `(B, V_seed)`: `V_seed` is
/// [`complete_basis`] of `v_prev` and `B = A·V_seed`, accumulated in
/// `f64` so the seeding product adds no target-precision rounding of its
/// own before the iteration starts.
///
/// When the cached basis is rank-deficient (`r` live columns, the rest
/// dead), the product is formed structurally in `O(m·n·r)` instead of
/// the dense `O(m·n²)` GEMM: live slots are `A·v_j` against the original
/// columns, and dead slots are trailing columns of `A·H_0···H_{r-1}` —
/// the same Householder reflectors that define the completion, applied
/// to `A` from the right at `O(m·n)` each. For a hot-matrix cache whose
/// effective rank is far below `n`, this turns the seeding step from the
/// dominant warm-path cost into noise.
///
/// # Errors
///
/// [`SvdError::DimensionMismatch`] when `v_prev` is not square with side
/// `a.cols()`; [`SvdError::NonFinite`] for non-finite input.
pub fn warm_seed<T: Real>(
    a: &Matrix<T>,
    v_prev: &Matrix<T>,
) -> Result<(Matrix<T>, Matrix<T>), SvdError> {
    let (m, n) = (a.rows(), a.cols());
    if v_prev.rows() != n || v_prev.cols() != n {
        return Err(SvdError::DimensionMismatch(format!(
            "warm-start basis must be {n}x{n}, got {}x{}",
            v_prev.rows(),
            v_prev.cols()
        )));
    }
    if !a.is_finite() || !v_prev.is_finite() {
        return Err(SvdError::NonFinite);
    }
    let (live, dead) = dead_live_split(v_prev);
    if live.is_empty() {
        // All-zero basis: the completion is the identity, B is A itself.
        return Ok((a.clone(), Matrix::identity(n)));
    }
    let a64 = a.cast::<f64>();
    if dead.is_empty() {
        // Full-rank basis: nothing to complete, the product is dense.
        let b = a64.matmul(&v_prev.cast::<f64>())?.cast::<T>();
        return Ok((b, v_prev.clone()));
    }
    let v64 = v_prev.cast::<f64>();
    let (v_seed64, reflectors) = completion_f64(&v64, &live, &dead);
    let r = live.len();
    // Live slots of B: A against the original basis columns, so B and
    // V_seed agree on exactly the directions the cache certified.
    let v_live = Matrix::from_fn(n, r, |i, j| v64[(i, live[j])]);
    let b_live = a64.matmul(&v_live)?;
    // Dead slots of B: apply each live reflector to A from the right;
    // columns r.. of the running product are A·(Q·e_{r+t}).
    let mut prod = a64;
    let mut y = vec![0.0f64; m];
    for refl in &reflectors {
        let v_norm_sq: f64 = refl.iter().map(|&x| x * x).sum();
        if v_norm_sq == 0.0 {
            continue;
        }
        let k = n - refl.len();
        y.fill(0.0);
        for (p, &vp) in refl.iter().enumerate() {
            for (yi, &ci) in y.iter_mut().zip(prod.col(k + p).iter()) {
                *yi += vp * ci;
            }
        }
        let scale = 2.0 / v_norm_sq;
        for (p, &vp) in refl.iter().enumerate() {
            let f = scale * vp;
            for (ci, &yi) in prod.col_mut(k + p).iter_mut().zip(y.iter()) {
                *ci -= f * yi;
            }
        }
    }
    let mut b64 = Matrix::<f64>::zeros(m, n);
    for (t, &slot) in live.iter().enumerate() {
        b64.col_mut(slot).copy_from_slice(b_live.col(t));
    }
    for (t, &slot) in dead.iter().enumerate() {
        b64.col_mut(slot).copy_from_slice(prod.col(r + t));
    }
    let mut v_seed = v_seed64.cast::<T>();
    for &j in &live {
        v_seed.col_mut(j).copy_from_slice(v_prev.col(j));
    }
    Ok((b64.cast::<T>(), v_seed))
}

/// One-sided Jacobi seeded from a cached right basis.
///
/// Forms `B = A·V_prev` (in `f64`, so the seeding GEMM adds no rounding
/// of its own), sweeps `B` to convergence, and returns the SVD of `A`
/// with `v = Some(V_prev·V_B)`. When `A` is close to the matrix
/// `V_prev` was computed from, `B`'s columns are already nearly
/// orthogonal and the iteration converges in one or two sweeps — the
/// returned [`SvdResult::sweeps`] says how many it actually took.
///
/// Zero columns in `v_prev` (the [`SvdResult::recover_v`] noise gate
/// leaves them behind a rank-deficient solve) are completed to a full
/// rotation before seeding, so update components outside the previous
/// numerical row space remain visible to the iteration.
///
/// # Errors
///
/// * [`SvdError::DimensionMismatch`] when `v_prev` is not square with
///   side `a.cols()`.
/// * [`SvdError::NonFinite`] for non-finite input.
/// * Whatever the inner [`hestenes_jacobi`] returns (e.g.
///   [`SvdError::NotConverged`]).
pub fn warm_start<T: Real>(
    a: &Matrix<T>,
    v_prev: &Matrix<T>,
    opts: &JacobiOptions,
) -> Result<SvdResult<T>, SvdError> {
    let n = a.cols();
    if v_prev.rows() != n || v_prev.cols() != n {
        return Err(SvdError::DimensionMismatch(format!(
            "warm-start basis must be {n}x{n}, got {}x{}",
            v_prev.rows(),
            v_prev.cols()
        )));
    }
    if !a.is_finite() || !v_prev.is_finite() {
        return Err(SvdError::NonFinite);
    }
    // A cached basis can carry zero columns where `recover_v` gated a
    // noise-floor σ. Those mark rank deficiency, not directions —
    // seeding with them would annihilate every update component outside
    // the previous numerical row space (`B = A·V_prev` never sees it),
    // silently dropping singular directions the update introduced.
    // `warm_seed` completes the basis to a full rotation and forms the
    // f64 seeding product structurally (O(m·n·r) for r live columns).
    let (b, v_seed) = warm_seed(a, v_prev)?;
    // `compute_v` tracks the extra rotations; it is incompatible with
    // the adaptive memo, and a warm start needs neither (the whole
    // point is that one or two plain sweeps suffice).
    let inner_opts = JacobiOptions {
        compute_v: true,
        adaptive: false,
        ..*opts
    };
    let solved = hestenes_jacobi(&b, &inner_opts)?;
    let v_b = solved
        .v
        .as_ref()
        .expect("compute_v was set, so v is present");
    let v = v_seed.matmul(v_b)?;
    Ok(SvdResult {
        u: solved.u,
        sigma: solved.sigma,
        v: Some(v),
        sweeps: solved.sweeps,
        history: solved.history,
    })
}

/// Brand-style rank-`k` update of a cached rank-`r` truncated SVD.
///
/// Given `A_prev ≈ U·Σ·Vᵀ` (the cached factors) and
/// `A_new = A_prev + C·Wᵀ`, projects the update onto the cached bases
/// plus their orthogonal complements (`P = orth(C − U·UᵀC)`,
/// `Q = orth(W − V·VᵀW)`), factors the small `(r+k)×(r+k)` core
/// `K = diag(Σ, 0) + [UᵀC; R_P]·[VᵀW; R_Q]ᵀ`, and rotates the bases:
/// `U' = [U P]·U_K`, `V' = [V Q]·V_K`. The result is re-truncated to
/// rank `r`, with the discarded energy folded into
/// [`TruncatedSvd::tail_sigma`]. The full matrix is never touched —
/// cost is `O((m+n)·(r+k)²)` against the cold path's `O(m·n²)`.
///
/// # Errors
///
/// * [`SvdError::DimensionMismatch`] when the factor shapes disagree
///   with the cached factors, or `r + k` exceeds either matrix
///   dimension (the update is not "low-rank" for this problem).
/// * [`SvdError::NonFinite`] for non-finite update factors.
/// * Whatever the inner [`hestenes_jacobi`] on the core returns.
pub fn lowrank_update<T: Real>(
    cached: &TruncatedSvd<T>,
    delta: &DeltaFactor<T>,
    opts: &JacobiOptions,
) -> Result<TruncatedSvd<T>, SvdError> {
    let (m, n, r) = (cached.rows(), cached.cols(), cached.rank());
    let k = delta.c.cols();
    if delta.c.rows() != m || delta.w.rows() != n || delta.w.cols() != k || k == 0 {
        return Err(SvdError::DimensionMismatch(format!(
            "delta factors {}x{} / {}x{} do not update cached {m}x{n} rank-{r} factors",
            delta.c.rows(),
            delta.c.cols(),
            delta.w.rows(),
            delta.w.cols()
        )));
    }
    if r + k > m || r + k > n {
        return Err(SvdError::DimensionMismatch(format!(
            "augmented rank {} exceeds matrix dimension {}x{}",
            r + k,
            m,
            n
        )));
    }
    if !delta.c.is_finite() || !delta.w.is_finite() {
        return Err(SvdError::NonFinite);
    }

    // Project the update onto the cached bases and their complements.
    let ut_c = cached.u.transpose().matmul(&delta.c)?; // r × k
    let c_perp = delta.c.sub(&cached.u.matmul(&ut_c)?)?;
    let qr_c = householder_qr(&c_perp)?; // P: m×k, R_P: k×k
    let vt_w = cached.v.transpose().matmul(&delta.w)?; // r × k
    let w_perp = delta.w.sub(&cached.v.matmul(&vt_w)?)?;
    let qr_w = householder_qr(&w_perp)?; // Q: n×k, R_Q: k×k

    // Core: K = diag(Σ, 0) + [UᵀC; R_P]·[VᵀW; R_Q]ᵀ.
    let dim = r + k;
    let left = Matrix::from_fn(dim, k, |i, j| {
        if i < r {
            ut_c[(i, j)]
        } else {
            qr_c.r[(i - r, j)]
        }
    });
    let right = Matrix::from_fn(dim, k, |i, j| {
        if i < r {
            vt_w[(i, j)]
        } else {
            qr_w.r[(i - r, j)]
        }
    });
    let mut core = left.matmul(&right.transpose())?;
    for i in 0..r {
        core[(i, i)] += cached.sigma[i];
    }
    let core_opts = JacobiOptions {
        compute_v: true,
        adaptive: false,
        ..*opts
    };
    let small = hestenes_jacobi(&core, &core_opts)?;
    let small_v = small.v.as_ref().expect("compute_v was set");

    // Keep the top r of the r+k rotated directions.
    let order = {
        let mut idx: Vec<usize> = (0..dim).collect();
        idx.sort_by(|&a, &b| small.sigma[b].partial_cmp(&small.sigma[a]).unwrap());
        idx
    };
    let u_keep = Matrix::from_fn(dim, r, |i, j| small.u[(i, order[j])]);
    let v_keep = Matrix::from_fn(dim, r, |i, j| small_v[(i, order[j])]);
    let up = Matrix::from_fn(m, dim, |i, j| {
        if j < r {
            cached.u[(i, j)]
        } else {
            qr_c.q[(i, j - r)]
        }
    });
    let vq = Matrix::from_fn(n, dim, |i, j| {
        if j < r {
            cached.v[(i, j)]
        } else {
            qr_w.q[(i, j - r)]
        }
    });
    let u = up.matmul(&u_keep)?;
    let v = vq.matmul(&v_keep)?;
    let sigma: Vec<T> = order[..r].iter().map(|&i| small.sigma[i]).collect();

    // Energy bookkeeping: discarded core directions join the tail.
    let dropped_sq: f64 = order[r..]
        .iter()
        .map(|&i| small.sigma[i].to_f64().powi(2))
        .sum();
    let tail_sq = cached.tail_sigma.to_f64().powi(2) + dropped_sq;
    let kept_sq: f64 = sigma.iter().map(|s| s.to_f64().powi(2)).sum();
    let total_sq = kept_sq + tail_sq;
    Ok(TruncatedSvd {
        u,
        sigma,
        v,
        tail_sigma: T::from_f64(tail_sq.sqrt()),
        retained_energy: if total_sq > 0.0 {
            kept_sq / total_sq
        } else {
            1.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;

    fn pseudo(m: usize, n: usize, seed: u64) -> Matrix<f64> {
        Matrix::from_fn(m, n, |r, c| {
            let x = (r as u64)
                .wrapping_mul(6364136223846793005)
                .wrapping_add((c as u64).wrapping_mul(1442695040888963407))
                .wrapping_add(seed.wrapping_mul(2862933555777941757));
            let z = x ^ (x >> 29);
            (z % 4096) as f64 / 2048.0 - 1.0 + if r == c { 1.5 } else { 0.0 }
        })
    }

    /// A matrix with geometrically decaying spectrum (`σ_i ≈ ρ^i`).
    fn decaying(n: usize, rho: f64, seed: u64) -> Matrix<f64> {
        let q = householder_qr(&pseudo(n, n, seed)).unwrap().q;
        let p = householder_qr(&pseudo(n, n, seed ^ 0xABCD)).unwrap().q;
        let mut scaled = q.clone();
        for j in 0..n {
            let s = rho.powi(j as i32);
            for x in scaled.col_mut(j) {
                *x *= s;
            }
        }
        scaled.matmul(&p.transpose()).unwrap()
    }

    fn opts() -> JacobiOptions {
        JacobiOptions {
            precision: 1e-10,
            ..Default::default()
        }
    }

    fn solve_cold(a: &Matrix<f64>) -> SvdResult<f64> {
        hestenes_jacobi(a, &opts()).unwrap()
    }

    fn perturb_cols(a: &Matrix<f64>, cols: &[usize], scale: f64, seed: u64) -> Matrix<f64> {
        let mut out = a.clone();
        for (t, &j) in cols.iter().enumerate() {
            for (i, x) in out.col_mut(j).iter_mut().enumerate() {
                let noise = pseudo(a.rows(), 1, seed.wrapping_add(t as u64))[(i, 0)];
                *x += scale * noise;
            }
        }
        out
    }

    #[test]
    fn warm_start_matches_cold_after_small_update() {
        let a0 = pseudo(24, 16, 1);
        let cold0 = solve_cold(&a0);
        let v_prev = cold0.recover_v(&a0).unwrap();
        let a1 = perturb_cols(&a0, &[2, 9], 0.05, 7);
        let warm = warm_start(&a1, &v_prev, &opts()).unwrap();
        let cold1 = solve_cold(&a1);
        let err = verify::singular_value_error(
            &cold1.sorted_singular_values(),
            &warm.sorted_singular_values(),
        );
        assert!(err < 10.0 * opts().precision, "sv error {err}");
        // The composed V actually reconstructs A.
        let v = warm.v.as_ref().unwrap();
        assert!(verify::reconstruction_error(&a1, &warm.u, &warm.sigma, v) < 1e-8);
        assert!(verify::column_orthogonality_error(v) < 1e-8);
    }

    #[test]
    fn warm_start_saves_sweeps() {
        let a0 = pseudo(32, 32, 3);
        let v_prev = solve_cold(&a0).recover_v(&a0).unwrap();
        let a1 = perturb_cols(&a0, &[0], 0.01, 11);
        let warm = warm_start(&a1, &v_prev, &opts()).unwrap();
        let cold = solve_cold(&a1);
        assert!(
            warm.sweeps < cold.sweeps,
            "warm {} vs cold {} sweeps",
            warm.sweeps,
            cold.sweeps
        );
        assert!(warm.sweeps <= 4, "warm start took {} sweeps", warm.sweeps);
    }

    #[test]
    fn warm_start_handles_ill_conditioned_updates() {
        // Spectrum spanning 10 orders of magnitude.
        let a0 = decaying(16, 0.2, 5);
        let v_prev = solve_cold(&a0).recover_v(&a0).unwrap();
        let a1 = perturb_cols(&a0, &[3], 1e-4, 9);
        let warm = warm_start(&a1, &v_prev, &opts()).unwrap();
        let cold = solve_cold(&a1);
        let err = verify::singular_value_error(
            &cold.sorted_singular_values(),
            &warm.sorted_singular_values(),
        );
        assert!(err < 10.0 * opts().precision, "sv error {err}");
    }

    #[test]
    fn warm_start_handles_rank_deficient_updates() {
        // Two identical columns: the previous basis has a zeroed column
        // from the `recover_v` noise gate; the warm solve must stay
        // finite and accurate.
        let base = pseudo(20, 8, 13);
        let a0 = Matrix::from_fn(20, 8, |r, c| base[(r, c.min(6))]);
        let v_prev = solve_cold(&a0).recover_v(&a0).unwrap();
        let a1 = perturb_cols(&a0, &[1], 0.02, 17);
        let warm = warm_start(&a1, &v_prev, &opts()).unwrap();
        assert!(warm.u.is_finite());
        let cold = solve_cold(&a1);
        let err = verify::singular_value_error(
            &cold.sorted_singular_values(),
            &warm.sorted_singular_values(),
        );
        assert!(err < 10.0 * opts().precision, "sv error {err}");
    }

    #[test]
    fn complete_basis_restores_orthogonality() {
        // A rank-6 basis in R^32: 26 dead columns, completed in
        // O(n²·r). The result must be orthogonal and preserve the live
        // columns exactly.
        let n = 32;
        let r = 6;
        let q = householder_qr(&pseudo(n, r, 71)).unwrap().q;
        let mut v_prev = Matrix::<f64>::zeros(n, n);
        for j in 0..r {
            v_prev.col_mut(2 * j).copy_from_slice(q.col(j));
        }
        let completed = complete_basis(&v_prev).unwrap();
        assert!(verify::column_orthogonality_error(&completed) < 1e-12);
        for j in 0..r {
            assert_eq!(completed.col(2 * j), v_prev.col(2 * j), "live col moved");
        }
        // Full-rank input passes through untouched; empty input is the
        // identity.
        let full = householder_qr(&pseudo(n, n, 73)).unwrap().q;
        assert_eq!(complete_basis(&full).unwrap(), full);
        assert_eq!(
            complete_basis(&Matrix::<f64>::zeros(4, 4)).unwrap(),
            Matrix::<f64>::identity(4)
        );
    }

    #[test]
    fn warm_start_rejects_bad_basis_shapes() {
        let a = pseudo(8, 8, 1);
        let v = Matrix::<f64>::identity(4);
        assert!(matches!(
            warm_start(&a, &v, &opts()),
            Err(SvdError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn column_update_is_detected_and_matches_direct() {
        // ρ = 0.25 keeps the rank-12 truncation tail (σ₁₃/σ₁ ≈ 6e-8)
        // well under the 1e-6 gate, so the measured error is the Brand
        // update's own.
        let a0 = decaying(16, 0.25, 21);
        let cached = solve_cold(&a0).truncate(&a0, 12).unwrap();
        let a1 = perturb_cols(&a0, &[4, 11], 0.01, 23);
        let delta = a1.sub(&a0).unwrap();
        let factor = factor_delta(&delta, 4).expect("column update is rank 2");
        assert_eq!(factor.c.cols(), 2);
        let bumped = lowrank_update(&cached, &factor, &opts()).unwrap();
        let direct = solve_cold(&a1);
        let golden = direct.sorted_singular_values();
        let err = verify::singular_value_error(&golden[..12], &bumped.sigma);
        assert!(err < 1e-6, "sv error {err}");
        // The bumped factors reconstruct A_new up to the truncated tail.
        let recon_err =
            a1.sub(&bumped.reconstruct()).unwrap().frobenius_norm() / a1.frobenius_norm();
        assert!(recon_err < 1e-4, "reconstruction error {recon_err}");
    }

    #[test]
    fn row_and_dense_rank1_updates_are_detected() {
        // n = 24 leaves room for the randomized probe's r + k ≤ n bound
        // (rank 12 + 8 probe columns), and ρ = 0.25 keeps the truncation
        // tail under the gate.
        let a0 = decaying(24, 0.25, 31);
        // Row update: perturb two rows.
        let mut a_row = a0.clone();
        for j in 0..24 {
            a_row[(3, j)] += 0.01 * ((j * 7 % 5) as f64 - 2.0);
            a_row[(8, j)] += 0.02 * ((j * 3 % 7) as f64 - 3.0);
        }
        let row_factor = factor_delta(&a_row.sub(&a0).unwrap(), 4).expect("row update");
        assert_eq!(row_factor.c.cols(), 2);
        // Dense rank-1 bump: Δ = x·yᵀ touches every entry.
        let x = pseudo(24, 1, 41);
        let y = pseudo(24, 1, 43);
        let bump = x.matmul(&y.transpose()).unwrap().scaled(0.01);
        let dense_factor = factor_delta(&bump, 4).expect("rank-1 bump");
        // The oversampled probe must not leak into the returned factor:
        // a rank-1 delta factors with exactly one column.
        assert_eq!(dense_factor.c.cols(), 1);
        let cached = solve_cold(&a0).truncate(&a0, 12).unwrap();
        let bumped = lowrank_update(&cached, &dense_factor, &opts()).unwrap();
        let a1 = Matrix::from_fn(24, 24, |r, c| a0[(r, c)] + bump[(r, c)]);
        let golden = solve_cold(&a1).sorted_singular_values();
        let err = verify::singular_value_error(&golden[..12], &bumped.sigma);
        assert!(err < 1e-6, "sv error {err}");
    }

    #[test]
    fn factor_delta_rejects_high_rank_deltas() {
        let dense = pseudo(16, 16, 51);
        assert!(factor_delta(&dense, 4).is_none());
        assert!(factor_delta(&Matrix::<f64>::zeros(8, 8), 4).is_none());
        // A dense rank-4 delta must not squeeze through a rank-2 budget
        // by riding on the probe's oversampling columns.
        let g = pseudo(16, 4, 53);
        let h = pseudo(16, 4, 57);
        let rank4 = g.matmul(&h.transpose()).unwrap();
        assert!(factor_delta(&rank4, 2).is_none());
        let at_budget = factor_delta(&rank4, 4).expect("rank-4 delta within budget");
        assert_eq!(at_budget.c.cols(), 4);
    }

    #[test]
    fn classify_routes_by_staleness() {
        let a0 = pseudo(12, 8, 61);
        let bound = StalenessBound::default();
        // Identical resubmission: rank-0 low-rank.
        let same = classify_update(&a0, &a0, 0, &bound, 4).unwrap();
        assert_eq!(same.route, UpdateRoute::LowRank { rank: 0 });
        assert_eq!(same.delta_rel, 0.0);
        // Small column perturbation: low-rank with the factored delta.
        let a1 = perturb_cols(&a0, &[2], 0.01, 63);
        let low = classify_update(&a1, &a0, 0, &bound, 4).unwrap();
        assert_eq!(low.route, UpdateRoute::LowRank { rank: 1 });
        assert!(low.factor.is_some());
        // Same delta with the warm budget exhausted: full recompute.
        let tired = classify_update(&a1, &a0, bound.max_warm_solves, &bound, 4).unwrap();
        assert_eq!(
            tired.route,
            UpdateRoute::Full(FallbackReason::WarmBudgetExhausted)
        );
        // Huge delta: full recompute.
        let far = perturb_cols(&a0, &(0..8).collect::<Vec<_>>(), 2.0, 65);
        let stale = classify_update(&far, &a0, 0, &bound, 4).unwrap();
        assert_eq!(
            stale.route,
            UpdateRoute::Full(FallbackReason::DeltaTooLarge)
        );
        assert!(stale.delta_rel > bound.max_delta_rel);
        // Shape change: full recompute.
        let wide = pseudo(12, 4, 67);
        let reshaped = classify_update(&wide, &a0, 0, &bound, 4).unwrap();
        assert_eq!(
            reshaped.route,
            UpdateRoute::Full(FallbackReason::ShapeChanged)
        );
        // Moderate dense delta inside the bound but above the rank
        // budget: warm start.
        let dense = Matrix::from_fn(12, 8, |r, c| a0[(r, c)] + 0.02 * pseudo(12, 8, 69)[(r, c)]);
        let warm = classify_update(&dense, &a0, 0, &bound, 2).unwrap();
        assert_eq!(warm.route, UpdateRoute::WarmStart);
    }

    #[test]
    fn lowrank_update_rejects_mismatched_shapes() {
        let a0 = decaying(12, 0.5, 71);
        let cached = solve_cold(&a0).truncate(&a0, 6).unwrap();
        let bad = DeltaFactor {
            c: Matrix::<f64>::zeros(10, 2),
            w: Matrix::<f64>::zeros(12, 2),
        };
        assert!(lowrank_update(&cached, &bad, &opts()).is_err());
        // Augmented rank exceeding the dimension is rejected too.
        let too_big = DeltaFactor {
            c: Matrix::<f64>::identity(12).columns_range(0, 8),
            w: Matrix::<f64>::identity(12).columns_range(0, 8),
        };
        assert!(lowrank_update(&cached, &too_big, &opts()).is_err());
    }
}
