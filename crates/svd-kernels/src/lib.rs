#![warn(missing_docs)]

//! Dense linear algebra and reference SVD kernels.
//!
//! This crate is the mathematical substrate of the HeteroSVD reproduction.
//! It provides:
//!
//! * [`Matrix`] — a column-major dense matrix over [`Real`] scalars
//!   (`f32`/`f64`). Column-major storage mirrors the column-vector view of
//!   the one-sided Jacobi method, where every operation touches whole
//!   columns.
//! * [`rotation`] — the two-sided plane rotation of Eq. (3)–(5) of the
//!   paper, computed from the three inner products of a column pair.
//! * [`adaptive`] — threshold-Jacobi gating and dirty-column pair
//!   skipping: the convergence-adaptive sweep state shared by the host
//!   solvers and the accelerator's functional pipeline.
//! * [`jacobi`] — the reference one-sided Hestenes–Jacobi SVD, the golden
//!   model every accelerator result is checked against.
//! * [`block`] — matrix blocking utilities and the block-Jacobi driver
//!   (Algorithm 1's software analog) used for large problems.
//! * [`approx`] — right-singular-vector recovery and Eckart–Young
//!   low-rank approximation on top of an accelerator factorization.
//! * [`incremental`] — warm-start Jacobi seeding from a cached right
//!   basis and Brand-style low-rank updates of truncated factors, with
//!   the staleness classifier that routes between them and a full
//!   recompute.
//! * [`io`] — CSV matrix reading/writing (the `hsvd` CLI's format).
//! * [`qr`] — Householder QR and QR-preconditioned SVD for tall
//!   matrices (a classic block-Jacobi acceleration).
//! * [`verify`] — reconstruction-error and orthogonality checks.
//!
//! # Example
//!
//! ```
//! use svd_kernels::{jacobi, Matrix};
//!
//! # fn main() -> Result<(), svd_kernels::SvdError> {
//! let a = Matrix::from_fn(8, 8, |r, c| 1.0 / (1.0 + r as f64 + c as f64));
//! let svd = jacobi::hestenes_jacobi(&a, &jacobi::JacobiOptions::default())?;
//! assert!(svd.reconstruction_error(&a) < 1e-10);
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod approx;
pub mod block;
pub mod incremental;
pub mod io;
pub mod jacobi;
pub mod matrix;
pub mod parallel;
pub mod qr;
pub mod rotation;
pub mod scalar;
pub mod simd;
pub mod verify;

mod error;

pub use approx::TruncatedSvd;
pub use block::{BlockJacobiOptions, BlockPairSchedule, BlockPartition};
pub use error::SvdError;
pub use incremental::{
    classify_update, factor_delta, lowrank_update, warm_start, DeltaFactor, FallbackReason,
    StalenessBound, UpdateClass, UpdateRoute,
};
pub use jacobi::{hestenes_jacobi, JacobiOptions, SvdResult, SweepStats};
pub use matrix::Matrix;
pub use rotation::JacobiRotation;
pub use scalar::Real;
