//! Reference one-sided Hestenes–Jacobi SVD.
//!
//! This is the golden model for the whole workspace: a straightforward,
//! numerically careful `f64` implementation of the algorithm the HeteroSVD
//! accelerator realizes in hardware. The accelerator's output is validated
//! against [`hestenes_jacobi`] in the integration tests.
//!
//! The method (Eq. 2 of the paper): repeatedly orthogonalize all column
//! pairs of `B := A·V` with plane rotations until every pair satisfies the
//! convergence criterion of Eq. (6); then `Σ = sqrt(diag(BᵀB))` and
//! `U = B·Σ⁻¹` (Eq. 7).

use crate::adaptive::{did_rotate, sweep_threshold, AdaptiveState};
use crate::matrix::Matrix;
use crate::rotation::{apply_rotation, column_products};
use crate::scalar::Real;
use crate::verify;
use crate::SvdError;
use serde::{Deserialize, Serialize};

/// Pair-enumeration order used inside a sweep of the reference solver.
///
/// The hardware-oriented orderings (ring / shifting ring) live in the
/// `svd-orderings` crate; both produce mathematically equivalent sweeps, so
/// the reference solver only distinguishes the two classic software orders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepOrder {
    /// Row-cyclic `(0,1), (0,2), …, (n−2, n−1)`.
    #[default]
    Cyclic,
    /// Brent–Luk round-robin tournament: `n−1` rounds of `n/2` disjoint
    /// pairs, the order a systolic array executes.
    RoundRobin,
}

/// Options controlling the reference Jacobi iteration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JacobiOptions {
    /// Convergence threshold for Eq. (6); the sweep loop stops when the
    /// largest pairwise measure falls below it. Paper experiments use
    /// `1e-6` (§V-B).
    pub precision: f64,
    /// Hard cap on the number of sweeps.
    pub max_sweeps: usize,
    /// Pair enumeration order.
    pub order: SweepOrder,
    /// Accumulate the right singular vectors `V`. Algorithm 1 outputs only
    /// `U` and `Σ` (the paper's applications need the column space), so the
    /// accelerator skips `V`; the reference can produce it for verification.
    pub compute_v: bool,
    /// Run convergence-adaptive sweeps: threshold-Jacobi gating plus
    /// dirty-column pair skipping (see [`crate::adaptive`]). The golden
    /// model defaults to exact sweeps; the adaptive engine exists here so
    /// properties of the accelerator's gating can be validated in `f64`.
    /// Incompatible with `compute_v` (Algorithm 1 does not accumulate `V`).
    pub adaptive: bool,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        JacobiOptions {
            precision: 1e-12,
            max_sweeps: 60,
            order: SweepOrder::Cyclic,
            compute_v: true,
            adaptive: false,
        }
    }
}

impl JacobiOptions {
    /// Options matching the paper's experimental setup: convergence at
    /// `1e-6` (§V-B), no `V` accumulation (Algorithm 1).
    pub fn paper() -> Self {
        JacobiOptions {
            precision: 1e-6,
            max_sweeps: 30,
            order: SweepOrder::RoundRobin,
            compute_v: false,
            adaptive: false,
        }
    }
}

/// Per-sweep convergence statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Sweep index (0-based).
    pub sweep: usize,
    /// Largest Eq. (6) measure observed during the sweep.
    pub max_convergence: f64,
    /// Number of non-identity rotations applied.
    pub rotations: usize,
}

/// Result of an SVD factorization `A = U·Σ·Vᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvdResult<T = f64> {
    /// Left singular vectors, `m × n` with orthonormal columns (columns
    /// corresponding to zero singular values are zero).
    pub u: Matrix<T>,
    /// Singular values in the order produced by the iteration
    /// (not sorted; use [`SvdResult::sorted_singular_values`]).
    pub sigma: Vec<T>,
    /// Right singular vectors, `n × n`, when requested.
    pub v: Option<Matrix<T>>,
    /// Number of sweeps executed until convergence.
    pub sweeps: usize,
    /// Convergence history, one entry per sweep.
    pub history: Vec<SweepStats>,
}

impl<T: Real> SvdResult<T> {
    /// Singular values sorted descending.
    pub fn sorted_singular_values(&self) -> Vec<T> {
        let mut s = self.sigma.clone();
        s.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
        s
    }

    /// Relative reconstruction error `‖A − UΣVᵀ‖_F / ‖A‖_F`.
    ///
    /// Requires `V`; when `V` was not accumulated this falls back to the
    /// weaker invariant check `‖AᵀA − VΣ²Vᵀ‖`-free variant: it compares the
    /// Frobenius norm of `A` against `‖Σ‖₂` (the rotations are orthogonal,
    /// so the norms must agree).
    pub fn reconstruction_error(&self, a: &Matrix<T>) -> f64 {
        match &self.v {
            Some(v) => verify::reconstruction_error(a, &self.u, &self.sigma, v),
            None => {
                let norm_a = a.frobenius_norm();
                if norm_a == 0.0 {
                    return 0.0;
                }
                let norm_sigma = self
                    .sigma
                    .iter()
                    .map(|s| {
                        let x = s.to_f64();
                        x * x
                    })
                    .sum::<f64>()
                    .sqrt();
                (norm_a - norm_sigma).abs() / norm_a
            }
        }
    }
}

/// Generates the Brent–Luk round-robin tournament schedule for `n` players:
/// `n−1` rounds, each a set of `⌊n/2⌋` disjoint pairs, covering all
/// `n(n−1)/2` pairs exactly once. For odd `n` a bye slot is inserted.
pub fn round_robin_rounds(n: usize) -> Vec<Vec<(usize, usize)>> {
    if n < 2 {
        return Vec::new();
    }
    let even_n = if n.is_multiple_of(2) { n } else { n + 1 };
    // Circle method: player 0 fixed, others rotate.
    let mut circle: Vec<usize> = (1..even_n).collect();
    let mut rounds = Vec::with_capacity(even_n - 1);
    for _ in 0..even_n - 1 {
        let mut pairs = Vec::with_capacity(even_n / 2);
        let first = (0usize, circle[even_n - 2]);
        if first.1 < n {
            pairs.push((first.0.min(first.1), first.0.max(first.1)));
        }
        for k in 0..(even_n / 2 - 1) {
            let a = circle[k];
            let b = circle[even_n - 3 - k];
            if a < n && b < n {
                pairs.push((a.min(b), a.max(b)));
            }
        }
        rounds.push(pairs);
        circle.rotate_right(1);
    }
    rounds
}

/// Runs the reference one-sided Hestenes–Jacobi SVD.
///
/// # Errors
///
/// * [`SvdError::DimensionMismatch`] when `A` has more columns than rows
///   (the one-sided method requires `m ≥ n`; transpose the input instead).
/// * [`SvdError::NonFinite`] when `A` contains NaN/∞.
/// * [`SvdError::NotConverged`] when the sweep budget is exhausted before
///   reaching `opts.precision`.
///
/// # Example
///
/// ```
/// use svd_kernels::{hestenes_jacobi, JacobiOptions, Matrix};
///
/// # fn main() -> Result<(), svd_kernels::SvdError> {
/// let a = Matrix::from_fn(4, 3, |r, c| (r as f64 + 1.0) * (c as f64 + 1.0) + r as f64);
/// let svd = hestenes_jacobi(&a, &JacobiOptions::default())?;
/// assert!(svd.reconstruction_error(&a) < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn hestenes_jacobi<T: Real>(
    a: &Matrix<T>,
    opts: &JacobiOptions,
) -> Result<SvdResult<T>, SvdError> {
    if a.rows() < a.cols() {
        return Err(SvdError::DimensionMismatch(format!(
            "one-sided jacobi requires rows >= cols, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if !a.is_finite() {
        return Err(SvdError::NonFinite);
    }
    if opts.precision <= 0.0 {
        return Err(SvdError::InvalidParameter(
            "precision must be positive".into(),
        ));
    }
    if opts.adaptive && opts.compute_v {
        return Err(SvdError::InvalidParameter(
            "adaptive sweeps do not accumulate V; set compute_v = false".into(),
        ));
    }

    let n = a.cols();
    let mut b = a.clone();
    let floor_sq = a.column_norm_floor_sq();
    let mut v = opts.compute_v.then(|| Matrix::<T>::identity(n));
    let mut adaptive_state = opts.adaptive.then(|| AdaptiveState::<T>::new(n));
    let mut history = Vec::new();

    let rr_rounds = match opts.order {
        SweepOrder::RoundRobin => Some(round_robin_rounds(n)),
        SweepOrder::Cyclic => None,
    };

    let mut converged = false;
    let mut sweeps = 0;
    for sweep in 0..opts.max_sweeps {
        let mut max_conv = 0.0_f64;
        let mut rotations = 0usize;

        if let Some(state) = adaptive_state.as_mut() {
            let prev = history.last().map(|h: &SweepStats| h.max_convergence);
            state.set_threshold(T::from_f64(sweep_threshold(prev, opts.precision)));
        }

        let mut do_pair = |b: &mut Matrix<T>, v: &mut Option<Matrix<T>>, i: usize, j: usize| {
            if let Some(state) = adaptive_state.as_mut() {
                // Adaptive path: memo-skip clean converged pairs, gate
                // sub-threshold rotations. The returned measure is exact
                // either way, so the convergence test below is unchanged.
                let conv = state.visit(b, i, j, floor_sq);
                max_conv = max_conv.max(conv.to_f64());
                if did_rotate(conv, state.threshold()) {
                    rotations += 1;
                }
                return;
            }
            let (alpha, beta, gamma) = {
                let (ci, cj) = b.col_pair_mut(i, j);
                column_products(ci, cj)
            };
            let rot = crate::rotation::compute_rotation_gated(alpha, beta, gamma, floor_sq);
            max_conv = max_conv.max(rot.convergence.to_f64());
            if !rot.identity {
                rotations += 1;
                let (ci, cj) = b.col_pair_mut(i, j);
                apply_rotation(ci, cj, rot);
                if let Some(v) = v.as_mut() {
                    let (vi, vj) = v.col_pair_mut(i, j);
                    apply_rotation(vi, vj, rot);
                }
            }
        };

        match &rr_rounds {
            Some(rounds) => {
                for round in rounds {
                    for &(i, j) in round {
                        do_pair(&mut b, &mut v, i, j);
                    }
                }
            }
            None => {
                for i in 0..n {
                    for j in i + 1..n {
                        do_pair(&mut b, &mut v, i, j);
                    }
                }
            }
        }

        history.push(SweepStats {
            sweep,
            max_convergence: max_conv,
            rotations,
        });
        sweeps = sweep + 1;
        if max_conv < opts.precision {
            converged = true;
            break;
        }
    }

    if !converged && n > 1 {
        let last = history.last().map(|h| h.max_convergence).unwrap_or(0.0);
        if last >= opts.precision {
            return Err(SvdError::NotConverged {
                sweeps,
                off_diagonal: last,
            });
        }
    }

    let (u, sigma) = normalize(&b);
    Ok(SvdResult {
        u,
        sigma,
        v,
        sweeps,
        history,
    })
}

/// Normalization stage (Eq. 7): `σⱼ = ‖bⱼ‖₂`, `uⱼ = bⱼ / σⱼ`.
///
/// Columns with zero norm yield `σⱼ = 0` and a zero `uⱼ`. This is the exact
/// unit of work performed by one norm-AIE invocation (Algorithm 1,
/// lines 21–24).
pub fn normalize<T: Real>(b: &Matrix<T>) -> (Matrix<T>, Vec<T>) {
    let mut u = b.clone();
    let mut sigma = Vec::with_capacity(b.cols());
    for j in 0..b.cols() {
        let col = u.col_mut(j);
        let norm_sq: T = col.iter().map(|&x| x * x).sum();
        let norm = norm_sq.sqrt();
        sigma.push(norm);
        if norm > T::ZERO {
            let inv = T::ONE / norm;
            for x in col.iter_mut() {
                *x *= inv;
            }
        }
    }
    (u, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix(m: usize, n: usize) -> Matrix<f64> {
        // Deterministic, well-conditioned test matrix.
        Matrix::from_fn(m, n, |r, c| {
            ((r * 37 + c * 101 + 13) % 29) as f64 / 7.0 - 2.0 + if r == c { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn factorizes_small_square_matrix() {
        let a = sample_matrix(6, 6);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert!(svd.reconstruction_error(&a) < 1e-10);
        assert!(verify::column_orthogonality_error(&svd.u) < 1e-10);
    }

    #[test]
    fn factorizes_rectangular_matrix() {
        let a = sample_matrix(10, 4);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert!(svd.reconstruction_error(&a) < 1e-10);
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = sample_matrix(3, 5);
        let err = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap_err();
        assert!(matches!(err, SvdError::DimensionMismatch(_)));
    }

    #[test]
    fn rejects_non_finite_input() {
        let mut a = sample_matrix(4, 4);
        a[(2, 2)] = f64::INFINITY;
        assert!(matches!(
            hestenes_jacobi(&a, &JacobiOptions::default()),
            Err(SvdError::NonFinite)
        ));
    }

    #[test]
    fn rejects_nonpositive_precision() {
        let a = sample_matrix(4, 4);
        let opts = JacobiOptions {
            precision: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            hestenes_jacobi(&a, &opts),
            Err(SvdError::InvalidParameter(_))
        ));
    }

    #[test]
    fn singular_values_match_known_diagonal() {
        // diag(3, 2, 1): singular values are exactly 3, 2, 1.
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 2.0;
        a[(2, 2)] = 1.0;
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let s = svd.sorted_singular_values();
        assert!((s[0] - 3.0).abs() < 1e-12);
        assert!((s[1] - 2.0).abs() < 1e-12);
        assert!((s[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2_singular_values() {
        // A = [[3, 0], [4, 5]]: σ = sqrt(45 ± sqrt(45² - 4·225))/sqrt(2)
        //   = {sqrt(45+sqrt(1125))/sqrt(2)... } use exact: σ₁σ₂=|det|=15, σ₁²+σ₂²=50.
        let a = Matrix::from_column_major(2, 2, vec![3.0, 4.0, 0.0, 5.0]).unwrap();
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let s = svd.sorted_singular_values();
        assert!((s[0] * s[1] - 15.0).abs() < 1e-10);
        assert!((s[0] * s[0] + s[1] * s[1] - 50.0).abs() < 1e-10);
    }

    #[test]
    fn round_robin_covers_all_pairs_even() {
        let n = 8;
        let rounds = round_robin_rounds(n);
        assert_eq!(rounds.len(), n - 1);
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            assert_eq!(round.len(), n / 2);
            let mut used = std::collections::HashSet::new();
            for &(i, j) in round {
                assert!(i < j);
                assert!(used.insert(i), "index {i} reused within a round");
                assert!(used.insert(j), "index {j} reused within a round");
                assert!(seen.insert((i, j)), "pair ({i},{j}) repeated");
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn round_robin_covers_all_pairs_odd() {
        let n = 7;
        let rounds = round_robin_rounds(n);
        let total: usize = rounds.iter().map(|r| r.len()).sum();
        assert_eq!(total, n * (n - 1) / 2);
    }

    #[test]
    fn round_robin_degenerate_sizes() {
        assert!(round_robin_rounds(0).is_empty());
        assert!(round_robin_rounds(1).is_empty());
        let r2 = round_robin_rounds(2);
        assert_eq!(r2, vec![vec![(0, 1)]]);
    }

    #[test]
    fn round_robin_order_converges_like_cyclic() {
        let a = sample_matrix(8, 8);
        let cyc = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let rr = hestenes_jacobi(
            &a,
            &JacobiOptions {
                order: SweepOrder::RoundRobin,
                ..Default::default()
            },
        )
        .unwrap();
        let sc = cyc.sorted_singular_values();
        let sr = rr.sorted_singular_values();
        for (a, b) in sc.iter().zip(&sr) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn convergence_history_is_monotone_eventually() {
        let a = sample_matrix(12, 12);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert!(svd.sweeps >= 2);
        // Quadratic convergence: last sweep must be far below the first.
        let first = svd.history.first().unwrap().max_convergence;
        let last = svd.history.last().unwrap().max_convergence;
        assert!(last < first);
    }

    #[test]
    fn zero_matrix_has_zero_singular_values() {
        let a: Matrix<f64> = Matrix::zeros(4, 3);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert!(svd.reconstruction_error(&a) < 1e-14);
    }

    #[test]
    fn rank_one_matrix() {
        let a = Matrix::from_fn(5, 3, |r, c| ((r + 1) * (c + 1)) as f64);
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let s = svd.sorted_singular_values();
        assert!(s[0] > 1.0);
        assert!(s[1].abs() < 1e-10);
        assert!(s[2].abs() < 1e-10);
        assert!(svd.reconstruction_error(&a) < 1e-10);
    }

    #[test]
    fn without_v_uses_norm_invariant_check() {
        let a = sample_matrix(6, 6);
        let svd = hestenes_jacobi(&a, &JacobiOptions::paper()).unwrap();
        assert!(svd.v.is_none());
        assert!(svd.reconstruction_error(&a) < 1e-6);
    }

    #[test]
    fn not_converged_error_reports_progress() {
        let a = sample_matrix(16, 16);
        let opts = JacobiOptions {
            max_sweeps: 1,
            precision: 1e-14,
            ..Default::default()
        };
        match hestenes_jacobi(&a, &opts) {
            Err(SvdError::NotConverged {
                sweeps,
                off_diagonal,
            }) => {
                assert_eq!(sweeps, 1);
                assert!(off_diagonal > 0.0);
            }
            other => panic!("expected NotConverged, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_sweeps_match_exact_singular_values() {
        let a = sample_matrix(16, 16);
        let exact = hestenes_jacobi(&a, &JacobiOptions::paper()).unwrap();
        let adaptive = hestenes_jacobi(
            &a,
            &JacobiOptions {
                adaptive: true,
                ..JacobiOptions::paper()
            },
        )
        .unwrap();
        let se = exact.sorted_singular_values();
        let sa = adaptive.sorted_singular_values();
        let scale = se[0];
        for (e, ad) in se.iter().zip(&sa) {
            assert!((e - ad).abs() <= 10.0 * 1e-6 * scale, "{e} vs {ad}");
        }
        let diff = exact.sweeps.abs_diff(adaptive.sweeps);
        assert!(diff <= 1, "{} vs {} sweeps", exact.sweeps, adaptive.sweeps);
    }

    #[test]
    fn adaptive_rejects_v_accumulation() {
        let a = sample_matrix(6, 6);
        let opts = JacobiOptions {
            adaptive: true,
            ..Default::default()
        };
        assert!(matches!(
            hestenes_jacobi(&a, &opts),
            Err(SvdError::InvalidParameter(_))
        ));
    }

    #[test]
    fn normalize_produces_unit_columns() {
        let b = Matrix::from_fn(4, 2, |r, c| (r + c + 1) as f64);
        let (u, sigma) = normalize(&b);
        for (j, s) in sigma.iter().enumerate() {
            let norm: f64 = u.col(j).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
            assert!(*s > 0.0);
        }
    }

    #[test]
    fn normalize_zero_column_is_safe() {
        let b: Matrix<f64> = Matrix::zeros(3, 2);
        let (u, sigma) = normalize(&b);
        assert_eq!(sigma, vec![0.0, 0.0]);
        assert!(u.as_slice().iter().all(|&x| x == 0.0));
    }
}
