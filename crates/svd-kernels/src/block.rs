//! Block-Jacobi decomposition (Algorithm 1's software analog).
//!
//! To solve large problems with bounded per-step working sets, the matrix is
//! split into `p` blocks of `block_cols` columns. Block pairs are enumerated
//! round-robin; within a block pair all column pairs across the `2·block_cols`
//! columns are orthogonalized. This exactly mirrors how HeteroSVD streams
//! block pairs to the orth-AIE array (Algorithm 1, lines 4–16).

use crate::adaptive::{did_rotate, sweep_threshold, AdaptiveState};
use crate::jacobi::{normalize, round_robin_rounds, SvdResult, SweepStats};
use crate::matrix::Matrix;
use crate::rotation::{apply_rotation, column_products, compute_rotation_gated};
use crate::scalar::Real;
use crate::SvdError;
use serde::{Deserialize, Serialize};

/// A partition of a matrix's columns into equally sized blocks.
///
/// # Example
///
/// ```
/// use svd_kernels::BlockPartition;
///
/// # fn main() -> Result<(), svd_kernels::SvdError> {
/// let p = BlockPartition::new(16, 4)?;
/// assert_eq!(p.num_blocks(), 4);
/// assert_eq!(p.pair_columns(0, 2), vec![0, 1, 2, 3, 8, 9, 10, 11]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPartition {
    /// Total number of columns.
    pub cols: usize,
    /// Columns per block (`k` in the paper; equals `P_eng` on hardware).
    pub block_cols: usize,
}

impl BlockPartition {
    /// Creates a partition of `cols` columns into blocks of `block_cols`.
    ///
    /// # Errors
    ///
    /// Returns [`SvdError::InvalidBlocking`] when `block_cols` is zero or
    /// does not divide `cols`.
    pub fn new(cols: usize, block_cols: usize) -> Result<Self, SvdError> {
        if block_cols == 0 || !cols.is_multiple_of(block_cols) {
            return Err(SvdError::InvalidBlocking { cols, block_cols });
        }
        Ok(BlockPartition { cols, block_cols })
    }

    /// Number of blocks `p = cols / block_cols`.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.cols / self.block_cols
    }

    /// The column index range of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b >= self.num_blocks()`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        assert!(b < self.num_blocks(), "block index {b} out of range");
        b * self.block_cols..(b + 1) * self.block_cols
    }

    /// Global column indices of the combined block pair `(u, v)`, block `u`
    /// first. This is the column set streamed to the AIE array for one
    /// block-pair pass.
    pub fn pair_columns(&self, u: usize, v: usize) -> Vec<usize> {
        let mut cols: Vec<usize> = self.block_range(u).collect();
        cols.extend(self.block_range(v));
        cols
    }
}

/// A schedule of block pairs covering all `p·(p−1)/2` pairs, arranged in
/// rounds of disjoint pairs (round-robin, Brent–Luk style).
///
/// Disjointness within a round is what allows `P_task`-way task parallelism
/// without write conflicts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPairSchedule {
    rounds: Vec<Vec<(usize, usize)>>,
    num_blocks: usize,
}

impl BlockPairSchedule {
    /// Builds the round-robin schedule for `num_blocks` blocks.
    pub fn round_robin(num_blocks: usize) -> Self {
        BlockPairSchedule {
            rounds: round_robin_rounds(num_blocks),
            num_blocks,
        }
    }

    /// Rounds of disjoint block pairs.
    pub fn rounds(&self) -> &[Vec<(usize, usize)>] {
        &self.rounds
    }

    /// Flat iteration order over all block pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rounds.iter().flatten().copied()
    }

    /// Total number of block pairs.
    pub fn len(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// `true` when there are no pairs (fewer than two blocks).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of blocks the schedule was built for.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }
}

/// Options for the block-Jacobi driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockJacobiOptions {
    /// Columns per block (`P_eng` on hardware).
    pub block_cols: usize,
    /// Convergence threshold for Eq. (6).
    pub precision: f64,
    /// Hard cap on outer iterations (full passes over all block pairs).
    pub max_iterations: usize,
    /// Run exactly this many iterations regardless of convergence
    /// (the paper's Table II/VI protocol fixes six iterations).
    pub fixed_iterations: Option<usize>,
    /// Run convergence-adaptive sweeps: threshold-Jacobi gating plus
    /// dirty-column pair skipping across block-pair passes (see
    /// [`crate::adaptive`]). Off by default — the block driver is the
    /// software reference the accelerator's exact trajectory is checked
    /// against.
    pub adaptive: bool,
}

impl Default for BlockJacobiOptions {
    fn default() -> Self {
        BlockJacobiOptions {
            block_cols: 4,
            precision: 1e-10,
            max_iterations: 40,
            fixed_iterations: None,
            adaptive: false,
        }
    }
}

/// Runs block-Jacobi SVD: the software reference for Algorithm 1.
///
/// Within each block pair, all column pairs over the combined `2k` columns
/// are orthogonalized in round-robin order — the same set of pair
/// orthogonalizations the shifting-ring hardware schedule performs, so the
/// numerical trajectory matches the accelerator's.
///
/// # Example
///
/// ```
/// use svd_kernels::{block::block_jacobi, BlockJacobiOptions, Matrix};
///
/// # fn main() -> Result<(), svd_kernels::SvdError> {
/// let a = Matrix::from_fn(12, 8, |r, c| ((r * 5 + c * 3) % 7) as f64 - 3.0);
/// let svd = block_jacobi(&a, &BlockJacobiOptions { block_cols: 2, ..Default::default() })?;
/// assert!(svd.reconstruction_error(&a) < 1e-8);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`SvdError::InvalidBlocking`] when `opts.block_cols` does not divide
///   the column count.
/// * [`SvdError::DimensionMismatch`] / [`SvdError::NonFinite`] as in
///   [`crate::jacobi::hestenes_jacobi`].
/// * [`SvdError::NotConverged`] when `max_iterations` passes do not reach
///   `precision` (not raised under `fixed_iterations`).
pub fn block_jacobi<T: Real>(
    a: &Matrix<T>,
    opts: &BlockJacobiOptions,
) -> Result<SvdResult<T>, SvdError> {
    if a.rows() < a.cols() {
        return Err(SvdError::DimensionMismatch(format!(
            "one-sided jacobi requires rows >= cols, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if !a.is_finite() {
        return Err(SvdError::NonFinite);
    }
    let partition = BlockPartition::new(a.cols(), opts.block_cols)?;
    let p = partition.num_blocks();
    let schedule = BlockPairSchedule::round_robin(p);

    let mut b = a.clone();
    let floor_sq = a.column_norm_floor_sq();
    let mut adaptive_state = opts.adaptive.then(|| AdaptiveState::<T>::new(a.cols()));
    let mut history = Vec::new();
    let iters = opts.fixed_iterations.unwrap_or(opts.max_iterations);
    let mut converged = false;
    let mut iterations = 0;

    for iter in 0..iters {
        let mut max_conv = 0.0_f64;
        let mut rotations = 0usize;

        if let Some(state) = adaptive_state.as_mut() {
            let prev = history.last().map(|h: &SweepStats| h.max_convergence);
            state.set_threshold(T::from_f64(sweep_threshold(prev, opts.precision)));
        }
        let mut run_set = |b: &mut Matrix<T>, cols: &[usize]| match adaptive_state.as_mut() {
            Some(state) => orthogonalize_column_set_adaptive(b, cols, floor_sq, state),
            None => orthogonalize_column_set(b, cols, floor_sq),
        };

        if p == 1 {
            // Single block: orthogonalize within it directly.
            let cols: Vec<usize> = partition.block_range(0).collect();
            let (c, r) = run_set(&mut b, &cols);
            max_conv = max_conv.max(c);
            rotations += r;
        } else {
            for (u, v) in schedule.iter() {
                let cols = partition.pair_columns(u, v);
                let (c, r) = run_set(&mut b, &cols);
                max_conv = max_conv.max(c);
                rotations += r;
            }
        }

        history.push(SweepStats {
            sweep: iter,
            max_convergence: max_conv,
            rotations,
        });
        iterations = iter + 1;
        if opts.fixed_iterations.is_none() && max_conv < opts.precision {
            converged = true;
            break;
        }
    }

    if opts.fixed_iterations.is_none() && !converged && a.cols() > 1 {
        let last = history.last().map(|h| h.max_convergence).unwrap_or(0.0);
        if last >= opts.precision {
            return Err(SvdError::NotConverged {
                sweeps: iterations,
                off_diagonal: last,
            });
        }
    }

    let (u, sigma) = normalize(&b);
    Ok(SvdResult {
        u,
        sigma,
        v: None,
        sweeps: iterations,
        history,
    })
}

/// Orthogonalizes all pairs of the given column subset (round-robin order),
/// returning `(max convergence measure, rotation count)`.
///
/// `floor_sq` is the numerical-noise gate of
/// [`crate::rotation::compute_rotation_gated`]; pass
/// [`Matrix::column_norm_floor_sq`] of the original matrix (or zero to
/// disable gating).
pub fn orthogonalize_column_set<T: Real>(
    b: &mut Matrix<T>,
    cols: &[usize],
    floor_sq: T,
) -> (f64, usize) {
    let mut max_conv = 0.0_f64;
    let mut rotations = 0usize;
    for round in round_robin_rounds(cols.len()) {
        for (li, lj) in round {
            let (i, j) = (cols[li], cols[lj]);
            let (alpha, beta, gamma) = {
                let (ci, cj) = b.col_pair_mut(i, j);
                column_products(ci, cj)
            };
            let rot = compute_rotation_gated(alpha, beta, gamma, floor_sq);
            max_conv = max_conv.max(rot.convergence.to_f64());
            if !rot.identity {
                rotations += 1;
                let (ci, cj) = b.col_pair_mut(i, j);
                apply_rotation(ci, cj, rot);
            }
        }
    }
    (max_conv, rotations)
}

/// [`orthogonalize_column_set`] through the convergence-adaptive state:
/// each pair either memo-skips, gates, or rotates per `state`'s current
/// threshold. The column indices in `cols` are global, matching the
/// state's matrix-wide version counters, so skips carry across block-pair
/// passes: a pair left clean by one pass stays skippable in every later
/// pass that revisits it.
pub fn orthogonalize_column_set_adaptive<T: Real>(
    b: &mut Matrix<T>,
    cols: &[usize],
    floor_sq: T,
    state: &mut AdaptiveState<T>,
) -> (f64, usize) {
    let mut max_conv = 0.0_f64;
    let mut rotations = 0usize;
    let threshold = state.threshold();
    for round in round_robin_rounds(cols.len()) {
        for (li, lj) in round {
            let conv = state.visit(b, cols[li], cols[lj], floor_sq);
            max_conv = max_conv.max(conv.to_f64());
            if did_rotate(conv, threshold) {
                rotations += 1;
            }
        }
    }
    (max_conv, rotations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jacobi::{hestenes_jacobi, JacobiOptions};
    use crate::verify;

    fn sample(m: usize, n: usize) -> Matrix<f64> {
        Matrix::from_fn(m, n, |r, c| {
            ((r * 41 + c * 17 + 5) % 23) as f64 / 5.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
        })
    }

    #[test]
    fn partition_validates_divisibility() {
        assert!(BlockPartition::new(12, 4).is_ok());
        assert!(matches!(
            BlockPartition::new(10, 4),
            Err(SvdError::InvalidBlocking { .. })
        ));
        assert!(BlockPartition::new(10, 0).is_err());
    }

    #[test]
    fn partition_ranges_and_pair_columns() {
        let p = BlockPartition::new(12, 4).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(p.block_range(1), 4..8);
        assert_eq!(p.pair_columns(0, 2), vec![0, 1, 2, 3, 8, 9, 10, 11]);
    }

    #[test]
    fn schedule_covers_all_block_pairs() {
        let s = BlockPairSchedule::round_robin(6);
        assert_eq!(s.len(), 15);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in s.iter() {
            assert!(u < v);
            assert!(seen.insert((u, v)));
        }
        // Rounds contain disjoint blocks.
        for round in s.rounds() {
            let mut used = std::collections::HashSet::new();
            for &(u, v) in round {
                assert!(used.insert(u));
                assert!(used.insert(v));
            }
        }
    }

    #[test]
    fn schedule_one_block_is_empty() {
        let s = BlockPairSchedule::round_robin(1);
        assert!(s.is_empty());
    }

    #[test]
    fn block_jacobi_matches_reference_singular_values() {
        let a = sample(16, 16);
        let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let blocked = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                precision: 1e-10,
                ..Default::default()
            },
        )
        .unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &blocked.sorted_singular_values(),
        );
        assert!(err < 1e-8, "singular value error {err}");
    }

    #[test]
    fn block_jacobi_single_block_works() {
        let a = sample(8, 4);
        let r = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.reconstruction_error(&a) < 1e-8);
    }

    #[test]
    fn block_jacobi_rejects_bad_blocking() {
        let a = sample(8, 6);
        let r = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(SvdError::InvalidBlocking { .. })));
    }

    #[test]
    fn fixed_iterations_never_raises_not_converged() {
        let a = sample(12, 12);
        let r = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                precision: 1e-30, // unreachable
                fixed_iterations: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.sweeps, 2);
    }

    #[test]
    fn six_fixed_iterations_reach_high_accuracy() {
        // The paper's protocol: six iterations per matrix (§V-B).
        let a = sample(32, 32);
        let r = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 8,
                fixed_iterations: Some(6),
                ..Default::default()
            },
        )
        .unwrap();
        let golden = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &r.sorted_singular_values(),
        );
        assert!(err < 1e-6, "singular value error after 6 iterations: {err}");
    }

    #[test]
    fn adaptive_block_jacobi_matches_exact_within_tolerance() {
        let a = sample(24, 16);
        let precision = 1e-8;
        let exact = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                precision,
                ..Default::default()
            },
        )
        .unwrap();
        let adaptive = block_jacobi(
            &a,
            &BlockJacobiOptions {
                block_cols: 4,
                precision,
                adaptive: true,
                ..Default::default()
            },
        )
        .unwrap();
        let err = verify::singular_value_error(
            &exact.sorted_singular_values(),
            &adaptive.sorted_singular_values(),
        );
        assert!(err <= 10.0 * precision, "singular value error {err}");
        let diff = exact.sweeps.abs_diff(adaptive.sweeps);
        assert!(diff <= 1, "{} vs {} sweeps", exact.sweeps, adaptive.sweeps);
    }

    #[test]
    fn orthogonalize_column_set_reduces_convergence_measure() {
        let mut b = sample(10, 6);
        let cols = vec![0, 1, 2, 3, 4, 5];
        let (c1, _) = orthogonalize_column_set(&mut b, &cols, 0.0);
        let (c2, _) = orthogonalize_column_set(&mut b, &cols, 0.0);
        let (c3, _) = orthogonalize_column_set(&mut b, &cols, 0.0);
        assert!(c1 > 0.0);
        assert!(c3 < c1, "convergence should improve: {c1} -> {c2} -> {c3}");
    }
}
