//! Property-based tests of the numerical kernels.

use proptest::prelude::*;
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};
use svd_kernels::jacobi::{hestenes_jacobi, round_robin_rounds, JacobiOptions};
use svd_kernels::qr::{householder_qr, qr_preconditioned_svd};
use svd_kernels::rotation::{apply_rotation, column_products, compute_rotation};
use svd_kernels::{verify, Matrix};

fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix<f64>> {
    (2usize..max_dim, 0usize..6, any::<u64>()).prop_map(|(n, extra, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Matrix::from_fn(n + extra, n, |_, _| rng.gen_range(-10.0..10.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Singular values are invariant under row permutations composed as
    /// sign flips (orthogonal transforms of the domain): Q·A has the same
    /// σ as A for a diagonal ±1 Q.
    #[test]
    fn singular_values_invariant_under_sign_flips(a in matrix_strategy(9), flip_seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(flip_seed);
        let flips: Vec<f64> = (0..a.rows()).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
        let flipped = Matrix::from_fn(a.rows(), a.cols(), |r, c| flips[r] * a[(r, c)]);

        let s1 = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap().sorted_singular_values();
        let s2 = hestenes_jacobi(&flipped, &JacobiOptions::default()).unwrap().sorted_singular_values();
        prop_assert!(verify::singular_value_error(&s1, &s2) < 1e-9);
    }

    /// Scaling the matrix scales every singular value.
    #[test]
    fn singular_values_scale_linearly(a in matrix_strategy(8), scale in 0.1_f64..10.0) {
        let s1 = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap().sorted_singular_values();
        let s2 = hestenes_jacobi(&a.scaled(scale), &JacobiOptions::default()).unwrap().sorted_singular_values();
        let scaled: Vec<f64> = s1.iter().map(|v| v * scale).collect();
        prop_assert!(verify::singular_value_error(&scaled, &s2) < 1e-9);
    }

    /// The Frobenius norm equals the l2 norm of the singular values.
    #[test]
    fn frobenius_equals_sigma_norm(a in matrix_strategy(9)) {
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let sigma_norm: f64 = svd.sigma.iter().map(|s| s * s).sum::<f64>().sqrt();
        let rel = (a.frobenius_norm() - sigma_norm).abs() / a.frobenius_norm().max(1e-300);
        prop_assert!(rel < 1e-10);
    }

    /// Block-Jacobi agrees with the unblocked reference for every valid
    /// blocking.
    #[test]
    fn block_jacobi_matches_reference(seed in any::<u64>(), blocks in 2usize..5) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let block_cols = 2;
        let n = block_cols * blocks * 2;
        let a = Matrix::from_fn(n + 3, n, |_, _| rng.gen_range(-5.0..5.0));

        let reference = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let blocked = block_jacobi(&a, &BlockJacobiOptions {
            block_cols,
            precision: 1e-11,
            max_iterations: 60,
            fixed_iterations: None,
            adaptive: false,
        }).unwrap();
        let err = verify::singular_value_error(
            &reference.sorted_singular_values(),
            &blocked.sorted_singular_values(),
        );
        prop_assert!(err < 1e-7, "error {err}");
    }

    /// Round-robin schedules are complete tournaments for any n.
    #[test]
    fn round_robin_is_complete(n in 0usize..40) {
        let rounds = round_robin_rounds(n);
        let mut seen = std::collections::HashSet::new();
        for round in &rounds {
            let mut used = std::collections::HashSet::new();
            for &(i, j) in round {
                prop_assert!(i < j && j < n);
                prop_assert!(used.insert(i) && used.insert(j));
                prop_assert!(seen.insert((i, j)));
            }
        }
        prop_assert_eq!(seen.len(), n * n.saturating_sub(1) / 2);
    }

    /// Applying a computed rotation twice keeps the pair orthogonal (the
    /// second rotation is the identity).
    #[test]
    fn rotation_is_idempotent_on_orthogonal_pairs(
        x in prop::collection::vec(-10.0_f64..10.0, 3..12),
        y in prop::collection::vec(-10.0_f64..10.0, 3..12),
    ) {
        let len = x.len().min(y.len());
        let mut xs = x[..len].to_vec();
        let mut ys = y[..len].to_vec();
        let (a, b, g) = column_products(&xs, &ys);
        let rot = compute_rotation(a, b, g);
        apply_rotation(&mut xs, &mut ys, rot);
        let (a2, b2, g2) = column_products(&xs, &ys);
        let rot2 = compute_rotation(a2, b2, g2);
        // The residual correlation is round-off noise.
        prop_assert!(rot2.convergence < 1e-10, "residual {}", rot2.convergence);
        let scale = (a2 * b2).sqrt();
        prop_assert!(g2.abs() <= 1e-10 * scale.max(1.0));
    }

    /// Matrix transpose preserves singular values (σ(A) = σ(Aᵀ) for
    /// square A).
    #[test]
    fn transpose_preserves_spectrum(seed in any::<u64>(), n in 2usize..8) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-5.0..5.0));
        let s1 = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap().sorted_singular_values();
        let s2 = hestenes_jacobi(&a.transpose(), &JacobiOptions::default()).unwrap().sorted_singular_values();
        prop_assert!(verify::singular_value_error(&s1, &s2) < 1e-8);
    }

    /// QR reconstructs and the preconditioned SVD agrees with the direct
    /// one on random tall matrices.
    #[test]
    fn qr_preconditioning_is_equivalent(seed in any::<u64>(), n in 2usize..7, extra in 1usize..20) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n + extra, n, |_, _| rng.gen_range(-5.0..5.0));

        let qr = householder_qr(&a).unwrap();
        let recon = qr.q.matmul(&qr.r).unwrap();
        prop_assert!(recon.sub(&a).unwrap().frobenius_norm() < 1e-9 * a.frobenius_norm().max(1.0));

        let direct = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let pre = qr_preconditioned_svd(&a, &JacobiOptions::default()).unwrap();
        let err = verify::singular_value_error(
            &direct.sorted_singular_values(),
            &pre.sorted_singular_values(),
        );
        prop_assert!(err < 1e-8, "error {err}");
    }

    /// Low-rank approximation error decreases monotonically with rank.
    #[test]
    fn truncation_error_is_monotone(a in matrix_strategy(7)) {
        let svd = hestenes_jacobi(&a, &JacobiOptions::default()).unwrap();
        let mut prev = f64::INFINITY;
        for k in 1..=a.cols() {
            let ak = svd.low_rank_approximation(&a, k).unwrap();
            let err = ak.sub(&a).unwrap().frobenius_norm();
            prop_assert!(err <= prev + 1e-9, "rank {k}: {err} > {prev}");
            prev = err;
        }
    }

    /// Eckart–Young on `TruncatedSvd`: across random, ill-conditioned, and
    /// rank-deficient matrices the reconstruction error is monotonically
    /// non-increasing in rank and every rank's error matches the tail
    /// bound `‖A−A_k‖_F = √(Σ_{j>k} σⱼ²)` within tolerance (and dominates
    /// the spectral tail σ_{k+1} the struct reports).
    #[test]
    fn truncated_svd_satisfies_eckart_young(base in matrix_strategy(7), kind in 0usize..3) {
        let a = match kind {
            // Plain random matrix.
            0 => base,
            // Ill-conditioned: scale columns across ~6 decades.
            1 => Matrix::from_fn(base.rows(), base.cols(), |r, c| {
                base[(r, c)] * 10f64.powi(-(3 * c as i32))
            }),
            // Rank-deficient: duplicate the first column everywhere past
            // the midpoint.
            _ => Matrix::from_fn(base.rows(), base.cols(), |r, c| {
                if c > base.cols() / 2 { base[(r, 0)] } else { base[(r, c)] }
            }),
        };
        let svd = hestenes_jacobi(&a, &JacobiOptions { precision: 1e-13, ..Default::default() }).unwrap();
        let scale = a.frobenius_norm().max(1.0);
        let mut prev = f64::INFINITY;
        for k in 1..=a.cols() {
            let trunc = svd.truncate(&a, k).unwrap();
            let err = trunc.reconstruct().sub(&a).unwrap().frobenius_norm();
            prop_assert!(err <= prev + 1e-9 * scale, "kind {kind} rank {k}: {err} > {prev}");
            prev = err;
            let tail_energy: f64 = trunc.tail_sigma; // σ_{k+1}
            let frob_tail: f64 = {
                let order = svd.descending_order();
                order[k..].iter().map(|&j| svd.sigma[j] * svd.sigma[j]).sum::<f64>().sqrt()
            };
            // Frobenius tail bound is met exactly (up to round-off)...
            prop_assert!(
                (err - frob_tail).abs() <= 1e-8 * scale,
                "kind {kind} rank {k}: err {err} vs Frobenius tail {frob_tail}"
            );
            // ...and therefore dominates the reported spectral tail σ_{k+1}.
            prop_assert!(
                err + 1e-8 * scale >= tail_energy,
                "kind {kind} rank {k}: err {err} below σ_(k+1) {tail_energy}"
            );
        }
    }

    /// Store-style serving is exact: `apply` on the truncated factors
    /// equals the matvec against the materialized rank-k matrix, and the
    /// retained-energy metadata complements the tail energy.
    #[test]
    fn truncated_apply_matches_reconstruction(a in matrix_strategy(7), seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..a.cols()).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let svd = hestenes_jacobi(&a, &JacobiOptions { precision: 1e-13, ..Default::default() }).unwrap();
        let total: f64 = svd.sigma.iter().map(|s| s * s).sum();
        for k in 1..=a.cols() {
            let trunc = svd.truncate(&a, k).unwrap();
            let y = trunc.apply(&x).unwrap();
            let ak = trunc.reconstruct();
            for (r, &yr) in y.iter().enumerate() {
                let direct: f64 = (0..a.cols()).map(|c| ak[(r, c)] * x[c]).sum();
                prop_assert!((yr - direct).abs() <= 1e-8 * a.frobenius_norm().max(1.0));
            }
            if total > 0.0 {
                let kept: f64 = trunc.sigma.iter().map(|s| s * s).sum();
                prop_assert!((trunc.retained_energy - kept / total).abs() < 1e-12);
            }
        }
    }
}
