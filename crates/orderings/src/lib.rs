#![warn(missing_docs)]

//! SVD pair orderings and AIE data-movement analysis.
//!
//! The order in which column pairs are orthogonalized is mathematically
//! flexible (any complete ordering converges) but *physically* decisive on
//! the Versal AIE array: it determines whether inter-layer column hand-offs
//! are cheap neighbor accesses or expensive DMA transfers (§III-B of the
//! paper).
//!
//! This crate provides:
//!
//! * [`schedule`] — complete tournament schedules mapping pair rounds onto
//!   orth-layers, with per-ordering slot assignment (including the paper's
//!   shifting ring ordering).
//! * [`movement`] — the movement/DMA analysis behind Fig. 3: per-transition
//!   movement multisets for ring vs shifting-ring ordering, neighbor/DMA
//!   classification under naive vs relocated dataflow, and the closed-form
//!   totals `2k(k−1)` vs `2(k−1)`.
//!
//! # Example
//!
//! ```
//! use svd_orderings::movement::{analyze, DataflowKind, OrderingKind};
//!
//! let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, 4);
//! let codesign = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, 4);
//! assert_eq!(naive.dma_transfers, 2 * 4 * 3);   // 2k(k-1)
//! assert_eq!(codesign.dma_transfers, 2 * 3);    // 2(k-1)
//! ```

pub mod movement;
pub mod render;
pub mod schedule;

pub use movement::{analyze, AccessKind, DataflowKind, Movement, MovementReport, OrderingKind};
pub use schedule::{HardwareSchedule, Layer};
