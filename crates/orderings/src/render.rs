//! Text rendering of orderings and their data movements — the Fig. 3
//! diagram regenerated from the schedule and movement analysis.

use crate::movement::{classify, AccessKind, DataflowKind, Movement, OrderingKind};
use crate::schedule::HardwareSchedule;
use std::fmt::Write;

/// Renders the layer-by-layer ordering with each transition's movement
/// multiset and its neighbor/DMA classification under the given
/// dataflow — a textual Fig. 3.
///
/// `row_of_layer` maps layers to physical rows (identity for the
/// abstract analysis; the placement map for a planned design).
///
/// # Example
///
/// ```
/// use svd_orderings::movement::{DataflowKind, OrderingKind};
/// use svd_orderings::render::render_ordering;
///
/// let text = render_ordering(
///     OrderingKind::ShiftingRing,
///     DataflowKind::Relocated,
///     3,
///     |l| l,
/// );
/// assert!(text.contains("layer"));
/// assert!(text.contains("DMA"));
/// ```
pub fn render_ordering(
    ordering: OrderingKind,
    dataflow: DataflowKind,
    k: usize,
    row_of_layer: impl Fn(usize) -> usize,
) -> String {
    let schedule = HardwareSchedule::new(k, ordering);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{ordering:?} ordering, {dataflow:?} dataflow, k = {k} ({} columns):",
        2 * k
    );
    for (l, layer) in schedule.layers().iter().enumerate() {
        let pairs: Vec<String> = layer
            .pairs_by_slot
            .iter()
            .map(|(i, j)| format!("({i},{j})"))
            .collect();
        let _ = writeln!(
            out,
            "layer {l:>2} (row {}): [{}]",
            row_of_layer(l),
            pairs.join(" ")
        );
        if l + 1 < schedule.num_layers() {
            let src = row_of_layer(l);
            let dest = row_of_layer(l + 1);
            let movements = ordering.transition_movements_rows(src, dest, k);
            let mut counts: Vec<(Movement, AccessKind, usize)> = Vec::new();
            for m in movements {
                let kind = classify(m, dest, dataflow);
                match counts
                    .iter_mut()
                    .find(|(mm, kk, _)| *mm == m && *kk == kind)
                {
                    Some(slot) => slot.2 += 1,
                    None => counts.push((m, kind, 1)),
                }
            }
            let rendered: Vec<String> = counts
                .iter()
                .map(|(m, kind, n)| {
                    let arrow = match m {
                        Movement::Straight => "|",
                        Movement::Leftward => "<-",
                        Movement::Rightward => "->",
                        Movement::Wraparound => "<~>",
                    };
                    let tag = match kind {
                        AccessKind::Neighbor => "neighbor",
                        AccessKind::Dma => "DMA",
                    };
                    format!("{n}x {arrow} {tag}")
                })
                .collect();
            let _ = writeln!(out, "          {}", rendered.join(", "));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movement::{codesign_dma_count, ring_naive_dma_count};

    fn dma_count_in(text: &str) -> usize {
        // Sum the "Nx ... DMA" counts out of the rendering.
        text.lines()
            .flat_map(|l| l.split(','))
            .filter(|seg| seg.contains("DMA"))
            .filter_map(|seg| {
                seg.trim()
                    .split('x')
                    .next()
                    .and_then(|n| n.trim().parse::<usize>().ok())
            })
            .sum()
    }

    #[test]
    fn rendering_totals_match_the_analysis() {
        for k in [2usize, 3, 5] {
            let naive = render_ordering(OrderingKind::Ring, DataflowKind::NaiveMemory, k, |l| l);
            assert_eq!(dma_count_in(&naive), ring_naive_dma_count(k), "k={k}");
            let codesign = render_ordering(
                OrderingKind::ShiftingRing,
                DataflowKind::Relocated,
                k,
                |l| l,
            );
            assert_eq!(dma_count_in(&codesign), codesign_dma_count(k), "k={k}");
        }
    }

    #[test]
    fn rendering_lists_every_layer() {
        let text = render_ordering(
            OrderingKind::ShiftingRing,
            DataflowKind::Relocated,
            3,
            |l| l,
        );
        for l in 0..5 {
            assert!(text.contains(&format!("layer  {l}")), "missing layer {l}");
        }
        assert!(text.contains("<~>"), "wraparound arrow missing");
    }

    #[test]
    fn degenerate_k1_renders() {
        let text = render_ordering(OrderingKind::Ring, DataflowKind::NaiveMemory, 1, |l| l);
        assert!(text.contains("layer  0"));
        assert_eq!(dma_count_in(&text), 0);
    }
}
