//! Hardware pair schedules: mapping orthogonalization rounds onto
//! orth-layers and AIE slots.
//!
//! A block pair holds `2k` columns (local indices `0..2k`). A complete
//! sweep orthogonalizes all `C(2k,2) = k(2k−1)` pairs in `2k−1` rounds of
//! `k` disjoint pairs (circle-method tournament). Each round becomes one
//! **orth-layer** of `k` orth-AIEs; the ordering variant decides which
//! physical slot executes which pair (the shifting ring cyclically shifts
//! layer `i`'s assignment by `⌊i/2⌋`, §III-B).

use crate::movement::OrderingKind;
use serde::{Deserialize, Serialize};
use svd_kernels::jacobi::round_robin_rounds;

/// One orth-layer: the pairs executed by the `k` orth-AIEs of one array
/// row, indexed by physical slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer index (0-based; also the logical row before placement).
    pub index: usize,
    /// `pairs_by_slot[s]` is the column pair executed by the orth-AIE in
    /// physical slot `s`.
    pub pairs_by_slot: Vec<(usize, usize)>,
}

/// A complete schedule for one block pair of `2k` columns.
///
/// # Example
///
/// ```
/// use svd_orderings::{HardwareSchedule, movement::OrderingKind};
///
/// let s = HardwareSchedule::new(3, OrderingKind::ShiftingRing);
/// assert_eq!(s.num_layers(), 5);            // 2k - 1
/// assert_eq!(s.engine_parallelism(), 3);    // k
/// assert_eq!(s.total_pairs(), 15);          // C(6,2)
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HardwareSchedule {
    k: usize,
    ordering: OrderingKind,
    layers: Vec<Layer>,
}

impl HardwareSchedule {
    /// Builds the schedule for `k` orth-AIEs per layer (`2k` columns).
    ///
    /// For `k == 0` the schedule is empty.
    pub fn new(k: usize, ordering: OrderingKind) -> Self {
        let rounds = round_robin_rounds(2 * k);
        let layers = rounds
            .into_iter()
            .enumerate()
            .map(|(i, pairs)| {
                let shift = ordering.slot_shift(i) % k.max(1);
                let mut by_slot = vec![(0usize, 0usize); pairs.len()];
                for (j, pair) in pairs.into_iter().enumerate() {
                    let slot = (j + shift) % by_slot.len().max(1);
                    by_slot[slot] = pair;
                }
                Layer {
                    index: i,
                    pairs_by_slot: by_slot,
                }
            })
            .collect();
        HardwareSchedule {
            k,
            ordering,
            layers,
        }
    }

    /// Orth-AIEs per layer (`k`).
    pub fn engine_parallelism(&self) -> usize {
        self.k
    }

    /// The ordering variant this schedule was built for.
    pub fn ordering(&self) -> OrderingKind {
        self.ordering
    }

    /// Number of orth-layers (`2k−1`, or 0 when `k == 0`).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// All layers, in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Total pair count across all layers (`k(2k−1)` for `k > 0`).
    pub fn total_pairs(&self) -> usize {
        self.layers.iter().map(|l| l.pairs_by_slot.len()).sum()
    }

    /// `true` when every unordered column pair of `0..2k` appears exactly
    /// once across the layers (complete tournament).
    pub fn is_complete(&self) -> bool {
        let n = 2 * self.k;
        let mut seen = std::collections::HashSet::new();
        for layer in &self.layers {
            for &(i, j) in &layer.pairs_by_slot {
                if i >= n || j >= n || i == j || !seen.insert((i.min(j), i.max(j))) {
                    return false;
                }
            }
        }
        seen.len() == n * (n.saturating_sub(1)) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_shape() {
        for k in 1..=8 {
            let s = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
            assert_eq!(s.num_layers(), 2 * k - 1);
            assert!(s.layers().iter().all(|l| l.pairs_by_slot.len() == k));
            assert_eq!(s.total_pairs(), k * (2 * k - 1));
        }
    }

    #[test]
    fn schedules_are_complete_tournaments() {
        for k in 1..=8 {
            for ord in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
                let s = HardwareSchedule::new(k, ord);
                assert!(s.is_complete(), "k={k} {ord:?} not complete");
            }
        }
    }

    #[test]
    fn shifting_ring_rotates_pairs_relative_to_ring() {
        let k = 3;
        let ring = HardwareSchedule::new(k, OrderingKind::Ring);
        let shifting = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
        // Layers 0 and 1 have shift 0: identical assignments.
        assert_eq!(
            ring.layers()[0].pairs_by_slot,
            shifting.layers()[0].pairs_by_slot
        );
        assert_eq!(
            ring.layers()[1].pairs_by_slot,
            shifting.layers()[1].pairs_by_slot
        );
        // Layer 2 has shift 1: shifting's slots are ring's rotated right by one.
        let r2 = &ring.layers()[2].pairs_by_slot;
        let s2 = &shifting.layers()[2].pairs_by_slot;
        for slot in 0..k {
            assert_eq!(s2[(slot + 1) % k], r2[slot]);
        }
    }

    #[test]
    fn same_pair_sets_per_layer_regardless_of_ordering() {
        // The ordering only remaps slots; each layer's *set* of pairs is
        // identical, so the numerical trajectory is the same.
        let k = 4;
        let ring = HardwareSchedule::new(k, OrderingKind::Ring);
        let shifting = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
        for (lr, ls) in ring.layers().iter().zip(shifting.layers()) {
            let mut a = lr.pairs_by_slot.clone();
            let mut b = ls.pairs_by_slot.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let s = HardwareSchedule::new(0, OrderingKind::ShiftingRing);
        assert_eq!(s.num_layers(), 0);
        assert!(s.is_complete());
        assert_eq!(s.total_pairs(), 0);
    }

    #[test]
    fn k_one_single_layer() {
        let s = HardwareSchedule::new(1, OrderingKind::ShiftingRing);
        assert_eq!(s.num_layers(), 1);
        assert_eq!(s.layers()[0].pairs_by_slot, vec![(0, 1)]);
    }
}
