//! Data-movement and DMA analysis of SVD orderings on the AIE array
//! (the quantitative model behind Fig. 3 of the paper).
//!
//! A block pair of `2k` columns flows through `2k−1` orth-layers of `k`
//! orth-AIEs, one layer per array row. Between consecutive layers, every
//! column moves from its slot in layer `i` to its slot in layer `i+1`.
//! Whether a movement is a cheap neighbor access or an expensive DMA
//! transfer depends on (a) the movement's direction, (b) the destination
//! row's core/memory orientation (even rows: core left of memory; odd rows:
//! reversed), and (c) the dataflow strategy (naive output placement vs the
//! paper's AIE-centric relocation, Fig. 4).

use serde::{Deserialize, Serialize};

/// Direction of one column's inter-layer movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Movement {
    /// Same slot in the next layer.
    Straight,
    /// One slot toward column 0.
    Leftward,
    /// One slot away from column 0.
    Rightward,
    /// Between the first and last slots (long distance, `k−1` tiles).
    Wraparound,
}

/// How a movement is realized on the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Direct shared-memory access between adjacent tiles.
    Neighbor,
    /// DMA transfer through the stream switch: needs a second buffer
    /// (2× memory) and runs at the slower stream rate.
    Dma,
}

/// SVD ordering variant (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OrderingKind {
    /// Traditional ring ordering \[16\]: a monolithic movement pattern —
    /// every transition moves `k−1` columns leftward plus one wraparound,
    /// oblivious to the destination row's topology.
    Ring,
    /// Brent–Luk round-robin \[17\]: the folded tournament — every
    /// transition moves `k−1` columns leftward *and* `k−1` rightward
    /// (plus two in-place hand-offs at the fold ends). No wraparound,
    /// but the bidirectional flow means one direction always mismatches
    /// the destination row's parity — the shifting transform cannot fix
    /// it, which is why the paper builds on the ring ordering instead.
    RoundRobin,
    /// The paper's shifting ring ordering: layer `i`'s slot assignment is
    /// cyclically shifted right by `⌊i/2⌋`, so each transition's lateral
    /// movements match the destination row's orientation.
    #[default]
    ShiftingRing,
}

/// Dataflow strategy for orth-AIE outputs (§III-B, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DataflowKind {
    /// Fig. 4(a): outputs stay in the producer's own memory. The next
    /// layer's core reaches it through its south port only, so every
    /// lateral movement needs DMA.
    NaiveMemory,
    /// Fig. 4(b): outputs are written into the next row's memory, so the
    /// consumer can reach laterally-moved data through its row-parity
    /// port: leftward into odd rows, rightward into even rows.
    #[default]
    Relocated,
}

impl OrderingKind {
    /// Cyclic slot shift of layer `row` (`⌊row/2⌋` for the shifting ring,
    /// zero for the traditional ring).
    pub fn slot_shift(self, row: usize) -> usize {
        match self {
            OrderingKind::Ring | OrderingKind::RoundRobin => 0,
            OrderingKind::ShiftingRing => row / 2,
        }
    }

    /// The multiset of movements in the transition from layer `from_layer`
    /// to layer `from_layer + 1`, for `k` orth-AIEs per layer (`2k`
    /// columns total), with layers on consecutive abstract rows
    /// (`layer i` → `row i`).
    ///
    /// Ring: `k` straight + `k−1` leftward + 1 wraparound, every
    /// transition. Shifting ring: transitions into even rows transform
    /// straight→rightward and leftward→straight (§III-B); transitions into
    /// odd rows keep the ring pattern.
    ///
    /// Returns an empty vector for `k == 0`; for `k == 1` there are two
    /// columns on one AIE and both movements are straight.
    pub fn transition_movements(self, from_layer: usize, k: usize) -> Vec<Movement> {
        self.transition_movements_rows(from_layer, from_layer + 1, k)
    }

    /// [`OrderingKind::transition_movements`] for layers placed on explicit
    /// physical rows (as produced by the placement engine, where orth rows
    /// start above the boundary mem-layer and may wrap into a new band).
    ///
    /// The shifting ring's transformation applies whenever the destination
    /// row's slot shift exceeds the source row's (`⌊row/2⌋` increments),
    /// which happens exactly on transitions into even physical rows.
    pub fn transition_movements_rows(
        self,
        src_row: usize,
        dest_row: usize,
        k: usize,
    ) -> Vec<Movement> {
        if k == 0 {
            return Vec::new();
        }
        if k == 1 {
            return vec![Movement::Straight; 2];
        }
        let ring = || {
            let mut m = vec![Movement::Straight; k];
            m.extend(std::iter::repeat_n(Movement::Leftward, k - 1));
            m.push(Movement::Wraparound);
            m
        };
        match self {
            OrderingKind::Ring => ring(),
            OrderingKind::RoundRobin => {
                // Folded tournament: both directions every transition,
                // two fold-end columns stay in place, no wraparound.
                let mut m = vec![Movement::Straight; 2];
                m.extend(std::iter::repeat_n(Movement::Leftward, k - 1));
                m.extend(std::iter::repeat_n(Movement::Rightward, k - 1));
                m
            }
            OrderingKind::ShiftingRing => {
                let shift_diff = self
                    .slot_shift(dest_row)
                    .wrapping_sub(self.slot_shift(src_row));
                if shift_diff == 1 {
                    // Shift increments (into an even row): straight becomes
                    // rightward, leftward becomes straight.
                    let mut m = vec![Movement::Rightward; k];
                    m.extend(std::iter::repeat_n(Movement::Straight, k - 1));
                    m.push(Movement::Wraparound);
                    m
                } else {
                    // Shift unchanged (into an odd row): ring pattern.
                    ring()
                }
            }
        }
    }
}

/// Classifies one movement into a neighbor access or a DMA transfer.
///
/// `dest_row` is the physical array row of the destination layer; its
/// parity selects which lateral direction the relocated dataflow supports.
pub fn classify(movement: Movement, dest_row: usize, dataflow: DataflowKind) -> AccessKind {
    match (movement, dataflow) {
        (Movement::Straight, _) => AccessKind::Neighbor,
        (Movement::Wraparound, _) => AccessKind::Dma,
        (_, DataflowKind::NaiveMemory) => AccessKind::Dma,
        (Movement::Leftward, DataflowKind::Relocated) => {
            if dest_row % 2 == 1 {
                AccessKind::Neighbor
            } else {
                AccessKind::Dma
            }
        }
        (Movement::Rightward, DataflowKind::Relocated) => {
            if dest_row.is_multiple_of(2) {
                AccessKind::Neighbor
            } else {
                AccessKind::Dma
            }
        }
    }
}

/// Aggregate movement/DMA statistics for one block-pair pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MovementReport {
    /// Ordering analyzed.
    pub ordering: OrderingKind,
    /// Dataflow strategy analyzed.
    pub dataflow: DataflowKind,
    /// Orth-AIEs per layer (`k`); the block pair holds `2k` columns.
    pub engine_parallelism: usize,
    /// Total column movements across all layer transitions.
    pub total_movements: usize,
    /// Movements realized as DMA transfers.
    pub dma_transfers: usize,
    /// Movements realized as neighbor accesses.
    pub neighbor_accesses: usize,
    /// Extra memory buffers required by DMA (one per DMA transfer —
    /// DMA "requires twice the memory resources", §II-B).
    pub extra_dma_buffers: usize,
    /// Per-transition DMA counts (length `2k−2`).
    pub dma_per_transition: Vec<usize>,
}

impl MovementReport {
    /// Fraction of movements requiring DMA, in `[0, 1]`.
    pub fn dma_fraction(&self) -> f64 {
        if self.total_movements == 0 {
            0.0
        } else {
            self.dma_transfers as f64 / self.total_movements as f64
        }
    }
}

/// Analyzes the movements of one block-pair pass: `2k` columns through
/// `2k−1` layers placed on consecutive array rows starting at row 0.
///
/// Use [`analyze_with_rows`] when the placement maps layers to
/// non-consecutive physical rows.
///
/// # Example
///
/// ```
/// use svd_orderings::movement::{analyze, DataflowKind, OrderingKind};
///
/// // The paper's headline: the co-design cuts per-pass DMA from
/// // 2k(k-1) to 2(k-1) — an 8x reduction at k = 8.
/// let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, 8);
/// let codesign = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, 8);
/// assert_eq!(naive.dma_transfers, 112);
/// assert_eq!(codesign.dma_transfers, 14);
/// ```
pub fn analyze(ordering: OrderingKind, dataflow: DataflowKind, k: usize) -> MovementReport {
    let layers = if k == 0 { 0 } else { 2 * k - 1 };
    analyze_with_rows(ordering, dataflow, k, |layer| layer % layers.max(1))
}

/// [`analyze`] with an explicit layer→physical-row mapping, as produced by
/// the placement engine (layers may wrap into a new column band whose rows
/// restart at the array boundary).
pub fn analyze_with_rows(
    ordering: OrderingKind,
    dataflow: DataflowKind,
    k: usize,
    row_of_layer: impl Fn(usize) -> usize,
) -> MovementReport {
    let transitions = if k == 0 { 0 } else { 2 * k - 2 };
    let mut total = 0usize;
    let mut dma = 0usize;
    let mut per_transition = Vec::with_capacity(transitions);
    for t in 0..transitions {
        let src_row = row_of_layer(t);
        let dest_row = row_of_layer(t + 1);
        let movements = ordering.transition_movements_rows(src_row, dest_row, k);
        let mut dma_here = 0usize;
        for m in &movements {
            total += 1;
            if classify(*m, dest_row, dataflow) == AccessKind::Dma {
                dma_here += 1;
            }
        }
        dma += dma_here;
        per_transition.push(dma_here);
    }
    MovementReport {
        ordering,
        dataflow,
        engine_parallelism: k,
        total_movements: total,
        dma_transfers: dma,
        neighbor_accesses: total - dma,
        extra_dma_buffers: dma,
        dma_per_transition: per_transition,
    }
}

/// Closed-form DMA count of the traditional design (ring ordering + naive
/// memory): `2k(k−1)` (§III-B).
pub fn ring_naive_dma_count(k: usize) -> usize {
    if k == 0 {
        0
    } else {
        2 * k * (k - 1)
    }
}

/// Closed-form DMA count of the co-designed HeteroSVD (shifting ring +
/// relocated dataflow): `2(k−1)` (§III-B).
pub fn codesign_dma_count(k: usize) -> usize {
    if k == 0 {
        0
    } else {
        2 * (k - 1)
    }
}

/// Closed-form DMA count of the Brent–Luk round-robin \[17\] with naive
/// memory: all `2(k−1)` lateral movements per transition are DMA, over
/// `2k−2` transitions: `4(k−1)²`.
pub fn round_robin_naive_dma_count(k: usize) -> usize {
    if k == 0 {
        0
    } else {
        4 * (k - 1) * (k - 1)
    }
}

/// Closed-form DMA count of the round-robin with relocated dataflow: the
/// parity-mismatched direction per transition stays DMA: `2(k−1)²`.
pub fn round_robin_relocated_dma_count(k: usize) -> usize {
    if k == 0 {
        0
    } else {
        2 * (k - 1) * (k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_naive_matches_paper_formula() {
        for k in 1..=16 {
            let r = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k);
            assert_eq!(
                r.dma_transfers,
                ring_naive_dma_count(k),
                "ring+naive DMA count for k={k}"
            );
        }
    }

    #[test]
    fn codesign_matches_paper_formula() {
        for k in 1..=16 {
            let r = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k);
            assert_eq!(
                r.dma_transfers,
                codesign_dma_count(k),
                "shifting+relocated DMA count for k={k}"
            );
        }
    }

    #[test]
    fn round_robin_matches_its_closed_forms() {
        for k in 1..=16 {
            let naive = analyze(OrderingKind::RoundRobin, DataflowKind::NaiveMemory, k);
            let relocated = analyze(OrderingKind::RoundRobin, DataflowKind::Relocated, k);
            assert_eq!(naive.dma_transfers, round_robin_naive_dma_count(k));
            assert_eq!(relocated.dma_transfers, round_robin_relocated_dma_count(k));
        }
    }

    #[test]
    fn round_robin_has_no_wraparound_but_loses_to_the_codesign() {
        for k in 2..=11 {
            let movements = OrderingKind::RoundRobin.transition_movements(0, k);
            assert!(!movements.contains(&Movement::Wraparound));
            assert_eq!(movements.len(), 2 * k);
            // Even its best (relocated) variant is quadratic in k, while
            // the co-design is linear: the fold cannot be shifted away.
            let rr = analyze(OrderingKind::RoundRobin, DataflowKind::Relocated, k).dma_transfers;
            assert!(rr >= codesign_dma_count(k));
            if k >= 3 {
                assert!(rr > codesign_dma_count(k));
            }
        }
    }

    #[test]
    fn fig3_example_k3() {
        // Fig. 3 uses a 6-column matrix (k = 3): 12 DMAs -> 4 DMAs.
        let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, 3);
        let codesign = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, 3);
        assert_eq!(naive.dma_transfers, 12);
        assert_eq!(codesign.dma_transfers, 4);
    }

    #[test]
    fn ablation_corners_are_between_the_extremes() {
        for k in 2..=11 {
            let naive = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k).dma_transfers;
            let ring_reloc = analyze(OrderingKind::Ring, DataflowKind::Relocated, k).dma_transfers;
            let shift_naive =
                analyze(OrderingKind::ShiftingRing, DataflowKind::NaiveMemory, k).dma_transfers;
            let codesign =
                analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k).dma_transfers;
            assert!(codesign < ring_reloc && ring_reloc < naive);
            assert!(codesign < shift_naive);
            // Analytic forms for the ablation corners.
            assert_eq!(ring_reloc, k * k - 1);
            assert_eq!(shift_naive, (k - 1) * (2 * k + 1));
        }
    }

    #[test]
    fn total_movement_count_is_2k_times_transitions() {
        for k in 1..=8 {
            let r = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k);
            let transitions = if k == 0 { 0 } else { 2 * k - 2 };
            assert_eq!(r.total_movements, 2 * k * transitions);
            assert_eq!(r.neighbor_accesses + r.dma_transfers, r.total_movements);
            assert_eq!(r.dma_per_transition.len(), transitions);
        }
    }

    #[test]
    fn codesign_has_exactly_one_dma_per_transition() {
        let r = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, 5);
        assert!(r.dma_per_transition.iter().all(|&d| d == 1));
    }

    #[test]
    fn straight_is_always_neighbor() {
        for row in 0..4 {
            for df in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                assert_eq!(classify(Movement::Straight, row, df), AccessKind::Neighbor);
            }
        }
    }

    #[test]
    fn wraparound_is_always_dma() {
        for row in 0..4 {
            for df in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                assert_eq!(classify(Movement::Wraparound, row, df), AccessKind::Dma);
            }
        }
    }

    #[test]
    fn lateral_parity_rules() {
        // Relocated dataflow: leftward is neighbor only into odd rows,
        // rightward only into even rows.
        assert_eq!(
            classify(Movement::Leftward, 1, DataflowKind::Relocated),
            AccessKind::Neighbor
        );
        assert_eq!(
            classify(Movement::Leftward, 2, DataflowKind::Relocated),
            AccessKind::Dma
        );
        assert_eq!(
            classify(Movement::Rightward, 2, DataflowKind::Relocated),
            AccessKind::Neighbor
        );
        assert_eq!(
            classify(Movement::Rightward, 1, DataflowKind::Relocated),
            AccessKind::Dma
        );
        // Naive: all lateral movements are DMA.
        assert_eq!(
            classify(Movement::Leftward, 1, DataflowKind::NaiveMemory),
            AccessKind::Dma
        );
        assert_eq!(
            classify(Movement::Rightward, 2, DataflowKind::NaiveMemory),
            AccessKind::Dma
        );
    }

    #[test]
    fn shifting_ring_transition_composition() {
        let k = 4;
        // Into odd rows (even source): ring pattern.
        let into_odd = OrderingKind::ShiftingRing.transition_movements(0, k);
        assert_eq!(
            into_odd
                .iter()
                .filter(|m| **m == Movement::Straight)
                .count(),
            k
        );
        assert_eq!(
            into_odd
                .iter()
                .filter(|m| **m == Movement::Leftward)
                .count(),
            k - 1
        );
        // Into even rows (odd source): straight->rightward, leftward->straight.
        let into_even = OrderingKind::ShiftingRing.transition_movements(1, k);
        assert_eq!(
            into_even
                .iter()
                .filter(|m| **m == Movement::Rightward)
                .count(),
            k
        );
        assert_eq!(
            into_even
                .iter()
                .filter(|m| **m == Movement::Straight)
                .count(),
            k - 1
        );
        assert_eq!(
            into_even
                .iter()
                .filter(|m| **m == Movement::Wraparound)
                .count(),
            1
        );
    }

    #[test]
    fn slot_shift_follows_floor_half() {
        assert_eq!(OrderingKind::ShiftingRing.slot_shift(0), 0);
        assert_eq!(OrderingKind::ShiftingRing.slot_shift(1), 0);
        assert_eq!(OrderingKind::ShiftingRing.slot_shift(2), 1);
        assert_eq!(OrderingKind::ShiftingRing.slot_shift(5), 2);
        assert_eq!(OrderingKind::Ring.slot_shift(7), 0);
    }

    #[test]
    fn degenerate_sizes() {
        let r = analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, 0);
        assert_eq!(r.total_movements, 0);
        assert_eq!(r.dma_fraction(), 0.0);

        let r = analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, 1);
        assert_eq!(r.dma_transfers, 0);
        assert_eq!(r.total_movements, 0);
    }

    #[test]
    fn dma_fraction_in_unit_interval() {
        for k in 1..=11 {
            for ord in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
                for df in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                    let f = analyze(ord, df, k).dma_fraction();
                    assert!((0.0..=1.0).contains(&f));
                }
            }
        }
    }

    #[test]
    fn analyze_with_rows_respects_physical_placement() {
        // Placing all layers on even physical rows makes every leftward
        // movement DMA even for the shifting ring.
        let r = analyze_with_rows(
            OrderingKind::ShiftingRing,
            DataflowKind::Relocated,
            3,
            |_| 2,
        );
        assert!(r.dma_transfers > codesign_dma_count(3));
    }
}
