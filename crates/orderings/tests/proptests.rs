//! Property-based tests of orderings and movement analysis.

use proptest::prelude::*;
use svd_orderings::movement::{
    analyze, analyze_with_rows, classify, codesign_dma_count, ring_naive_dma_count, AccessKind,
    DataflowKind, Movement, OrderingKind,
};
use svd_orderings::HardwareSchedule;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every transition's movement multiset has exactly 2k movements and
    /// one of the two §III-B compositions: the ring pattern
    /// (k straight + (k−1) leftward + 1 wrap) or its shifted transform
    /// (k rightward + (k−1) straight + 1 wrap).
    #[test]
    fn transitions_have_paper_composition(k in 2usize..16, layer in 0usize..32) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            let movements = ordering.transition_movements(layer, k);
            prop_assert_eq!(movements.len(), 2 * k);
            let count = |mv: Movement| movements.iter().filter(|m| **m == mv).count();
            let ring_pattern = count(Movement::Straight) == k
                && count(Movement::Leftward) == k - 1
                && count(Movement::Rightward) == 0;
            let shifted_pattern = count(Movement::Rightward) == k
                && count(Movement::Straight) == k - 1
                && count(Movement::Leftward) == 0;
            prop_assert!(
                ring_pattern || shifted_pattern,
                "{:?} layer {}: unexpected composition",
                ordering,
                layer
            );
            if ordering == OrderingKind::Ring {
                prop_assert!(ring_pattern);
            }
        }
    }

    /// Exactly one wraparound per transition, for both orderings.
    #[test]
    fn one_wraparound_per_transition(k in 2usize..16, layer in 0usize..16) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            let wraps = ordering
                .transition_movements(layer, k)
                .iter()
                .filter(|m| **m == Movement::Wraparound)
                .count();
            prop_assert_eq!(wraps, 1);
        }
    }

    /// The closed-form totals hold for consecutive-row placements.
    #[test]
    fn closed_forms_hold(k in 1usize..16) {
        prop_assert_eq!(
            analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k).dma_transfers,
            ring_naive_dma_count(k)
        );
        prop_assert_eq!(
            analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k).dma_transfers,
            codesign_dma_count(k)
        );
    }

    /// Per-transition DMA counts never exceed the movement count, and
    /// the report is internally consistent.
    #[test]
    fn reports_are_consistent(k in 1usize..14) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            for dataflow in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                let r = analyze(ordering, dataflow, k);
                prop_assert_eq!(r.dma_per_transition.iter().sum::<usize>(), r.dma_transfers);
                for &d in &r.dma_per_transition {
                    prop_assert!(d <= 2 * k);
                }
                prop_assert_eq!(r.extra_dma_buffers, r.dma_transfers);
                prop_assert!(r.dma_fraction() <= 1.0);
            }
        }
    }

    /// Naive dataflow never beats relocated dataflow on DMA count, for
    /// any ordering and any physical row mapping.
    #[test]
    fn relocation_never_hurts(k in 1usize..12, row_offset in 0usize..8) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            let naive = analyze_with_rows(ordering, DataflowKind::NaiveMemory, k,
                |l| l + row_offset);
            let relocated = analyze_with_rows(ordering, DataflowKind::Relocated, k,
                |l| l + row_offset);
            prop_assert!(relocated.dma_transfers <= naive.dma_transfers);
        }
    }

    /// Slot shifts are monotone and step by at most one per row.
    #[test]
    fn slot_shift_steps_by_one(row in 0usize..1000) {
        let s0 = OrderingKind::ShiftingRing.slot_shift(row);
        let s1 = OrderingKind::ShiftingRing.slot_shift(row + 1);
        prop_assert!(s1 == s0 || s1 == s0 + 1);
        prop_assert_eq!(OrderingKind::Ring.slot_shift(row), 0);
    }

    /// Classification of laterals flips with destination-row parity
    /// under relocated dataflow.
    #[test]
    fn lateral_classification_flips_with_parity(row in 0usize..100) {
        let left = classify(Movement::Leftward, row, DataflowKind::Relocated);
        let right = classify(Movement::Rightward, row, DataflowKind::Relocated);
        prop_assert_ne!(left, right);
        let left_next = classify(Movement::Leftward, row + 1, DataflowKind::Relocated);
        prop_assert_ne!(left, left_next);
    }

    /// Schedules contain each column exactly once per layer.
    #[test]
    fn layers_partition_the_columns(k in 1usize..12) {
        for ordering in [OrderingKind::Ring, OrderingKind::ShiftingRing] {
            let s = HardwareSchedule::new(k, ordering);
            for layer in s.layers() {
                let mut seen = std::collections::HashSet::new();
                for &(i, j) in &layer.pairs_by_slot {
                    prop_assert!(seen.insert(i));
                    prop_assert!(seen.insert(j));
                }
                prop_assert_eq!(seen.len(), 2 * k);
            }
        }
    }

    /// A schedule's slot assignment is a bijection between ring and
    /// shifting layers (same pairs, rotated).
    #[test]
    fn shifting_is_a_rotation_of_ring(k in 1usize..12, layer_pick in 0usize..32) {
        let ring = HardwareSchedule::new(k, OrderingKind::Ring);
        let shifting = HardwareSchedule::new(k, OrderingKind::ShiftingRing);
        let layers = ring.num_layers();
        if layers == 0 { return Ok(()); }
        let l = layer_pick % layers;
        let shift = OrderingKind::ShiftingRing.slot_shift(l) % k;
        let r = &ring.layers()[l].pairs_by_slot;
        let s = &shifting.layers()[l].pairs_by_slot;
        for slot in 0..k {
            prop_assert_eq!(s[(slot + shift) % k], r[slot]);
        }
    }

    /// `classify` is total: every (movement, row, dataflow) combination
    /// returns a definite answer, and naive lateral is always DMA.
    #[test]
    fn classification_is_total(row in 0usize..256) {
        for m in [Movement::Straight, Movement::Leftward, Movement::Rightward, Movement::Wraparound] {
            for df in [DataflowKind::NaiveMemory, DataflowKind::Relocated] {
                let _ = classify(m, row, df);
            }
            if m == Movement::Leftward || m == Movement::Rightward {
                prop_assert_eq!(classify(m, row, DataflowKind::NaiveMemory), AccessKind::Dma);
            }
        }
    }
}
