//! Model of the W-cycle batched SVD \[11\] on a GeForce RTX 3090.
//!
//! Xiao et al.'s published numbers, as reproduced in the paper's
//! Table III (converged at 1e-6):
//!
//! | size | single-matrix latency | batch-100 throughput |
//! |---|---|---|
//! | 128² | 16.6 ms | 1351.35 tasks/s |
//! | 256² | 42.9 ms | 217.39 tasks/s |
//! | 512² | 123.7 ms | 27.55 tasks/s |
//! | 1024² | 685.7 ms | 3.52 tasks/s |
//!
//! The batch law is `t(B) = latency + (B−1)·marginal`, with `marginal`
//! backed out of the batch-100 throughput: GPU batching amortizes kernel
//! launch and pipeline fill, which is why its throughput overtakes
//! HeteroSVD's at large sizes (Fig. 9). Board power is 270 W (Table III
//! header). The utilization-vs-size curves reproduce Fig. 9's qualitative
//! trend (the figure's exact values are not printed in the text; the
//! anchors below rise from ~10% to ~90% as the paper describes).

use serde::{Deserialize, Serialize};

/// Published Table III anchors: `(n, single latency s, batch-100 tasks/s)`.
pub const PAPER_ANCHORS: [(usize, f64, f64); 4] = [
    (128, 0.0166, 1351.35),
    (256, 0.0429, 217.39),
    (512, 0.1237, 27.55),
    (1024, 0.6857, 3.52),
];

/// Board power of the RTX 3090 under load (Table III).
pub const BOARD_POWER_WATTS: f64 = 270.0;

/// The calibrated GPU baseline.
///
/// # Example
///
/// ```
/// use baselines::GpuBaseline;
///
/// let gpu = GpuBaseline::published();
/// // Batching amortizes launch overhead: 100 matrices run far faster
/// // than 100x the single-matrix latency.
/// assert!(gpu.batch_time(256, 100) < 100.0 * gpu.latency(256));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuBaseline {
    anchors: Vec<(f64, f64, f64)>, // (log2 n, latency, marginal per task)
}

impl GpuBaseline {
    /// The model fit to the published Table III numbers.
    pub fn published() -> Self {
        let anchors = PAPER_ANCHORS
            .iter()
            .map(|&(n, lat, tput100)| {
                let batch_time = 100.0 / tput100;
                let marginal = (batch_time - lat) / 99.0;
                ((n as f64).log2(), lat, marginal)
            })
            .collect();
        GpuBaseline { anchors }
    }

    fn interp(&self, n: usize, field: impl Fn(&(f64, f64, f64)) -> f64) -> f64 {
        let x = (n.max(2) as f64).log2();
        let first = &self.anchors[0];
        let last = &self.anchors[self.anchors.len() - 1];
        // Log-log interpolation (values span decades).
        let xy: Vec<(f64, f64)> = self.anchors.iter().map(|a| (a.0, field(a).ln())).collect();
        let y = if x <= first.0 {
            let (x0, y0) = xy[0];
            let (x1, y1) = xy[1];
            y0 + (y1 - y0) * (x - x0) / (x1 - x0)
        } else if x >= last.0 {
            let (x0, y0) = xy[xy.len() - 2];
            let (x1, y1) = xy[xy.len() - 1];
            y1 + (y1 - y0) * (x - x1) / (x1 - x0)
        } else {
            let mut y = xy[0].1;
            for w in xy.windows(2) {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                if x >= x0 && x <= x1 {
                    y = y0 + (y1 - y0) * (x - x0) / (x1 - x0);
                    break;
                }
            }
            y
        };
        y.exp()
    }

    /// Single-matrix latency in seconds (converged at 1e-6).
    pub fn latency(&self, n: usize) -> f64 {
        self.interp(n, |a| a.1)
    }

    /// Marginal per-task time in a large batch, in seconds.
    pub fn marginal(&self, n: usize) -> f64 {
        self.interp(n, |a| a.2)
    }

    /// Wall-clock time to process a batch of `batch` matrices.
    pub fn batch_time(&self, n: usize, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        self.latency(n) + (batch - 1) as f64 * self.marginal(n)
    }

    /// Throughput in tasks/second for a batch.
    pub fn throughput(&self, n: usize, batch: usize) -> f64 {
        let t = self.batch_time(n, batch);
        if t == 0.0 {
            0.0
        } else {
            batch as f64 / t
        }
    }

    /// Energy efficiency in tasks/second/watt (Table III).
    pub fn energy_efficiency(&self, n: usize, batch: usize) -> f64 {
        self.throughput(n, batch) / BOARD_POWER_WATTS
    }

    /// Compute-core utilization at size `n` with a large batch — Fig. 9's
    /// rising trend (qualitative anchors; see module docs).
    pub fn core_utilization(&self, n: usize) -> f64 {
        Self::util_curve(n, &[(7.0, 0.10), (8.0, 0.28), (9.0, 0.58), (10.0, 0.88)])
    }

    /// Memory-system utilization at size `n` with a large batch (Fig. 9).
    pub fn memory_utilization(&self, n: usize) -> f64 {
        Self::util_curve(n, &[(7.0, 0.18), (8.0, 0.40), (9.0, 0.68), (10.0, 0.93)])
    }

    fn util_curve(n: usize, anchors: &[(f64, f64)]) -> f64 {
        let x = (n.max(2) as f64).log2();
        let first = anchors[0];
        let last = anchors[anchors.len() - 1];
        if x <= first.0 {
            return first.1;
        }
        if x >= last.0 {
            return last.1.min(0.99);
        }
        for w in anchors.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        last.1
    }
}

impl Default for GpuBaseline {
    fn default() -> Self {
        GpuBaseline::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hits_published_anchors() {
        let g = GpuBaseline::published();
        for (n, lat, _) in PAPER_ANCHORS {
            assert!((g.latency(n) - lat).abs() / lat < 1e-9, "latency({n})");
        }
    }

    #[test]
    fn batch_100_throughput_hits_published_anchors() {
        let g = GpuBaseline::published();
        for (n, _, tput) in PAPER_ANCHORS {
            let est = g.throughput(n, 100);
            assert!(
                (est - tput).abs() / tput < 1e-6,
                "throughput({n}) = {est} vs {tput}"
            );
        }
    }

    #[test]
    fn energy_efficiency_matches_table3() {
        // Table III EE column: throughput / 270 W.
        let g = GpuBaseline::published();
        let expected = [(128usize, 5.005), (256, 0.805), (512, 0.102), (1024, 0.013)];
        for (n, ee) in expected {
            let est = g.energy_efficiency(n, 100);
            assert!((est - ee).abs() / ee < 0.01, "EE({n}) = {est} vs {ee}");
        }
    }

    #[test]
    fn batching_amortizes_launch_overhead() {
        let g = GpuBaseline::published();
        // Per-task time in a batch is far below the single-task latency.
        for n in [128usize, 256, 512, 1024] {
            assert!(g.marginal(n) < g.latency(n) / 2.0, "n={n}");
            assert!(g.throughput(n, 100) > 2.0 / g.latency(n));
        }
    }

    #[test]
    fn interpolation_is_monotone_between_anchors() {
        let g = GpuBaseline::published();
        let mut prev = 0.0;
        for n in [128usize, 192, 256, 384, 512, 768, 1024, 2048] {
            let l = g.latency(n);
            assert!(l > prev, "latency({n}) = {l} not increasing");
            prev = l;
        }
    }

    #[test]
    fn utilization_rises_with_size() {
        let g = GpuBaseline::published();
        let sizes = [128usize, 256, 512, 1024];
        for w in sizes.windows(2) {
            assert!(g.core_utilization(w[1]) > g.core_utilization(w[0]));
            assert!(g.memory_utilization(w[1]) > g.memory_utilization(w[0]));
        }
        assert!(g.core_utilization(1024) <= 1.0);
        assert!(g.core_utilization(64) >= 0.0);
    }

    #[test]
    fn zero_batch_is_zero_time() {
        let g = GpuBaseline::published();
        assert_eq!(g.batch_time(256, 0), 0.0);
        assert_eq!(g.throughput(256, 0), 0.0);
    }
}
