//! Model of the BCV-Jacobi FPGA SVD solver \[6\] on the XC7V690T.
//!
//! Hu et al. report single-matrix latencies for six Jacobi iterations at
//! a 200 MHz peak clock (reproduced in the paper's Table II):
//!
//! | size | latency |
//! |---|---|
//! | 128² | 1.4 ms |
//! | 256² | 11.3 ms |
//! | 512² | 82.9 ms |
//! | 1024² | 611.9 ms |
//!
//! Those latencies follow a near-cubic cycle law
//! `cycles ≈ 0.113·n³ + 3.8·n²` to within 8% at every anchor, which this
//! model uses so benches can sweep arbitrary sizes, frequencies and
//! iteration counts.

use serde::{Deserialize, Serialize};

/// Published Table II anchors: `(n, seconds)` at 200 MHz, six iterations.
pub const PAPER_LATENCY_ANCHORS: [(usize, f64); 4] =
    [(128, 0.0014), (256, 0.0113), (512, 0.0829), (1024, 0.6119)];

/// Published resource usage of the baseline (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaResources {
    /// LUTs (212K = 30.6% of the XC7V690T).
    pub luts: usize,
    /// BRAM36-equivalent blocks (519.5 = 31.4%).
    pub bram: f64,
    /// DSP slices (1602 = 44.5%).
    pub dsp: usize,
}

/// The calibrated FPGA baseline.
///
/// # Example
///
/// ```
/// use baselines::FpgaBaseline;
///
/// let fpga = FpgaBaseline::published();
/// // Near-cubic scaling: 1024^2 costs ~7.7x the 512^2 latency.
/// let ratio = fpga.latency(1024, 6) / fpga.latency(512, 6);
/// assert!((7.0..8.5).contains(&ratio));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaBaseline {
    /// Cubic cycle coefficient.
    pub cycles_per_n3: f64,
    /// Quadratic cycle coefficient.
    pub cycles_per_n2: f64,
    /// Clock frequency in Hz (200 MHz peak, §V-B).
    pub freq_hz: f64,
    /// Iterations the cycle law was fit at.
    pub fit_iterations: usize,
}

impl FpgaBaseline {
    /// The model fit to the published Table II numbers.
    pub fn published() -> Self {
        FpgaBaseline {
            cycles_per_n3: 0.113,
            cycles_per_n2: 3.8,
            freq_hz: 200.0e6,
            fit_iterations: 6,
        }
    }

    /// Clock cycles for one matrix of `n` columns with `iterations`
    /// Jacobi iterations.
    pub fn cycles(&self, n: usize, iterations: usize) -> f64 {
        let nf = n as f64;
        let per_fit = self.cycles_per_n3 * nf.powi(3) + self.cycles_per_n2 * nf.powi(2);
        per_fit * iterations as f64 / self.fit_iterations as f64
    }

    /// Latency in seconds for one matrix.
    pub fn latency(&self, n: usize, iterations: usize) -> f64 {
        self.cycles(n, iterations) / self.freq_hz
    }

    /// Throughput in tasks/second (the design processes one matrix at a
    /// time at its maximum parallelism, §V-B).
    pub fn throughput(&self, n: usize, iterations: usize) -> f64 {
        1.0 / self.latency(n, iterations)
    }

    /// Published resource usage (size-independent in \[6\]).
    pub fn resources(&self) -> FpgaResources {
        FpgaResources {
            luts: 212_000,
            bram: 519.5,
            dsp: 1602,
        }
    }
}

impl Default for FpgaBaseline {
    fn default() -> Self {
        FpgaBaseline::published()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_published_anchors_within_8_percent() {
        let m = FpgaBaseline::published();
        for (n, paper) in PAPER_LATENCY_ANCHORS {
            let est = m.latency(n, 6);
            let rel = (est - paper).abs() / paper;
            assert!(
                rel < 0.08,
                "{n}: model {est:.5} vs paper {paper:.5} ({rel:.3})"
            );
        }
    }

    #[test]
    fn latency_scales_cubically_at_large_sizes() {
        let m = FpgaBaseline::published();
        let ratio = m.latency(1024, 6) / m.latency(512, 6);
        assert!((7.0..8.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn iterations_scale_linearly() {
        let m = FpgaBaseline::published();
        let one = m.latency(256, 1);
        let six = m.latency(256, 6);
        assert!((six / one - 6.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_is_reciprocal_latency() {
        let m = FpgaBaseline::published();
        let l = m.latency(128, 6);
        assert!((m.throughput(128, 6) - 1.0 / l).abs() < 1e-9);
    }

    #[test]
    fn resources_match_table2() {
        let r = FpgaBaseline::published().resources();
        assert_eq!(r.luts, 212_000);
        assert_eq!(r.dsp, 1602);
        assert!((r.bram - 519.5).abs() < 1e-9);
    }
}
