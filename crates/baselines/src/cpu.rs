//! Host-CPU software baseline (extension — not in the paper).
//!
//! The paper compares against FPGA and GPU accelerators; downstream
//! users also want to know what a plain CPU does. This baseline times
//! the workspace's own `f64` block-Jacobi solver on the host machine, so
//! its numbers are *measured on whatever machine runs the harness* —
//! they belong in benchmark output, not in cross-machine comparisons.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};
use svd_kernels::Matrix;

/// One CPU measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuMeasurement {
    /// Matrix size `n`.
    pub n: usize,
    /// Iterations executed.
    pub iterations: usize,
    /// Wall-clock seconds for one matrix.
    pub latency: f64,
    /// Tasks/second running matrices back to back on one core.
    pub throughput: f64,
}

/// The host-CPU baseline: times the reference block-Jacobi solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuBaseline {
    /// Columns per block for the solver.
    pub block_cols: usize,
}

impl CpuBaseline {
    /// A baseline using the paper's latency-oriented block size.
    pub fn new() -> Self {
        CpuBaseline { block_cols: 8 }
    }

    /// Measures one matrix with a fixed iteration count (the Table II/VI
    /// protocol). `repeats` runs are averaged to stabilize the clock.
    ///
    /// # Panics
    ///
    /// Panics if the solver rejects the shape (block size must divide
    /// `n`) — callers pass sizes from the paper's grid.
    pub fn measure(&self, a: &Matrix<f64>, iterations: usize, repeats: usize) -> CpuMeasurement {
        let opts = BlockJacobiOptions {
            block_cols: self.block_cols,
            precision: 1e-30, // unreachable: fixed-iteration protocol
            max_iterations: iterations,
            fixed_iterations: Some(iterations),
            adaptive: false,
        };
        let repeats = repeats.max(1);
        let start = Instant::now();
        for _ in 0..repeats {
            let result = block_jacobi(a, &opts).expect("valid shape");
            std::hint::black_box(result.sigma.len());
        }
        let latency = start.elapsed().as_secs_f64() / repeats as f64;
        CpuMeasurement {
            n: a.cols(),
            iterations,
            latency,
            throughput: if latency > 0.0 { 1.0 / latency } else { 0.0 },
        }
    }
}

impl Default for CpuBaseline {
    fn default() -> Self {
        CpuBaseline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Matrix<f64> {
        Matrix::from_fn(n, n, |r, c| {
            ((r * 17 + c * 5) % 11) as f64 - 5.0 + if r == c { 3.0 } else { 0.0 }
        })
    }

    #[test]
    fn measurement_is_positive_and_consistent() {
        let cpu = CpuBaseline::new();
        let m = cpu.measure(&sample(32), 2, 2);
        assert!(m.latency > 0.0);
        assert!((m.throughput - 1.0 / m.latency).abs() < 1e-9);
        assert_eq!(m.n, 32);
        assert_eq!(m.iterations, 2);
    }

    #[test]
    fn latency_grows_with_size() {
        // Wall-clock comparisons are noisy; use a 4x size gap (64x work)
        // so the ordering is unambiguous.
        let cpu = CpuBaseline::new();
        let small = cpu.measure(&sample(16), 2, 3);
        let large = cpu.measure(&sample(64), 2, 3);
        assert!(
            large.latency > small.latency,
            "64: {} vs 16: {}",
            large.latency,
            small.latency
        );
    }
}
