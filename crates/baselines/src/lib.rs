#![warn(missing_docs)]

//! Calibrated models of the baselines HeteroSVD is compared against.
//!
//! The paper evaluates against two published accelerators that we cannot
//! run (no XC7V690T board, no RTX 3090):
//!
//! * [`fpga`] — the ultra-parallel BCV-Jacobi FPGA solver of Hu et al.
//!   \[6\], modeled as a cubic cycle-count law fit to its published
//!   latencies (Table II) at its 200 MHz peak frequency.
//! * [`gpu`] — the W-cycle batched SVD of Xiao et al. \[11\] on an RTX
//!   3090, modeled from its published single-matrix latencies and
//!   batch-100 throughputs (Table III) with a launch-plus-marginal batch
//!   law, 270 W board power, and the qualitative utilization-vs-size
//!   curves of Fig. 9.
//!
//! Both models *are* the published numbers — the same information the
//! paper's authors had when comparing — wrapped in parametric laws so the
//! benches can sweep sizes and batch shapes.
//!
//! A third comparator, [`cpu`], is an extension: it *measures* the
//! workspace's own software solver on the host machine, for the
//! machine-local "what does a plain CPU do" question.

pub mod cpu;
pub mod fpga;
pub mod gpu;

pub use cpu::CpuBaseline;
pub use fpga::FpgaBaseline;
pub use gpu::GpuBaseline;
