//! Property-based tests of the platform simulator's invariants.

use aie_sim::calibration::Calibration;
use aie_sim::dma::DmaModel;
use aie_sim::geometry::{ArrayGeometry, TileCoord};
use aie_sim::kernel::KernelCostModel;
use aie_sim::memory::{TileMemory, BANK_BYTES, TILE_BYTES};
use aie_sim::plio::{PlioDirection, PlioModel};
use aie_sim::switch::SwitchFabric;
use aie_sim::time::{Frequency, TimePs};
use aie_sim::timeline::Timeline;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A timeline never overlaps operations and accumulates busy time
    /// exactly.
    #[test]
    fn timeline_serializes(ops in prop::collection::vec((0u64..10_000, 1u64..1_000), 1..40)) {
        let mut t = Timeline::new();
        let mut prev_end = TimePs::ZERO;
        let mut total_busy = 0u64;
        for (ready, dur) in ops {
            let (start, end) = t.schedule(TimePs(ready), TimePs(dur));
            prop_assert!(start >= prev_end, "overlap: start {start:?} < prev end {prev_end:?}");
            prop_assert!(start >= TimePs(ready));
            prop_assert_eq!(end, start + TimePs(dur));
            prev_end = end;
            total_busy += dur;
        }
        prop_assert_eq!(t.busy(), TimePs(total_busy));
        prop_assert!(t.utilization(prev_end) <= 1.0);
    }

    /// The memory allocator never exceeds capacity and accounts exactly.
    #[test]
    fn memory_accounting_is_exact(sizes in prop::collection::vec(1usize..=BANK_BYTES, 0..12)) {
        let mut m = TileMemory::new();
        let mut accepted = 0usize;
        for (i, size) in sizes.iter().enumerate() {
            if m.allocate(format!("b{i}"), *size).is_ok() {
                accepted += size;
            }
        }
        prop_assert_eq!(m.used_bytes(), accepted);
        prop_assert!(m.used_bytes() <= TILE_BYTES);
        prop_assert_eq!(m.free_bytes(), TILE_BYTES - accepted);
    }

    /// An allocation that fits in some bank is never rejected while a
    /// bank has room for it (best-fit completeness).
    #[test]
    fn allocator_accepts_when_a_bank_fits(first in 1usize..=BANK_BYTES, second in 1usize..=BANK_BYTES) {
        let mut m = TileMemory::new();
        m.allocate("first", first).unwrap();
        // Three empty banks remain; anything bank-sized must fit.
        prop_assert!(m.allocate("second", second).is_ok());
    }

    /// PLIO transfer time is monotone in payload and inversely monotone
    /// in frequency.
    #[test]
    fn plio_monotonicity(bytes in 1usize..100_000, mhz in 100.0f64..500.0) {
        let cal = Calibration::default();
        let slow = PlioModel::new(cal, Frequency::from_mhz(mhz));
        let fast = PlioModel::new(cal, Frequency::from_mhz(mhz * 1.5));
        prop_assert!(slow.transfer_time(bytes, 1) >= slow.transfer_time(bytes / 2, 1));
        prop_assert!(fast.transfer_time(bytes, 1) < slow.transfer_time(bytes, 1));
        // Throttled time is never faster than unthrottled.
        for ports in 1usize..20 {
            prop_assert!(
                slow.throttled_transfer_time(bytes, 1, PlioDirection::ToAie, ports)
                    >= slow.transfer_time(bytes, 1)
            );
        }
    }

    /// DMA cost is monotone in bytes and hops, and always slower than a
    /// neighbor hand-off for any real payload.
    #[test]
    fn dma_monotonicity(bytes in 1usize..65_536, hops in 1u64..32) {
        let d = DmaModel::default();
        let k = KernelCostModel::default();
        prop_assert!(d.transfer_cycles_with_hops(bytes, hops) >= d.transfer_cycles(bytes.min(1)));
        prop_assert!(d.transfer_cycles_with_hops(bytes, hops + 1) > d.transfer_cycles_with_hops(bytes, hops));
        prop_assert!(d.transfer_time(bytes) > k.neighbor_handoff_time());
    }

    /// Switch hop counts satisfy symmetry and the triangle inequality
    /// (within the +1 entry-switch constant).
    #[test]
    fn switch_hops_metric(
        a in (0usize..8, 0usize..50),
        b in (0usize..8, 0usize..50),
        c in (0usize..8, 0usize..50),
    ) {
        let f = SwitchFabric::new(ArrayGeometry::VCK190);
        let ta = TileCoord::new(a.0, a.1);
        let tb = TileCoord::new(b.0, b.1);
        let tc = TileCoord::new(c.0, c.1);
        let ab = f.hops(ta, tb).unwrap();
        let ba = f.hops(tb, ta).unwrap();
        prop_assert_eq!(ab, ba);
        let ac = f.hops(ta, tc).unwrap();
        let cb = f.hops(tc, tb).unwrap();
        // Manhattan distances obey the triangle inequality; each hop count
        // carries a +1 entry constant.
        prop_assert!(ab <= ac + cb);
    }

    /// Kernel cost grows monotonically with the column length.
    #[test]
    fn kernel_cost_monotone(m in 1usize..4096) {
        let k = KernelCostModel::default();
        prop_assert!(k.orth_cycles(m + 8) > k.orth_cycles(m.saturating_sub(8)));
        prop_assert!(k.norm_cycles(m) < k.orth_cycles(m));
    }

    /// Every in-array core reaches 2-4 memories, always including its
    /// own, and the relation respects the row-parity rule.
    #[test]
    fn accessible_memories_shape(row in 0usize..8, col in 0usize..50) {
        let g = ArrayGeometry::VCK190;
        let core = TileCoord::new(row, col);
        let mems = g.accessible_memories(core);
        prop_assert!((2..=4).contains(&mems.len()));
        prop_assert!(mems.contains(&core));
        for m in &mems {
            // All accessible memories are within distance 1.
            let d = m.row.abs_diff(core.row) + m.col.abs_diff(core.col);
            prop_assert!(d <= 1);
        }
    }

    /// Frequency cycle arithmetic round-trips.
    #[test]
    fn frequency_cycles_round_trip(mhz in 50.0f64..2_000.0, n in 0u64..1_000_000) {
        let f = Frequency::from_mhz(mhz);
        let t = f.cycles(n);
        prop_assert_eq!(f.cycles_in(t), n);
    }
}
