//! Inter-tile DMA transfer model (§II-B, Fig. 1a).
//!
//! Non-neighboring AIEs communicate through the stream switch using DMA:
//! the source tile's DMA engine reads the buffer and streams it (32 bits
//! per AIE cycle) to the destination tile's DMA engine, which writes it to
//! a *second* buffer — hence "twice the memory resources and a lower data
//! transmission rate" compared to direct neighbor access.

use crate::calibration::Calibration;
use crate::time::TimePs;
use serde::{Deserialize, Serialize};

/// Cost model for one inter-tile DMA transfer.
///
/// # Example
///
/// ```
/// use aie_sim::dma::DmaModel;
///
/// let dma = DmaModel::default();
/// // DMA costs setup + routing + streaming; a longer route only adds
/// // hop latency, not bandwidth.
/// assert!(dma.transfer_time_with_hops(512, 8) > dma.transfer_time(512));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    cal: Calibration,
}

impl DmaModel {
    /// Builds the model from a calibration.
    pub fn new(cal: Calibration) -> Self {
        DmaModel { cal }
    }

    /// AIE cycles to move `bytes` over one DMA channel, including buffer
    /// descriptor setup (single-hop route).
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        self.transfer_cycles_with_hops(bytes, 1)
    }

    /// [`DmaModel::transfer_cycles`] for a route of `hops` stream-switch
    /// traversals (see [`crate::switch::SwitchFabric::hops`]): each hop
    /// adds its pipeline latency, while throughput stays one word per
    /// cycle.
    pub fn transfer_cycles_with_hops(&self, bytes: usize, hops: u64) -> u64 {
        self.cal.dma_setup_cycles
            + hops * crate::switch::HOP_CYCLES
            + (bytes as u64).div_ceil(self.cal.dma_bytes_per_cycle.max(1))
    }

    /// Wall-clock duration of a single-hop transfer.
    pub fn transfer_time(&self, bytes: usize) -> TimePs {
        self.cal.aie_freq().cycles(self.transfer_cycles(bytes))
    }

    /// Wall-clock duration of a transfer over `hops` switch traversals.
    pub fn transfer_time_with_hops(&self, bytes: usize, hops: u64) -> TimePs {
        self.cal
            .aie_freq()
            .cycles(self.transfer_cycles_with_hops(bytes, hops))
    }

    /// Extra destination-side buffer bytes the transfer occupies (the
    /// doubled memory of the DMA mechanism).
    pub fn extra_buffer_bytes(&self, bytes: usize) -> usize {
        bytes
    }
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel::new(Calibration::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelCostModel;

    #[test]
    fn transfer_cost_has_setup_plus_streaming() {
        let d = DmaModel::default();
        let cal = Calibration::default();
        let hop = crate::switch::HOP_CYCLES;
        assert_eq!(d.transfer_cycles(0), cal.dma_setup_cycles + hop);
        assert_eq!(d.transfer_cycles(400), cal.dma_setup_cycles + hop + 100);
        // Partial words round up.
        assert_eq!(d.transfer_cycles(401), cal.dma_setup_cycles + hop + 101);
    }

    #[test]
    fn longer_routes_add_hop_latency() {
        let d = DmaModel::default();
        let hop = crate::switch::HOP_CYCLES;
        assert_eq!(
            d.transfer_cycles_with_hops(400, 8) - d.transfer_cycles_with_hops(400, 1),
            7 * hop
        );
        assert!(d.transfer_time_with_hops(400, 8) > d.transfer_time(400));
    }

    #[test]
    fn dma_is_slower_than_neighbor_handoff() {
        let d = DmaModel::default();
        let k = KernelCostModel::default();
        // A 512-byte column: DMA must beat the neighbor hand-off by a wide
        // margin — this asymmetry is what the co-design exploits.
        assert!(d.transfer_time(512) > k.neighbor_handoff_time());
        assert!(d.transfer_cycles(512) > 4 * Calibration::default().neighbor_handoff_cycles);
    }

    #[test]
    fn doubles_memory() {
        let d = DmaModel::default();
        assert_eq!(d.extra_buffer_bytes(2048), 2048);
    }

    #[test]
    fn time_uses_aie_clock() {
        let d = DmaModel::default();
        assert_eq!(d.transfer_time(400).0, d.transfer_cycles(400) * 800);
    }
}
