//! VCK190 resource budgets and usage accounting (Eq. 16).
//!
//! The DSE feasibility check keeps AIE, PLIO, BRAM and URAM usage under
//! the device budgets. LUTs are tracked too for power estimation and
//! reporting, though the paper's Eq. (16) omits them (HeteroSVD's PL
//! design uses <2% of the device's LUTs, Table II).

use crate::SimError;
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// Device resource budgets.
///
/// # Example
///
/// ```
/// use aie_sim::{ResourceBudget, ResourceUsage};
///
/// let usage = ResourceUsage { aie: 322, plio: 12, bram: 12, uram: 32, luts: 16_000 };
/// assert!(ResourceBudget::VCK190.check(&usage).is_ok());
/// let over = ResourceUsage { uram: 500, ..usage };
/// assert!(ResourceBudget::VCK190.check(&over).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// AIE tiles.
    pub aie: usize,
    /// PLIO stream ports between PL and the AIE array.
    pub plio: usize,
    /// BRAM36 blocks.
    pub bram: usize,
    /// URAM blocks.
    pub uram: usize,
    /// PL LUTs.
    pub luts: usize,
}

impl ResourceBudget {
    /// The VCK190 (VC1902): 400 AIEs (8×50), 967 BRAM, 463 URAM, ~900K
    /// LUTs (Table II's percentages back out these totals). The PLIO
    /// budget of 156 ports corresponds to the paper's maximum
    /// `P_task = 26` at 6 PLIOs per task (Table I).
    pub const VCK190: ResourceBudget = ResourceBudget {
        aie: 400,
        plio: 156,
        bram: 967,
        uram: 463,
        luts: 899_840,
    };

    /// Validates `usage` against this budget (Eq. 16).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ResourceExceeded`] naming the first resource
    /// over budget.
    pub fn check(&self, usage: &ResourceUsage) -> Result<(), SimError> {
        let checks: [(&'static str, usize, usize); 4] = [
            ("AIE", usage.aie, self.aie),
            ("PLIO", usage.plio, self.plio),
            ("BRAM", usage.bram, self.bram),
            ("URAM", usage.uram, self.uram),
        ];
        for (name, used, budget) in checks {
            if used > budget {
                return Err(SimError::ResourceExceeded {
                    resource: name,
                    used,
                    budget,
                });
            }
        }
        Ok(())
    }
}

/// Resources consumed by a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// AIE tiles in use (orth + norm + mem).
    pub aie: usize,
    /// PLIO ports in use.
    pub plio: usize,
    /// BRAM36 blocks in use.
    pub bram: usize,
    /// URAM blocks in use.
    pub uram: usize,
    /// PL LUTs in use.
    pub luts: usize,
}

impl ResourceUsage {
    /// Usage as a fraction of the budget, per resource, in budget order
    /// (AIE, PLIO, BRAM, URAM, LUT).
    pub fn fractions(&self, budget: &ResourceBudget) -> [f64; 5] {
        [
            self.aie as f64 / budget.aie as f64,
            self.plio as f64 / budget.plio as f64,
            self.bram as f64 / budget.bram as f64,
            self.uram as f64 / budget.uram as f64,
            self.luts as f64 / budget.luts as f64,
        ]
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            aie: self.aie + rhs.aie,
            plio: self.plio + rhs.plio,
            bram: self.bram + rhs.bram,
            uram: self.uram + rhs.uram,
            luts: self.luts + rhs.luts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vck190_percentages_match_table2() {
        // Table II: 128 AIEs = 32%, 4 URAM = 0.86%, 244 URAM = 52.70%,
        // 15.1K LUT = 1.68%.
        let b = ResourceBudget::VCK190;
        assert!((128.0 / b.aie as f64 - 0.32).abs() < 0.001);
        assert!((4.0 / b.uram as f64 - 0.0086).abs() < 0.0004);
        assert!((244.0 / b.uram as f64 - 0.527).abs() < 0.002);
        assert!((15_100.0 / b.luts as f64 - 0.0168).abs() < 0.0003);
    }

    #[test]
    fn check_accepts_feasible_designs() {
        let usage = ResourceUsage {
            aie: 322,
            plio: 12,
            bram: 12,
            uram: 32,
            luts: 16_000,
        };
        assert!(ResourceBudget::VCK190.check(&usage).is_ok());
    }

    #[test]
    fn check_names_the_exceeded_resource() {
        let usage = ResourceUsage {
            aie: 100,
            plio: 10,
            bram: 10,
            uram: 500,
            luts: 10_000,
        };
        match ResourceBudget::VCK190.check(&usage) {
            Err(SimError::ResourceExceeded { resource, .. }) => assert_eq!(resource, "URAM"),
            other => panic!("expected ResourceExceeded, got {other:?}"),
        }
    }

    #[test]
    fn usage_addition_and_fractions() {
        let a = ResourceUsage {
            aie: 100,
            plio: 6,
            bram: 5,
            uram: 16,
            luts: 15_000,
        };
        let total = a + a;
        assert_eq!(total.aie, 200);
        assert_eq!(total.plio, 12);
        let f = total.fractions(&ResourceBudget::VCK190);
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!(f.iter().all(|&x| x >= 0.0));
    }
}
