//! Tile stream switches and routing (Fig. 1).
//!
//! Each AIE tile contains a stream switch wired to its four neighbors
//! and to the tile's DMA engines. Streams hop switch to switch; a route
//! between two tiles costs one switch traversal per hop. This module
//! models the routing function — Manhattan paths with a column-first
//! rule (streams enter the array vertically from the PL interface) —
//! plus the two one-to-many mechanisms of §II-B: static broadcast trees
//! and dynamic (packet-switched) forwarding tables.

use crate::geometry::{ArrayGeometry, TileCoord};
use crate::packet::StreamId;
use crate::SimError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-hop traversal latency of a stream switch, in AIE cycles.
pub const HOP_CYCLES: u64 = 2;

/// The stream-routing fabric of the array.
///
/// # Example
///
/// ```
/// use aie_sim::switch::SwitchFabric;
/// use aie_sim::packet::StreamId;
/// use aie_sim::{ArrayGeometry, TileCoord};
///
/// # fn main() -> Result<(), aie_sim::SimError> {
/// let mut fabric = SwitchFabric::new(ArrayGeometry::VCK190);
/// fabric.install_forwarding(StreamId(3), TileCoord::new(2, 5))?;
/// assert_eq!(fabric.forward(StreamId(3)), Some(TileCoord::new(2, 5)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SwitchFabric {
    geometry: ArrayGeometry,
    /// Dynamic-forwarding tables: stream ID → destination tile.
    forwarding: HashMap<u16, TileCoord>,
    /// Static broadcast trees: stream ID → fixed destination set.
    broadcast: HashMap<u16, Vec<TileCoord>>,
}

impl SwitchFabric {
    /// A fabric over the given array geometry with empty tables.
    pub fn new(geometry: ArrayGeometry) -> Self {
        SwitchFabric {
            geometry,
            forwarding: HashMap::new(),
            broadcast: HashMap::new(),
        }
    }

    /// Number of switch hops between two tiles: the Manhattan distance
    /// (column-first routing), plus one for the entry switch.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TileOutOfRange`] when either tile lies outside
    /// the array.
    pub fn hops(&self, from: TileCoord, to: TileCoord) -> Result<u64, SimError> {
        for t in [from, to] {
            if !self.geometry.contains(t) {
                return Err(SimError::TileOutOfRange {
                    row: t.row,
                    col: t.col,
                });
            }
        }
        let dr = from.row.abs_diff(to.row) as u64;
        let dc = from.col.abs_diff(to.col) as u64;
        Ok(dr + dc + 1)
    }

    /// Installs a dynamic-forwarding rule: packets with `id` route to
    /// `dest` ("dynamically forwarding packets to different destinations
    /// according to the packet header", §II-B).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TileOutOfRange`] for a destination outside the
    /// array.
    pub fn install_forwarding(&mut self, id: StreamId, dest: TileCoord) -> Result<(), SimError> {
        if !self.geometry.contains(dest) {
            return Err(SimError::TileOutOfRange {
                row: dest.row,
                col: dest.col,
            });
        }
        self.forwarding.insert(id.0, dest);
        Ok(())
    }

    /// Installs a static broadcast tree: packets with `id` replicate to
    /// every tile in `dests`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TileOutOfRange`] for any destination outside
    /// the array, or [`SimError::InvalidParameter`] for an empty set.
    pub fn install_broadcast(
        &mut self,
        id: StreamId,
        dests: Vec<TileCoord>,
    ) -> Result<(), SimError> {
        if dests.is_empty() {
            return Err(SimError::InvalidParameter(
                "broadcast destination set must not be empty".into(),
            ));
        }
        for d in &dests {
            if !self.geometry.contains(*d) {
                return Err(SimError::TileOutOfRange {
                    row: d.row,
                    col: d.col,
                });
            }
        }
        self.broadcast.insert(id.0, dests);
        Ok(())
    }

    /// Resolves a dynamically-forwarded packet's destination.
    pub fn forward(&self, id: StreamId) -> Option<TileCoord> {
        self.forwarding.get(&id.0).copied()
    }

    /// Resolves a broadcast packet's destination set.
    pub fn broadcast_dests(&self, id: StreamId) -> Option<&[TileCoord]> {
        self.broadcast.get(&id.0).map(Vec::as_slice)
    }

    /// Switch-traversal cycles for a unicast route.
    ///
    /// # Errors
    ///
    /// See [`SwitchFabric::hops`].
    pub fn route_cycles(&self, from: TileCoord, to: TileCoord) -> Result<u64, SimError> {
        Ok(self.hops(from, to)? * HOP_CYCLES)
    }

    /// Switch-traversal cycles for a broadcast: the tree's depth is the
    /// farthest destination (replication happens in the switches, not by
    /// re-sending).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] when `id` has no installed
    /// tree, or [`SimError::TileOutOfRange`] from the hop computation.
    pub fn broadcast_cycles(&self, from: TileCoord, id: StreamId) -> Result<u64, SimError> {
        let dests = self
            .broadcast_dests(id)
            .ok_or_else(|| SimError::InvalidParameter(format!("no broadcast tree for {id:?}")))?;
        let mut worst = 0;
        for d in dests {
            worst = worst.max(self.hops(from, *d)?);
        }
        Ok(worst * HOP_CYCLES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> SwitchFabric {
        SwitchFabric::new(ArrayGeometry::VCK190)
    }

    #[test]
    fn hops_are_manhattan_plus_entry() {
        let f = fabric();
        assert_eq!(
            f.hops(TileCoord::new(0, 0), TileCoord::new(0, 0)).unwrap(),
            1
        );
        assert_eq!(
            f.hops(TileCoord::new(0, 0), TileCoord::new(0, 3)).unwrap(),
            4
        );
        assert_eq!(
            f.hops(TileCoord::new(1, 2), TileCoord::new(4, 6)).unwrap(),
            8
        );
        // Symmetric.
        assert_eq!(
            f.hops(TileCoord::new(4, 6), TileCoord::new(1, 2)).unwrap(),
            8
        );
    }

    #[test]
    fn out_of_range_tiles_error() {
        let f = fabric();
        assert!(matches!(
            f.hops(TileCoord::new(0, 0), TileCoord::new(9, 0)),
            Err(SimError::TileOutOfRange { .. })
        ));
    }

    #[test]
    fn dynamic_forwarding_round_trip() {
        let mut f = fabric();
        let id = StreamId(5);
        assert!(f.forward(id).is_none());
        f.install_forwarding(id, TileCoord::new(3, 7)).unwrap();
        assert_eq!(f.forward(id), Some(TileCoord::new(3, 7)));
        // Re-install overwrites (the sender reprograms routes per phase).
        f.install_forwarding(id, TileCoord::new(2, 2)).unwrap();
        assert_eq!(f.forward(id), Some(TileCoord::new(2, 2)));
        assert!(f
            .install_forwarding(StreamId(6), TileCoord::new(8, 0))
            .is_err());
    }

    #[test]
    fn broadcast_tree_costs_depth_of_farthest_leaf() {
        let mut f = fabric();
        let id = StreamId(9);
        f.install_broadcast(
            id,
            vec![
                TileCoord::new(1, 0),
                TileCoord::new(1, 1),
                TileCoord::new(1, 5),
            ],
        )
        .unwrap();
        let from = TileCoord::new(0, 0);
        // Farthest leaf (1,5): 1 + 5 + 1 entry = 7 hops.
        assert_eq!(f.broadcast_cycles(from, id).unwrap(), 7 * HOP_CYCLES);
        assert_eq!(f.broadcast_dests(id).unwrap().len(), 3);
    }

    #[test]
    fn broadcast_validation() {
        let mut f = fabric();
        assert!(f.install_broadcast(StreamId(1), vec![]).is_err());
        assert!(f
            .install_broadcast(StreamId(1), vec![TileCoord::new(8, 0)])
            .is_err());
        assert!(matches!(
            f.broadcast_cycles(TileCoord::new(0, 0), StreamId(42)),
            Err(SimError::InvalidParameter(_))
        ));
    }

    #[test]
    fn route_cycles_scale_with_distance() {
        let f = fabric();
        let near = f
            .route_cycles(TileCoord::new(2, 3), TileCoord::new(3, 3))
            .unwrap();
        let far = f
            .route_cycles(TileCoord::new(2, 3), TileCoord::new(2, 10))
            .unwrap();
        assert!(far > near);
    }
}
