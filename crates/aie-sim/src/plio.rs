//! PLIO stream interface model (§II-B).
//!
//! PLIOs are the AXI-Stream ports between the PL and the AIE array: each
//! port moves 128 bits per PL cycle; one interface group (the port set of
//! one task pipeline) is capped at 32 GB/s into the AIE array and 24 GB/s
//! out of it (§II-B). The caps are per group, not array-global — the
//! VC1902's full array interface sustains ~1 TB/s, which is how Table VI's
//! 26 parallel task pipelines scale linearly. Packet-switched streams
//! (dynamic forwarding, Fig. 1b) prepend a 32-bit header used by the tile
//! switches to route the payload.

use crate::calibration::Calibration;
use crate::time::{Frequency, TimePs};
use serde::{Deserialize, Serialize};

/// Transfer direction of a PLIO port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlioDirection {
    /// PL → AIE (32 GB/s aggregate cap).
    ToAie,
    /// AIE → PL (24 GB/s aggregate cap).
    ToPl,
}

/// Bandwidth/latency model of one PLIO stream port.
///
/// # Example
///
/// ```
/// use aie_sim::calibration::Calibration;
/// use aie_sim::plio::PlioModel;
/// use aie_sim::time::Frequency;
///
/// let plio = PlioModel::new(Calibration::DEFAULT, Frequency::from_mhz(208.3));
/// // A 128-element fp32 column (512 B) streams in 32 payload beats + 1
/// // header cycle (Eq. 8).
/// assert_eq!(plio.transfer_cycles(512, 1), 33);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlioModel {
    cal: Calibration,
    pl_freq: Frequency,
}

impl PlioModel {
    /// Builds the model for a given PL clock.
    pub fn new(cal: Calibration, pl_freq: Frequency) -> Self {
        PlioModel { cal, pl_freq }
    }

    /// PL clock this model assumes.
    pub fn pl_freq(&self) -> Frequency {
        self.pl_freq
    }

    /// PL cycles to stream `payload_bytes` through one port as `packets`
    /// packet(s), including per-packet headers. This realizes Eq. (8):
    /// `t = databits / (bandwidth · frequency)`, plus header overhead.
    pub fn transfer_cycles(&self, payload_bytes: usize, packets: usize) -> u64 {
        let bytes_per_cycle = self.cal.plio_bytes_per_cycle().max(1);
        let payload = (payload_bytes as u64).div_ceil(bytes_per_cycle);
        payload + packets as u64 * self.cal.packet_header_cycles
    }

    /// Wall-clock duration of the transfer in [`Self::transfer_cycles`].
    pub fn transfer_time(&self, payload_bytes: usize, packets: usize) -> TimePs {
        self.pl_freq
            .cycles(self.transfer_cycles(payload_bytes, packets))
    }

    /// The per-port bandwidth in bytes/second at this PL clock.
    pub fn port_bytes_per_sec(&self) -> f64 {
        self.cal.plio_bytes_per_cycle() as f64 * self.pl_freq.hz()
    }

    /// Maximum number of ports in `dir` that can run at full rate before
    /// the interface-group cap throttles them.
    pub fn max_full_rate_ports(&self, dir: PlioDirection) -> usize {
        let aggregate = match dir {
            PlioDirection::ToAie => self.cal.pl_to_aie_bytes_per_sec,
            PlioDirection::ToPl => self.cal.aie_to_pl_bytes_per_sec,
        };
        (aggregate / self.port_bytes_per_sec()).floor().max(1.0) as usize
    }

    /// Effective duration of a transfer when `active_ports` ports of the
    /// same interface group stream concurrently in direction `dir`:
    /// beyond the group cap, all ports slow down proportionally.
    pub fn throttled_transfer_time(
        &self,
        payload_bytes: usize,
        packets: usize,
        dir: PlioDirection,
        active_ports: usize,
    ) -> TimePs {
        let base = self.transfer_time(payload_bytes, packets);
        let max_ports = self.max_full_rate_ports(dir);
        if active_ports <= max_ports {
            base
        } else {
            let factor = active_ports as f64 / max_ports as f64;
            TimePs((base.0 as f64 * factor).round() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mhz: f64) -> PlioModel {
        PlioModel::new(Calibration::default(), Frequency::from_mhz(mhz))
    }

    #[test]
    fn transfer_cycles_match_eq8() {
        let m = model(208.3);
        // A 128-element fp32 column = 512 bytes = 32 cycles of payload
        // plus 1 header cycle.
        assert_eq!(m.transfer_cycles(512, 1), 33);
        // Partial beats round up.
        assert_eq!(m.transfer_cycles(513, 1), 34);
        // No payload: headers only.
        assert_eq!(m.transfer_cycles(0, 2), 2);
    }

    #[test]
    fn port_bandwidth_scales_with_pl_clock() {
        let slow = model(100.0);
        let fast = model(400.0);
        assert!((fast.port_bytes_per_sec() / slow.port_bytes_per_sec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_cap_limits_port_count() {
        let m = model(250.0);
        // 16 B/cycle at 250 MHz = 4 GB/s per port; 32/4 = 8 inbound ports.
        assert_eq!(m.max_full_rate_ports(PlioDirection::ToAie), 8);
        assert_eq!(m.max_full_rate_ports(PlioDirection::ToPl), 6);
    }

    #[test]
    fn throttling_kicks_in_beyond_cap() {
        let m = model(250.0);
        let base = m.throttled_transfer_time(1024, 1, PlioDirection::ToAie, 8);
        let throttled = m.throttled_transfer_time(1024, 1, PlioDirection::ToAie, 16);
        assert_eq!(throttled.0, base.0 * 2);
        // Under the cap, no slowdown.
        let few = m.throttled_transfer_time(1024, 1, PlioDirection::ToAie, 2);
        assert_eq!(few, base);
    }

    #[test]
    fn transfer_time_uses_pl_period() {
        let m = model(200.0); // 5000 ps period
        assert_eq!(m.transfer_time(512, 1).0, 33 * 5000);
    }
}
