//! AIE kernel cost model.
//!
//! AIE kernels are compiled ahead of time and their cycle counts are known
//! from the AIE simulator ("the AIE time is estimated by the AIE simulator
//! in advance", §IV-B). This module plays that role: it returns the cycle
//! cost of one kernel invocation as a function of the column length `m`.
//!
//! The orth kernel (Algorithm 1, lines 8–12) computes three `m`-element
//! inner products (α, β, γ), the scalar rotation factors (Eq. 4–5), and
//! two `m`-element column updates — five vector passes on the 8-lane fp32
//! vector unit plus scalar work. The norm kernel (lines 21–24) computes
//! one inner product, a scalar square root/divide, and one scaling pass.

use crate::calibration::Calibration;
use crate::time::TimePs;
use serde::{Deserialize, Serialize};

/// fp32 lanes of the AIE vector unit.
pub const VECTOR_LANES: u64 = 8;

/// Cycle/latency estimates for the two HeteroSVD kernels.
///
/// # Example
///
/// ```
/// use aie_sim::kernel::KernelCostModel;
///
/// let kernels = KernelCostModel::default();
/// // Orthogonalization does five vector passes; normalization two.
/// assert!(kernels.orth_cycles(128) > kernels.norm_cycles(128));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelCostModel {
    cal: Calibration,
}

impl KernelCostModel {
    /// Builds the cost model from a calibration.
    pub fn new(cal: Calibration) -> Self {
        KernelCostModel { cal }
    }

    /// AIE cycles for one orthogonalization of a column pair of length `m`
    /// (three dot products + two updates + scalar rotation section).
    pub fn orth_cycles(&self, m: usize) -> u64 {
        let steps = (m as u64).div_ceil(VECTOR_LANES);
        self.cal.orth_call_cycles
            + 5 * steps * self.cal.vector_step_cycles
            + self.cal.rotation_scalar_cycles
    }

    /// AIE cycles for one normalization of a column of length `m`
    /// (one dot product + scalar sqrt/divide + one scaling pass).
    pub fn norm_cycles(&self, m: usize) -> u64 {
        let steps = (m as u64).div_ceil(VECTOR_LANES);
        self.cal.norm_call_cycles
            + 2 * steps * self.cal.vector_step_cycles
            + self.cal.norm_scalar_cycles
    }

    /// Wall-clock duration of one orth invocation.
    pub fn orth_time(&self, m: usize) -> TimePs {
        self.cal.aie_freq().cycles(self.orth_cycles(m))
    }

    /// Wall-clock duration of one norm invocation.
    pub fn norm_time(&self, m: usize) -> TimePs {
        self.cal.aie_freq().cycles(self.norm_cycles(m))
    }

    /// AIE cycles for one streaming multiply-accumulate pass over `m`
    /// elements (the rank-r apply pipeline's unit of work: a dot product
    /// or an AXPY against a stationary factor column). Charged as one
    /// vector pass plus the norm kernel's call overhead — the apply
    /// kernels stream one operand like the normalization kernel does,
    /// without its scalar sqrt/divide section.
    pub fn mac_pass_cycles(&self, m: usize) -> u64 {
        let steps = (m as u64).div_ceil(VECTOR_LANES);
        self.cal.norm_call_cycles + steps * self.cal.vector_step_cycles
    }

    /// Wall-clock duration of one streaming MAC pass.
    pub fn mac_pass_time(&self, m: usize) -> TimePs {
        self.cal.aie_freq().cycles(self.mac_pass_cycles(m))
    }

    /// Wall-clock duration of a neighbor shared-memory hand-off.
    pub fn neighbor_handoff_time(&self) -> TimePs {
        self.cal.aie_freq().cycles(self.cal.neighbor_handoff_cycles)
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &Calibration {
        &self.cal
    }
}

impl Default for KernelCostModel {
    fn default() -> Self {
        KernelCostModel::new(Calibration::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orth_cost_is_affine_in_m() {
        let k = KernelCostModel::default();
        let c128 = k.orth_cycles(128);
        let c256 = k.orth_cycles(256);
        let c512 = k.orth_cycles(512);
        // Slope doubles consistently: c(2m) - c(m) = linear part of c(m).
        assert_eq!(c512 - c256, 2 * (c256 - c128));
        assert!(c128 > 0);
    }

    #[test]
    fn vector_steps_round_up() {
        let k = KernelCostModel::default();
        // 9 elements need 2 vector steps, same as 16.
        assert_eq!(k.orth_cycles(9), k.orth_cycles(16));
        assert!(k.orth_cycles(17) > k.orth_cycles(16));
    }

    #[test]
    fn norm_is_cheaper_than_orth() {
        let k = KernelCostModel::default();
        for m in [8, 64, 128, 512, 1024] {
            assert!(k.norm_cycles(m) < k.orth_cycles(m));
        }
    }

    #[test]
    fn times_scale_with_cycles() {
        let k = KernelCostModel::default();
        let t = k.orth_time(128);
        // 1.25 GHz -> 800 ps per cycle.
        assert_eq!(t.0, k.orth_cycles(128) * 800);
    }

    #[test]
    fn mac_pass_is_the_cheapest_kernel() {
        let k = KernelCostModel::default();
        for m in [8, 64, 256, 1024] {
            assert!(k.mac_pass_cycles(m) < k.norm_cycles(m));
            assert!(k.mac_pass_cycles(m) > 0);
        }
        // One vector pass: slope is exactly vector_step_cycles per lane
        // group.
        let cal = *k.calibration();
        assert_eq!(
            k.mac_pass_cycles(16) - k.mac_pass_cycles(8),
            cal.vector_step_cycles
        );
        assert_eq!(k.mac_pass_time(64).0, k.mac_pass_cycles(64) * 800);
    }

    #[test]
    fn zero_length_column_costs_only_overhead() {
        let k = KernelCostModel::default();
        let cal = k.calibration();
        assert_eq!(
            k.orth_cycles(0),
            cal.orth_call_cycles + cal.rotation_scalar_cycles
        );
    }
}
