//! Packet-switched stream traffic (Fig. 1b).
//!
//! The AIE stream network carries two kinds of one-to-many traffic
//! (§II-B): **static broadcast** — one source replicated to a fixed set
//! of destinations configured at compile time — and **dynamic
//! forwarding** — each packet carries a header that the tile switches
//! match against their routing tables to pick the destination at
//! runtime. HeteroSVD uses dynamic forwarding to steer each column to
//! its orth-AIE slot (§III-A).

use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A 32-bit packet header: a stream ID the switches route on.
///
/// Versal packet-switched streams use a 5-bit packet ID plus parity and
/// source fields; we model the ID plus an explicit destination tag,
/// which is what the routing semantics need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u16);

/// One packet on the stream network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Routing ID matched by the switches.
    pub id: StreamId,
    /// Payload bytes (a column, in HeteroSVD's case).
    pub payload: Bytes,
}

impl Packet {
    /// Creates a packet.
    pub fn new(id: StreamId, payload: impl Into<Bytes>) -> Self {
        Packet {
            id,
            payload: payload.into(),
        }
    }

    /// Total wire bytes: the 32-bit header plus the payload.
    pub fn wire_bytes(&self) -> usize {
        4 + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_includes_header() {
        let p = Packet::new(StreamId(3), vec![0u8; 512]);
        assert_eq!(p.wire_bytes(), 516);
        assert_eq!(p.payload.len(), 512);
    }

    #[test]
    fn payload_is_cheaply_cloneable() {
        // Bytes is reference-counted: cloning a packet must not copy the
        // payload (broadcast replicates packets to many destinations).
        let p = Packet::new(StreamId(1), vec![7u8; 1024]);
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.payload.as_ptr(), p.payload.as_ptr());
    }
}
