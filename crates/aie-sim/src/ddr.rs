//! DDR / NoC load-store model.
//!
//! The data-arrangement module reads the input matrix from DDR through the
//! NoC and writes `U`/`Σ` back (§III-A). Block pairs cannot be loaded
//! simultaneously, which serializes the first iteration's loads (Eq. 12).

use crate::calibration::Calibration;
use crate::time::TimePs;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency model of the DDR path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DdrModel {
    cal: Calibration,
}

impl DdrModel {
    /// Builds the model from a calibration.
    pub fn new(cal: Calibration) -> Self {
        DdrModel { cal }
    }

    /// Wall-clock time to move `bytes` in one burst (setup latency plus
    /// streaming at the sustained bandwidth).
    pub fn burst_time(&self, bytes: usize) -> TimePs {
        let stream_secs = bytes as f64 / self.cal.ddr_bytes_per_sec;
        TimePs::from_secs(self.cal.ddr_latency_ns * 1e-9 + stream_secs)
    }

    /// Wall-clock time for `bursts` serialized bursts of `bytes` each —
    /// the Eq. (12) first-iteration pattern (`t_DDR = num · t_Tx`-like
    /// serialization at DDR rate).
    pub fn serialized_bursts(&self, bytes: usize, bursts: usize) -> TimePs {
        TimePs(self.burst_time(bytes).0 * bursts as u64)
    }

    /// Burst time when `sharers` co-resident tenants stream concurrently
    /// through the single DDR controller: the setup latency is paid once
    /// per burst, but the sustained bandwidth is split `sharers` ways —
    /// Eq. (12)'s serialized-load argument generalized from one pipeline's
    /// block pairs to whole co-scheduled pipelines. `sharers == 1` is
    /// exactly [`Self::burst_time`].
    pub fn contended_burst_time(&self, bytes: usize, sharers: usize) -> TimePs {
        let sharers = sharers.max(1);
        let stream_secs = (bytes * sharers) as f64 / self.cal.ddr_bytes_per_sec;
        TimePs::from_secs(self.cal.ddr_latency_ns * 1e-9 + stream_secs)
    }
}

impl Default for DdrModel {
    fn default() -> Self {
        DdrModel::new(Calibration::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_includes_latency_floor() {
        let d = DdrModel::default();
        let tiny = d.burst_time(4);
        assert!(tiny.as_secs() >= 180e-9);
    }

    #[test]
    fn streaming_dominates_large_bursts() {
        let d = DdrModel::default();
        // 128 MiB at 12.8 GB/s ~ 10.49 ms >> latency.
        let expected = (128u64 << 20) as f64 / 12.8e9;
        let t = d.burst_time(128 << 20);
        assert!((t.as_secs() - expected).abs() / expected < 0.01);
    }

    #[test]
    fn serialization_is_linear() {
        let d = DdrModel::default();
        let one = d.burst_time(4096);
        let ten = d.serialized_bursts(4096, 10);
        assert_eq!(ten.0, one.0 * 10);
    }

    #[test]
    fn contention_splits_bandwidth_not_latency() {
        let d = DdrModel::default();
        // One sharer is exactly the uncontended burst.
        assert_eq!(d.contended_burst_time(4096, 1), d.burst_time(4096));
        assert_eq!(d.contended_burst_time(4096, 0), d.burst_time(4096));
        // Four sharers quadruple the streaming term only: the contended
        // burst equals latency + 4x the payload stream, i.e. the same as
        // one burst of 4x the bytes.
        assert_eq!(d.contended_burst_time(4096, 4), d.burst_time(4 * 4096));
        assert!(d.contended_burst_time(4096, 4).0 < d.burst_time(4096).0 * 4);
    }
}
