//! Device profiles: the platform parameters a HeteroSVD instance
//! targets, bundled.
//!
//! The paper evaluates on the VCK190 (VC1902, AIE1 architecture). The
//! framework itself only depends on a handful of platform numbers —
//! array geometry, per-tile memory, resource budgets, clock — so porting
//! to another Versal device is a matter of swapping the profile. An
//! **estimated** AIE-ML profile is included as a what-if target (its
//! values come from public marketing material, not from a calibrated
//! board; treat results on it as a porting study, not a measurement).

use crate::geometry::ArrayGeometry;
use crate::resources::ResourceBudget;
use serde::{Deserialize, Serialize};

/// A Versal device profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// AIE array geometry.
    pub geometry: ArrayGeometry,
    /// Resource budgets (Eq. 16).
    pub budget: ResourceBudget,
    /// Data-memory banks per tile.
    pub banks_per_tile: usize,
    /// Bytes per memory bank.
    pub bank_bytes: usize,
    /// AIE clock in hertz.
    pub aie_freq_hz: f64,
}

impl DeviceProfile {
    /// The paper's target: VCK190 / VC1902, AIE1 — 400 tiles (8×50),
    /// 32 KB data memory per tile (4 × 8 KB banks), 1.25 GHz.
    pub const VCK190: DeviceProfile = DeviceProfile {
        geometry: ArrayGeometry::VCK190,
        budget: ResourceBudget::VCK190,
        banks_per_tile: 4,
        bank_bytes: 8 * 1024,
        aie_freq_hz: 1.25e9,
    };

    /// An **estimated** AIE-ML device in the VE2802 class: 304 tiles
    /// (8×38) with 64 KB data memory per tile (8 × 8 KB banks), a smaller
    /// PL (fewer LUT/BRAM/URAM). Public specs only — not calibrated
    /// against hardware; use for porting studies.
    pub const VE2802_ESTIMATE: DeviceProfile = DeviceProfile {
        geometry: ArrayGeometry { rows: 8, cols: 38 },
        budget: ResourceBudget {
            aie: 304,
            plio: 156,
            bram: 600,
            uram: 264,
            luts: 522_720,
        },
        banks_per_tile: 8,
        bank_bytes: 8 * 1024,
        aie_freq_hz: 1.25e9,
    };

    /// Total data memory per tile in bytes.
    pub fn tile_bytes(&self) -> usize {
        self.banks_per_tile * self.bank_bytes
    }

    /// Human-readable name for the known profiles (`"custom"` otherwise).
    pub fn name(&self) -> &'static str {
        if *self == DeviceProfile::VCK190 {
            "VCK190 (VC1902, AIE1)"
        } else if *self == DeviceProfile::VE2802_ESTIMATE {
            "VE2802-class (AIE-ML, estimated)"
        } else {
            "custom"
        }
    }
}

impl Default for DeviceProfile {
    /// Defaults to the paper's VCK190.
    fn default() -> Self {
        DeviceProfile::VCK190
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vck190_matches_the_standalone_constants() {
        let d = DeviceProfile::VCK190;
        assert!(d.name().contains("VCK190"));
        assert_eq!(
            DeviceProfile {
                banks_per_tile: 5,
                ..d
            }
            .name(),
            "custom"
        );
        assert_eq!(d.geometry, ArrayGeometry::VCK190);
        assert_eq!(d.budget, ResourceBudget::VCK190);
        assert_eq!(d.tile_bytes(), crate::memory::TILE_BYTES);
    }

    #[test]
    fn aie_ml_estimate_differs_where_expected() {
        let d = DeviceProfile::VE2802_ESTIMATE;
        assert_eq!(d.geometry.num_tiles(), 304);
        // Twice the tile memory of AIE1 tiles.
        assert_eq!(d.tile_bytes(), 2 * DeviceProfile::VCK190.tile_bytes());
        assert!(d.budget.aie < DeviceProfile::VCK190.budget.aie);
        assert!(d.budget.uram < DeviceProfile::VCK190.budget.uram);
    }
}
