//! Central timing/power calibration constants.
//!
//! Every constant that maps simulated work to wall-clock time or watts
//! lives here, with its provenance. Architectural constants (clock rates,
//! port widths, memory sizes) come from the Versal ACAP documentation as
//! cited by the paper (§II-B, §V-A); empirical constants (kernel call
//! overhead, HLS loop overhead) are calibrated once so that the simulated
//! single-iteration latency of the 128×128 / `P_eng = 8` / 208.3 MHz
//! configuration lands near Table IV's 0.214 ms, and are then held fixed
//! for every other experiment.

use crate::time::Frequency;
use serde::{Deserialize, Serialize};

/// Timing calibration for the AIE/PL/NoC cost models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// AIE array clock (1.25 GHz on VCK190, §V-A).
    pub aie_freq_hz: f64,
    /// PLIO stream width in bits per PL cycle (128-bit AXI-Stream).
    pub plio_bits_per_cycle: u64,
    /// Aggregate PL→AIE bandwidth cap in bytes/second (32 GB/s, §II-B).
    pub pl_to_aie_bytes_per_sec: f64,
    /// Aggregate AIE→PL bandwidth cap in bytes/second (24 GB/s, §II-B).
    pub aie_to_pl_bytes_per_sec: f64,
    /// Per-packet header overhead on a PLIO stream, in PL cycles (one
    /// 32-bit header word plus routing decision, dynamic forwarding §III-A).
    pub packet_header_cycles: u64,
    /// AIE kernel invocation overhead in AIE cycles (function entry, lock
    /// acquire/release, pointer setup). Calibrated.
    pub orth_call_cycles: u64,
    /// AIE cycles per 8-lane fp32 vector MAC step. The VLIW core issues
    /// one vector op/cycle, but loads/stores share the datapath; 2 is the
    /// sustained rate observed for dot-product-like kernels.
    pub vector_step_cycles: u64,
    /// AIE cycles for the scalar rotation-factor section of the orth
    /// kernel (Eq. 4–5: division, square roots on the scalar unit).
    pub rotation_scalar_cycles: u64,
    /// Norm kernel invocation overhead in AIE cycles. Calibrated.
    pub norm_call_cycles: u64,
    /// AIE cycles for the scalar sqrt/divide in normalization (Eq. 7).
    pub norm_scalar_cycles: u64,
    /// DMA channel setup latency in AIE cycles (buffer descriptor fetch).
    pub dma_setup_cycles: u64,
    /// DMA stream payload width in bytes per AIE cycle (32-bit stream
    /// switch port).
    pub dma_bytes_per_cycle: u64,
    /// Neighbor shared-memory hand-off overhead in AIE cycles (lock
    /// ping-pong); much cheaper than DMA and overlappable.
    pub neighbor_handoff_cycles: u64,
    /// PL cycles lost when HLS switches between loops (§IV-B, t_hls).
    pub hls_loop_overhead_cycles: u64,
    /// DDR burst setup latency in nanoseconds.
    pub ddr_latency_ns: f64,
    /// Sustained DDR bandwidth in bytes/second (one LPDDR4 channel).
    pub ddr_bytes_per_sec: f64,
}

impl Calibration {
    /// The workspace-wide default calibration (see module docs).
    pub const DEFAULT: Calibration = Calibration {
        aie_freq_hz: 1.25e9,
        plio_bits_per_cycle: 128,
        pl_to_aie_bytes_per_sec: 32.0e9,
        aie_to_pl_bytes_per_sec: 24.0e9,
        packet_header_cycles: 1,
        orth_call_cycles: 380,
        vector_step_cycles: 2,
        rotation_scalar_cycles: 60,
        norm_call_cycles: 260,
        norm_scalar_cycles: 40,
        dma_setup_cycles: 48,
        dma_bytes_per_cycle: 4,
        neighbor_handoff_cycles: 16,
        hls_loop_overhead_cycles: 12,
        ddr_latency_ns: 180.0,
        ddr_bytes_per_sec: 12.8e9,
    };

    /// AIE clock as a [`Frequency`].
    pub fn aie_freq(&self) -> Frequency {
        Frequency::from_mhz(self.aie_freq_hz / 1e6)
    }

    /// PLIO bytes moved per PL cycle.
    pub fn plio_bytes_per_cycle(&self) -> u64 {
        self.plio_bits_per_cycle / 8
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration::DEFAULT
    }
}

/// Power-model calibration, fit to Table VI (§7 of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerCalibration {
    /// Static board + PS + NoC power in watts.
    pub base_watts: f64,
    /// Watts per active AIE tile.
    pub watts_per_aie: f64,
    /// Watts per URAM block in use.
    pub watts_per_uram: f64,
    /// Watts per BRAM block in use.
    pub watts_per_bram: f64,
    /// Watts per MHz of PL clock per 100K LUTs of PL logic (dynamic).
    pub watts_per_mhz_per_100k_lut: f64,
}

impl PowerCalibration {
    /// Fit to Table VI: (P_eng, P_task, AIE, URAM, power) =
    /// (2,26,293,416,44.16), (4,9,357,144,34.63), (6,4,366,120,30.79),
    /// (8,2,322,32,26.06) at 208.3 MHz.
    pub const DEFAULT: PowerCalibration = PowerCalibration {
        base_watts: 17.0,
        watts_per_aie: 0.021,
        watts_per_uram: 0.046,
        watts_per_bram: 0.004,
        watts_per_mhz_per_100k_lut: 0.045,
    };

    /// Total power estimate in watts.
    pub fn power_watts(
        &self,
        num_aie: usize,
        num_uram: usize,
        num_bram: usize,
        pl_mhz: f64,
        pl_luts: usize,
    ) -> f64 {
        self.base_watts
            + self.watts_per_aie * num_aie as f64
            + self.watts_per_uram * num_uram as f64
            + self.watts_per_bram * num_bram as f64
            + self.watts_per_mhz_per_100k_lut * pl_mhz * (pl_luts as f64 / 100_000.0)
    }
}

impl Default for PowerCalibration {
    fn default() -> Self {
        PowerCalibration::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_constant() {
        assert_eq!(Calibration::default(), Calibration::DEFAULT);
        assert_eq!(PowerCalibration::default(), PowerCalibration::DEFAULT);
    }

    #[test]
    fn aie_frequency_is_1_25_ghz() {
        let c = Calibration::default();
        assert!((c.aie_freq().hz() - 1.25e9).abs() < 1.0);
        assert_eq!(c.plio_bytes_per_cycle(), 16);
    }

    #[test]
    fn power_fit_matches_table6_within_15_percent() {
        // Table VI rows: (AIE, URAM, watts) at 208.3 MHz, ~15K LUTs.
        let p = PowerCalibration::default();
        let rows = [
            (293usize, 416usize, 44.16),
            (357, 144, 34.63),
            (366, 120, 30.79),
            (322, 32, 26.06),
        ];
        for (aie, uram, paper) in rows {
            let est = p.power_watts(aie, uram, 20, 208.3, 15_200);
            let rel = (est - paper).abs() / paper;
            assert!(
                rel < 0.15,
                "power estimate {est:.2} W vs paper {paper:.2} W (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn power_is_monotone_in_resources() {
        let p = PowerCalibration::default();
        let base = p.power_watts(100, 10, 10, 200.0, 15_000);
        assert!(p.power_watts(200, 10, 10, 200.0, 15_000) > base);
        assert!(p.power_watts(100, 50, 10, 200.0, 15_000) > base);
        assert!(p.power_watts(100, 10, 10, 400.0, 15_000) > base);
    }
}
