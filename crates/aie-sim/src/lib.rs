#![warn(missing_docs)]

//! Cycle-approximate simulator of the Versal ACAP compute fabric.
//!
//! The HeteroSVD paper targets the AMD VCK190 board (VC1902 device): an
//! 8×50 array of AI engines (AIEs) at 1.25 GHz, programmable logic (PL)
//! with BRAM/URAM, and a NoC to DDR. This crate models the pieces of that
//! platform the accelerator's behaviour depends on:
//!
//! * [`geometry`] — tile coordinates, the checkerboard core/memory
//!   orientation, and the neighbor-access rules that make the shifting
//!   ring ordering profitable (§II-B, Fig. 1).
//! * [`memory`] — per-tile data memory (4 banks × 8 KB) with allocation
//!   tracking; DMA buffers double the footprint.
//! * [`kernel`] — the AIE kernel cost model (8-lane fp32 vector unit,
//!   call/lock overheads) for the orthogonalization and normalization
//!   kernels.
//! * [`plio`]/[`dma`]/[`ddr`] — interface bandwidth models: PLIO streams
//!   (128-bit per PL cycle; 24 GB/s AIE→PL and 32 GB/s PL→AIE per-group
//!   caps), inter-tile DMA, and DDR loads.
//! * [`switch`]/[`packet`] — the tile stream switches: hop-based
//!   routing, static broadcast trees, and dynamic (packet-switched)
//!   forwarding tables (Fig. 1b).
//! * [`pl`] — PL-side FIFO sizing and its BRAM/URAM cost, HLS loop
//!   overheads, and achievable-frequency derating.
//! * [`timeline`] — a deterministic resource-timeline simulation engine:
//!   every hardware resource is a timeline that serializes the operations
//!   scheduled onto it; dependencies propagate ready times.
//! * [`resources`] — VCK190 resource budgets and usage accounting for the
//!   DSE feasibility check (Eq. 16).
//! * [`calibration`] — every timing/power constant in one place, with the
//!   provenance of each value.
//!
//! The simulator is *cycle-approximate*: it models transfers and kernel
//! invocations (not individual instructions), which is the granularity of
//! the paper's own performance model (Fig. 7).

pub mod calibration;
pub mod ddr;
pub mod device;
pub mod dma;
pub mod geometry;
pub mod kernel;
pub mod memory;
pub mod packet;
pub mod pl;
pub mod plio;
pub mod resources;
pub mod stats;
pub mod switch;
pub mod time;
pub mod timeline;

mod error;

pub use device::DeviceProfile;
pub use error::SimError;
pub use geometry::{ArrayGeometry, TileCoord};
pub use resources::{ResourceBudget, ResourceUsage};
pub use stats::SimStats;
pub use time::{Frequency, TimePs};
pub use timeline::{SimEngine, Timeline};
