//! AIE array geometry and neighbor-access topology (§II-B, Fig. 1).
//!
//! The VC1902 AIE array is a grid of 8 rows × 50 columns. Each tile holds
//! one computation core and one 32 KB data memory module. The physical
//! orientation alternates per row — in even rows the core sits on the
//! *left* of its memory module, in odd rows on the *right* (§III-B) — so a
//! core's directly reachable memories are:
//!
//! * its own tile's memory,
//! * the memories of the tiles directly north and south, and
//! * one *horizontal* neighbor's memory: the tile to the **west** in even
//!   rows (that tile's memory is physically adjacent to this core), and
//!   the tile to the **east** in odd rows.
//!
//! Everything else requires DMA through the stream switch.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coordinate of one AIE tile: `row` 0 is adjacent to the PL, columns grow
/// left to right.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TileCoord {
    /// Array row (0-based, bottom row touches the PL interface).
    pub row: usize,
    /// Array column (0-based).
    pub col: usize,
}

impl TileCoord {
    /// Creates a coordinate.
    pub fn new(row: usize, col: usize) -> Self {
        TileCoord { row, col }
    }

    /// `true` when the row is even (core left of memory).
    pub fn is_even_row(self) -> bool {
        self.row.is_multiple_of(2)
    }
}

impl fmt::Display for TileCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Dimensions of an AIE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayGeometry {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
}

impl Default for ArrayGeometry {
    /// Defaults to the VCK190 array.
    fn default() -> Self {
        ArrayGeometry::VCK190
    }
}

impl ArrayGeometry {
    /// The VCK190 (VC1902) array: 8 rows × 50 columns = 400 AIEs (§III-C
    /// mentions the 8×50 size; Table II reports 128 AIEs as 32% of 400).
    pub const VCK190: ArrayGeometry = ArrayGeometry { rows: 8, cols: 50 };

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when `t` lies inside the array.
    pub fn contains(&self, t: TileCoord) -> bool {
        t.row < self.rows && t.col < self.cols
    }

    /// `true` when `row` is at the array boundary (first or last row),
    /// where the placement engine must insert mem-layers because no
    /// subsequent row exists to receive an orth-layer's output (§III-C).
    pub fn is_boundary_row(&self, row: usize) -> bool {
        row == 0 || row + 1 == self.rows
    }

    /// The memory modules directly accessible from the core at `core`
    /// (without DMA): own tile, north, south, and the row-parity
    /// horizontal neighbor.
    pub fn accessible_memories(&self, core: TileCoord) -> Vec<TileCoord> {
        assert!(self.contains(core), "core {core} outside array");
        let mut mems = vec![core];
        if core.row + 1 < self.rows {
            mems.push(TileCoord::new(core.row + 1, core.col));
        }
        if core.row > 0 {
            mems.push(TileCoord::new(core.row - 1, core.col));
        }
        if core.is_even_row() {
            // Core left of its memory; the west neighbor's memory is
            // physically adjacent to this core.
            if core.col > 0 {
                mems.push(TileCoord::new(core.row, core.col - 1));
            }
        } else if core.col + 1 < self.cols {
            mems.push(TileCoord::new(core.row, core.col + 1));
        }
        mems
    }

    /// `true` when the core at `core` can read/write the memory module of
    /// tile `mem` directly (neighbor access, no DMA).
    pub fn is_neighbor_accessible(&self, core: TileCoord, mem: TileCoord) -> bool {
        self.accessible_memories(core).contains(&mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: ArrayGeometry = ArrayGeometry::VCK190;

    #[test]
    fn vck190_has_400_tiles() {
        assert_eq!(G.num_tiles(), 400);
        assert_eq!(G.rows, 8);
        assert_eq!(G.cols, 50);
    }

    #[test]
    fn own_north_south_always_accessible() {
        let c = TileCoord::new(3, 10);
        let mems = G.accessible_memories(c);
        assert!(mems.contains(&c));
        assert!(mems.contains(&TileCoord::new(4, 10)));
        assert!(mems.contains(&TileCoord::new(2, 10)));
    }

    #[test]
    fn even_row_reaches_west_neighbor_memory() {
        let c = TileCoord::new(2, 10);
        assert!(G.is_neighbor_accessible(c, TileCoord::new(2, 9)));
        assert!(!G.is_neighbor_accessible(c, TileCoord::new(2, 11)));
    }

    #[test]
    fn odd_row_reaches_east_neighbor_memory() {
        let c = TileCoord::new(3, 10);
        assert!(G.is_neighbor_accessible(c, TileCoord::new(3, 11)));
        assert!(!G.is_neighbor_accessible(c, TileCoord::new(3, 9)));
    }

    #[test]
    fn diagonals_and_distant_tiles_need_dma() {
        let c = TileCoord::new(3, 10);
        assert!(!G.is_neighbor_accessible(c, TileCoord::new(4, 11)));
        assert!(!G.is_neighbor_accessible(c, TileCoord::new(3, 13)));
        assert!(!G.is_neighbor_accessible(c, TileCoord::new(5, 10)));
    }

    #[test]
    fn boundary_clipping() {
        // Bottom-left corner of an even row: no south, no west.
        let c = TileCoord::new(0, 0);
        let mems = G.accessible_memories(c);
        assert_eq!(mems.len(), 2); // own + north
        assert!(mems.contains(&c));
        assert!(mems.contains(&TileCoord::new(1, 0)));

        // Top row (row 7, odd): no north; east neighbor present.
        let c = TileCoord::new(7, 49);
        let mems = G.accessible_memories(c);
        // col 49 is the last column, so no east either: own + south.
        assert_eq!(mems.len(), 2);
    }

    #[test]
    fn boundary_rows_are_first_and_last() {
        assert!(G.is_boundary_row(0));
        assert!(G.is_boundary_row(7));
        assert!(!G.is_boundary_row(1));
        assert!(!G.is_boundary_row(6));
    }

    #[test]
    #[should_panic(expected = "outside array")]
    fn out_of_range_core_panics() {
        let _ = G.accessible_memories(TileCoord::new(8, 0));
    }

    #[test]
    fn neighbor_relation_reflects_parity_asymmetry() {
        // The same lateral offset flips accessibility between rows —
        // the asymmetry the shifting ring ordering exploits.
        let even = TileCoord::new(2, 5);
        let odd = TileCoord::new(3, 5);
        assert!(G.is_neighbor_accessible(even, TileCoord::new(2, 4)));
        assert!(!G.is_neighbor_accessible(odd, TileCoord::new(3, 4)));
        assert!(G.is_neighbor_accessible(odd, TileCoord::new(3, 6)));
        assert!(!G.is_neighbor_accessible(even, TileCoord::new(2, 6)));
    }
}
