//! Simulation time and clock-domain conversion.
//!
//! The simulator spans two clock domains (AIE at 1.25 GHz, PL at a
//! configuration-dependent frequency), so time is kept in integer
//! picoseconds: exact, totally ordered, and fine enough that a 1.25 GHz
//! cycle is a whole number (800 ps).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TimePs(pub u64);

impl TimePs {
    /// Time zero.
    pub const ZERO: TimePs = TimePs(0);

    /// Converts to seconds (lossy, for reporting).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 * 1e-12
    }

    /// Converts to milliseconds (lossy, for reporting).
    pub fn as_millis(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// Builds a duration from seconds, rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        TimePs((secs * 1e12).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: TimePs) -> TimePs {
        TimePs(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    pub fn max(self, other: TimePs) -> TimePs {
        TimePs(self.0.max(other.0))
    }
}

impl Add for TimePs {
    type Output = TimePs;
    fn add(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 + rhs.0)
    }
}

impl AddAssign for TimePs {
    fn add_assign(&mut self, rhs: TimePs) {
        self.0 += rhs.0;
    }
}

impl Sub for TimePs {
    type Output = TimePs;
    /// # Panics
    ///
    /// Panics in debug builds on underflow, like integer subtraction.
    fn sub(self, rhs: TimePs) -> TimePs {
        TimePs(self.0 - rhs.0)
    }
}

impl fmt::Display for TimePs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_millis())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.0 as f64 * 1e-6)
        } else {
            write!(f, "{} ps", self.0)
        }
    }
}

/// A clock frequency in hertz.
///
/// # Example
///
/// ```
/// use aie_sim::time::Frequency;
///
/// let pl = Frequency::from_mhz(208.3);
/// assert_eq!(pl.cycles(2).0, 2 * pl.period().0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// The AIE array clock of the VCK190: 1.25 GHz (§V-A).
    pub const AIE: Frequency = Frequency(1.25e9);

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not strictly positive and finite.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "frequency must be positive and finite"
        );
        Frequency(mhz * 1e6)
    }

    /// Frequency in hertz.
    pub fn hz(self) -> f64 {
        self.0
    }

    /// Frequency in megahertz.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }

    /// One clock period, rounded to the nearest picosecond.
    pub fn period(self) -> TimePs {
        TimePs((1e12 / self.0).round() as u64)
    }

    /// Duration of `n` cycles.
    pub fn cycles(self, n: u64) -> TimePs {
        TimePs(n * self.period().0)
    }

    /// Number of whole cycles elapsed in `t` (floor).
    pub fn cycles_in(self, t: TimePs) -> u64 {
        t.0 / self.period().0.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aie_period_is_800ps() {
        assert_eq!(Frequency::AIE.period(), TimePs(800));
        assert_eq!(Frequency::AIE.cycles(10), TimePs(8000));
    }

    #[test]
    fn pl_period_rounds() {
        // 208.3 MHz -> 4800.77 ps -> 4801 ps.
        let pl = Frequency::from_mhz(208.3);
        assert_eq!(pl.period(), TimePs(4801));
    }

    #[test]
    fn time_conversions() {
        let t = TimePs::from_secs(1e-3);
        assert_eq!(t, TimePs(1_000_000_000));
        assert!((t.as_millis() - 1.0).abs() < 1e-12);
        assert!((t.as_secs() - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = TimePs(100);
        let b = TimePs(250);
        assert_eq!(a + b, TimePs(350));
        assert_eq!(b - a, TimePs(150));
        assert_eq!(a.saturating_sub(b), TimePs::ZERO);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }

    #[test]
    fn cycles_in_floors() {
        let f = Frequency::AIE;
        assert_eq!(f.cycles_in(TimePs(799)), 0);
        assert_eq!(f.cycles_in(TimePs(800)), 1);
        assert_eq!(f.cycles_in(TimePs(1601)), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_mhz(0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", TimePs(500)), "500 ps");
        assert!(format!("{}", TimePs(2_000_000)).contains("us"));
        assert!(format!("{}", TimePs(3_000_000_000)).contains("ms"));
    }
}
