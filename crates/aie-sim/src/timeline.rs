//! Deterministic resource-timeline simulation engine.
//!
//! Every hardware resource that serializes work — a PLIO port, an AIE
//! core, a DMA channel, the DDR controller — is a [`Timeline`]. An
//! operation becomes *ready* when its data dependencies are met; it
//! *starts* at `max(ready, resource available)` and occupies the resource
//! for its duration. Scheduling operations in dependency order yields the
//! same result as a full event-driven simulation for pipelines like
//! HeteroSVD's (Fig. 7), while staying deterministic and fast.

use crate::time::TimePs;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One serializing hardware resource.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Timeline {
    available_at: TimePs,
    busy: TimePs,
    ops: usize,
}

impl Timeline {
    /// A fresh timeline, available at time zero.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Schedules an operation that is ready at `ready` and runs for
    /// `duration`. Returns `(start, end)`.
    pub fn schedule(&mut self, ready: TimePs, duration: TimePs) -> (TimePs, TimePs) {
        let start = ready.max(self.available_at);
        let end = start + duration;
        self.available_at = end;
        self.busy += duration;
        self.ops += 1;
        (start, end)
    }

    /// Earliest time the next operation could start.
    pub fn available_at(&self) -> TimePs {
        self.available_at
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> TimePs {
        self.busy
    }

    /// Number of operations executed.
    pub fn ops(&self) -> usize {
        self.ops
    }

    /// Utilization over a horizon: `busy / horizon`, clamped to `[0, 1]`.
    pub fn utilization(&self, horizon: TimePs) -> f64 {
        if horizon == TimePs::ZERO {
            0.0
        } else {
            (self.busy.0 as f64 / horizon.0 as f64).min(1.0)
        }
    }

    /// Resets the timeline to time zero (between simulation phases).
    pub fn reset(&mut self) {
        *self = Timeline::new();
    }
}

/// A registry of named timelines plus the simulation's high-water mark.
///
/// # Example
///
/// ```
/// use aie_sim::{SimEngine, TimePs};
///
/// let mut engine = SimEngine::new();
/// let (_, end) = engine.timeline("plio-0").schedule(TimePs::ZERO, TimePs(100));
/// engine.advance_to(end);
/// assert_eq!(engine.now(), TimePs(100));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimEngine {
    timelines: HashMap<String, Timeline>,
    now: TimePs,
}

impl SimEngine {
    /// A fresh engine at time zero.
    pub fn new() -> Self {
        SimEngine::default()
    }

    /// The named timeline, created on first use.
    pub fn timeline(&mut self, name: &str) -> &mut Timeline {
        self.timelines.entry(name.to_string()).or_default()
    }

    /// Looks up a timeline without creating it.
    pub fn get(&self, name: &str) -> Option<&Timeline> {
        self.timelines.get(name)
    }

    /// Advances the engine's completion high-water mark.
    pub fn advance_to(&mut self, t: TimePs) {
        self.now = self.now.max(t);
    }

    /// The latest completion time observed so far.
    pub fn now(&self) -> TimePs {
        self.now
    }

    /// Iterates over `(name, timeline)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Timeline)> {
        self.timelines.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Total busy time across timelines whose name starts with `prefix`.
    pub fn busy_with_prefix(&self, prefix: &str) -> TimePs {
        let total = self
            .timelines
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, t)| t.busy().0)
            .sum();
        TimePs(total)
    }

    /// Number of timelines whose name starts with `prefix`.
    pub fn count_with_prefix(&self, prefix: &str) -> usize {
        self.timelines
            .keys()
            .filter(|k| k.starts_with(prefix))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_serializes_operations() {
        let mut t = Timeline::new();
        let (s1, e1) = t.schedule(TimePs(0), TimePs(100));
        assert_eq!((s1, e1), (TimePs(0), TimePs(100)));
        // Ready earlier than available: starts when resource frees.
        let (s2, e2) = t.schedule(TimePs(50), TimePs(30));
        assert_eq!((s2, e2), (TimePs(100), TimePs(130)));
        // Ready later than available: idle gap.
        let (s3, _) = t.schedule(TimePs(500), TimePs(10));
        assert_eq!(s3, TimePs(500));
        assert_eq!(t.ops(), 3);
        assert_eq!(t.busy(), TimePs(140));
    }

    #[test]
    fn utilization_accounts_for_gaps() {
        let mut t = Timeline::new();
        t.schedule(TimePs(0), TimePs(100));
        t.schedule(TimePs(300), TimePs(100));
        assert!((t.utilization(TimePs(400)) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(TimePs::ZERO), 0.0);
    }

    #[test]
    fn engine_tracks_high_water_mark() {
        let mut e = SimEngine::new();
        let (_, end_a) = e.timeline("a").schedule(TimePs(0), TimePs(50));
        let (_, end_b) = e.timeline("b").schedule(TimePs(0), TimePs(200));
        e.advance_to(end_a);
        e.advance_to(end_b);
        assert_eq!(e.now(), TimePs(200));
        // Advancing backwards is a no-op.
        e.advance_to(TimePs(10));
        assert_eq!(e.now(), TimePs(200));
    }

    #[test]
    fn prefix_aggregation() {
        let mut e = SimEngine::new();
        e.timeline("orth-0").schedule(TimePs(0), TimePs(10));
        e.timeline("orth-1").schedule(TimePs(0), TimePs(20));
        e.timeline("norm-0").schedule(TimePs(0), TimePs(5));
        assert_eq!(e.busy_with_prefix("orth-"), TimePs(30));
        assert_eq!(e.count_with_prefix("orth-"), 2);
        assert_eq!(e.count_with_prefix("norm-"), 1);
        assert!(e.get("missing").is_none());
    }

    #[test]
    fn reset_clears_timeline() {
        let mut t = Timeline::new();
        t.schedule(TimePs(0), TimePs(10));
        t.reset();
        assert_eq!(t.busy(), TimePs::ZERO);
        assert_eq!(t.ops(), 0);
        assert_eq!(t.available_at(), TimePs::ZERO);
    }
}
