//! PL fabric model: FIFO sizing, BRAM/URAM/LUT cost, HLS loop overhead,
//! and achievable-frequency derating.
//!
//! The PL side of HeteroSVD (Fig. 2) holds the data-arrangement module and
//! the sender/receiver FIFOs that buffer matrix blocks between DDR and the
//! AIE array. Its resource footprint (URAM especially) grows with the
//! matrix size and the task parallelism, and its achievable clock drops as
//! the design grows — the two effects behind HeteroSVD's throughput
//! falloff at large sizes (Fig. 9 discussion, §V-B).

use crate::calibration::Calibration;
use crate::time::{Frequency, TimePs};
use serde::{Deserialize, Serialize};

/// Bytes per URAM block (288 Kb).
pub const URAM_BYTES: usize = 288 * 1024 / 8;
/// Bytes per BRAM36 block (36 Kb).
pub const BRAM_BYTES: usize = 36 * 1024 / 8;

/// Resource/frequency model of the HeteroSVD PL design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlModel {
    cal: Calibration,
}

impl PlModel {
    /// Builds the model from a calibration.
    pub fn new(cal: Calibration) -> Self {
        PlModel { cal }
    }

    /// URAM blocks needed per task to double-buffer an `m × n` fp32
    /// matrix in the receiver/sender FIFOs, rounded up to the 4-block
    /// cascade granularity the tools infer.
    ///
    /// Calibrated against Table II (4 / 20 / 64 / 244 URAM for sizes 128²
    /// to 1024²) and Table VI (16 URAM per task at 256²).
    pub fn uram_blocks_per_task(&self, rows: usize, cols: usize) -> usize {
        let matrix_bytes = rows * cols * 4;
        let double_buffered = 2 * matrix_bytes;
        let blocks = double_buffered.div_ceil(URAM_BYTES);
        blocks.div_ceil(4) * 4
    }

    /// BRAM blocks for the control/reorder FIFOs (small, per task).
    pub fn bram_blocks(&self, p_task: usize) -> usize {
        8 + 2 * p_task
    }

    /// LUT estimate of the PL design. Fit to Table II's 15.1K–15.7K for
    /// one task at sizes 128²–1024²; each extra task replicates the
    /// sender/receiver datapath.
    pub fn luts(&self, cols: usize, p_task: usize) -> usize {
        let log2n = (cols.max(2) as f64).log2();
        let per_design = 13_660.0 + 205.0 * log2n;
        (per_design + 900.0 * (p_task.saturating_sub(1)) as f64) as usize
    }

    /// Achievable PL clock for a design of `cols` columns and `p_task`
    /// tasks, in MHz. Anchored to Table V's measured frequencies
    /// (450/420/350/310 MHz for single-task 128²–1024²; ~310–330 MHz for
    /// batch designs): routing congestion grows with both the problem size
    /// and the replication factor.
    pub fn achievable_frequency(&self, cols: usize, p_task: usize) -> Frequency {
        let base = Self::base_fmax_mhz(cols);
        let derated = base * (1.0 - 0.03 * (p_task.saturating_sub(1)) as f64);
        Frequency::from_mhz(derated.max(310.0_f64.min(base)))
    }

    fn base_fmax_mhz(cols: usize) -> f64 {
        // Log-linear interpolation through the Table V anchors.
        const ANCHORS: [(f64, f64); 4] = [(7.0, 450.0), (8.0, 420.0), (9.0, 350.0), (10.0, 310.0)];
        let x = (cols.max(2) as f64).log2();
        if x <= ANCHORS[0].0 {
            return ANCHORS[0].1;
        }
        if x >= ANCHORS[3].0 {
            // Extrapolate gently below 310 MHz for very large designs.
            return (ANCHORS[3].1 - 30.0 * (x - ANCHORS[3].0)).max(200.0);
        }
        for w in ANCHORS.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            if x <= x1 {
                return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
            }
        }
        ANCHORS[3].1
    }

    /// HLS loop-switch overhead (`t_hls`, §IV-B): `switches` loop
    /// transitions at the given PL clock.
    pub fn hls_overhead(&self, switches: usize, pl_freq: Frequency) -> TimePs {
        pl_freq.cycles(switches as u64 * self.cal.hls_loop_overhead_cycles)
    }
}

impl Default for PlModel {
    fn default() -> Self {
        PlModel::new(Calibration::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uram_matches_table2_shape() {
        let pl = PlModel::default();
        // Paper: 4 / 20 / 64 / 244. Model lands within ~25% with the same
        // superlinear growth.
        let paper = [(128usize, 4usize), (256, 20), (512, 64), (1024, 244)];
        for (n, reported) in paper {
            let est = pl.uram_blocks_per_task(n, n);
            let rel = (est as f64 - reported as f64).abs() / reported as f64;
            assert!(
                rel < 0.30,
                "URAM for {n}x{n}: model {est} vs paper {reported}"
            );
        }
    }

    #[test]
    fn uram_per_task_matches_table6() {
        // Table VI: P_task=26 -> 416 URAM, P_task=9 -> 144, P_task=2 -> 32:
        // all exactly 16 per task at 256x256.
        let pl = PlModel::default();
        assert_eq!(pl.uram_blocks_per_task(256, 256), 16);
    }

    #[test]
    fn luts_match_table2_within_2_percent() {
        let pl = PlModel::default();
        let paper = [
            (128usize, 15_100usize),
            (256, 15_200),
            (512, 15_500),
            (1024, 15_700),
        ];
        for (n, reported) in paper {
            let est = pl.luts(n, 1);
            let rel = (est as f64 - reported as f64).abs() / reported as f64;
            assert!(rel < 0.02, "LUTs for {n}: model {est} vs paper {reported}");
        }
    }

    #[test]
    fn fmax_hits_table5_single_task_anchors() {
        let pl = PlModel::default();
        let anchors = [(128usize, 450.0), (256, 420.0), (512, 350.0), (1024, 310.0)];
        for (n, mhz) in anchors {
            let f = pl.achievable_frequency(n, 1).mhz();
            assert!((f - mhz).abs() < 1.0, "fmax({n}) = {f} vs {mhz}");
        }
    }

    #[test]
    fn fmax_derates_with_task_parallelism() {
        let pl = PlModel::default();
        let single = pl.achievable_frequency(128, 1).mhz();
        let batch = pl.achievable_frequency(128, 9).mhz();
        assert!(batch < single);
        // Table V batch row: 330 MHz at P_task=9; model within ~5%.
        assert!((batch - 330.0).abs() / 330.0 < 0.08, "batch fmax {batch}");
    }

    #[test]
    fn fmax_never_collapses() {
        let pl = PlModel::default();
        assert!(pl.achievable_frequency(4096, 26).mhz() >= 200.0);
    }

    #[test]
    fn hls_overhead_scales_with_switches() {
        let pl = PlModel::default();
        let f = Frequency::from_mhz(200.0);
        let one = pl.hls_overhead(1, f);
        let ten = pl.hls_overhead(10, f);
        assert_eq!(ten.0, one.0 * 10);
    }

    #[test]
    fn bram_grows_with_tasks() {
        let pl = PlModel::default();
        assert!(pl.bram_blocks(10) > pl.bram_blocks(1));
    }
}
