//! Per-tile AIE data memory: four banks of 8 KB (§II-B).
//!
//! The allocator is a simple bump allocator per bank — real AIE memory is
//! statically partitioned at compile time by the AIE compiler, so dynamic
//! behaviour is not needed; what matters is *capacity accounting*: a tile
//! whose buffers (including doubled DMA buffers) exceed 32 KB is an
//! infeasible placement.

use crate::SimError;
use serde::{Deserialize, Serialize};

/// Number of memory banks per tile.
pub const BANKS_PER_TILE: usize = 4;
/// Capacity of one bank in bytes.
pub const BANK_BYTES: usize = 8 * 1024;
/// Total data memory per tile in bytes (32 KB).
pub const TILE_BYTES: usize = BANKS_PER_TILE * BANK_BYTES;

/// A named buffer allocated in tile memory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BufferAlloc {
    /// Human-readable purpose (e.g. `"orth-in-left"`, `"dma-copy"`).
    pub label: String,
    /// Bank index the buffer was placed in.
    pub bank: usize,
    /// Size in bytes.
    pub bytes: usize,
}

/// Allocation state of one tile's data memory.
///
/// # Example
///
/// ```
/// use aie_sim::memory::{TileMemory, TILE_BYTES};
///
/// # fn main() -> Result<(), aie_sim::SimError> {
/// let mut mem = TileMemory::new();
/// mem.allocate("column", 512)?;
/// assert_eq!(mem.free_bytes(), TILE_BYTES - 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileMemory {
    used_per_bank: Vec<usize>,
    bank_bytes: usize,
    allocations: Vec<BufferAlloc>,
}

impl Default for TileMemory {
    fn default() -> Self {
        TileMemory::new()
    }
}

impl TileMemory {
    /// An empty AIE1 tile memory (4 × 8 KB banks).
    pub fn new() -> Self {
        TileMemory::with_layout(BANKS_PER_TILE, BANK_BYTES)
    }

    /// An empty tile memory with an explicit bank layout (e.g. 8 × 8 KB
    /// for AIE-ML tiles; see [`crate::device::DeviceProfile`]).
    pub fn with_layout(banks: usize, bank_bytes: usize) -> Self {
        TileMemory {
            used_per_bank: vec![0; banks.max(1)],
            bank_bytes: bank_bytes.max(1),
            allocations: Vec::new(),
        }
    }

    /// Total capacity across banks.
    pub fn capacity_bytes(&self) -> usize {
        self.used_per_bank.len() * self.bank_bytes
    }

    /// Allocates `bytes` in the first bank with room (best-effort packing;
    /// buffers may not span banks, matching the hardware's bank-local
    /// addressing for single-buffer locks).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfTileMemory`] when no bank can hold the
    /// buffer, or [`SimError::BufferTooLarge`] when `bytes` exceeds a
    /// bank's capacity outright.
    pub fn allocate(&mut self, label: impl Into<String>, bytes: usize) -> Result<usize, SimError> {
        if bytes > self.bank_bytes {
            return Err(SimError::BufferTooLarge {
                bytes,
                bank_bytes: self.bank_bytes,
            });
        }
        // Best-fit: the bank with least remaining space that still fits,
        // to keep large banks available for later buffers.
        let bank = (0..self.used_per_bank.len())
            .filter(|&b| self.used_per_bank[b] + bytes <= self.bank_bytes)
            .min_by_key(|&b| self.bank_bytes - self.used_per_bank[b]);
        match bank {
            Some(b) => {
                self.used_per_bank[b] += bytes;
                self.allocations.push(BufferAlloc {
                    label: label.into(),
                    bank: b,
                    bytes,
                });
                Ok(b)
            }
            None => Err(SimError::OutOfTileMemory {
                requested: bytes,
                free: self.free_bytes(),
            }),
        }
    }

    /// Total bytes in use.
    pub fn used_bytes(&self) -> usize {
        self.used_per_bank.iter().sum()
    }

    /// Total bytes free across banks (fragmented; a single buffer may not
    /// fit even when this is large enough).
    pub fn free_bytes(&self) -> usize {
        self.capacity_bytes() - self.used_bytes()
    }

    /// All allocations made so far.
    pub fn allocations(&self) -> &[BufferAlloc] {
        &self.allocations
    }

    /// Releases every allocation (between pipeline phases).
    pub fn clear(&mut self) {
        self.used_per_bank.iter_mut().for_each(|b| *b = 0);
        self.allocations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_constants() {
        assert_eq!(TILE_BYTES, 32 * 1024);
    }

    #[test]
    fn allocate_and_account() {
        let mut m = TileMemory::new();
        let b = m.allocate("col", 512).unwrap();
        assert!(b < BANKS_PER_TILE);
        assert_eq!(m.used_bytes(), 512);
        assert_eq!(m.free_bytes(), TILE_BYTES - 512);
        assert_eq!(m.allocations().len(), 1);
        assert_eq!(m.allocations()[0].label, "col");
    }

    #[test]
    fn buffer_larger_than_bank_rejected() {
        let mut m = TileMemory::new();
        let err = m.allocate("huge", BANK_BYTES + 1).unwrap_err();
        assert!(matches!(err, SimError::BufferTooLarge { .. }));
    }

    #[test]
    fn fills_all_banks_then_errors() {
        let mut m = TileMemory::new();
        for i in 0..BANKS_PER_TILE {
            m.allocate(format!("b{i}"), BANK_BYTES).unwrap();
        }
        assert_eq!(m.free_bytes(), 0);
        let err = m.allocate("extra", 1).unwrap_err();
        assert!(matches!(err, SimError::OutOfTileMemory { .. }));
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut m = TileMemory::new();
        m.allocate("a", 6000).unwrap();
        // The next 2 KB buffer should go into the same (most-used) bank.
        let b1 = m.allocate("b", 2048).unwrap();
        assert_eq!(b1, 0);
        // An 8 KB buffer still fits into a fresh bank.
        m.allocate("c", BANK_BYTES).unwrap();
    }

    #[test]
    fn dma_doubling_can_exhaust_memory() {
        // A tile holding two 8 KB working buffers plus two 8 KB DMA copies
        // is full; a fifth buffer fails. This is the memory pressure that
        // motivates the paper's DMA reduction.
        let mut m = TileMemory::new();
        for label in ["work-l", "work-r", "dma-l", "dma-r"] {
            m.allocate(label, BANK_BYTES).unwrap();
        }
        assert!(m.allocate("extra", 64).is_err());
    }

    #[test]
    fn aie_ml_layout_has_double_capacity() {
        let mut m = TileMemory::with_layout(8, BANK_BYTES);
        assert_eq!(m.capacity_bytes(), 64 * 1024);
        for i in 0..8 {
            m.allocate(format!("b{i}"), BANK_BYTES).unwrap();
        }
        assert_eq!(m.free_bytes(), 0);
        assert!(m.allocate("extra", 1).is_err());
    }

    #[test]
    fn clear_resets_state() {
        let mut m = TileMemory::new();
        m.allocate("x", 100).unwrap();
        m.clear();
        assert_eq!(m.used_bytes(), 0);
        assert!(m.allocations().is_empty());
    }
}
