//! Aggregate simulation statistics.

use crate::time::TimePs;
use serde::{Deserialize, Serialize};

/// Counters accumulated during one simulated accelerator run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// End-to-end simulated time.
    pub elapsed: TimePs,
    /// Inter-tile DMA transfers performed.
    pub dma_transfers: usize,
    /// Bytes moved by inter-tile DMA.
    pub dma_bytes: usize,
    /// Neighbor shared-memory hand-offs performed.
    pub neighbor_accesses: usize,
    /// Bytes streamed PL → AIE.
    pub plio_bytes_in: usize,
    /// Bytes streamed AIE → PL.
    pub plio_bytes_out: usize,
    /// PLIO stream transfers performed (column loads/stores).
    pub plio_transfers: usize,
    /// Orthogonalization kernel invocations.
    pub orth_invocations: usize,
    /// Normalization kernel invocations.
    pub norm_invocations: usize,
    /// Bytes loaded from / stored to DDR.
    pub ddr_bytes: usize,
    /// DDR burst transactions performed (block loads + result store).
    pub ddr_transfers: usize,
    /// Accumulated busy time across all orth-AIE cores.
    pub orth_busy: TimePs,
    /// Accumulated busy time across all PLIO ports.
    pub plio_busy: TimePs,
    /// Accumulated busy time across all inter-tile DMA channels
    /// (lateral, wraparound, and band-break hops; neighbor hand-offs
    /// use shared buffers and contribute nothing here).
    pub dma_busy: TimePs,
    /// Accumulated DDR controller busy time (initial staggered block
    /// loads plus the final result store).
    pub ddr_busy: TimePs,
    /// Outer block-Jacobi iterations executed.
    pub iterations: usize,
}

impl SimStats {
    /// Fresh (all-zero) statistics.
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Average compute utilization of `num_orth` orth-AIE cores over the
    /// elapsed time, in `[0, 1]`.
    pub fn core_utilization(&self, num_orth: usize) -> f64 {
        if self.elapsed == TimePs::ZERO || num_orth == 0 {
            return 0.0;
        }
        (self.orth_busy.0 as f64 / (self.elapsed.0 as f64 * num_orth as f64)).min(1.0)
    }

    /// Average utilization of `num_plio` PLIO ports over the elapsed time,
    /// in `[0, 1]` — the "memory utilization" axis of Fig. 9 (bandwidth
    /// into the array is the memory-system bottleneck).
    pub fn bandwidth_utilization(&self, num_plio: usize) -> f64 {
        if self.elapsed == TimePs::ZERO || num_plio == 0 {
            return 0.0;
        }
        (self.plio_busy.0 as f64 / (self.elapsed.0 as f64 * num_plio as f64)).min(1.0)
    }

    /// Merges counters from another run (batch aggregation). Elapsed time
    /// takes the maximum (parallel tasks), busy times add.
    pub fn merge(&mut self, other: &SimStats) {
        self.elapsed = self.elapsed.max(other.elapsed);
        self.dma_transfers += other.dma_transfers;
        self.dma_bytes += other.dma_bytes;
        self.neighbor_accesses += other.neighbor_accesses;
        self.plio_bytes_in += other.plio_bytes_in;
        self.plio_bytes_out += other.plio_bytes_out;
        self.plio_transfers += other.plio_transfers;
        self.orth_invocations += other.orth_invocations;
        self.norm_invocations += other.norm_invocations;
        self.ddr_bytes += other.ddr_bytes;
        self.ddr_transfers += other.ddr_transfers;
        self.orth_busy += other.orth_busy;
        self.plio_busy += other.plio_busy;
        self.dma_busy += other.dma_busy;
        self.ddr_busy += other.ddr_busy;
        self.iterations = self.iterations.max(other.iterations);
    }

    /// Adds every counter of `delta` verbatim. Unlike [`SimStats::merge`]
    /// (which models parallel tasks and so takes the maximum of `elapsed`
    /// and `iterations`), this treats `delta` as additional *sequential*
    /// work — the per-iteration stats delta a timing-replay path applies
    /// once per replayed iteration.
    pub fn accumulate(&mut self, delta: &SimStats) {
        self.elapsed += delta.elapsed;
        self.dma_transfers += delta.dma_transfers;
        self.dma_bytes += delta.dma_bytes;
        self.neighbor_accesses += delta.neighbor_accesses;
        self.plio_bytes_in += delta.plio_bytes_in;
        self.plio_bytes_out += delta.plio_bytes_out;
        self.plio_transfers += delta.plio_transfers;
        self.orth_invocations += delta.orth_invocations;
        self.norm_invocations += delta.norm_invocations;
        self.ddr_bytes += delta.ddr_bytes;
        self.ddr_transfers += delta.ddr_transfers;
        self.orth_busy += delta.orth_busy;
        self.plio_busy += delta.plio_busy;
        self.dma_busy += delta.dma_busy;
        self.ddr_busy += delta.ddr_busy;
        self.iterations += delta.iterations;
    }

    /// Component-wise difference `self − earlier`, where `earlier` is a
    /// snapshot of the same accumulating counters taken before some work
    /// ran. Panics (in debug builds) if any counter went backwards.
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            elapsed: self.elapsed.saturating_sub(earlier.elapsed),
            dma_transfers: self.dma_transfers - earlier.dma_transfers,
            dma_bytes: self.dma_bytes - earlier.dma_bytes,
            neighbor_accesses: self.neighbor_accesses - earlier.neighbor_accesses,
            plio_bytes_in: self.plio_bytes_in - earlier.plio_bytes_in,
            plio_bytes_out: self.plio_bytes_out - earlier.plio_bytes_out,
            plio_transfers: self.plio_transfers - earlier.plio_transfers,
            orth_invocations: self.orth_invocations - earlier.orth_invocations,
            norm_invocations: self.norm_invocations - earlier.norm_invocations,
            ddr_bytes: self.ddr_bytes - earlier.ddr_bytes,
            ddr_transfers: self.ddr_transfers - earlier.ddr_transfers,
            orth_busy: self.orth_busy.saturating_sub(earlier.orth_busy),
            plio_busy: self.plio_busy.saturating_sub(earlier.plio_busy),
            dma_busy: self.dma_busy.saturating_sub(earlier.dma_busy),
            ddr_busy: self.ddr_busy.saturating_sub(earlier.ddr_busy),
            iterations: self.iterations - earlier.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let s = SimStats {
            elapsed: TimePs(1000),
            orth_busy: TimePs(500),
            plio_busy: TimePs(2000),
            ..Default::default()
        };
        assert!((s.core_utilization(1) - 0.5).abs() < 1e-12);
        assert!((s.core_utilization(2) - 0.25).abs() < 1e-12);
        // Clamped at 1.
        assert_eq!(s.bandwidth_utilization(1), 1.0);
        // Degenerate cases.
        assert_eq!(SimStats::new().core_utilization(4), 0.0);
        assert_eq!(s.core_utilization(0), 0.0);
    }

    #[test]
    fn merge_combines_counters() {
        let mut a = SimStats {
            elapsed: TimePs(100),
            dma_transfers: 3,
            orth_invocations: 10,
            orth_busy: TimePs(40),
            iterations: 6,
            ..Default::default()
        };
        let b = SimStats {
            elapsed: TimePs(250),
            dma_transfers: 2,
            orth_invocations: 5,
            orth_busy: TimePs(60),
            iterations: 6,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.elapsed, TimePs(250));
        assert_eq!(a.dma_transfers, 5);
        assert_eq!(a.orth_invocations, 15);
        assert_eq!(a.orth_busy, TimePs(100));
        assert_eq!(a.iterations, 6);
    }

    #[test]
    fn accumulate_adds_sequential_work() {
        let mut a = SimStats {
            elapsed: TimePs(100),
            dma_transfers: 3,
            iterations: 2,
            orth_busy: TimePs(40),
            ..Default::default()
        };
        let d = SimStats {
            elapsed: TimePs(50),
            dma_transfers: 2,
            iterations: 1,
            orth_busy: TimePs(10),
            dma_busy: TimePs(7),
            ddr_busy: TimePs(3),
            plio_transfers: 4,
            ddr_transfers: 2,
            ..Default::default()
        };
        a.accumulate(&d);
        // Sequential semantics: everything adds, including elapsed and
        // iterations (where merge would have taken the max).
        assert_eq!(a.elapsed, TimePs(150));
        assert_eq!(a.dma_transfers, 5);
        assert_eq!(a.iterations, 3);
        assert_eq!(a.orth_busy, TimePs(50));
        assert_eq!(a.dma_busy, TimePs(7));
        assert_eq!(a.ddr_busy, TimePs(3));
        assert_eq!(a.plio_transfers, 4);
        assert_eq!(a.ddr_transfers, 2);
    }

    #[test]
    fn delta_since_inverts_accumulate() {
        let before = SimStats {
            dma_transfers: 3,
            orth_invocations: 10,
            iterations: 2,
            plio_busy: TimePs(70),
            ..Default::default()
        };
        let delta = SimStats {
            dma_transfers: 4,
            orth_invocations: 6,
            iterations: 1,
            plio_busy: TimePs(30),
            dma_busy: TimePs(11),
            ddr_busy: TimePs(5),
            plio_transfers: 9,
            ddr_transfers: 1,
            ..Default::default()
        };
        let mut after = before;
        after.accumulate(&delta);
        assert_eq!(after.delta_since(&before), delta);
    }
}
