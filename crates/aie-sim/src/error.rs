use std::error::Error;
use std::fmt;

/// Errors produced by the platform simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A tile's data memory cannot hold another buffer.
    OutOfTileMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still free (possibly fragmented across banks).
        free: usize,
    },
    /// A single buffer exceeds one memory bank's capacity.
    BufferTooLarge {
        /// Bytes requested.
        bytes: usize,
        /// Capacity of one bank.
        bank_bytes: usize,
    },
    /// A placement or schedule referenced a tile outside the array.
    TileOutOfRange {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
    },
    /// A design exceeds a platform resource budget (Eq. 16).
    ResourceExceeded {
        /// Resource name (`"AIE"`, `"PLIO"`, `"BRAM"`, `"URAM"`).
        resource: &'static str,
        /// Requested amount.
        used: usize,
        /// Budget.
        budget: usize,
    },
    /// An invalid configuration value was supplied.
    InvalidParameter(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfTileMemory { requested, free } => write!(
                f,
                "tile memory exhausted: requested {requested} bytes, {free} bytes free"
            ),
            SimError::BufferTooLarge { bytes, bank_bytes } => write!(
                f,
                "buffer of {bytes} bytes exceeds the {bank_bytes}-byte bank capacity"
            ),
            SimError::TileOutOfRange { row, col } => {
                write!(f, "tile ({row},{col}) lies outside the AIE array")
            }
            SimError::ResourceExceeded {
                resource,
                used,
                budget,
            } => write!(
                f,
                "{resource} budget exceeded: {used} used, {budget} available"
            ),
            SimError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_quantities() {
        let e = SimError::OutOfTileMemory {
            requested: 9000,
            free: 100,
        };
        assert!(e.to_string().contains("9000"));

        let e = SimError::ResourceExceeded {
            resource: "URAM",
            used: 500,
            budget: 463,
        };
        assert!(e.to_string().contains("URAM"));
        assert!(e.to_string().contains("463"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
