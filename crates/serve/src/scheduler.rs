//! Shape-classed SLO scheduling: EDF sub-queues and stealing dispatch.
//!
//! With [`crate::ServeConfig::shape_classed`] on, admission routes into
//! per-([`BatchKey`], [`SloClass`]) sub-queues held by a
//! [`ClassScheduler`] instead of the shape-blind FIFO
//! [`crate::queue::BoundedQueue`]:
//!
//! * **EDF seeding** — batch formation seeds from the class queue whose
//!   head has the earliest *effective* deadline (the explicit deadline,
//!   or submission time plus the class horizon). A rare Interactive
//!   request therefore jumps a backlog of Batch-class work instead of
//!   waiting out the FIFO.
//! * **EDF admission** — a full scheduler does not blindly reject: an
//!   incoming request that is strictly more urgent than the
//!   latest-deadline request of an equal-or-lower-priority class evicts
//!   it (the victim completes with [`ServeError::Overloaded`]).
//! * **Work stealing** — formed batches land in per-sub-pool dispatch
//!   queues ([`StealingDispatch`]); an idle replica first drains its
//!   home pool, then steals from the most backlogged one, so a hot
//!   class cannot strand capacity.
//! * **Load shedding** — a [`ShedController`] watches the windowed
//!   timeout fraction and sheds Batch (then Standard) traffic at
//!   admission before the queue collapses.
//!
//! The scheduler only reorders *when* requests execute; per-request
//! factors stay bit-identical to the FIFO path and to a solo
//! accelerator run.

use crate::batcher::{self, Batch, BatchEntry, FormOutcome, POLL_TICK};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::queue::{PopResult, PushError};
use crate::request::{BatchKey, PendingRequest, SloClass};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// No class is shed.
pub(crate) const SHED_NONE: u8 = 0;
/// Batch-class traffic is shed at admission.
pub(crate) const SHED_BATCH: u8 = 1;
/// Batch- and Standard-class traffic are shed at admission.
pub(crate) const SHED_STANDARD: u8 = 2;

/// One per-(key, class) sub-queue, ordered ascending by effective
/// deadline (FIFO among ties, preserved by the insertion sort).
struct ClassQueue {
    key: BatchKey,
    class: SloClass,
    buf: VecDeque<PendingRequest>,
}

struct SchedState {
    queues: Vec<ClassQueue>,
    /// Total requests across all sub-queues (bounded by `capacity`).
    len: usize,
    /// Bumps on every successful push; the batcher's linger snapshots
    /// it before sweeping so a racing push wakes the wait immediately.
    push_seq: u64,
    closed: bool,
}

/// The shape-classed admission structure replacing the FIFO queue.
pub(crate) struct ClassScheduler {
    state: Mutex<SchedState>,
    /// Signalled on every push and on close; the batcher's seed wait
    /// and linger wait park here.
    push_cv: Condvar,
    capacity: usize,
    /// Current shed tier, written by the [`ShedController`] and read by
    /// admission ([`SHED_NONE`] / [`SHED_BATCH`] / [`SHED_STANDARD`]).
    shed_level: AtomicU8,
}

impl ClassScheduler {
    pub(crate) fn new(capacity: usize) -> Self {
        ClassScheduler {
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                len: 0,
                push_seq: 0,
                closed: false,
            }),
            push_cv: Condvar::new(),
            capacity,
            shed_level: AtomicU8::new(SHED_NONE),
        }
    }

    pub(crate) fn shed_level(&self) -> u8 {
        self.shed_level.load(Ordering::Relaxed)
    }

    pub(crate) fn set_shed_level(&self, level: u8) {
        self.shed_level.store(level, Ordering::Relaxed);
    }

    /// Admits `request` into its (key, class) sub-queue, sorted by
    /// effective deadline. A full scheduler evicts the latest-deadline
    /// request among equal-or-lower-priority classes when the incoming
    /// request is strictly more urgent (the victim completes with
    /// [`ServeError::Overloaded`] and is counted shed); otherwise the
    /// push fails `Full` exactly like the FIFO queue.
    // A rejected push hands the request back by value, same as
    // `BoundedQueue::try_push` — the caller completes it, so the large
    // Err variant is the point, not an accident.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(
        &self,
        request: PendingRequest,
        metrics: &Metrics,
    ) -> Result<(), PushError<PendingRequest>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed(request));
        }
        if st.len >= self.capacity {
            let incoming_deadline = request.effective_deadline();
            let priority = request.class.priority();
            // The eviction candidate: across every sub-queue of
            // equal-or-lower priority, the request with the LATEST
            // effective deadline (each sub-queue's back, since queues
            // are deadline-sorted).
            let victim = st
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| q.class.priority() <= priority && !q.buf.is_empty())
                .max_by_key(|(_, q)| q.buf.back().expect("non-empty").effective_deadline())
                .map(|(qi, q)| (qi, q.buf.back().expect("non-empty").effective_deadline()));
            match victim {
                Some((qi, victim_deadline)) if incoming_deadline < victim_deadline => {
                    let evicted = st.queues[qi].buf.pop_back().expect("non-empty");
                    st.len -= 1;
                    if evicted.state.complete(Err(ServeError::Overloaded)) {
                        metrics.record_shed(evicted.class);
                    }
                }
                _ => return Err(PushError::Full(request)),
            }
        }
        let key = request.batch_key();
        let class = request.class;
        let deadline = request.effective_deadline();
        let qi = match st
            .queues
            .iter()
            .position(|q| q.key == key && q.class == class)
        {
            Some(qi) => qi,
            None => {
                st.queues.push(ClassQueue {
                    key,
                    class,
                    buf: VecDeque::new(),
                });
                st.queues.len() - 1
            }
        };
        let buf = &mut st.queues[qi].buf;
        let pos = buf.partition_point(|r| r.effective_deadline() <= deadline);
        buf.insert(pos, request);
        st.len += 1;
        st.push_seq += 1;
        drop(st);
        self.push_cv.notify_all();
        Ok(())
    }

    /// Pops the next batch seed: the head of the class queue whose head
    /// has the earliest effective deadline (EDF across every key and
    /// class). Blocks up to `timeout` for an arrival.
    pub(crate) fn pop_seed(&self, timeout: Duration) -> PopResult<PendingRequest> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if st.len > 0 {
                let qi = st
                    .queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.buf.is_empty())
                    .min_by_key(|(_, q)| q.buf.front().expect("non-empty").effective_deadline())
                    .map(|(qi, _)| qi)
                    .expect("len > 0 implies a non-empty queue");
                let request = st.queues[qi].buf.pop_front().expect("non-empty");
                st.len -= 1;
                return PopResult::Item(request);
            }
            if st.closed {
                return PopResult::Closed;
            }
            if self.push_cv.wait_until(&mut st, deadline).timed_out() && st.len == 0 {
                return PopResult::TimedOut;
            }
        }
    }

    /// Removes up to `max` queued requests whose batch key is `key`,
    /// earliest effective deadline first *across* classes — so a batch
    /// seeded by an urgent request still coalesces same-shape work from
    /// lower-priority classes (fill amortizes Eq. 14 for everyone).
    pub(crate) fn take_matching(&self, key: BatchKey, max: usize) -> Vec<PendingRequest> {
        let mut st = self.state.lock();
        let mut taken = Vec::new();
        while taken.len() < max {
            let qi = st
                .queues
                .iter()
                .enumerate()
                .filter(|(_, q)| q.key == key && !q.buf.is_empty())
                .min_by_key(|(_, q)| q.buf.front().expect("non-empty").effective_deadline())
                .map(|(qi, _)| qi);
            let Some(qi) = qi else { break };
            taken.push(st.queues[qi].buf.pop_front().expect("non-empty"));
            st.len -= 1;
        }
        taken
    }

    /// The current push-sequence counter (see
    /// [`crate::queue::BoundedQueue::push_seq`]).
    pub(crate) fn push_seq(&self) -> u64 {
        self.state.lock().push_seq
    }

    /// Blocks until a push after `seen`, the scheduler closes, or
    /// `deadline` passes. Returns whether a new push happened.
    pub(crate) fn wait_for_push(&self, seen: u64, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.push_seq != seen {
                return true;
            }
            if st.closed {
                return false;
            }
            if self.push_cv.wait_until(&mut st, deadline).timed_out() {
                return st.push_seq != seen;
            }
        }
    }

    pub(crate) fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.push_cv.notify_all();
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().len
    }
}

/// Forms one batch from the scheduler: EDF seed, then a linger sweep of
/// same-key requests under the seed's per-class `policy` — which maps
/// `(key, class)` to the `(max_batch, max_linger)` budget this batch
/// forms under (Interactive lingers less; PLIO-critical shapes cap at
/// the stripe capacity). Mirrors [`batcher::form_batch`] and shares its
/// dispatch-time re-filter.
pub(crate) fn form_batch_classed(
    scheduler: &ClassScheduler,
    config: &ServeConfig,
    metrics: &Metrics,
    policy: &dyn Fn(BatchKey, SloClass) -> (usize, Duration),
) -> FormOutcome {
    let seed = loop {
        match scheduler.pop_seed(POLL_TICK) {
            PopResult::Item(request) => {
                if let Some(request) = batcher::admit_or_complete(request, metrics) {
                    break request;
                }
            }
            PopResult::TimedOut => return FormOutcome::Idle,
            PopResult::Closed => return FormOutcome::Drained,
        }
    };

    let key = seed.batch_key();
    let (max_batch, max_linger) = policy(key, seed.class);
    let max_batch = max_batch.clamp(1, config.max_batch);
    let linger_deadline = Instant::now() + max_linger.min(config.max_linger);
    let mut entries = vec![BatchEntry {
        request: seed,
        picked_at: Instant::now(),
    }];

    while entries.len() < max_batch {
        let seen = scheduler.push_seq();
        let wanted = max_batch - entries.len();
        let picked_at = Instant::now();
        for request in scheduler.take_matching(key, wanted) {
            if let Some(request) = batcher::admit_or_complete(request, metrics) {
                entries.push(BatchEntry { request, picked_at });
            }
        }
        if entries.len() >= max_batch {
            break;
        }
        if Instant::now() >= linger_deadline {
            break;
        }
        if !scheduler.wait_for_push(seen, linger_deadline) {
            break;
        }
    }

    batcher::finish_batch(key, entries, config, metrics)
}

/// Per-sub-pool dispatch with work stealing. Batches route to a pool by
/// their key hash; each replica drains its home pool first and steals
/// from the most backlogged other pool when idle. With one pool (FIFO
/// mode) this degenerates to exactly the old single dispatch queue.
pub(crate) struct StealingDispatch {
    state: Mutex<DispatchState>,
    /// Poppers (replicas) park here for new batches.
    items_cv: Condvar,
    /// Pushers (the batcher) park here for space.
    space_cv: Condvar,
    /// Global bound across all pools, preserving the FIFO-mode
    /// backpressure contract (`workers * 2`).
    capacity: usize,
    pools: usize,
}

struct DispatchState {
    pools: Vec<VecDeque<Batch>>,
    len: usize,
    closed: bool,
}

impl StealingDispatch {
    pub(crate) fn new(pools: usize, capacity: usize) -> Self {
        let pools = pools.max(1);
        StealingDispatch {
            state: Mutex::new(DispatchState {
                pools: (0..pools).map(|_| VecDeque::new()).collect(),
                len: 0,
                closed: false,
            }),
            items_cv: Condvar::new(),
            space_cv: Condvar::new(),
            capacity: capacity.max(1),
            pools,
        }
    }

    /// Blocks until space, then routes `batch` to its key's pool.
    pub(crate) fn push(&self, batch: Batch) -> Result<(), PushError<Batch>> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed(batch));
            }
            if st.len < self.capacity {
                break;
            }
            self.space_cv.wait(&mut st);
        }
        let pool = pool_of(&batch.key, self.pools);
        st.pools[pool].push_back(batch);
        st.len += 1;
        drop(st);
        self.items_cv.notify_all();
        Ok(())
    }

    /// Pops the next batch for the replica homed at pool `home`: the
    /// home pool first, else a steal from the most backlogged pool
    /// (counted in [`Metrics::record_batch_stolen`]).
    pub(crate) fn pop(
        &self,
        home: usize,
        timeout: Duration,
        metrics: &Metrics,
    ) -> PopResult<Batch> {
        let deadline = Instant::now() + timeout;
        let home = home % self.pools;
        let mut st = self.state.lock();
        loop {
            if st.len > 0 {
                let pool = if !st.pools[home].is_empty() {
                    home
                } else {
                    let victim = (0..self.pools)
                        .filter(|&p| !st.pools[p].is_empty())
                        .max_by_key(|&p| st.pools[p].len())
                        .expect("len > 0 implies a non-empty pool");
                    metrics.record_batch_stolen();
                    victim
                };
                let batch = st.pools[pool].pop_front().expect("non-empty pool");
                st.len -= 1;
                drop(st);
                self.space_cv.notify_one();
                return PopResult::Item(batch);
            }
            if st.closed {
                return PopResult::Closed;
            }
            if self.items_cv.wait_until(&mut st, deadline).timed_out() && st.len == 0 {
                return PopResult::TimedOut;
            }
        }
    }

    pub(crate) fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.items_cv.notify_all();
        self.space_cv.notify_all();
    }
}

fn pool_of(key: &BatchKey, pools: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % pools
}

/// Windowed overload policy: on a cadence, diffs the service's timeout
/// and completion counters and maps the timeout fraction to a shed
/// tier — above [`crate::ServeConfig::shed_threshold`] Batch sheds,
/// above twice it Standard sheds too, and below half of it the tier
/// decays one step. Runs on the batcher thread (the single writer of
/// the shed level).
pub(crate) struct ShedController {
    threshold: f64,
    min_interval: Duration,
    last_eval: Instant,
    prev_timeouts: u64,
    prev_completed: u64,
    level: u8,
}

impl ShedController {
    pub(crate) fn new(threshold: f64, min_interval: Duration) -> Self {
        ShedController {
            threshold,
            min_interval,
            last_eval: Instant::now(),
            prev_timeouts: 0,
            prev_completed: 0,
            level: SHED_NONE,
        }
    }

    /// Re-evaluates the shed tier from the windowed deltas; a no-op
    /// between cadence ticks and over idle windows (no completions or
    /// timeouts means no evidence either way — the tier holds).
    pub(crate) fn update(&mut self, metrics: &Metrics, scheduler: &ClassScheduler) {
        if self.last_eval.elapsed() < self.min_interval {
            return;
        }
        let timeouts = metrics.timed_out_batcher.load(Ordering::Relaxed)
            + metrics.timed_out_exec.load(Ordering::Relaxed);
        let completed = metrics.completed_ok.load(Ordering::Relaxed);
        let timeout_delta = timeouts.saturating_sub(self.prev_timeouts);
        let completed_delta = completed.saturating_sub(self.prev_completed);
        self.prev_timeouts = timeouts;
        self.prev_completed = completed;
        self.last_eval = Instant::now();
        let total = timeout_delta + completed_delta;
        if total == 0 {
            return;
        }
        let frac = timeout_delta as f64 / total as f64;
        let level = if frac > 2.0 * self.threshold {
            SHED_STANDARD
        } else if frac > self.threshold {
            // Past the threshold the tier ratchets up to (or holds at)
            // Batch shedding; an already-escalated tier does not relax
            // until the fraction clears the decay band below.
            self.level.max(SHED_BATCH)
        } else if frac < self.threshold / 2.0 {
            self.level.saturating_sub(1)
        } else {
            self.level
        };
        if level != self.level {
            self.level = level;
            scheduler.set_shed_level(level);
            metrics.set_shed_level(u64::from(level));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Payload, RequestId, RequestState};
    use std::sync::Arc;
    use svd_kernels::Matrix;

    fn pending(id: u64, shape: (usize, usize), class: SloClass) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            payload: Payload::Decompose {
                matrix: Matrix::zeros(shape.0, shape.1),
                shape,
                publish: None,
            },
            state: RequestState::new(),
            submitted_at: Instant::now(),
            deadline: None,
            class,
            poison: false,
        }
    }

    fn pending_at(
        id: u64,
        shape: (usize, usize),
        class: SloClass,
        deadline: Instant,
    ) -> PendingRequest {
        let mut request = pending(id, shape, class);
        request.deadline = Some(deadline);
        request
    }

    fn batch_of(id: u64, shape: (usize, usize)) -> Batch {
        Batch {
            key: BatchKey::Decompose {
                rows: shape.0,
                cols: shape.1,
            },
            entries: vec![BatchEntry {
                request: pending(id, shape, SloClass::Standard),
                picked_at: Instant::now(),
            }],
        }
    }

    #[test]
    fn seed_pick_is_edf_across_classes_and_shapes() {
        let sched = ClassScheduler::new(16);
        let metrics = Metrics::new();
        // Ten Batch-class requests of the dominant shape queue first;
        // an Interactive request of a rarer shape lands last. Its class
        // horizon (100 ms) orders it far ahead of the 10 s Batch
        // horizon, so EDF seeds from it immediately — the FIFO would
        // have served all ten dominants first.
        for id in 0..10 {
            sched
                .try_push(pending(id, (32, 32), SloClass::Batch), &metrics)
                .unwrap();
        }
        sched
            .try_push(pending(99, (8, 8), SloClass::Interactive), &metrics)
            .unwrap();
        let seed = match sched.pop_seed(Duration::from_millis(10)) {
            PopResult::Item(r) => r,
            other => panic!("expected a seed, got {:?}", std::mem::discriminant(&other)),
        };
        assert_eq!(seed.id, RequestId(99));
        assert_eq!(sched.len(), 10);
    }

    #[test]
    fn explicit_deadlines_order_within_a_class() {
        let sched = ClassScheduler::new(16);
        let metrics = Metrics::new();
        let now = Instant::now();
        sched
            .try_push(
                pending_at(1, (8, 8), SloClass::Standard, now + Duration::from_secs(5)),
                &metrics,
            )
            .unwrap();
        sched
            .try_push(
                pending_at(2, (8, 8), SloClass::Standard, now + Duration::from_secs(1)),
                &metrics,
            )
            .unwrap();
        sched
            .try_push(
                pending_at(3, (8, 8), SloClass::Standard, now + Duration::from_secs(3)),
                &metrics,
            )
            .unwrap();
        let order: Vec<u64> = (0..3)
            .map(|_| match sched.pop_seed(Duration::from_millis(10)) {
                PopResult::Item(r) => r.id.0,
                _ => panic!("expected an item"),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1], "EDF, not FIFO");
    }

    #[test]
    fn full_scheduler_evicts_the_latest_lower_priority_deadline() {
        let sched = ClassScheduler::new(2);
        let metrics = Metrics::new();
        let victim = pending(1, (32, 32), SloClass::Batch);
        let victim_state = Arc::clone(&victim.state);
        sched.try_push(victim, &metrics).unwrap();
        sched
            .try_push(pending(2, (32, 32), SloClass::Standard), &metrics)
            .unwrap();
        // Full. An Interactive request is strictly more urgent than the
        // Batch-class back (100 ms vs 10 s horizon): the Batch request
        // is evicted with Overloaded and the urgent one admitted.
        sched
            .try_push(pending(3, (8, 8), SloClass::Interactive), &metrics)
            .unwrap();
        assert_eq!(sched.len(), 2);
        assert!(
            !victim_state.complete(Err(ServeError::Cancelled)),
            "victim already completed (with Overloaded)"
        );
        let snap = metrics.snapshot(0, 0);
        assert_eq!(snap.per_class.batch.shed, 1);
        assert_eq!(snap.shed, 1);
        // The evicted request is gone; the urgent one seeds first.
        match sched.pop_seed(Duration::from_millis(10)) {
            PopResult::Item(r) => assert_eq!(r.id, RequestId(3)),
            _ => panic!("expected an item"),
        }
    }

    #[test]
    fn eviction_never_preempts_a_higher_priority_class() {
        let sched = ClassScheduler::new(1);
        let metrics = Metrics::new();
        sched
            .try_push(pending(1, (8, 8), SloClass::Interactive), &metrics)
            .unwrap();
        // A Batch-class request cannot evict Interactive work no matter
        // the deadlines: the push fails Full, exactly like the FIFO.
        let err = sched
            .try_push(pending(2, (32, 32), SloClass::Batch), &metrics)
            .unwrap_err();
        assert!(matches!(err, PushError::Full(_)));
        // Equal priority with a *later* deadline doesn't evict either.
        let err = sched
            .try_push(
                pending_at(
                    3,
                    (8, 8),
                    SloClass::Interactive,
                    Instant::now() + Duration::from_secs(60),
                ),
                &metrics,
            )
            .unwrap_err();
        assert!(matches!(err, PushError::Full(_)));
        assert_eq!(metrics.snapshot(0, 0).shed, 0);
    }

    #[test]
    fn take_matching_crosses_classes_but_not_keys() {
        let sched = ClassScheduler::new(16);
        let metrics = Metrics::new();
        sched
            .try_push(pending(1, (8, 8), SloClass::Batch), &metrics)
            .unwrap();
        sched
            .try_push(pending(2, (16, 16), SloClass::Standard), &metrics)
            .unwrap();
        sched
            .try_push(pending(3, (8, 8), SloClass::Interactive), &metrics)
            .unwrap();
        let taken = sched.take_matching(BatchKey::Decompose { rows: 8, cols: 8 }, 8);
        // Both (8,8) requests join — Interactive first (earlier
        // horizon) — while the (16,16) request stays queued.
        let ids: Vec<u64> = taken.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![3, 1]);
        assert_eq!(sched.len(), 1);
    }

    #[test]
    fn closed_scheduler_reports_drained() {
        let sched = ClassScheduler::new(4);
        let metrics = Metrics::new();
        sched
            .try_push(pending(1, (8, 8), SloClass::Standard), &metrics)
            .unwrap();
        sched.close();
        // Already-queued work still drains...
        assert!(matches!(
            sched.pop_seed(Duration::from_millis(5)),
            PopResult::Item(_)
        ));
        // ...then the scheduler reports closed, and new pushes fail.
        assert!(matches!(
            sched.pop_seed(Duration::from_millis(5)),
            PopResult::Closed
        ));
        let err = sched
            .try_push(pending(2, (8, 8), SloClass::Standard), &metrics)
            .unwrap_err();
        assert!(matches!(err, PushError::Closed(_)));
    }

    #[test]
    fn stealing_pop_prefers_home_then_raids_the_backlog() {
        let metrics = Metrics::new();
        let dispatch = StealingDispatch::new(2, 8);
        // Two batches of a key that hashes to some pool P; a replica
        // homed at the *other* pool must steal them (and be counted),
        // while a replica homed at P pops for free.
        let pool = pool_of(&batch_of(0, (8, 8)).key, 2);
        assert!(dispatch.push(batch_of(1, (8, 8))).is_ok());
        assert!(dispatch.push(batch_of(2, (8, 8))).is_ok());
        let other = 1 - pool;
        match dispatch.pop(other, Duration::from_millis(10), &metrics) {
            PopResult::Item(b) => assert_eq!(b.entries[0].request.id, RequestId(1)),
            _ => panic!("expected a stolen batch"),
        }
        assert_eq!(metrics.batches_stolen.load(Ordering::Relaxed), 1);
        match dispatch.pop(pool, Duration::from_millis(10), &metrics) {
            PopResult::Item(b) => assert_eq!(b.entries[0].request.id, RequestId(2)),
            _ => panic!("expected a home-pool batch"),
        }
        assert_eq!(
            metrics.batches_stolen.load(Ordering::Relaxed),
            1,
            "home pop is not a steal"
        );
        dispatch.close();
        assert!(matches!(
            dispatch.pop(0, Duration::from_millis(5), &metrics),
            PopResult::Closed
        ));
    }

    #[test]
    fn single_pool_dispatch_is_plain_fifo() {
        let metrics = Metrics::new();
        let dispatch = StealingDispatch::new(1, 4);
        assert!(dispatch.push(batch_of(1, (8, 8))).is_ok());
        assert!(dispatch.push(batch_of(2, (16, 16))).is_ok());
        for expect in [1u64, 2] {
            match dispatch.pop(7, Duration::from_millis(10), &metrics) {
                PopResult::Item(b) => assert_eq!(b.entries[0].request.id, RequestId(expect)),
                _ => panic!("expected a batch"),
            }
        }
        assert_eq!(metrics.batches_stolen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shed_controller_escalates_and_decays_with_the_timeout_fraction() {
        let metrics = Metrics::new();
        let sched = ClassScheduler::new(4);
        let mut shed = ShedController::new(0.3, Duration::ZERO);
        // Window 1: 1 timeout / 9 completions = 10% < threshold.
        metrics.completed_ok.store(9, Ordering::Relaxed);
        metrics.timed_out_exec.store(1, Ordering::Relaxed);
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_NONE);
        // Window 2: 4 timeouts / 6 completions = 40% > 30%.
        metrics.completed_ok.store(15, Ordering::Relaxed);
        metrics.timed_out_exec.store(5, Ordering::Relaxed);
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_BATCH);
        assert_eq!(metrics.shed_level.load(Ordering::Relaxed), 1);
        // Window 3: 7/10 = 70% > 60%: Standard sheds too.
        metrics.completed_ok.store(18, Ordering::Relaxed);
        metrics.timed_out_exec.store(12, Ordering::Relaxed);
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_STANDARD);
        // Windows 4-5: clean traffic decays one tier per window.
        metrics.completed_ok.store(100, Ordering::Relaxed);
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_BATCH);
        metrics.completed_ok.store(200, Ordering::Relaxed);
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_NONE);
        // An idle window holds the tier instead of decaying on silence.
        shed.update(&metrics, &sched);
        assert_eq!(sched.shed_level(), SHED_NONE);
    }

    #[test]
    fn form_batch_classed_seeds_urgent_and_sweeps_same_key() {
        let sched = ClassScheduler::new(16);
        let metrics = Metrics::new();
        let config = ServeConfig {
            max_batch: 4,
            max_linger: Duration::from_millis(5),
            ..ServeConfig::default()
        };
        for id in 0..3 {
            sched
                .try_push(pending(id, (32, 32), SloClass::Batch), &metrics)
                .unwrap();
        }
        sched
            .try_push(pending(9, (8, 8), SloClass::Interactive), &metrics)
            .unwrap();
        let policy = |_key: BatchKey, _class: SloClass| (4usize, Duration::from_millis(5));
        // First batch: seeded by the urgent (8,8) Interactive, which has
        // no same-key peers — a singleton, ahead of the Batch backlog.
        let out = form_batch_classed(&sched, &config, &metrics, &policy);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.key, BatchKey::Decompose { rows: 8, cols: 8 });
        assert_eq!(batch.entries.len(), 1);
        assert_eq!(batch.entries[0].request.id, RequestId(9));
        // Second batch: the (32,32) Batch-class backlog coalesces.
        let out = form_batch_classed(&sched, &config, &metrics, &policy);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.key, BatchKey::Decompose { rows: 32, cols: 32 });
        assert_eq!(batch.entries.len(), 3);
    }
}
