//! Bounded MPMC queue used for admission (backpressure) and dispatch.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// A bounded multi-producer/multi-consumer FIFO with close semantics.
///
/// * `try_push` never blocks: it reports a full queue to the caller so
///   admission can exert backpressure.
/// * `push` blocks until space frees up (used on the internal dispatch
///   path, where the producer is the batcher and must not drop work).
/// * `pop` blocks until an item, a timeout, or close-and-drained.
/// * After [`BoundedQueue::close`], pushes fail and pops drain whatever
///   remains before returning `None`.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    space: Condvar,
    items: Condvar,
    capacity: usize,
}

struct QueueState<T> {
    buf: VecDeque<T>,
    closed: bool,
    /// Monotonic count of successful pushes; lets a consumer sleep on
    /// the `items` condvar until the queue *grows* (see
    /// [`BoundedQueue::wait_for_push`]) rather than poll-sleeping —
    /// depth alone can't distinguish growth from a non-matching
    /// leftover sitting in the buffer.
    push_seq: u64,
}

/// Outcome of a non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Outcome of a blocking pop with timeout.
#[derive(Debug, PartialEq, Eq)]
pub enum PopResult<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue still open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded at `capacity` items (>= 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "queue capacity must be >= 1");
        BoundedQueue {
            state: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
                push_seq: 0,
            }),
            space: Condvar::new(),
            items: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; a gauge, not a guarantee).
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether the queue is currently empty (racy; a gauge).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; fails on a full or closed queue.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] or [`PushError::Closed`], returning the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.buf.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.buf.push_back(item);
        st.push_seq += 1;
        drop(st);
        self.items.notify_one();
        Ok(())
    }

    /// Blocking push; waits for space. Fails only if the queue closes.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] with the item when the queue closed while
    /// (or before) waiting.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(PushError::Closed(item));
            }
            if st.buf.len() < self.capacity {
                st.buf.push_back(item);
                st.push_seq += 1;
                drop(st);
                self.items.notify_one();
                return Ok(());
            }
            self.space.wait(&mut st);
        }
    }

    /// Blocking pop with a timeout.
    pub fn pop(&self, timeout: Duration) -> PopResult<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.buf.pop_front() {
                drop(st);
                self.space.notify_one();
                return PopResult::Item(item);
            }
            if st.closed {
                return PopResult::Closed;
            }
            if self.items.wait_for(&mut st, timeout).timed_out() {
                return if let Some(item) = st.buf.pop_front() {
                    drop(st);
                    self.space.notify_one();
                    PopResult::Item(item)
                } else if st.closed {
                    PopResult::Closed
                } else {
                    PopResult::TimedOut
                };
            }
        }
    }

    /// Monotonic count of successful pushes. Snapshot it *before*
    /// sweeping the queue, then hand it to
    /// [`BoundedQueue::wait_for_push`]: a push racing with the sweep
    /// advances the sequence and the wait returns immediately, so no
    /// arrival is ever slept through.
    pub fn push_seq(&self) -> u64 {
        self.state.lock().push_seq
    }

    /// Blocks until a push lands after the `seen` sequence snapshot,
    /// returning `true` (the item may already have been consumed by a
    /// racing consumer — re-sweep to find out). Returns `false` when
    /// `deadline` passes or the queue closes with no new push: in both
    /// cases the queue cannot have grown since `seen`, so there is
    /// nothing new to sweep.
    pub fn wait_for_push(&self, seen: u64, deadline: Instant) -> bool {
        let mut st = self.state.lock();
        loop {
            if st.push_seq != seen {
                return true;
            }
            if st.closed {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            if self.items.wait_for(&mut st, deadline - now).timed_out() {
                return st.push_seq != seen;
            }
        }
    }

    /// Dequeues up to `max` items satisfying `pred`, preserving the
    /// relative order of everything left behind. Non-blocking; used by
    /// the batcher to coalesce same-shape requests.
    ///
    /// The scan is in place: non-matching items are never moved and
    /// nothing is allocated, so a linger sweep over a deep mixed queue
    /// costs reads, not a full rebuild. The scan also stops as soon as
    /// `max` items are taken — front-of-queue matches cost O(max), not
    /// O(depth). (The previous implementation rebuilt the buffer into
    /// a freshly allocated `VecDeque` on *every* sweep, moving every
    /// element each linger wake: O(depth) churn per sweep, O(depth²)
    /// per batch under a deep queue.)
    pub fn take_matching<F: FnMut(&T) -> bool>(&self, max: usize, mut pred: F) -> Vec<T> {
        let mut st = self.state.lock();
        let mut taken = Vec::new();
        let mut i = 0;
        while i < st.buf.len() && taken.len() < max {
            if pred(&st.buf[i]) {
                // `remove` shifts the shorter side toward the gap;
                // matches clustered at the front (the common batcher
                // case) shift nothing.
                taken.push(st.buf.remove(i).expect("index in bounds"));
            } else {
                i += 1;
            }
        }
        let n = taken.len();
        drop(st);
        for _ in 0..n {
            self.space.notify_one();
        }
        taken
    }

    /// Closes the queue: pushes fail from now on, pops drain the
    /// remainder. Idempotent.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.items.notify_all();
        self.space.notify_all();
    }

    /// Whether [`BoundedQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(50);

    #[test]
    fn try_push_exerts_backpressure_at_capacity() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(TICK), PopResult::Item(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_times_out_when_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop(Duration::from_millis(5)), PopResult::TimedOut);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop(TICK), PopResult::Item(1));
        assert_eq!(q.pop(TICK), PopResult::Closed);
    }

    #[test]
    fn take_matching_preserves_order_of_rest() {
        let q = BoundedQueue::new(8);
        for v in [1, 2, 3, 4, 5, 6] {
            q.try_push(v).unwrap();
        }
        let evens = q.take_matching(2, |v| v % 2 == 0);
        assert_eq!(evens, vec![2, 4]);
        let mut rest = Vec::new();
        while let PopResult::Item(v) = q.pop(TICK) {
            rest.push(v);
        }
        assert_eq!(rest, vec![1, 3, 5, 6]);
    }

    /// Perf regression guard for the in-place `take_matching` scan.
    ///
    /// The result of every sweep is identical to the old rebuild
    /// implementation (same items, same order — see
    /// `take_matching_preserves_order_of_rest`); what changed is the
    /// cost: the old code allocated a fresh `VecDeque` and moved every
    /// remaining element on *each* sweep, so draining a deep queue one
    /// front match at a time was O(depth²) moves plus O(depth)
    /// allocations. The in-place scan stops at `max` matches, making a
    /// front match O(1). Draining 32k items front-first is ~5×10⁸
    /// element moves under the old code (tens of seconds in a debug
    /// test build) and ~32k O(1) removals here; the generous wall
    /// bound below fails the former and clears the latter by orders of
    /// magnitude even on a loaded CI machine.
    #[test]
    fn take_matching_front_match_is_constant_time() {
        const DEPTH: usize = 32_768;
        let q = BoundedQueue::new(DEPTH);
        for v in 0..DEPTH as u64 {
            q.try_push(v).unwrap();
        }
        let start = Instant::now();
        let mut drained = Vec::with_capacity(DEPTH);
        // One linger-style sweep per item, each matching at the front —
        // the batcher's steady-state pattern on a deep same-shape queue.
        for _ in 0..DEPTH {
            let taken = q.take_matching(1, |_| true);
            assert_eq!(taken.len(), 1);
            drained.extend(taken);
        }
        let elapsed = start.elapsed();
        assert!(q.is_empty());
        assert_eq!(drained, (0..DEPTH as u64).collect::<Vec<_>>());
        assert!(
            elapsed < Duration::from_secs(5),
            "take_matching drained {DEPTH} front matches in {elapsed:?}; \
             the sweep is rebuilding the buffer instead of scanning in place"
        );
    }

    #[test]
    fn take_matching_respects_max_and_skips_nonmatching_prefix() {
        // Matches behind a non-matching prefix are still found, the
        // scan stops at `max`, and the prefix keeps its order.
        let q = BoundedQueue::new(8);
        for v in [1, 3, 2, 4, 6, 5] {
            q.try_push(v).unwrap();
        }
        assert_eq!(q.take_matching(2, |v| v % 2 == 0), vec![2, 4]);
        let mut rest = Vec::new();
        while let PopResult::Item(v) = q.pop(TICK) {
            rest.push(v);
        }
        assert_eq!(rest, vec![1, 3, 6, 5]);
    }

    #[test]
    fn blocking_push_waits_for_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.pop(TICK), PopResult::Item(1));
        t.join().unwrap().unwrap();
        assert_eq!(q.pop(TICK), PopResult::Item(2));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop(Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(t.join().unwrap(), PopResult::Closed);
    }

    #[test]
    fn close_wakes_blocked_producer_with_item_returned() {
        // A producer blocked on a full queue must wake on close and get
        // its item back — not deadlock waiting for space that will never
        // free up.
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(t.join().unwrap(), Err(PushError::Closed(2)));
        // The pre-close item still drains.
        assert_eq!(q.pop(TICK), PopResult::Item(1));
        assert_eq!(q.pop(TICK), PopResult::Closed);
    }

    #[test]
    fn wait_for_push_wakes_on_new_push() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let seen = q.push_seq();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.try_push(7).unwrap();
        });
        let start = Instant::now();
        assert!(q.wait_for_push(seen, Instant::now() + Duration::from_secs(10)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "woke via deadline, not push"
        );
        t.join().unwrap();
    }

    #[test]
    fn wait_for_push_false_at_deadline_without_push() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let seen = q.push_seq();
        assert!(!q.wait_for_push(seen, Instant::now() + Duration::from_millis(5)));
        // A deadline already in the past returns immediately.
        assert!(!q.wait_for_push(seen, Instant::now() - Duration::from_millis(1)));
    }

    #[test]
    fn wait_for_push_false_on_close_without_push() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let seen = q.push_seq();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.close();
        });
        let start = Instant::now();
        assert!(!q.wait_for_push(seen, Instant::now() + Duration::from_secs(10)));
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "close did not wake the waiter"
        );
        t.join().unwrap();
    }

    #[test]
    fn wait_for_push_sees_push_that_raced_the_snapshot() {
        // A push landing between the snapshot and the wait advances the
        // sequence, so the wait returns true immediately even though the
        // notification fired before anyone was waiting — the lost-wakeup
        // case the sequence number exists to prevent.
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        let seen = q.push_seq();
        q.try_push(1).unwrap();
        let start = Instant::now();
        assert!(q.wait_for_push(seen, Instant::now() + Duration::from_secs(10)));
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
