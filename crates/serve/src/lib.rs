#![warn(missing_docs)]

//! Batch-serving runtime for the HeteroSVD accelerator.
//!
//! The simulator crates answer "how fast is one factorization?"; this
//! crate answers the system-level question the paper's Eq. (14) batch
//! model raises: how does a *pool* of accelerators behave under a stream
//! of concurrent SVD requests?
//!
//! ```text
//!  callers ──try_submit──▶ [bounded admission queue]   (backpressure)
//!                                   │
//!                             batcher thread           (coalesce same
//!                                   │                   shape, linger)
//!                           [dispatch queue]
//!                             │    │    │
//!                          replica pool (N threads)    (run_many; panic
//!                             │    │    │               containment +
//!                            results to handles         replacement)
//! ```
//!
//! * **Backpressure** — [`SvdService::try_submit`] never blocks; a full
//!   queue is [`ServeError::QueueFull`] and the caller backs off.
//! * **Dynamic batching** — same-shape requests are coalesced up to the
//!   configured batch size or linger budget, then executed with
//!   [`heterosvd::Accelerator::run_many`]; every request in a batch of
//!   size `B` is charged the Eq. (14) system time `⌈B / P_task⌉ · t_task`
//!   (see [`LatencyRecord::sim_exec_ps`]).
//! * **Shape-classed SLO scheduling** — with
//!   [`ServeConfig::shape_classed`] on, admission routes into per
//!   (shape, [`SloClass`]) sub-queues ordered by effective deadline:
//!   batch formation seeds from the earliest-deadline class (EDF)
//!   instead of strict FIFO, a full queue evicts the latest-deadline
//!   lower-priority request to admit a more urgent one, replicas
//!   work-steal batches across sub-pools, and a windowed
//!   timeout-fraction load shedder sheds Batch (then Standard) traffic
//!   with [`ServeError::Overloaded`] before the queue collapses.
//! * **Lifecycle** — per-request deadlines, cancellation, worker-panic
//!   containment (the poisoned replica is retired and replaced), and
//!   drain-on-shutdown.
//! * **Decompose-once / apply-constantly** —
//!   [`SvdService::try_submit_publish`] truncates a successful
//!   factorization to rank r and publishes it (versioned, LRU
//!   byte-budgeted) into the service's [`FactorStore`];
//!   [`SvdService::try_submit_apply`] then serves `y = U_r·Σ_r·V_rᵀ·x`
//!   against the store-resident factors, bit-identical to the direct
//!   truncated product and charged the modeled Eq. 8–14 apply-pipeline
//!   time.
//! * **Incremental updates** — with [`ServeConfig::incremental`] on,
//!   [`SvdService::try_submit_update`] serves repeated SVDs of a
//!   slowly-drifting per-client matrix from cached previous factors:
//!   classification at admission routes each update to a warm-started
//!   Jacobi solve (seeded from the cached right basis), a host-only
//!   Brand-style low-rank bump of the cached truncated factors, or a
//!   full recompute once the staleness bound trips — all accounted in
//!   `warm_start_hits` / `lowrank_hits` / `staleness_fallbacks`.
//! * **Observability** — [`SvdService::metrics`] returns a serializable
//!   [`MetricsSnapshot`] with counters, queue depth, rolling throughput,
//!   and queue-wait/linger/execution percentiles;
//!   [`SvdService::metrics_report`] additionally folds in per-shape
//!   accelerator resource utilization (busy fractions + the critical
//!   resource) and the per-stage span-journal summary, exportable as
//!   JSON or Prometheus text via [`MetricsReport`].
//! * **Closed-loop online DSE** — with [`ServeConfig::autoscale`] on, a
//!   controller thread folds the observed traffic (per-shape arrival
//!   weights, batch fill, update routing split, packed-wave width) into
//!   a [`heterosvd_dse::WorkloadMix`], re-runs the analytic Eq. 15–16
//!   sweep against it each tick, and hot-swaps replicas to the winning
//!   `(P_eng, P_task)` plan with drain-and-replace semantics: every
//!   batch executes wholly under one plan generation (reported in
//!   [`PlanInfo`]), bit-identical to a static service pinned at that
//!   plan. Hysteresis (cooldown, min-dwell, improvement threshold)
//!   suppresses churn under stationary traffic.
//!
//! # Quickstart
//!
//! ```
//! use heterosvd_serve::{ServeConfig, SvdService};
//! use svd_kernels::Matrix;
//!
//! # fn main() -> Result<(), heterosvd_serve::ServeError> {
//! let service = SvdService::start(ServeConfig::default())?;
//! let a = Matrix::from_fn(8, 8, |r, c| ((r * 5 + c * 3) % 7) as f64 + if r == c { 4.0 } else { 0.0 });
//! let handle = service.try_submit(a)?;
//! let response = handle.wait()?;
//! assert_eq!(response.output.result.sigma.len(), 8);
//! println!("charged {} ps in a batch of {}", response.latency.sim_exec_ps, response.latency.batch_size);
//! service.shutdown();
//! # Ok(())
//! # }
//! ```

mod autoscale;
mod batcher;
mod config;
mod error;
mod metrics;
pub mod queue;
mod report;
mod request;
mod scheduler;
mod service;

pub use config::ServeConfig;
pub use error::ServeError;
pub use metrics::{
    ClassSnapshot, MetricsSnapshot, PerClassBreakdown, PerTypeBreakdown, Percentiles, PlanSnapshot,
    ShapeSnapshot, TypeSnapshot,
};
pub use report::{CacheReport, MetricsReport, ShapeUtilization};
pub use request::{
    ApplyHandle, ApplyResponse, LatencyRecord, PlanInfo, PublishSpec, RequestHandle, RequestId,
    RequestType, SloClass, SubmitOptions, SvdResponse, UpdateHandle, UpdateResponse,
};
pub use service::SvdService;

// Factor-store types surface directly in this crate's API
// (`SvdService::try_submit_publish` / `store()`); re-export them so
// callers need only one dependency.
pub use factor_store::{FactorMeta, FactorStore, FactorStoreStats, ModelId, PublishedFactors};

// Same for the incremental-update surface: the client-keyed factor
// cache behind `try_submit_update` / `factor_cache()` and the routing
// vocabulary carried by `UpdateResponse`.
pub use heterosvd::factor_cache::{ClientBytes, ClientId, FactorCache, FactorCacheStats};
pub use svd_kernels::incremental::{FallbackReason, StalenessBound, UpdateRoute};
