//! Error type for the serving runtime.

use heterosvd::HeteroSvdError;
use std::error::Error;
use std::fmt;

/// Errors a request or the service can produce.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The admission queue is at capacity; the caller should back off
    /// and retry (backpressure, not failure).
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The service is draining and no longer admits requests.
    ShuttingDown,
    /// The request was shed by the overload policy: either its SLO
    /// class is currently load-shed, or it was evicted from a full
    /// queue to admit a more urgent request. Retry later or at a
    /// higher class.
    Overloaded,
    /// The request's deadline elapsed before execution started.
    DeadlineExceeded,
    /// The request was cancelled by its submitter.
    Cancelled,
    /// The request's matrix cannot be served under the service
    /// configuration (shape constraints are checked at admission).
    InvalidRequest(String),
    /// The replica executing the request's batch panicked; the replica
    /// was retired and replaced, and the batch failed.
    WorkerPanicked(String),
    /// The accelerator reported an error for the request's batch.
    Svd(HeteroSvdError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Overloaded => {
                write!(f, "request shed by overload policy; retry later")
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before execution"),
            ServeError::Cancelled => write!(f, "request cancelled"),
            ServeError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServeError::WorkerPanicked(msg) => {
                write!(f, "replica panicked while serving batch: {msg}")
            }
            ServeError::Svd(e) => write!(f, "accelerator error: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Svd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeteroSvdError> for ServeError {
    fn from(e: HeteroSvdError) -> Self {
        // A panic contained inside `run_many` is still a replica-side
        // panic from the service's point of view.
        match e {
            HeteroSvdError::WorkerPanicked(msg) => ServeError::WorkerPanicked(msg),
            other => ServeError::Svd(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_condition() {
        assert!(ServeError::QueueFull { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::DeadlineExceeded
            .to_string()
            .contains("deadline"));
        assert!(ServeError::Cancelled.to_string().contains("cancelled"));
        assert!(ServeError::Overloaded.to_string().contains("shed"));
    }

    #[test]
    fn contained_run_many_panics_map_to_worker_panicked() {
        let e: ServeError = HeteroSvdError::WorkerPanicked("boom".into()).into();
        assert_eq!(e, ServeError::WorkerPanicked("boom".into()));
        let e: ServeError = HeteroSvdError::InvalidConfig("bad".into()).into();
        assert!(matches!(e, ServeError::Svd(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
