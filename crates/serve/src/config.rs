//! Service configuration.

use crate::error::ServeError;
use heterosvd::FidelityMode;
use std::time::Duration;

/// Configuration for [`crate::SvdService`].
///
/// The accelerator-side knobs (`engine_parallelism`, `task_parallelism`,
/// precision, fidelity) are shared by every replica; each replica builds
/// one [`heterosvd::Accelerator`] per distinct request shape and reuses
/// it across batches.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of accelerator replicas (worker threads).
    pub workers: usize,
    /// Bound of the admission queue; `try_submit` returns
    /// [`ServeError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Largest batch the dynamic batcher forms.
    pub max_batch: usize,
    /// Longest the batcher lingers waiting to fill a batch once it holds
    /// at least one request.
    pub max_linger: Duration,
    /// Engine parallelism (`P_eng`) of every replica.
    pub engine_parallelism: usize,
    /// Task parallelism (`P_task`) of every replica: the divisor in the
    /// Eq. (14) batch system time `⌈B / P_task⌉ · t_task`.
    pub task_parallelism: usize,
    /// Convergence precision forwarded to the accelerator.
    pub precision: f64,
    /// Host-side worker threads each replica applies to a layer's
    /// independent rotations (forwarded to
    /// [`heterosvd::HeteroSvdConfig::functional_parallelism`]). Default
    /// 1: replicas and per-matrix batch threads already parallelize
    /// across requests, so nesting more threads usually oversubscribes.
    /// Results are bit-identical at any setting.
    pub functional_parallelism: usize,
    /// Fixed iteration count (None = adaptive convergence).
    pub fixed_iterations: Option<usize>,
    /// Whether replicas compute real factorizations or timing only.
    pub fidelity: FidelityMode,
    /// Whether replicas reuse the cached per-plan timing profile instead
    /// of re-simulating the timeline for every request (forwarded to
    /// [`heterosvd::HeteroSvdConfig::timing_replay`]). Replay is exact,
    /// so this defaults on.
    pub timing_replay: bool,
    /// Whether the Eq. (14) batch system time models §IV-C cross-batch
    /// PL-pass pipelining between consecutive waves (forwarded to
    /// [`heterosvd::HeteroSvdConfig::cross_batch_pipelining`]). Defaults
    /// off to preserve Eq. (14) exactly.
    pub cross_batch_pipelining: bool,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_timeout: Option<Duration>,
    /// Whether the service and its replicas emit observability data:
    /// per-stage span journal entries, per-resource utilization reports,
    /// and the aggregates behind [`crate::MetricsReport`]. Forwarded to
    /// [`heterosvd::HeteroSvdConfig::observability`]; modeled timing and
    /// results are bit-identical either way, so this defaults on.
    pub observability: bool,
    /// When set, the service runs an in-process scraper thread that
    /// captures a [`crate::MetricsReport`] at this interval; the latest
    /// capture is available from [`crate::SvdService::latest_scrape`].
    /// `None` (the default) spawns no scraper.
    pub metrics_scrape_interval: Option<Duration>,
    /// Byte budget of the service's factor store (resident truncated
    /// factors published by decompose requests and served by apply
    /// requests). Least-recently-used models are evicted past it; the
    /// most recently published model is always retained.
    pub factor_store_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            engine_parallelism: 2,
            task_parallelism: 4,
            precision: 1e-6,
            functional_parallelism: 1,
            fixed_iterations: None,
            fidelity: FidelityMode::Functional,
            timing_replay: true,
            cross_batch_pipelining: false,
            default_timeout: None,
            observability: true,
            metrics_scrape_interval: None,
            factor_store_bytes: 64 << 20,
        }
    }
}

impl ServeConfig {
    /// Validates the cross-field invariants the service relies on.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidRequest("workers must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidRequest(
                "queue_capacity must be >= 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidRequest("max_batch must be >= 1".into()));
        }
        if self.engine_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "engine_parallelism must be >= 1".into(),
            ));
        }
        if self.task_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "task_parallelism must be >= 1".into(),
            ));
        }
        if self.functional_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "functional_parallelism must be >= 1".into(),
            ));
        }
        if self.factor_store_bytes == 0 {
            return Err(ServeError::InvalidRequest(
                "factor_store_bytes must be >= 1".into(),
            ));
        }
        if self.fidelity == FidelityMode::TimingOnly && self.fixed_iterations.is_none() {
            // Fail at start() rather than letting every replica build
            // error out request by request.
            return Err(ServeError::InvalidRequest(
                "timing-only fidelity requires fixed_iterations".into(),
            ));
        }
        Ok(())
    }

    /// The smallest column count a request may have: one block pair.
    pub fn min_cols(&self) -> usize {
        2 * self.engine_parallelism
    }

    /// The accelerator configuration every replica uses for `shape`
    /// requests — the single construction site, so each replica of the
    /// pool derives an *identical* config and therefore shares one
    /// cached plan (see [`heterosvd::plan_cache`]).
    ///
    /// # Errors
    ///
    /// [`heterosvd::HeteroSvdError::InvalidConfig`] when the shape or
    /// knobs are invalid (admission normally rejects such shapes first).
    pub fn accelerator_config(
        &self,
        shape: (usize, usize),
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        let mut builder = heterosvd::HeteroSvdConfig::builder(shape.0, shape.1)
            .engine_parallelism(self.engine_parallelism)
            .task_parallelism(self.task_parallelism)
            .precision(self.precision)
            .functional_parallelism(self.functional_parallelism)
            .fidelity(self.fidelity)
            .timing_replay(self.timing_replay)
            .cross_batch_pipelining(self.cross_batch_pipelining)
            .observability(self.observability);
        if let Some(iters) = self.fixed_iterations {
            builder = builder.fixed_iterations(iters);
        }
        builder.build()
    }

    /// Checks that a `rows x cols` request is admissible under the
    /// replica shape constraints (`rows >= cols`, `cols` a positive
    /// multiple of `2 * P_eng`).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] naming the violated constraint.
    pub fn check_shape(&self, rows: usize, cols: usize) -> Result<(), ServeError> {
        let unit = self.min_cols();
        if cols == 0 || !cols.is_multiple_of(unit) {
            return Err(ServeError::InvalidRequest(format!(
                "cols = {cols} must be a positive multiple of 2*P_eng = {unit}"
            )));
        }
        if rows < cols {
            return Err(ServeError::InvalidRequest(format!(
                "rows = {rows} must be >= cols = {cols} (submit the transpose)"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for mutate in [
            (|c: &mut ServeConfig| c.workers = 0) as fn(&mut ServeConfig),
            |c| c.queue_capacity = 0,
            |c| c.max_batch = 0,
            |c| c.engine_parallelism = 0,
            |c| c.task_parallelism = 0,
            |c| c.factor_store_bytes = 0,
        ] {
            let mut c = ServeConfig::default();
            mutate(&mut c);
            assert!(c.validate().is_err(), "accepted invalid config {c:?}");
        }
    }

    #[test]
    fn shape_constraints_follow_the_accelerator() {
        let c = ServeConfig::default(); // P_eng = 2 -> cols % 4 == 0
        c.check_shape(16, 8).unwrap();
        c.check_shape(8, 8).unwrap();
        assert!(c.check_shape(16, 6).is_err());
        assert!(c.check_shape(16, 0).is_err());
        assert!(c.check_shape(4, 8).is_err());
    }
}
