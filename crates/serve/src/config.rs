//! Service configuration.

use crate::error::ServeError;
use heterosvd::FidelityMode;
use std::time::Duration;

/// Configuration for [`crate::SvdService`].
///
/// The accelerator-side knobs (`engine_parallelism`, `task_parallelism`,
/// precision, fidelity) are shared by every replica; each replica builds
/// one [`heterosvd::Accelerator`] per distinct request shape and reuses
/// it across batches.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of accelerator replicas (worker threads).
    pub workers: usize,
    /// Bound of the admission queue; `try_submit` returns
    /// [`ServeError::QueueFull`] beyond it.
    pub queue_capacity: usize,
    /// Largest batch the dynamic batcher forms.
    pub max_batch: usize,
    /// Longest the batcher lingers waiting to fill a batch once it holds
    /// at least one request.
    pub max_linger: Duration,
    /// Engine parallelism (`P_eng`) of every replica.
    pub engine_parallelism: usize,
    /// Task parallelism (`P_task`) of every replica: the divisor in the
    /// Eq. (14) batch system time `⌈B / P_task⌉ · t_task`.
    pub task_parallelism: usize,
    /// Convergence precision forwarded to the accelerator.
    pub precision: f64,
    /// Host-side worker threads each replica applies to a layer's
    /// independent rotations (forwarded to
    /// [`heterosvd::HeteroSvdConfig::functional_parallelism`]). Default
    /// 1: replicas and per-matrix batch threads already parallelize
    /// across requests, so nesting more threads usually oversubscribes.
    /// Results are bit-identical at any setting.
    pub functional_parallelism: usize,
    /// Fixed iteration count (None = adaptive convergence).
    pub fixed_iterations: Option<usize>,
    /// Whether replicas compute real factorizations or timing only.
    pub fidelity: FidelityMode,
    /// Whether replicas reuse the cached per-plan timing profile instead
    /// of re-simulating the timeline for every request (forwarded to
    /// [`heterosvd::HeteroSvdConfig::timing_replay`]). Replay is exact,
    /// so this defaults on.
    pub timing_replay: bool,
    /// Whether the Eq. (14) batch system time models §IV-C cross-batch
    /// PL-pass pipelining between consecutive waves (forwarded to
    /// [`heterosvd::HeteroSvdConfig::cross_batch_pipelining`]). Defaults
    /// off to preserve Eq. (14) exactly.
    pub cross_batch_pipelining: bool,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_timeout: Option<Duration>,
    /// Whether the service and its replicas emit observability data:
    /// per-stage span journal entries, per-resource utilization reports,
    /// and the aggregates behind [`crate::MetricsReport`]. Forwarded to
    /// [`heterosvd::HeteroSvdConfig::observability`]; modeled timing and
    /// results are bit-identical either way, so this defaults on.
    pub observability: bool,
    /// When set, the service runs an in-process scraper thread that
    /// captures a [`crate::MetricsReport`] at this interval; the latest
    /// capture is available from [`crate::SvdService::latest_scrape`].
    /// `None` (the default) spawns no scraper.
    pub metrics_scrape_interval: Option<Duration>,
    /// Byte budget of the service's factor store (resident truncated
    /// factors published by decompose requests and served by apply
    /// requests). Least-recently-used models are evicted past it; the
    /// most recently published model is always retained.
    pub factor_store_bytes: usize,
    /// Whether replicas spatially co-schedule a same-shape decompose
    /// batch as multiple tenants on disjoint sub-arrays (multi-problem
    /// array packing). When the shape's stripe footprint fits `w >= 2`
    /// tenants (see [`heterosvd::tenant_capacity`]), the batch executes
    /// as waves of `w` concurrent problems with Eq. (14) charged on the
    /// wave's max completion under shared PLIO/DDR bandwidth; otherwise
    /// the replica falls back to the sequential path. Per-matrix factors
    /// are bit-identical either way (the contention model never touches
    /// the math), so this defaults on. Like `observability`, the knob
    /// never enters the plan-cache key — but the packed tenant count
    /// does, via [`heterosvd::HeteroSvdConfig::co_residency`], so packed
    /// and solo timing profiles are never conflated.
    pub array_packing: bool,
    /// Whether the service accepts incremental-update requests
    /// ([`crate::SvdService::try_submit_update`]) and maintains the
    /// per-client factor cache behind them. Off (the default), the
    /// decompose/apply paths are bit-identical to a build without the
    /// feature: the knob never enters the plan-cache key, and no cache
    /// is consulted. Requires [`FidelityMode::Functional`] (warm starts
    /// need real factors to seed from).
    pub incremental: bool,
    /// Byte budget of the per-client factor cache backing incremental
    /// updates (previous matrix fingerprint + V basis + spectrum +
    /// truncated factors per client). Least-recently-used clients are
    /// evicted past it; the most recently refreshed client is always
    /// retained.
    pub factor_cache_bytes: usize,
    /// Staleness bound: updates whose relative Frobenius delta
    /// `‖ΔA‖_F / ‖A_prev‖_F` exceeds this fall back to a full
    /// recompute (forwarded to
    /// [`svd_kernels::incremental::StalenessBound`]).
    pub max_delta_rel: f64,
    /// Staleness bound: after this many consecutive warm-started or
    /// low-rank solves without a full recompute, the next update falls
    /// back to full (bounds accumulated basis drift).
    pub max_warm_solves: u32,
    /// Truncation rank `r` of the factors cached per client for the
    /// low-rank fast path (clamped to `min(rows, cols)` per shape).
    pub update_cache_rank: usize,
    /// Largest delta rank `k` the low-rank fast path factors an update
    /// into; deltas that do not compress to `<= k` take the warm-start
    /// route instead.
    pub max_update_rank: usize,
    /// Whether the service runs the closed-loop online-DSE controller:
    /// a thread that aggregates per-shape windowed traffic into an
    /// observed [`heterosvd_dse::WorkloadMix`], re-runs the Eq. 15–16
    /// sweep against it on a cadence, and hot-swaps replicas to the
    /// winning `(P_eng, P_task)` plan with drain-and-replace semantics
    /// (in-flight batches finish on the plan they started under). Off by
    /// default: the configured `engine_parallelism`/`task_parallelism`
    /// stay frozen, exactly as before.
    pub autoscale: bool,
    /// Cadence of the controller's observe → re-search → maybe-swap tick.
    pub autoscale_interval: Duration,
    /// Hysteresis: minimum time the service dwells on its current plan
    /// before the controller may swap again (suppresses churn under a
    /// stationary mix).
    pub autoscale_min_dwell: Duration,
    /// Hysteresis: after a swap, the controller skips re-search for this
    /// long so post-swap windows reflect the new plan before it is
    /// re-scored.
    pub autoscale_cooldown: Duration,
    /// Hysteresis: a candidate plan must beat the current plan's mix
    /// objective by this relative fraction (e.g. `0.1` = 10%) to trigger
    /// a swap.
    pub autoscale_improvement: f64,
    /// Whether admission routes into per-(shape, [`crate::SloClass`])
    /// sub-queues with earliest-effective-deadline batch seeding, EDF
    /// eviction under a full queue, per-class batch/linger policy,
    /// work-stealing dispatch sub-pools, and windowed load shedding.
    /// Off (the default), admission is the original shape-blind FIFO
    /// queue and the scheduler is never built. Factor outputs are
    /// bit-identical either way — the scheduler only reorders *when*
    /// requests execute, never what they compute.
    pub shape_classed: bool,
    /// Load-shedding trigger: when the windowed fraction of admitted
    /// requests that time out (batcher- plus exec-side) exceeds this,
    /// the service sheds Batch-class traffic with
    /// [`ServeError::Overloaded`]; past twice this, Standard sheds too.
    /// The level decays once the fraction falls below half the
    /// threshold. Only consulted with `shape_classed` on.
    pub shed_threshold: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 8,
            max_linger: Duration::from_millis(2),
            engine_parallelism: 2,
            task_parallelism: 4,
            precision: 1e-6,
            functional_parallelism: 1,
            fixed_iterations: None,
            fidelity: FidelityMode::Functional,
            timing_replay: true,
            cross_batch_pipelining: false,
            default_timeout: None,
            observability: true,
            metrics_scrape_interval: None,
            factor_store_bytes: 64 << 20,
            array_packing: true,
            incremental: false,
            factor_cache_bytes: 256 << 20,
            max_delta_rel: 0.25,
            max_warm_solves: 8,
            update_cache_rank: 16,
            max_update_rank: 8,
            autoscale: false,
            autoscale_interval: Duration::from_millis(100),
            autoscale_min_dwell: Duration::from_secs(1),
            autoscale_cooldown: Duration::from_millis(250),
            autoscale_improvement: 0.10,
            shape_classed: false,
            shed_threshold: 0.3,
        }
    }
}

impl ServeConfig {
    /// Validates the cross-field invariants the service relies on.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] describing the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::InvalidRequest("workers must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidRequest(
                "queue_capacity must be >= 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidRequest("max_batch must be >= 1".into()));
        }
        if self.engine_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "engine_parallelism must be >= 1".into(),
            ));
        }
        if self.task_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "task_parallelism must be >= 1".into(),
            ));
        }
        if self.functional_parallelism == 0 {
            return Err(ServeError::InvalidRequest(
                "functional_parallelism must be >= 1".into(),
            ));
        }
        if self.factor_store_bytes == 0 {
            return Err(ServeError::InvalidRequest(
                "factor_store_bytes must be >= 1".into(),
            ));
        }
        if self.fidelity == FidelityMode::TimingOnly && self.fixed_iterations.is_none() {
            // Fail at start() rather than letting every replica build
            // error out request by request.
            return Err(ServeError::InvalidRequest(
                "timing-only fidelity requires fixed_iterations".into(),
            ));
        }
        if self.incremental {
            if self.fidelity != FidelityMode::Functional {
                return Err(ServeError::InvalidRequest(
                    "incremental updates require functional fidelity".into(),
                ));
            }
            if self.factor_cache_bytes == 0 {
                return Err(ServeError::InvalidRequest(
                    "factor_cache_bytes must be >= 1".into(),
                ));
            }
            if !self.max_delta_rel.is_finite() || self.max_delta_rel <= 0.0 {
                return Err(ServeError::InvalidRequest(
                    "max_delta_rel must be finite and > 0".into(),
                ));
            }
            if self.max_warm_solves == 0 {
                return Err(ServeError::InvalidRequest(
                    "max_warm_solves must be >= 1".into(),
                ));
            }
            if self.update_cache_rank == 0 {
                return Err(ServeError::InvalidRequest(
                    "update_cache_rank must be >= 1".into(),
                ));
            }
            if self.max_update_rank == 0 {
                return Err(ServeError::InvalidRequest(
                    "max_update_rank must be >= 1".into(),
                ));
            }
        }
        if self.shape_classed
            && (!self.shed_threshold.is_finite()
                || self.shed_threshold <= 0.0
                || self.shed_threshold > 1.0)
        {
            return Err(ServeError::InvalidRequest(
                "shed_threshold must be finite and in (0, 1]".into(),
            ));
        }
        if self.autoscale {
            if self.autoscale_interval.is_zero() {
                return Err(ServeError::InvalidRequest(
                    "autoscale_interval must be > 0".into(),
                ));
            }
            if !self.autoscale_improvement.is_finite() || self.autoscale_improvement < 0.0 {
                return Err(ServeError::InvalidRequest(
                    "autoscale_improvement must be finite and >= 0".into(),
                ));
            }
        }
        Ok(())
    }

    /// The staleness bound incremental classification runs under.
    pub fn staleness_bound(&self) -> svd_kernels::incremental::StalenessBound {
        svd_kernels::incremental::StalenessBound {
            max_delta_rel: self.max_delta_rel,
            max_warm_solves: self.max_warm_solves,
        }
    }

    /// The smallest column count a request may have: one block pair.
    pub fn min_cols(&self) -> usize {
        2 * self.engine_parallelism
    }

    /// The accelerator configuration every replica uses for `shape`
    /// requests — the single construction site, so each replica of the
    /// pool derives an *identical* config and therefore shares one
    /// cached plan (see [`heterosvd::plan_cache`]).
    ///
    /// # Errors
    ///
    /// [`heterosvd::HeteroSvdError::InvalidConfig`] when the shape or
    /// knobs are invalid (admission normally rejects such shapes first).
    pub fn accelerator_config(
        &self,
        shape: (usize, usize),
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        self.build_config_at(shape, self.engine_parallelism, self.task_parallelism, 1)
    }

    /// [`ServeConfig::accelerator_config`] at an explicit live plan
    /// instead of the frozen `engine_parallelism`/`task_parallelism`
    /// knobs — the construction site replicas use while the online-DSE
    /// autoscaler re-plans them. Every non-plan knob (precision,
    /// fidelity, observability, ...) still comes from `self`, so two
    /// replicas on the same plan generation share one cached plan.
    ///
    /// # Errors
    ///
    /// [`heterosvd::HeteroSvdError::InvalidConfig`] when the shape does
    /// not block under `p_eng` (the caller falls back to the base plan).
    pub fn accelerator_config_at(
        &self,
        shape: (usize, usize),
        p_eng: usize,
        p_task: usize,
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        self.build_config_at(shape, p_eng, p_task, 1)
    }

    /// The accelerator configuration for a *packed* wave of `tenants`
    /// co-resident problems: Eq. (14) divides the batch by the tenant
    /// count, and [`heterosvd::HeteroSvdConfig::co_residency`] scales the
    /// shared PLIO/DDR interfaces so each tenant's modeled time reflects
    /// `tenants`-way contention (Eq. 9–12). `tenants` enters the plan
    /// fingerprint, so packed and solo timing profiles never conflate.
    ///
    /// # Errors
    ///
    /// [`heterosvd::HeteroSvdError`] when the shape or knobs are invalid
    /// or `tenants` stripes exceed the device's capacity.
    pub fn packed_accelerator_config(
        &self,
        shape: (usize, usize),
        tenants: usize,
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        self.build_config_at(shape, self.engine_parallelism, tenants, tenants)
    }

    /// [`ServeConfig::packed_accelerator_config`] at an explicit live
    /// `P_eng` (see [`ServeConfig::accelerator_config_at`]).
    ///
    /// # Errors
    ///
    /// [`heterosvd::HeteroSvdError`] when the shape or knobs are invalid
    /// or `tenants` stripes exceed the device's capacity at `p_eng`.
    pub fn packed_accelerator_config_at(
        &self,
        shape: (usize, usize),
        p_eng: usize,
        tenants: usize,
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        self.build_config_at(shape, p_eng, tenants, tenants)
    }

    /// How many tenants a replica should pack a `batch`-request wave
    /// into: `min(stripe capacity, batch)`, or 1 when packing is off,
    /// the batch is a singleton, or the shape's stripe doesn't fit at
    /// least two tenants (the sequential fallback).
    pub fn packed_tenants(&self, shape: (usize, usize), batch: usize) -> usize {
        self.packed_tenants_at(shape, batch, self.engine_parallelism)
    }

    /// [`ServeConfig::packed_tenants`] under an explicit live `P_eng`
    /// (the stripe capacity is a function of the engine parallelism the
    /// current plan actually runs).
    pub fn packed_tenants_at(&self, shape: (usize, usize), batch: usize, p_eng: usize) -> usize {
        if !self.array_packing || batch < 2 {
            return 1;
        }
        let capacity = match self.accelerator_config_at(shape, p_eng, self.task_parallelism) {
            Ok(cfg) => heterosvd::tenant_capacity(cfg.geometry(), cfg.engine_parallelism),
            Err(_) => 1,
        };
        if capacity < 2 {
            return 1;
        }
        capacity.min(batch)
    }

    fn build_config_at(
        &self,
        shape: (usize, usize),
        engine_parallelism: usize,
        task_parallelism: usize,
        co_residency: usize,
    ) -> Result<heterosvd::HeteroSvdConfig, heterosvd::HeteroSvdError> {
        let mut builder = heterosvd::HeteroSvdConfig::builder(shape.0, shape.1)
            .engine_parallelism(engine_parallelism)
            .task_parallelism(task_parallelism)
            .co_residency(co_residency)
            .precision(self.precision)
            .functional_parallelism(self.functional_parallelism)
            .fidelity(self.fidelity)
            .timing_replay(self.timing_replay)
            .cross_batch_pipelining(self.cross_batch_pipelining)
            .observability(self.observability)
            .incremental(self.incremental);
        if let Some(iters) = self.fixed_iterations {
            builder = builder.fixed_iterations(iters);
        }
        builder.build()
    }

    /// Checks that a `rows x cols` request is admissible under the
    /// replica shape constraints (`rows >= cols`, `cols` a positive
    /// multiple of `2 * P_eng`).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] naming the violated constraint.
    pub fn check_shape(&self, rows: usize, cols: usize) -> Result<(), ServeError> {
        let unit = self.min_cols();
        if cols == 0 || !cols.is_multiple_of(unit) {
            return Err(ServeError::InvalidRequest(format!(
                "cols = {cols} must be a positive multiple of 2*P_eng = {unit}"
            )));
        }
        if rows < cols {
            return Err(ServeError::InvalidRequest(format!(
                "rows = {rows} must be >= cols = {cols} (submit the transpose)"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ServeConfig::default().validate().unwrap();
    }

    #[test]
    fn zero_knobs_are_rejected() {
        for mutate in [
            (|c: &mut ServeConfig| c.workers = 0) as fn(&mut ServeConfig),
            |c| c.queue_capacity = 0,
            |c| c.max_batch = 0,
            |c| c.engine_parallelism = 0,
            |c| c.task_parallelism = 0,
            |c| c.factor_store_bytes = 0,
        ] {
            let mut c = ServeConfig::default();
            mutate(&mut c);
            assert!(c.validate().is_err(), "accepted invalid config {c:?}");
        }
    }

    #[test]
    fn incremental_knob_invariants() {
        let mut c = ServeConfig {
            incremental: true,
            ..ServeConfig::default()
        };
        c.validate().unwrap();
        assert_eq!(c.staleness_bound().max_delta_rel, c.max_delta_rel);
        assert_eq!(c.staleness_bound().max_warm_solves, c.max_warm_solves);
        // The knob flows into the accelerator config...
        assert!(c.accelerator_config((16, 16)).unwrap().incremental);
        c.incremental = false;
        assert!(!c.accelerator_config((16, 16)).unwrap().incremental);
        // ...and requires functional fidelity plus positive bounds.
        for mutate in [
            (|c: &mut ServeConfig| {
                c.fidelity = FidelityMode::TimingOnly;
                c.fixed_iterations = Some(4);
            }) as fn(&mut ServeConfig),
            |c| c.factor_cache_bytes = 0,
            |c| c.max_delta_rel = 0.0,
            |c| c.max_delta_rel = f64::NAN,
            |c| c.max_warm_solves = 0,
            |c| c.update_cache_rank = 0,
            |c| c.max_update_rank = 0,
        ] {
            let mut c = ServeConfig {
                incremental: true,
                ..ServeConfig::default()
            };
            mutate(&mut c);
            assert!(c.validate().is_err(), "accepted invalid config {c:?}");
            // Every one of these bounds is vacuous with the knob off.
            c.incremental = false;
            c.validate().unwrap();
        }
    }

    #[test]
    fn packed_tenants_respects_knob_capacity_and_batch() {
        let mut c = ServeConfig::default(); // P_eng = 2 -> capacity 16 on VCK190
        assert_eq!(c.packed_tenants((16, 16), 8), 8, "batch-bound");
        assert_eq!(c.packed_tenants((16, 16), 64), 16, "capacity-bound");
        assert_eq!(c.packed_tenants((16, 16), 1), 1, "singleton stays solo");
        c.array_packing = false;
        assert_eq!(c.packed_tenants((16, 16), 8), 1, "knob off");
        c.array_packing = true;
        c.engine_parallelism = 8; // stripe capacity 1 -> sequential fallback
        assert_eq!(c.packed_tenants((32, 32), 8), 1);
    }

    #[test]
    fn packed_config_sets_wave_width_and_contention_class() {
        let c = ServeConfig::default();
        let cfg = c.packed_accelerator_config((16, 16), 4).unwrap();
        assert_eq!(cfg.task_parallelism, 4);
        assert_eq!(cfg.co_residency, 4);
        let solo = c.accelerator_config((16, 16)).unwrap();
        assert_eq!(solo.co_residency, 1);
    }

    #[test]
    fn autoscale_knob_invariants() {
        let mut c = ServeConfig {
            autoscale: true,
            ..ServeConfig::default()
        };
        c.validate().unwrap();
        c.autoscale_interval = Duration::ZERO;
        assert!(c.validate().is_err());
        c.autoscale_interval = Duration::from_millis(50);
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            c.autoscale_improvement = bad;
            assert!(c.validate().is_err(), "accepted improvement {bad}");
        }
        c.autoscale_improvement = 0.0;
        c.validate().unwrap();
        // Every bound is vacuous with the controller off.
        c.autoscale = false;
        c.autoscale_interval = Duration::ZERO;
        c.validate().unwrap();
    }

    #[test]
    fn shape_classed_knob_invariants() {
        let mut c = ServeConfig {
            shape_classed: true,
            ..ServeConfig::default()
        };
        c.validate().unwrap();
        for bad in [f64::NAN, f64::INFINITY, 0.0, -0.1, 1.5] {
            c.shed_threshold = bad;
            assert!(c.validate().is_err(), "accepted shed_threshold {bad}");
            // The bound is vacuous with the scheduler off.
            c.shape_classed = false;
            c.validate().unwrap();
            c.shape_classed = true;
        }
    }

    #[test]
    fn plan_parameterized_configs_match_the_frozen_ones() {
        let c = ServeConfig::default();
        let frozen = c.accelerator_config((16, 16)).unwrap();
        let live = c
            .accelerator_config_at((16, 16), c.engine_parallelism, c.task_parallelism)
            .unwrap();
        assert_eq!(frozen, live, "identity plan must derive the same config");
        let swapped = c.accelerator_config_at((32, 32), 4, 2).unwrap();
        assert_eq!(swapped.engine_parallelism, 4);
        assert_eq!(swapped.task_parallelism, 2);
        // A live P_eng the shape cannot block under is an error the
        // replica maps to the base-plan fallback.
        assert!(c.accelerator_config_at((16, 6), 2, 1).is_err());
        // Stripe capacity follows the live plan, not the frozen knob.
        assert_eq!(c.packed_tenants_at((32, 32), 8, 2), 8);
        assert_eq!(c.packed_tenants_at((32, 32), 8, 8), 1);
        let packed = c.packed_accelerator_config_at((32, 32), 4, 3).unwrap();
        assert_eq!(packed.engine_parallelism, 4);
        assert_eq!(packed.co_residency, 3);
    }

    #[test]
    fn shape_constraints_follow_the_accelerator() {
        let c = ServeConfig::default(); // P_eng = 2 -> cols % 4 == 0
        c.check_shape(16, 8).unwrap();
        c.check_shape(8, 8).unwrap();
        assert!(c.check_shape(16, 6).is_err());
        assert!(c.check_shape(16, 0).is_err());
        assert!(c.check_shape(4, 8).is_err());
    }
}
