//! Service observability: counters, gauges, latency percentiles.

use crate::request::LatencyRecord;
use parking_lot::Mutex;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cap on retained latency samples; the recorder keeps the most recent
/// window so a long-running service does not grow without bound.
const MAX_SAMPLES: usize = 65_536;

/// Live metric state shared by the service threads.
pub(crate) struct Metrics {
    started_at: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_invalid: AtomicU64,
    pub(crate) completed_ok: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) replicas_spawned: AtomicU64,
    pub(crate) batches_dispatched: AtomicU64,
    samples: Mutex<Vec<Sample>>,
}

#[derive(Clone, Copy)]
struct Sample {
    queue_wait_us: u64,
    linger_us: u64,
    sim_exec_ps: u64,
    batch_size: u64,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            replicas_spawned: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn record_latency(&self, rec: &LatencyRecord) {
        let mut samples = self.samples.lock();
        if samples.len() >= MAX_SAMPLES {
            // Drop the oldest half in one move to amortize the shift.
            let keep = samples.split_off(MAX_SAMPLES / 2);
            *samples = keep;
        }
        samples.push(Sample {
            queue_wait_us: rec.queue_wait.as_micros() as u64,
            linger_us: rec.batch_linger.as_micros() as u64,
            sim_exec_ps: rec.sim_exec_ps,
            batch_size: rec.batch_size as u64,
        });
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, replicas_live: usize) -> MetricsSnapshot {
        let samples = self.samples.lock().clone();
        let elapsed = self.started_at.elapsed().as_secs_f64();
        let completed = self.completed_ok.load(Ordering::Relaxed);
        let mut queue_wait: Vec<u64> = samples.iter().map(|s| s.queue_wait_us).collect();
        let mut linger: Vec<u64> = samples.iter().map(|s| s.linger_us).collect();
        let mut exec: Vec<u64> = samples.iter().map(|s| s.sim_exec_ps).collect();
        let mean_batch = if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(|s| s.batch_size as f64).sum::<f64>() / samples.len() as f64
        };
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            completed_ok: completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            replicas_spawned: self.replicas_spawned.load(Ordering::Relaxed),
            replicas_live: replicas_live as u64,
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            mean_batch_size: mean_batch,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            queue_wait_us: Percentiles::from_samples(&mut queue_wait),
            batch_linger_us: Percentiles::from_samples(&mut linger),
            sim_exec_ps: Percentiles::from_samples(&mut exec),
        }
    }
}

/// p50/p95/p99/max summary of one latency axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observed sample.
    pub max: u64,
}

impl Percentiles {
    /// Summarizes `samples` (sorted in place); zeros when empty.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0,
            };
        }
        samples.sort_unstable();
        // Nearest-rank percentiles: the smallest sample with at least
        // q of the distribution at or below it.
        let at = |q: f64| {
            let rank = (samples.len() as f64 * q).ceil() as usize;
            samples[rank.saturating_sub(1).min(samples.len() - 1)]
        };
        Percentiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Point-in-time view of the service's counters and latency summaries.
///
/// Serializable so operators can scrape it as JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted past the queue bound check.
    pub submitted: u64,
    /// Submissions rejected with `QueueFull` (backpressure events).
    pub rejected_queue_full: u64,
    /// Submissions rejected for shape/validation reasons.
    pub rejected_invalid: u64,
    /// Requests completed successfully.
    pub completed_ok: u64,
    /// Requests that ended in an accelerator or replica error.
    pub failed: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests whose deadline elapsed before execution.
    pub timed_out: u64,
    /// Replica panics contained by the service.
    pub worker_panics: u64,
    /// Replicas spawned over the service lifetime (initial + replacements).
    pub replicas_spawned: u64,
    /// Replicas currently alive.
    pub replicas_live: u64,
    /// Batches handed to replicas.
    pub batches_dispatched: u64,
    /// Admission queue depth at snapshot time.
    pub queue_depth: u64,
    /// Mean executed batch size over the sample window.
    pub mean_batch_size: f64,
    /// Completed requests per wall-clock second since service start.
    pub throughput_rps: f64,
    /// Queue-wait percentiles (microseconds).
    pub queue_wait_us: Percentiles,
    /// Batch-linger percentiles (microseconds).
    pub batch_linger_us: Percentiles,
    /// Simulated Eq. (14) execution-time percentiles (picoseconds).
    pub sim_exec_ps: Percentiles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut xs: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p95, 95);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let p = Percentiles::from_samples(&mut []);
        assert_eq!(
            p,
            Percentiles {
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new();
        m.submitted.store(3, Ordering::Relaxed);
        m.completed_ok.store(2, Ordering::Relaxed);
        m.record_latency(&LatencyRecord {
            queue_wait: Duration::from_micros(120),
            batch_linger: Duration::from_micros(40),
            sim_exec_ps: 5_000,
            batch_size: 2,
            wall_total: Duration::from_micros(200),
        });
        let snap = m.snapshot(1, 2);
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains("\"submitted\": 3"));
        assert!(json.contains("\"queue_wait_us\""));
        assert!(json.contains("\"p95\""));
    }

    #[test]
    fn sample_window_is_bounded() {
        let m = Metrics::new();
        for i in 0..(MAX_SAMPLES + 10) {
            m.record_latency(&LatencyRecord {
                queue_wait: Duration::from_micros(i as u64),
                batch_linger: Duration::ZERO,
                sim_exec_ps: 1,
                batch_size: 1,
                wall_total: Duration::ZERO,
            });
        }
        assert!(m.samples.lock().len() <= MAX_SAMPLES);
    }
}
