//! Service observability: counters, gauges, latency percentiles.

use crate::request::{LatencyRecord, RequestType, SloClass};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Cap on retained latency samples; the recorder keeps the most recent
/// window so a long-running service does not grow without bound.
const MAX_SAMPLES: usize = 65_536;

/// Cap on retained per-shape execution samples (each observed shape
/// keeps its own bounded window).
const MAX_SHAPE_SAMPLES: usize = 4_096;

/// Cap on retained per-SLO-class wall-latency samples.
const MAX_CLASS_SAMPLES: usize = 16_384;

/// Live metric state shared by the service threads.
pub(crate) struct Metrics {
    started_at: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected_full: AtomicU64,
    pub(crate) rejected_invalid: AtomicU64,
    pub(crate) completed_ok: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    /// Deadline expiries caught at batch formation (the request never
    /// left the admission queue in time).
    pub(crate) timed_out_batcher: AtomicU64,
    /// Deadline expiries caught at replica-exec start (admitted in time,
    /// but the deadline passed while the batch was forming/dispatching).
    pub(crate) timed_out_exec: AtomicU64,
    pub(crate) worker_panics: AtomicU64,
    pub(crate) replicas_spawned: AtomicU64,
    pub(crate) batches_dispatched: AtomicU64,
    /// Batches executed as packed waves (>= 2 co-resident tenants on
    /// disjoint sub-grids) rather than the sequential path.
    pub(crate) packed_batches: AtomicU64,
    /// Requests served inside packed waves.
    pub(crate) packed_requests: AtomicU64,
    /// Update requests served via the warm-start route (cached basis
    /// seeded the Jacobi solve).
    pub(crate) warm_start_hits: AtomicU64,
    /// Update requests served via the host-only low-rank fast path.
    pub(crate) lowrank_hits: AtomicU64,
    /// Update requests that classified stale (delta too large, warm
    /// budget exhausted, or shape change) and fell back to a full
    /// recompute. Cold starts (no cache entry) are *not* counted here;
    /// they show up as factor-cache misses.
    pub(crate) staleness_fallbacks: AtomicU64,
    /// Plan swaps committed by the autoscale controller (each one
    /// drains in-flight batches under the old plan and replaces the
    /// replica-side accelerator state).
    pub(crate) plan_swaps: AtomicU64,
    /// DSE re-searches the autoscale controller actually ran (cached
    /// stationary ticks do not count).
    pub(crate) dse_runs: AtomicU64,
    /// The live plan's engine parallelism (P_eng).
    pub(crate) plan_engine_parallelism: AtomicU64,
    /// The live plan's task parallelism (P_task).
    pub(crate) plan_task_parallelism: AtomicU64,
    /// Monotonic plan generation; bumped once per committed swap.
    pub(crate) plan_generation: AtomicU64,
    /// Batches a replica popped from another sub-pool's dispatch queue
    /// (shape-classed work stealing).
    pub(crate) batches_stolen: AtomicU64,
    /// Current load-shed tier: 0 = none, 1 = Batch class shed,
    /// 2 = Batch + Standard shed. A gauge, written by the batcher's
    /// overload policy.
    pub(crate) shed_level: AtomicU64,
    /// Per-request-type counter split, indexed by
    /// [`RequestType::index`]; the aggregates above stay authoritative
    /// for mixed totals.
    per_type: [TypeMetrics; 3],
    /// Per-SLO-class slice, indexed by [`SloClass::index`].
    per_class: [ClassMetrics; 3],
    /// Per-matrix-shape slice: completions by type, batch fill, and a
    /// bounded execution-sample window per observed (rows, cols). Fed
    /// by shape-bearing completions (decompose/update); apply traffic
    /// carries no matrix shape and stays aggregate-only.
    shapes: Mutex<BTreeMap<(usize, usize), ShapeEntry>>,
    samples: Mutex<Vec<Sample>>,
    /// Start of the current throughput window: advanced by every
    /// snapshot so `throughput_rps_window` measures completions since
    /// the *previous* snapshot, not since service start.
    window: Mutex<WindowState>,
}

struct WindowState {
    since: Instant,
    completed: u64,
}

impl WindowState {
    fn new() -> Self {
        WindowState {
            since: Instant::now(),
            completed: 0,
        }
    }

    /// Completions-per-second since the previous call, then the window
    /// restarts at `completed`.
    fn advance(&mut self, completed: u64) -> f64 {
        let span = self.since.elapsed().as_secs_f64();
        let delta = completed.saturating_sub(self.completed);
        self.since = Instant::now();
        self.completed = completed;
        if span > 0.0 {
            delta as f64 / span
        } else {
            0.0
        }
    }
}

/// Per-request-type slice of the counters that differ meaningfully
/// between decompose and apply traffic (each type gets its own
/// throughput window, advanced by the same snapshots as the aggregate).
struct TypeMetrics {
    submitted: AtomicU64,
    completed_ok: AtomicU64,
    cancelled: AtomicU64,
    timed_out_batcher: AtomicU64,
    timed_out_exec: AtomicU64,
    window: Mutex<WindowState>,
}

impl TypeMetrics {
    fn new() -> Self {
        TypeMetrics {
            submitted: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out_batcher: AtomicU64::new(0),
            timed_out_exec: AtomicU64::new(0),
            window: Mutex::new(WindowState::new()),
        }
    }
}

/// Per-SLO-class slice: admission/completion/shed counters plus a
/// bounded window of end-to-end wall latencies, so per-class p99s are
/// reportable (the scheduler's whole point is the rare class's tail).
struct ClassMetrics {
    submitted: AtomicU64,
    completed_ok: AtomicU64,
    /// Requests of this class rejected or evicted by the overload
    /// policy (completed with `ServeError::Overloaded`).
    shed: AtomicU64,
    wall_samples: Mutex<Vec<u64>>,
}

impl ClassMetrics {
    fn new() -> Self {
        ClassMetrics {
            submitted: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            wall_samples: Mutex::new(Vec::new()),
        }
    }
}

/// Per-shape accumulator behind the `shapes` map.
struct ShapeEntry {
    /// Completions indexed by [`RequestType::index`].
    completed: [u64; 3],
    /// Sum of executed batch sizes over shape-bearing completions, so
    /// the controller can recover the mean observed batch fill.
    batch_fill_sum: u64,
    batch_fill_count: u64,
    exec_samples: Vec<u64>,
    window: WindowState,
}

impl ShapeEntry {
    fn new() -> Self {
        ShapeEntry {
            completed: [0; 3],
            batch_fill_sum: 0,
            batch_fill_count: 0,
            exec_samples: Vec::new(),
            window: WindowState::new(),
        }
    }
}

/// Cumulative per-shape counters handed to the autoscale controller,
/// which diffs successive reads on its own cadence (never draining the
/// scrape-owned windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ShapeTotals {
    pub(crate) rows: usize,
    pub(crate) cols: usize,
    /// Completions indexed by [`RequestType::index`].
    pub(crate) completed: [u64; 3],
    pub(crate) batch_fill_sum: u64,
    pub(crate) batch_fill_count: u64,
}

#[derive(Clone, Copy)]
struct Sample {
    rtype: RequestType,
    queue_wait_us: u64,
    linger_us: u64,
    sim_exec_ps: u64,
    batch_size: u64,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected_full: AtomicU64::new(0),
            rejected_invalid: AtomicU64::new(0),
            completed_ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            timed_out_batcher: AtomicU64::new(0),
            timed_out_exec: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            replicas_spawned: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            packed_batches: AtomicU64::new(0),
            packed_requests: AtomicU64::new(0),
            warm_start_hits: AtomicU64::new(0),
            lowrank_hits: AtomicU64::new(0),
            staleness_fallbacks: AtomicU64::new(0),
            plan_swaps: AtomicU64::new(0),
            dse_runs: AtomicU64::new(0),
            plan_engine_parallelism: AtomicU64::new(0),
            plan_task_parallelism: AtomicU64::new(0),
            plan_generation: AtomicU64::new(0),
            batches_stolen: AtomicU64::new(0),
            shed_level: AtomicU64::new(0),
            per_type: [TypeMetrics::new(), TypeMetrics::new(), TypeMetrics::new()],
            per_class: [
                ClassMetrics::new(),
                ClassMetrics::new(),
                ClassMetrics::new(),
            ],
            shapes: Mutex::new(BTreeMap::new()),
            samples: Mutex::new(Vec::new()),
            window: Mutex::new(WindowState::new()),
        }
    }

    fn of(&self, rtype: RequestType) -> &TypeMetrics {
        &self.per_type[rtype.index()]
    }

    fn of_class(&self, class: SloClass) -> &ClassMetrics {
        &self.per_class[class.index()]
    }

    pub(crate) fn record_submitted(&self, rtype: RequestType, class: SloClass) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.of(rtype).submitted.fetch_add(1, Ordering::Relaxed);
        self.of_class(class)
            .submitted
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_completed(&self, rtype: RequestType, class: SloClass) {
        self.completed_ok.fetch_add(1, Ordering::Relaxed);
        self.of(rtype).completed_ok.fetch_add(1, Ordering::Relaxed);
        self.of_class(class)
            .completed_ok
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request shed (rejected or evicted) by the overload
    /// policy, attributed to its SLO class.
    pub(crate) fn record_shed(&self, class: SloClass) {
        self.of_class(class).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch a replica stole from another sub-pool.
    pub(crate) fn record_batch_stolen(&self) {
        self.batches_stolen.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the current load-shed tier (0 = none, 1 = Batch,
    /// 2 = Batch + Standard).
    pub(crate) fn set_shed_level(&self, level: u64) {
        self.shed_level.store(level, Ordering::Relaxed);
    }

    /// Records one packed wave covering `requests` co-scheduled requests.
    pub(crate) fn record_packed(&self, requests: u64) {
        self.packed_batches.fetch_add(1, Ordering::Relaxed);
        self.packed_requests.fetch_add(requests, Ordering::Relaxed);
    }

    pub(crate) fn record_warm_start_hit(&self) {
        self.warm_start_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_lowrank_hit(&self) {
        self.lowrank_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_staleness_fallback(&self) {
        self.staleness_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a cancellation, split per request type like the timeout
    /// counters (the aggregate alone cannot attribute per-class
    /// shedding to the traffic it hits).
    pub(crate) fn record_cancelled(&self, rtype: RequestType) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
        self.of(rtype).cancelled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timed_out_batcher(&self, rtype: RequestType) {
        self.timed_out_batcher.fetch_add(1, Ordering::Relaxed);
        self.of(rtype)
            .timed_out_batcher
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_timed_out_exec(&self, rtype: RequestType) {
        self.timed_out_exec.fetch_add(1, Ordering::Relaxed);
        self.of(rtype)
            .timed_out_exec
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the plan replicas currently execute under. Called at
    /// service start with the configured plan and by the autoscale
    /// controller on every committed swap.
    pub(crate) fn set_current_plan(
        &self,
        engine_parallelism: usize,
        task_parallelism: usize,
        generation: u64,
    ) {
        self.plan_engine_parallelism
            .store(engine_parallelism as u64, Ordering::Relaxed);
        self.plan_task_parallelism
            .store(task_parallelism as u64, Ordering::Relaxed);
        self.plan_generation.store(generation, Ordering::Relaxed);
    }

    pub(crate) fn record_plan_swap(&self) {
        self.plan_swaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dse_run(&self) {
        self.dse_runs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_latency(
        &self,
        rec: &LatencyRecord,
        rtype: RequestType,
        shape: Option<(usize, usize)>,
        class: SloClass,
    ) {
        {
            let mut walls = self.of_class(class).wall_samples.lock();
            if walls.len() >= MAX_CLASS_SAMPLES {
                let keep = walls.split_off(MAX_CLASS_SAMPLES / 2);
                *walls = keep;
            }
            walls.push(rec.wall_total.as_micros() as u64);
        }
        if let Some(shape) = shape {
            let mut shapes = self.shapes.lock();
            let entry = shapes.entry(shape).or_insert_with(ShapeEntry::new);
            entry.completed[rtype.index()] += 1;
            entry.batch_fill_sum += rec.batch_size as u64;
            entry.batch_fill_count += 1;
            if entry.exec_samples.len() >= MAX_SHAPE_SAMPLES {
                let keep = entry.exec_samples.split_off(MAX_SHAPE_SAMPLES / 2);
                entry.exec_samples = keep;
            }
            entry.exec_samples.push(rec.sim_exec_ps);
        }
        let mut samples = self.samples.lock();
        if samples.len() >= MAX_SAMPLES {
            // Drop the oldest half in one move to amortize the shift.
            let keep = samples.split_off(MAX_SAMPLES / 2);
            *samples = keep;
        }
        samples.push(Sample {
            rtype,
            queue_wait_us: rec.queue_wait.as_micros() as u64,
            linger_us: rec.batch_linger.as_micros() as u64,
            sim_exec_ps: rec.sim_exec_ps,
            batch_size: rec.batch_size as u64,
        });
    }

    /// Cumulative per-shape counters for the autoscale controller. The
    /// controller diffs successive reads; nothing here drains the
    /// windows the metrics scrape owns.
    pub(crate) fn shape_totals(&self) -> Vec<ShapeTotals> {
        self.shapes
            .lock()
            .iter()
            .map(|(&(rows, cols), e)| ShapeTotals {
                rows,
                cols,
                completed: e.completed,
                batch_fill_sum: e.batch_fill_sum,
                batch_fill_count: e.batch_fill_count,
            })
            .collect()
    }

    fn type_snapshot(&self, rtype: RequestType, samples: &[Sample]) -> TypeSnapshot {
        let tm = self.of(rtype);
        let completed = tm.completed_ok.load(Ordering::Relaxed);
        let window_rate = tm.window.lock().advance(completed);
        let mut queue_wait: Vec<u64> = samples
            .iter()
            .filter(|s| s.rtype == rtype)
            .map(|s| s.queue_wait_us)
            .collect();
        let mut exec: Vec<u64> = samples
            .iter()
            .filter(|s| s.rtype == rtype)
            .map(|s| s.sim_exec_ps)
            .collect();
        TypeSnapshot {
            submitted: tm.submitted.load(Ordering::Relaxed),
            completed_ok: completed,
            cancelled: tm.cancelled.load(Ordering::Relaxed),
            timed_out_at_batcher: tm.timed_out_batcher.load(Ordering::Relaxed),
            timed_out_at_exec: tm.timed_out_exec.load(Ordering::Relaxed),
            throughput_rps_window: window_rate,
            queue_wait_us: Percentiles::from_samples(&mut queue_wait),
            sim_exec_ps: Percentiles::from_samples(&mut exec),
        }
    }

    fn class_snapshot(&self, class: SloClass) -> ClassSnapshot {
        let cm = self.of_class(class);
        let mut walls = cm.wall_samples.lock().clone();
        ClassSnapshot {
            submitted: cm.submitted.load(Ordering::Relaxed),
            completed_ok: cm.completed_ok.load(Ordering::Relaxed),
            shed: cm.shed.load(Ordering::Relaxed),
            wall_us: Percentiles::from_samples(&mut walls),
        }
    }

    fn shape_snapshots(&self) -> Vec<ShapeSnapshot> {
        let mut shapes = self.shapes.lock();
        shapes
            .iter_mut()
            .map(|(&(rows, cols), entry)| {
                let completed: u64 = entry.completed.iter().sum();
                let window_rate = entry.window.advance(completed);
                let mean_fill = if entry.batch_fill_count == 0 {
                    0.0
                } else {
                    entry.batch_fill_sum as f64 / entry.batch_fill_count as f64
                };
                let mut exec = entry.exec_samples.clone();
                ShapeSnapshot {
                    rows,
                    cols,
                    completed_decompose: entry.completed[RequestType::Decompose.index()],
                    completed_apply: entry.completed[RequestType::Apply.index()],
                    completed_update: entry.completed[RequestType::Update.index()],
                    mean_batch_fill: mean_fill,
                    throughput_rps_window: window_rate,
                    sim_exec_ps: Percentiles::from_samples(&mut exec),
                }
            })
            .collect()
    }

    pub(crate) fn snapshot(&self, queue_depth: usize, replicas_live: usize) -> MetricsSnapshot {
        let samples = self.samples.lock().clone();
        let elapsed = self.started_at.elapsed().as_secs_f64();
        let completed = self.completed_ok.load(Ordering::Relaxed);
        // Windowed rate: completions since the previous snapshot divided
        // by the wall time since it, then the window restarts here. A
        // long-running service reports its *current* rate instead of a
        // lifetime average polluted by warmup and idle stretches.
        let window_rate = self.window.lock().advance(completed);
        let timed_out_batcher = self.timed_out_batcher.load(Ordering::Relaxed);
        let timed_out_exec = self.timed_out_exec.load(Ordering::Relaxed);
        let mut queue_wait: Vec<u64> = samples.iter().map(|s| s.queue_wait_us).collect();
        let mut linger: Vec<u64> = samples.iter().map(|s| s.linger_us).collect();
        let mut exec: Vec<u64> = samples.iter().map(|s| s.sim_exec_ps).collect();
        let mean_batch = if samples.is_empty() {
            0.0
        } else {
            samples.iter().map(|s| s.batch_size as f64).sum::<f64>() / samples.len() as f64
        };
        let shed_total: u64 = self
            .per_class
            .iter()
            .map(|cm| cm.shed.load(Ordering::Relaxed))
            .sum();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_queue_full: self.rejected_full.load(Ordering::Relaxed),
            rejected_invalid: self.rejected_invalid.load(Ordering::Relaxed),
            completed_ok: completed,
            failed: self.failed.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            shed: shed_total,
            timed_out: timed_out_batcher + timed_out_exec,
            timed_out_at_batcher: timed_out_batcher,
            timed_out_at_exec: timed_out_exec,
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            replicas_spawned: self.replicas_spawned.load(Ordering::Relaxed),
            replicas_live: replicas_live as u64,
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            batches_stolen: self.batches_stolen.load(Ordering::Relaxed),
            shed_level: self.shed_level.load(Ordering::Relaxed),
            packed_batches: self.packed_batches.load(Ordering::Relaxed),
            packed_requests: self.packed_requests.load(Ordering::Relaxed),
            warm_start_hits: self.warm_start_hits.load(Ordering::Relaxed),
            lowrank_hits: self.lowrank_hits.load(Ordering::Relaxed),
            staleness_fallbacks: self.staleness_fallbacks.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
            mean_batch_size: mean_batch,
            throughput_rps: if elapsed > 0.0 {
                completed as f64 / elapsed
            } else {
                0.0
            },
            throughput_rps_window: window_rate,
            queue_wait_us: Percentiles::from_samples(&mut queue_wait),
            batch_linger_us: Percentiles::from_samples(&mut linger),
            sim_exec_ps: Percentiles::from_samples(&mut exec),
            per_type: PerTypeBreakdown {
                decompose: self.type_snapshot(RequestType::Decompose, &samples),
                apply: self.type_snapshot(RequestType::Apply, &samples),
                update: self.type_snapshot(RequestType::Update, &samples),
            },
            per_class: PerClassBreakdown {
                interactive: self.class_snapshot(SloClass::Interactive),
                standard: self.class_snapshot(SloClass::Standard),
                batch: self.class_snapshot(SloClass::Batch),
            },
            per_shape: self.shape_snapshots(),
            plan_swaps: self.plan_swaps.load(Ordering::Relaxed),
            dse_runs: self.dse_runs.load(Ordering::Relaxed),
            current_plan: PlanSnapshot {
                engine_parallelism: self.plan_engine_parallelism.load(Ordering::Relaxed),
                task_parallelism: self.plan_task_parallelism.load(Ordering::Relaxed),
                generation: self.plan_generation.load(Ordering::Relaxed),
            },
        }
    }
}

/// p50/p95/p99/max summary of one latency axis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest observed sample.
    pub max: u64,
}

impl Percentiles {
    /// Summarizes `samples` (sorted in place); zeros when empty.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0,
            };
        }
        samples.sort_unstable();
        // Nearest-rank percentiles: the smallest sample with at least
        // q of the distribution at or below it.
        let at = |q: f64| {
            let rank = (samples.len() as f64 * q).ceil() as usize;
            samples[rank.saturating_sub(1).min(samples.len() - 1)]
        };
        Percentiles {
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Per-request-type slice of a [`MetricsSnapshot`]: the counters,
/// windowed rate, and latency summaries of one traffic class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TypeSnapshot {
    /// Requests of this type admitted past the queue bound check.
    pub submitted: u64,
    /// Requests of this type completed successfully.
    pub completed_ok: u64,
    /// Requests of this type cancelled before execution. (The aggregate
    /// `cancelled` counter alone cannot attribute cancellations to the
    /// traffic they hit.)
    pub cancelled: u64,
    /// Deadline expiries of this type caught at batch formation.
    pub timed_out_at_batcher: u64,
    /// Deadline expiries of this type caught at replica-exec start.
    pub timed_out_at_exec: u64,
    /// Completions of this type per second since the previous snapshot.
    pub throughput_rps_window: f64,
    /// Queue-wait percentiles of this type (microseconds).
    pub queue_wait_us: Percentiles,
    /// Modeled execution-time percentiles of this type (picoseconds):
    /// Eq. (14) batch system time for decompose, the Eq. 8–14 apply
    /// pipeline system time for apply.
    pub sim_exec_ps: Percentiles,
}

/// Per-matrix-shape slice of a [`MetricsSnapshot`]: windowed
/// throughput, batch fill, and modeled-execution percentiles for one
/// observed (rows, cols). Apply traffic carries no matrix shape and is
/// not represented here.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShapeSnapshot {
    /// Matrix rows of this shape class.
    pub rows: usize,
    /// Matrix columns of this shape class.
    pub cols: usize,
    /// Decompose completions of this shape.
    pub completed_decompose: u64,
    /// Apply completions attributed to this shape (zero today: apply
    /// requests are host-side matvecs with no matrix shape).
    pub completed_apply: u64,
    /// Update completions of this shape.
    pub completed_update: u64,
    /// Mean executed batch size over this shape's completions.
    pub mean_batch_fill: f64,
    /// Completions of this shape per second since the previous
    /// snapshot (each snapshot advances the window).
    pub throughput_rps_window: f64,
    /// Modeled execution-time percentiles of this shape (picoseconds).
    pub sim_exec_ps: Percentiles,
}

/// The plan replicas currently execute under, as carried by
/// [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PlanSnapshot {
    /// Engine parallelism (P_eng) of the live plan.
    pub engine_parallelism: u64,
    /// Task parallelism (P_task) of the live plan.
    pub task_parallelism: u64,
    /// Monotonic generation; bumps once per committed autoscale swap.
    pub generation: u64,
}

/// Per-SLO-class slice of a [`MetricsSnapshot`]: admission, completion,
/// and shed counters plus end-to-end wall-latency percentiles. The
/// shape-classed scheduler's acceptance gate reads the rare class's
/// `wall_us.p99` from here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassSnapshot {
    /// Requests of this class admitted past the queue bound check.
    pub submitted: u64,
    /// Requests of this class completed successfully.
    pub completed_ok: u64,
    /// Requests of this class shed by the overload policy (rejected at
    /// admission or evicted from a full queue; both complete with
    /// `ServeError::Overloaded`).
    pub shed: u64,
    /// End-to-end wall-latency percentiles of this class (microseconds,
    /// submit to completion).
    pub wall_us: Percentiles,
}

/// The per-SLO-class split carried by every [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PerClassBreakdown {
    /// Interactive (tightest-horizon) traffic.
    pub interactive: ClassSnapshot,
    /// Standard (default) traffic.
    pub standard: ClassSnapshot,
    /// Batch (throughput-oriented, first shed) traffic.
    pub batch: ClassSnapshot,
}

/// The per-type split carried by every [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PerTypeBreakdown {
    /// Decompose (full factorization) traffic.
    pub decompose: TypeSnapshot,
    /// Apply (rank-r matvec) traffic.
    pub apply: TypeSnapshot,
    /// Incremental update (warm-start / low-rank / fallback) traffic.
    pub update: TypeSnapshot,
}

/// Point-in-time view of the service's counters and latency summaries.
///
/// Serializable so operators can scrape it as JSON.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted past the queue bound check.
    pub submitted: u64,
    /// Submissions rejected with `QueueFull` (backpressure events).
    pub rejected_queue_full: u64,
    /// Submissions rejected for shape/validation reasons.
    pub rejected_invalid: u64,
    /// Requests completed successfully.
    pub completed_ok: u64,
    /// Requests that ended in an accelerator or replica error.
    pub failed: u64,
    /// Requests cancelled before execution.
    pub cancelled: u64,
    /// Requests shed by the overload policy across all classes (sum of
    /// the per-class `shed` counters).
    pub shed: u64,
    /// Requests whose deadline elapsed before execution (both drop
    /// points combined).
    pub timed_out: u64,
    /// Deadline expiries caught at batch formation.
    pub timed_out_at_batcher: u64,
    /// Deadline expiries caught at replica-exec start (would otherwise
    /// have burned a replica slot computing a result nobody reads).
    pub timed_out_at_exec: u64,
    /// Replica panics contained by the service.
    pub worker_panics: u64,
    /// Replicas spawned over the service lifetime (initial + replacements).
    pub replicas_spawned: u64,
    /// Replicas currently alive.
    pub replicas_live: u64,
    /// Batches handed to replicas.
    pub batches_dispatched: u64,
    /// Batches a replica popped from another sub-pool's dispatch queue
    /// (shape-classed work stealing; zero in FIFO mode).
    pub batches_stolen: u64,
    /// Current load-shed tier: 0 = none, 1 = Batch class shed,
    /// 2 = Batch + Standard shed.
    pub shed_level: u64,
    /// Batches executed as packed waves (>= 2 co-resident tenants).
    pub packed_batches: u64,
    /// Requests served inside packed waves.
    pub packed_requests: u64,
    /// Update requests served via the warm-start route.
    pub warm_start_hits: u64,
    /// Update requests served via the host-only low-rank fast path.
    pub lowrank_hits: u64,
    /// Update requests that classified stale and fell back to a full
    /// recompute (cold starts excluded — those are cache misses).
    pub staleness_fallbacks: u64,
    /// Admission queue depth at snapshot time.
    pub queue_depth: u64,
    /// Mean executed batch size over the sample window.
    pub mean_batch_size: f64,
    /// Completed requests per wall-clock second since service start
    /// (lifetime average).
    pub throughput_rps: f64,
    /// Completed requests per second since the previous snapshot (each
    /// snapshot advances the window). Prefer this for steady-state
    /// rates: the lifetime average never recovers from warmup or idle.
    pub throughput_rps_window: f64,
    /// Queue-wait percentiles (microseconds).
    pub queue_wait_us: Percentiles,
    /// Batch-linger percentiles (microseconds).
    pub batch_linger_us: Percentiles,
    /// Simulated Eq. (14) execution-time percentiles (picoseconds).
    pub sim_exec_ps: Percentiles,
    /// The same counters split by request type, so apply traffic (orders
    /// of magnitude cheaper) does not mask decompose regressions.
    pub per_type: PerTypeBreakdown,
    /// The counters and wall-latency tails split by SLO class, so the
    /// dominant class's volume does not mask a rare class's starvation.
    pub per_class: PerClassBreakdown,
    /// Per-matrix-shape windowed series (throughput, batch fill,
    /// execution percentiles), sorted by (rows, cols).
    pub per_shape: Vec<ShapeSnapshot>,
    /// Plan swaps committed by the autoscale controller.
    pub plan_swaps: u64,
    /// DSE re-searches the controller actually ran (stationary ticks
    /// reuse the cached sweep and do not count).
    pub dse_runs: u64,
    /// The plan replicas currently execute under.
    pub current_plan: PlanSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::PlanInfo;
    use std::time::Duration;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut xs: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p95, 95);
        assert_eq!(p.p99, 99);
        assert_eq!(p.max, 100);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let p = Percentiles::from_samples(&mut [42]);
        assert_eq!(
            p,
            Percentiles {
                p50: 42,
                p95: 42,
                p99: 42,
                max: 42
            }
        );
    }

    #[test]
    fn ties_resolve_to_the_tied_value() {
        // All samples equal: every percentile is that value.
        let mut xs = vec![7u64; 1000];
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!((p.p50, p.p95, p.p99, p.max), (7, 7, 7, 7));
        // Heavy tie at the low end: p50 sits inside the tie, the tail
        // percentiles escape it.
        let mut xs: Vec<u64> = std::iter::repeat_n(1, 90)
            .chain(std::iter::once(100))
            .chain(std::iter::repeat_n(200, 9))
            .collect();
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!(p.p50, 1);
        assert_eq!(p.p95, 200);
        assert_eq!(p.p99, 200);
        assert_eq!(p.max, 200);
    }

    #[test]
    fn large_n_nearest_rank_is_exact() {
        // 10_000 samples 1..=10_000: nearest-rank p_q is exactly
        // ceil(n*q), with no interpolation and no off-by-one.
        let mut xs: Vec<u64> = (1..=10_000).collect();
        let p = Percentiles::from_samples(&mut xs);
        assert_eq!(p.p50, 5_000);
        assert_eq!(p.p95, 9_500);
        assert_eq!(p.p99, 9_900);
        assert_eq!(p.max, 10_000);
    }

    #[test]
    fn windowed_rate_resets_per_snapshot() {
        let m = Metrics::new();
        m.completed_ok.store(100, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(5));
        let first = m.snapshot(0, 0);
        assert!(first.throughput_rps > 0.0);
        assert!(first.throughput_rps_window > 0.0);
        // No completions since the first snapshot: the windowed rate
        // drops to exactly zero while the lifetime average stays stale.
        std::thread::sleep(Duration::from_millis(5));
        let second = m.snapshot(0, 0);
        assert_eq!(second.throughput_rps_window, 0.0);
        assert!(second.throughput_rps > 0.0);
        // New completions show up in the next window.
        m.completed_ok.store(150, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(5));
        let third = m.snapshot(0, 0);
        assert!(third.throughput_rps_window > 0.0);
    }

    #[test]
    fn timed_out_splits_by_drop_point() {
        let m = Metrics::new();
        m.timed_out_batcher.fetch_add(3, Ordering::Relaxed);
        m.timed_out_exec.fetch_add(2, Ordering::Relaxed);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.timed_out, 5);
        assert_eq!(snap.timed_out_at_batcher, 3);
        assert_eq!(snap.timed_out_at_exec, 2);
    }

    #[test]
    fn per_type_counters_split_decompose_from_apply() {
        let m = Metrics::new();
        m.record_submitted(RequestType::Decompose, SloClass::Standard);
        m.record_submitted(RequestType::Apply, SloClass::Standard);
        m.record_submitted(RequestType::Apply, SloClass::Standard);
        m.record_completed(RequestType::Apply, SloClass::Standard);
        m.record_timed_out_batcher(RequestType::Decompose);
        m.record_timed_out_exec(RequestType::Apply);
        m.record_latency(
            &LatencyRecord {
                queue_wait: Duration::from_micros(10),
                batch_linger: Duration::ZERO,
                sim_exec_ps: 1_000,
                batch_size: 1,
                wall_total: Duration::from_micros(20),
                plan: PlanInfo::default(),
            },
            RequestType::Apply,
            None,
            SloClass::Standard,
        );
        std::thread::sleep(Duration::from_millis(2));
        let snap = m.snapshot(0, 0);
        // Aggregates see the union...
        assert_eq!(snap.submitted, 3);
        assert_eq!(snap.completed_ok, 1);
        assert_eq!(snap.timed_out, 2);
        // ...and the split attributes each event to its type.
        assert_eq!(snap.per_type.decompose.submitted, 1);
        assert_eq!(snap.per_type.apply.submitted, 2);
        assert_eq!(snap.per_type.apply.completed_ok, 1);
        assert_eq!(snap.per_type.decompose.completed_ok, 0);
        assert_eq!(snap.per_type.decompose.timed_out_at_batcher, 1);
        assert_eq!(snap.per_type.apply.timed_out_at_batcher, 0);
        assert_eq!(snap.per_type.apply.timed_out_at_exec, 1);
        assert_eq!(snap.per_type.apply.sim_exec_ps.p50, 1_000);
        assert_eq!(snap.per_type.decompose.sim_exec_ps.p50, 0);
        assert!(snap.per_type.apply.throughput_rps_window > 0.0);
        assert_eq!(snap.per_type.decompose.throughput_rps_window, 0.0);
    }

    #[test]
    fn update_route_counters_and_per_type_split() {
        let m = Metrics::new();
        m.record_submitted(RequestType::Update, SloClass::Standard);
        m.record_submitted(RequestType::Update, SloClass::Standard);
        m.record_completed(RequestType::Update, SloClass::Standard);
        m.record_warm_start_hit();
        m.record_lowrank_hit();
        m.record_lowrank_hit();
        m.record_staleness_fallback();
        m.record_latency(
            &LatencyRecord {
                queue_wait: Duration::from_micros(5),
                batch_linger: Duration::ZERO,
                sim_exec_ps: 777,
                batch_size: 1,
                wall_total: Duration::from_micros(9),
                plan: PlanInfo::default(),
            },
            RequestType::Update,
            Some((8, 8)),
            SloClass::Standard,
        );
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.warm_start_hits, 1);
        assert_eq!(snap.lowrank_hits, 2);
        assert_eq!(snap.staleness_fallbacks, 1);
        assert_eq!(snap.per_type.update.submitted, 2);
        assert_eq!(snap.per_type.update.completed_ok, 1);
        assert_eq!(snap.per_type.update.sim_exec_ps.p50, 777);
        // The update samples do not leak into the other types.
        assert_eq!(snap.per_type.decompose.sim_exec_ps.p50, 0);
        assert_eq!(snap.per_type.apply.sim_exec_ps.p50, 0);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"warm_start_hits\":1"));
        assert!(json.contains("\"update\""));
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let p = Percentiles::from_samples(&mut []);
        assert_eq!(
            p,
            Percentiles {
                p50: 0,
                p95: 0,
                p99: 0,
                max: 0
            }
        );
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let m = Metrics::new();
        m.submitted.store(3, Ordering::Relaxed);
        m.completed_ok.store(2, Ordering::Relaxed);
        m.record_latency(
            &LatencyRecord {
                queue_wait: Duration::from_micros(120),
                batch_linger: Duration::from_micros(40),
                sim_exec_ps: 5_000,
                batch_size: 2,
                wall_total: Duration::from_micros(200),
                plan: PlanInfo::default(),
            },
            RequestType::Decompose,
            Some((16, 8)),
            SloClass::Standard,
        );
        let snap = m.snapshot(1, 2);
        let json = serde_json::to_string_pretty(&snap).unwrap();
        assert!(json.contains("\"submitted\": 3"));
        assert!(json.contains("\"queue_wait_us\""));
        assert!(json.contains("\"p95\""));
        assert!(json.contains("\"per_type\""));
        assert!(json.contains("\"apply\""));
        assert!(json.contains("\"decompose\""));
    }

    #[test]
    fn sample_window_is_bounded() {
        let m = Metrics::new();
        for i in 0..(MAX_SAMPLES + 10) {
            m.record_latency(
                &LatencyRecord {
                    queue_wait: Duration::from_micros(i as u64),
                    batch_linger: Duration::ZERO,
                    sim_exec_ps: 1,
                    batch_size: 1,
                    wall_total: Duration::ZERO,
                    plan: PlanInfo::default(),
                },
                RequestType::Decompose,
                Some((4, 4)),
                SloClass::Standard,
            );
        }
        assert!(m.samples.lock().len() <= MAX_SAMPLES);
        assert!(m.of_class(SloClass::Standard).wall_samples.lock().len() <= MAX_CLASS_SAMPLES);
        let shapes = m.shapes.lock();
        assert!(shapes[&(4, 4)].exec_samples.len() <= MAX_SHAPE_SAMPLES);
        // The cumulative counters are unaffected by the sample bound.
        assert_eq!(shapes[&(4, 4)].completed[0] as usize, MAX_SAMPLES + 10);
    }

    fn record_of(exec_ps: u64, batch: usize) -> LatencyRecord {
        LatencyRecord {
            queue_wait: Duration::from_micros(1),
            batch_linger: Duration::ZERO,
            sim_exec_ps: exec_ps,
            batch_size: batch,
            wall_total: Duration::from_micros(2),
            plan: PlanInfo::default(),
        }
    }

    #[test]
    fn per_shape_series_split_and_window() {
        let m = Metrics::new();
        let std = SloClass::Standard;
        m.record_latency(
            &record_of(1_000, 4),
            RequestType::Decompose,
            Some((64, 64)),
            std,
        );
        m.record_latency(
            &record_of(2_000, 4),
            RequestType::Decompose,
            Some((64, 64)),
            std,
        );
        m.record_latency(
            &record_of(9_000, 1),
            RequestType::Update,
            Some((256, 256)),
            std,
        );
        // Shapeless apply traffic never creates a shape row.
        m.record_latency(&record_of(10, 1), RequestType::Apply, None, std);
        std::thread::sleep(Duration::from_millis(2));
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.per_shape.len(), 2);
        let small = &snap.per_shape[0];
        assert_eq!((small.rows, small.cols), (64, 64));
        assert_eq!(small.completed_decompose, 2);
        assert_eq!(small.completed_update, 0);
        assert!((small.mean_batch_fill - 4.0).abs() < 1e-9);
        assert!(small.throughput_rps_window > 0.0);
        assert_eq!(small.sim_exec_ps.max, 2_000);
        let big = &snap.per_shape[1];
        assert_eq!((big.rows, big.cols), (256, 256));
        assert_eq!(big.completed_update, 1);
        assert!((big.mean_batch_fill - 1.0).abs() < 1e-9);
        // Windows advance per snapshot: a quiet second snapshot reads 0.
        std::thread::sleep(Duration::from_millis(2));
        let second = m.snapshot(0, 0);
        assert_eq!(second.per_shape[0].throughput_rps_window, 0.0);
        // The controller-facing totals stay cumulative across snapshots.
        let totals = m.shape_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].completed[RequestType::Decompose.index()], 2);
        assert_eq!(totals[0].batch_fill_sum, 8);
        assert_eq!(totals[1].completed[RequestType::Update.index()], 1);
    }

    /// Regression test: `record_cancelled` used to bump only the
    /// aggregate counter, so a cancellation storm against one request
    /// type was invisible in the per-type breakdown. The split must
    /// attribute each cancellation to its type.
    #[test]
    fn cancellations_split_per_request_type() {
        let m = Metrics::new();
        m.record_cancelled(RequestType::Apply);
        m.record_cancelled(RequestType::Apply);
        m.record_cancelled(RequestType::Decompose);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.cancelled, 3);
        assert_eq!(snap.per_type.apply.cancelled, 2);
        assert_eq!(snap.per_type.decompose.cancelled, 1);
        assert_eq!(snap.per_type.update.cancelled, 0);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"cancelled\""));
    }

    #[test]
    fn per_class_counters_and_wall_tails_split_by_slo_class() {
        let m = Metrics::new();
        m.record_submitted(RequestType::Decompose, SloClass::Interactive);
        m.record_submitted(RequestType::Decompose, SloClass::Batch);
        m.record_submitted(RequestType::Decompose, SloClass::Batch);
        m.record_completed(RequestType::Decompose, SloClass::Interactive);
        m.record_shed(SloClass::Batch);
        m.record_batch_stolen();
        m.set_shed_level(1);
        let mut rec = record_of(100, 1);
        rec.wall_total = Duration::from_micros(250);
        m.record_latency(&rec, RequestType::Decompose, None, SloClass::Interactive);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.per_class.interactive.submitted, 1);
        assert_eq!(snap.per_class.interactive.completed_ok, 1);
        assert_eq!(snap.per_class.interactive.wall_us.p99, 250);
        assert_eq!(snap.per_class.batch.submitted, 2);
        assert_eq!(snap.per_class.batch.shed, 1);
        assert_eq!(snap.per_class.batch.wall_us.p99, 0);
        assert_eq!(snap.per_class.standard.submitted, 0);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.batches_stolen, 1);
        assert_eq!(snap.shed_level, 1);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"per_class\""));
        assert!(json.contains("\"interactive\""));
        assert!(json.contains("\"wall_us\""));
    }

    #[test]
    fn plan_counters_surface_in_snapshot() {
        let m = Metrics::new();
        m.set_current_plan(4, 6, 0);
        m.record_dse_run();
        m.record_dse_run();
        m.record_plan_swap();
        m.set_current_plan(2, 16, 1);
        let snap = m.snapshot(0, 0);
        assert_eq!(snap.plan_swaps, 1);
        assert_eq!(snap.dse_runs, 2);
        assert_eq!(snap.current_plan.engine_parallelism, 2);
        assert_eq!(snap.current_plan.task_parallelism, 16);
        assert_eq!(snap.current_plan.generation, 1);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"plan_swaps\":1"));
        assert!(json.contains("\"current_plan\""));
        assert!(json.contains("\"per_shape\""));
    }
}
