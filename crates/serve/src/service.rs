//! The serving front end: admission, dispatch, replica pool, lifecycle.

use crate::batcher::{self, Batch, FormOutcome};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PopResult, PushError};
use crate::report::{CacheReport, MetricsReport, ShapeUtilization};
use crate::request::{
    ApplyHandle, BatchKey, Completion, LatencyRecord, Payload, PendingRequest, PlanInfo,
    PublishSpec, RequestHandle, RequestId, RequestState, RequestType, SloClass, SubmitOptions,
    SvdResponse, UpdateHandle, UpdateResponse,
};
use crate::scheduler::{
    self, ClassScheduler, ShedController, StealingDispatch, SHED_BATCH, SHED_STANDARD,
};
use aie_sim::TimePs;
use factor_store::{FactorStore, ModelId, PublishedFactors};
use heterosvd::apply::ApplyShape;
use heterosvd::factor_cache::{ClientId, FactorCache, FactorCacheEntry};
use heterosvd::obs::{self, ResourceCounts, Stage, UtilizationReport};
use heterosvd::{Accelerator, ApplyModel, HeteroSvdError, HeteroSvdOutput};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use svd_kernels::incremental::{
    classify_update, lowrank_update, FallbackReason, UpdateClass, UpdateRoute,
};
use svd_kernels::JacobiOptions;
use svd_kernels::Matrix;

/// A batch-serving SVD service.
///
/// Requests enter through a bounded admission queue ([`SvdService::try_submit`]
/// exerts backpressure with [`ServeError::QueueFull`]), a batcher thread
/// coalesces compatible requests into batches, and a pool of accelerator
/// replicas executes each batch via [`Accelerator::run_many`], charging
/// every request in a batch the Eq. (14) system time
/// `⌈B / P_task⌉ · t_task`.
///
/// Alongside full factorizations the service runs a decompose-once /
/// apply-constantly path: [`SvdService::try_submit_publish`] truncates a
/// successful factorization and publishes it into the service's
/// [`FactorStore`], and [`SvdService::try_submit_apply`] streams a vector
/// through the store-resident rank-r factors — numerically exact (the
/// same `f32` arithmetic a direct truncated product performs) and
/// charged with the modeled Eq. 8–14 apply-pipeline time.
///
/// A replica that panics while serving a batch is contained: the batch's
/// requests fail with [`ServeError::WorkerPanicked`], the replica thread
/// retires, and a replacement is spawned so capacity recovers.
/// [`SvdService::shutdown`] (also run on drop) closes admission, drains
/// everything already queued, and joins all threads.
pub struct SvdService {
    inner: Arc<Inner>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    scraper: Mutex<Option<JoinHandle<()>>>,
    autoscaler: Mutex<Option<JoinHandle<()>>>,
    shutdown_done: AtomicBool,
}

/// The `(P_eng, P_task)` plan replicas execute under. Starts at the
/// configured knobs; the autoscale controller swaps it between batches.
/// Replicas read it exactly once per batch, so every batch executes
/// wholly under one plan generation (drain-and-replace: an in-flight
/// batch finishes on the plan it started under).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LivePlan {
    pub(crate) engine_parallelism: usize,
    pub(crate) task_parallelism: usize,
    /// Bumps once per committed swap; replicas drop their cached
    /// accelerators when it changes.
    pub(crate) generation: u64,
}

pub(crate) struct Inner {
    pub(crate) config: ServeConfig,
    /// FIFO admission, used when [`ServeConfig::shape_classed`] is off.
    admission: BoundedQueue<PendingRequest>,
    /// Shape-classed EDF admission, present (and used instead of
    /// `admission`) when [`ServeConfig::shape_classed`] is on.
    scheduler: Option<ClassScheduler>,
    /// Formed batches en route to replicas. In FIFO mode a single pool
    /// (plain FIFO); in shape-classed mode one sub-pool per worker with
    /// work stealing, so an idle replica serves a backlogged class.
    dispatch: StealingDispatch,
    pub(crate) metrics: Metrics,
    next_id: AtomicU64,
    replicas_live: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shutting_down: AtomicBool,
    /// Truncated factors published by decompose requests and served by
    /// apply requests; apply admission pins the current version.
    store: FactorStore,
    /// Per-client previous factorization state backing incremental
    /// updates; update admission pins the client's entry and classifies
    /// against it. Empty (and never consulted) with
    /// [`ServeConfig::incremental`] off.
    pub(crate) factor_cache: FactorCache,
    /// Timing model of the rank-r apply pipeline, sharing the replicas'
    /// calibration and PL frequency so modeled apply and decompose times
    /// are directly comparable.
    apply_model: ApplyModel,
    /// Per-shape resource utilization, merged across every batch each
    /// replica completes (empty with observability off).
    utilization: Mutex<HashMap<(usize, usize), UtilizationReport>>,
    /// Latest capture taken by the scraper thread (None until the first
    /// interval elapses, or when no scraper is configured).
    latest_scrape: Mutex<Option<MetricsReport>>,
    /// Scraper parking spot: `scraper_stop` flips on shutdown and
    /// `scraper_cv` wakes the thread so it exits without waiting out its
    /// interval.
    scraper_stop: Mutex<bool>,
    scraper_cv: Condvar,
    /// The plan replicas execute under; swapped by the autoscale
    /// controller, read once per batch by each replica.
    pub(crate) live_plan: Mutex<LivePlan>,
    /// Autoscaler parking spot (same stop/condvar protocol as the
    /// scraper's).
    pub(crate) autoscale_stop: Mutex<bool>,
    pub(crate) autoscale_cv: Condvar,
}

impl Inner {
    /// Requests awaiting batch formation, whichever admission structure
    /// is live (the FIFO queue in shape-blind mode, the class scheduler
    /// otherwise).
    fn queue_depth(&self) -> usize {
        self.admission.len() + self.scheduler.as_ref().map_or(0, ClassScheduler::len)
    }

    /// Per-(key, class) batch-formation budget: how large this batch may
    /// grow and how long it may linger waiting to fill.
    ///
    /// * Interactive seeds linger a quarter of the configured budget —
    ///   their SLO buys latency with fill, Eq. 14 be damned.
    /// * When the shape's observed critical resource is PLIO (I/O-bound,
    ///   e.g. 26.6% PLIO vs higher core slack at small shapes), batches
    ///   are capped at the packed-stripe capacity: growing a batch past
    ///   the co-resident wave width only adds linger, because the extra
    ///   requests serialize into a second wave anyway.
    fn class_policy(&self, key: BatchKey, class: SloClass) -> (usize, std::time::Duration) {
        let mut max_batch = self.config.max_batch;
        let mut linger = self.config.max_linger;
        if class == SloClass::Interactive {
            linger /= 4;
        }
        if let BatchKey::Decompose { rows, cols } | BatchKey::Update { rows, cols } = key {
            let shape = (rows, cols);
            let plio_critical = self
                .utilization
                .lock()
                .get(&shape)
                .is_some_and(|report| report.critical == heterosvd::obs::ResourceKind::Plio);
            if plio_critical {
                let p_eng = self.live_plan.lock().engine_parallelism;
                let capacity = self.config.packed_tenants_at(shape, usize::MAX, p_eng);
                if capacity >= 2 {
                    max_batch = max_batch.min(capacity);
                }
            }
        }
        (max_batch, linger)
    }

    /// Builds one exportable observability capture: metrics snapshot +
    /// per-shape utilization + cache/store counters + global
    /// span-journal summary.
    fn metrics_report(&self) -> MetricsReport {
        let snapshot = self.metrics.snapshot(
            self.queue_depth(),
            self.replicas_live.load(Ordering::SeqCst),
        );
        let mut utilization: Vec<ShapeUtilization> = self
            .utilization
            .lock()
            .iter()
            .map(|(&(rows, cols), report)| ShapeUtilization {
                rows,
                cols,
                report: report.clone(),
            })
            .collect();
        utilization.sort_by_key(|s| (s.rows, s.cols));
        MetricsReport {
            snapshot,
            utilization,
            caches: CacheReport {
                plan: heterosvd::plan_cache::global().stats(),
                apply_profiles: heterosvd::apply::global_profiles().stats(),
                factor_store: self.store.stats(),
                factor_cache: self.factor_cache.stats(),
            },
            journal: obs::global().summary(),
        }
    }
}

/// Scraper thread: captures a [`MetricsReport`] every `interval` until
/// shutdown flips `scraper_stop`.
fn scraper_main(inner: Arc<Inner>, interval: std::time::Duration) {
    let mut stop = inner.scraper_stop.lock();
    loop {
        if *stop {
            return;
        }
        if inner.scraper_cv.wait_for(&mut stop, interval).timed_out() {
            drop(stop);
            let report = inner.metrics_report();
            *inner.latest_scrape.lock() = Some(report);
            stop = inner.scraper_stop.lock();
        }
    }
}

impl SvdService {
    /// Validates `config`, spawns the batcher and the replica pool, and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when the configuration is invalid.
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        // The apply timing model shares the calibration and PL frequency
        // of the replicas' accelerator config (built at the minimal
        // admissible shape; the knobs are shape-independent).
        let unit = config.min_cols();
        let apply_model = ApplyModel::from_config(
            &config
                .accelerator_config((unit, unit))
                .map_err(ServeError::from)?,
        )
        .map_err(ServeError::from)?;
        // Shape-classed mode: one dispatch sub-pool per worker (work
        // stealing keeps them balanced); FIFO mode keeps the single
        // queue. The global capacity bound is identical either way.
        let pools = if config.shape_classed {
            config.workers.max(1)
        } else {
            1
        };
        let inner = Arc::new(Inner {
            admission: BoundedQueue::new(config.queue_capacity),
            scheduler: config
                .shape_classed
                .then(|| ClassScheduler::new(config.queue_capacity)),
            dispatch: StealingDispatch::new(pools, config.workers.max(1) * 2),
            metrics: Metrics::new(),
            next_id: AtomicU64::new(0),
            replicas_live: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            store: FactorStore::new(config.factor_store_bytes),
            factor_cache: FactorCache::new(config.factor_cache_bytes),
            apply_model,
            utilization: Mutex::new(HashMap::new()),
            latest_scrape: Mutex::new(None),
            scraper_stop: Mutex::new(false),
            scraper_cv: Condvar::new(),
            live_plan: Mutex::new(LivePlan {
                engine_parallelism: config.engine_parallelism,
                task_parallelism: config.task_parallelism,
                generation: 0,
            }),
            autoscale_stop: Mutex::new(false),
            autoscale_cv: Condvar::new(),
            config,
        });
        inner.metrics.set_current_plan(
            inner.config.engine_parallelism,
            inner.config.task_parallelism,
            0,
        );
        for _ in 0..inner.config.workers {
            spawn_replica(&inner);
        }
        let batcher_inner = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("svd-batcher".into())
            .spawn(move || batcher_main(batcher_inner))
            .expect("failed to spawn batcher thread");
        let scraper = inner.config.metrics_scrape_interval.map(|interval| {
            let scraper_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("svd-metrics-scraper".into())
                .spawn(move || scraper_main(scraper_inner, interval))
                .expect("failed to spawn scraper thread")
        });
        let autoscaler = inner.config.autoscale.then(|| {
            let controller_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("svd-autoscaler".into())
                .spawn(move || crate::autoscale::autoscale_main(controller_inner))
                .expect("failed to spawn autoscaler thread")
        });
        Ok(SvdService {
            inner,
            batcher: Mutex::new(Some(batcher)),
            scraper: Mutex::new(scraper),
            autoscaler: Mutex::new(autoscaler),
            shutdown_done: AtomicBool::new(false),
        })
    }

    /// Submits `matrix` with the service's default options.
    ///
    /// # Errors
    ///
    /// See [`SvdService::try_submit_with`].
    pub fn try_submit(&self, matrix: Matrix<f64>) -> Result<RequestHandle, ServeError> {
        self.try_submit_with(matrix, SubmitOptions::default())
    }

    /// Submits `matrix`, never blocking: a full queue is reported as
    /// [`ServeError::QueueFull`] so the caller can back off.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — the shape violates the replica
    ///   constraints ([`ServeConfig::check_shape`]).
    /// * [`ServeError::QueueFull`] — backpressure; retry later.
    /// * [`ServeError::ShuttingDown`] — the service no longer admits.
    pub fn try_submit_with(
        &self,
        matrix: Matrix<f64>,
        options: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_decompose(matrix, None, options, false)
    }

    /// Submits `matrix` for decomposition and — on success — truncates
    /// the factorization to `rank` and publishes it as the next version
    /// of `model` in the service's factor store, where
    /// [`SvdService::try_submit_apply`] can serve it.
    ///
    /// # Errors
    ///
    /// As [`SvdService::try_submit_with`], plus
    /// [`ServeError::InvalidRequest`] when `rank` is outside
    /// `1..=cols`.
    pub fn try_submit_publish(
        &self,
        model: ModelId,
        matrix: Matrix<f64>,
        rank: usize,
    ) -> Result<RequestHandle, ServeError> {
        self.try_submit_publish_with(model, matrix, rank, SubmitOptions::default())
    }

    /// [`SvdService::try_submit_publish`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`SvdService::try_submit_publish`].
    pub fn try_submit_publish_with(
        &self,
        model: ModelId,
        matrix: Matrix<f64>,
        rank: usize,
        options: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        if rank == 0 || rank > matrix.cols() {
            self.inner
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::InvalidRequest(format!(
                "publish rank {rank} outside 1..={}",
                matrix.cols()
            )));
        }
        self.submit_decompose(matrix, Some(PublishSpec { model, rank }), options, false)
    }

    /// Submits a rank-r apply `y = U_r·Σ_r·V_rᵀ·x` against the factors
    /// of `model` with the service's default options. The current factor
    /// version is pinned at admission: a republish or eviction racing
    /// the request cannot change (or free) the factors it applies.
    ///
    /// `rank_hint` caps the applied rank; `None` applies the full stored
    /// rank. The served result is bit-identical to the direct truncated
    /// product at the same rank.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — no published factors for
    ///   `model`, the length of `x` does not match, or the rank hint is
    ///   outside `1..=stored_rank`.
    /// * [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`] — as
    ///   for decompose submission.
    pub fn try_submit_apply(
        &self,
        model: ModelId,
        x: &[f64],
        rank_hint: Option<usize>,
    ) -> Result<ApplyHandle, ServeError> {
        self.try_submit_apply_with(model, x, rank_hint, SubmitOptions::default())
    }

    /// [`SvdService::try_submit_apply`] with explicit options.
    ///
    /// # Errors
    ///
    /// See [`SvdService::try_submit_apply`].
    pub fn try_submit_apply_with(
        &self,
        model: ModelId,
        x: &[f64],
        rank_hint: Option<usize>,
        options: SubmitOptions,
    ) -> Result<ApplyHandle, ServeError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let reject = |msg: String| {
            inner
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            Err(ServeError::InvalidRequest(msg))
        };
        let Some(factors) = inner.store.get(model) else {
            return reject(format!("{model} has no published factors"));
        };
        if x.len() != factors.meta.cols {
            return reject(format!(
                "input length {} does not match {model} cols {}",
                x.len(),
                factors.meta.cols
            ));
        }
        let rank = rank_hint.unwrap_or(factors.meta.rank);
        if rank == 0 || rank > factors.meta.rank {
            return reject(format!(
                "rank hint {rank} outside 1..={} stored for {model}",
                factors.meta.rank
            ));
        }
        let payload = Payload::Apply {
            // Cast to the device's native f32 once, at admission.
            x: x.iter().map(|&v| v as f32).collect(),
            factors,
            rank,
        };
        let (id, state) = self.admit(payload, options, false)?;
        Ok(ApplyHandle { id, state })
    }

    /// Submits an incremental update of `client`'s matrix with the
    /// service's default options.
    ///
    /// # Errors
    ///
    /// See [`SvdService::try_submit_update_with`].
    pub fn try_submit_update(
        &self,
        client: ClientId,
        matrix: Matrix<f64>,
    ) -> Result<UpdateHandle, ServeError> {
        self.try_submit_update_with(client, matrix, SubmitOptions::default())
    }

    /// Submits an incremental update: the service classifies `matrix`
    /// against `client`'s cached previous factorization at admission
    /// (pinning the cache entry, so an eviction racing the request
    /// cannot change the basis it was classified against) and the
    /// replica executes the chosen route — a warm-started Jacobi solve
    /// seeded from the cached right basis, a host-only Brand-style
    /// low-rank bump of the cached truncated factors, or a full
    /// recompute when the update is too stale (or the client is cold).
    /// Every route refreshes the client's cache entry for the next
    /// update.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — [`ServeConfig::incremental`]
    ///   is off, the shape violates the replica constraints, or the
    ///   matrix contains non-finite values.
    /// * [`ServeError::QueueFull`] / [`ServeError::ShuttingDown`] — as
    ///   for decompose submission.
    pub fn try_submit_update_with(
        &self,
        client: ClientId,
        matrix: Matrix<f64>,
        options: SubmitOptions,
    ) -> Result<UpdateHandle, ServeError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let reject = |e: ServeError| {
            inner
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            Err(e)
        };
        if !inner.config.incremental {
            return reject(ServeError::InvalidRequest(
                "incremental updates are disabled (set ServeConfig::incremental)".into(),
            ));
        }
        if let Err(e) = inner.config.check_shape(matrix.rows(), matrix.cols()) {
            return reject(e);
        }
        let shape = (matrix.rows(), matrix.cols());
        // Cast to the device's native f32 once, at admission (the
        // fingerprint and classification run on exactly the bits the
        // solve will see).
        let matrix = matrix.cast::<f32>();
        let entry = inner.factor_cache.get(client);
        let class = match entry.as_deref() {
            Some(cached) => {
                // The low-rank path re-truncates to the cached rank r,
                // so the augmented core must fit: k <= min(m, n) - r.
                let k_budget = inner
                    .config
                    .max_update_rank
                    .min(shape.0.min(shape.1).saturating_sub(cached.truncated.rank()));
                match classify_update(
                    &matrix,
                    &cached.a_prev,
                    cached.warm_solves_since_full,
                    &inner.config.staleness_bound(),
                    k_budget,
                ) {
                    Ok(class) => Some(class),
                    Err(e) => return reject(ServeError::from(HeteroSvdError::Numeric(e))),
                }
            }
            None => None,
        };
        let payload = Payload::Update {
            matrix,
            shape,
            client,
            entry,
            class,
        };
        let (id, state) = self.admit(payload, options, false)?;
        Ok(UpdateHandle { id, state })
    }

    /// Chaos/test hook: admits a request whose replica panics instead of
    /// executing it, exercising the containment and replacement path.
    #[doc(hidden)]
    pub fn try_submit_poison(&self, rows: usize, cols: usize) -> Result<RequestHandle, ServeError> {
        self.submit_decompose(
            Matrix::zeros(rows, cols),
            None,
            SubmitOptions::default(),
            true,
        )
    }

    fn submit_decompose(
        &self,
        matrix: Matrix<f64>,
        publish: Option<PublishSpec>,
        options: SubmitOptions,
        poison: bool,
    ) -> Result<RequestHandle, ServeError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if let Err(e) = inner.config.check_shape(matrix.rows(), matrix.cols()) {
            inner
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let payload = Payload::Decompose {
            shape: (matrix.rows(), matrix.cols()),
            // Cast to the device's native f32 once, here: the request
            // queues at half the memory and the replica moves the data
            // straight into the accelerator with no further conversion.
            matrix: matrix.cast::<f32>(),
            publish,
        };
        let (id, state) = self.admit(payload, options, poison)?;
        Ok(RequestHandle { id, state })
    }

    /// Common admission tail: assigns an id, stamps the deadline, and
    /// pushes onto the bounded queue.
    fn admit(
        &self,
        payload: Payload,
        options: SubmitOptions,
        poison: bool,
    ) -> Result<(RequestId, Arc<RequestState>), ServeError> {
        let inner = &self.inner;
        let rtype = match &payload {
            Payload::Decompose { .. } => RequestType::Decompose,
            Payload::Apply { .. } => RequestType::Apply,
            Payload::Update { .. } => RequestType::Update,
        };
        let submitted_at = Instant::now();
        let timeout = options.timeout.or(inner.config.default_timeout);
        // Load shedding: past the controller's tier, Batch (then also
        // Standard) traffic is refused at the door with a retryable
        // error rather than queued into certain timeout.
        if let Some(sched) = &inner.scheduler {
            let level = sched.shed_level();
            let shed = match options.class {
                SloClass::Batch => level >= SHED_BATCH,
                SloClass::Standard => level >= SHED_STANDARD,
                SloClass::Interactive => false,
            };
            if shed {
                inner.metrics.record_shed(options.class);
                return Err(ServeError::Overloaded);
            }
        }
        let id = RequestId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let state = RequestState::new();
        let request = PendingRequest {
            id,
            payload,
            state: Arc::clone(&state),
            submitted_at,
            deadline: timeout.map(|t| submitted_at + t),
            class: options.class,
            poison,
        };
        let pushed = match &inner.scheduler {
            Some(sched) => sched.try_push(request, &inner.metrics),
            None => inner.admission.try_push(request),
        };
        match pushed {
            Ok(()) => {
                inner.metrics.record_submitted(rtype, options.class);
                if inner.config.observability {
                    obs::global().record(Stage::Admit, Some(id.0), submitted_at.elapsed(), None);
                }
                Ok((id, state))
            }
            Err(PushError::Full(_)) => {
                inner.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull {
                    capacity: inner.config.queue_capacity,
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// The service's factor store: published truncated factors and
    /// their hit/miss/eviction counters.
    pub fn store(&self) -> &FactorStore {
        &self.inner.store
    }

    /// The per-client factor cache backing incremental updates: cached
    /// bases, hit/miss/eviction counters, and per-client byte usage.
    pub fn factor_cache(&self) -> &FactorCache {
        &self.inner.factor_cache
    }

    /// A point-in-time view of the service's counters and latency
    /// percentiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(
            self.inner.queue_depth(),
            self.inner.replicas_live.load(Ordering::SeqCst),
        )
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// The plan replicas currently execute under. With
    /// [`ServeConfig::autoscale`] off this is the configured
    /// `(engine_parallelism, task_parallelism)` at generation 0 forever;
    /// with it on, the controller advances it on every committed swap.
    pub fn current_plan(&self) -> PlanInfo {
        let plan = *self.inner.live_plan.lock();
        PlanInfo {
            engine_parallelism: plan.engine_parallelism,
            task_parallelism: plan.task_parallelism,
            generation: plan.generation,
        }
    }

    /// One exportable observability capture: the metrics snapshot,
    /// per-shape resource utilization merged across every completed
    /// batch, plan/profile-cache and factor-store counters, and the
    /// global span-journal summary. Render it with
    /// [`MetricsReport::to_json`] or [`MetricsReport::to_prometheus`].
    pub fn metrics_report(&self) -> MetricsReport {
        self.inner.metrics_report()
    }

    /// The most recent capture taken by the in-process scraper, or
    /// `None` when no scrape has happened yet (including when
    /// [`ServeConfig::metrics_scrape_interval`] is unset).
    pub fn latest_scrape(&self) -> Option<MetricsReport> {
        self.inner.latest_scrape.lock().clone()
    }

    /// Stops admitting, drains every queued request to a terminal state,
    /// and joins the batcher and all replicas. Idempotent; also run on
    /// drop.
    pub fn shutdown(&self) {
        if self.shutdown_done.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.admission.close();
        if let Some(sched) = &self.inner.scheduler {
            sched.close();
        }
        *self.inner.autoscale_stop.lock() = true;
        self.inner.autoscale_cv.notify_all();
        if let Some(handle) = self.autoscaler.lock().take() {
            let _ = handle.join();
        }
        *self.inner.scraper_stop.lock() = true;
        self.inner.scraper_cv.notify_all();
        if let Some(handle) = self.scraper.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.batcher.lock().take() {
            let _ = handle.join();
        }
        // The batcher closed the dispatch queue on exit; replicas drain
        // it and retire. Replacement replicas may register while we join,
        // so loop until the registry is empty.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut workers = self.inner.workers.lock();
                workers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for SvdService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Batcher thread: forms batches until admission is closed and drained,
/// then closes the dispatch queue so replicas retire.
fn batcher_main(inner: Arc<Inner>) {
    // The batcher thread is the single writer of the shed level, so the
    // controller's state lives on its stack.
    let mut shed = ShedController::new(
        inner.config.shed_threshold,
        std::time::Duration::from_millis(100),
    );
    loop {
        let outcome = match &inner.scheduler {
            Some(sched) => {
                shed.update(&inner.metrics, sched);
                scheduler::form_batch_classed(
                    sched,
                    &inner.config,
                    &inner.metrics,
                    &|key, class| inner.class_policy(key, class),
                )
            }
            None => batcher::form_batch(&inner.admission, &inner.config, &inner.metrics),
        };
        match outcome {
            FormOutcome::Formed(batch) => {
                if let Err(PushError::Closed(batch)) = inner.dispatch.push(batch) {
                    // Dispatch can only close after this thread exits, but
                    // fail the batch defensively rather than dropping it.
                    fail_batch(&inner, &batch, &ServeError::ShuttingDown);
                    break;
                }
            }
            FormOutcome::Idle => continue,
            FormOutcome::Drained => break,
        }
    }
    inner.dispatch.close();
}

/// Spawns one replica thread and registers it for shutdown joining. The
/// spawn ordinal doubles as the replica's home dispatch sub-pool (a
/// replacement replica inherits a fresh ordinal; pool assignment only
/// needs to spread replicas, not stay stable).
fn spawn_replica(inner: &Arc<Inner>) {
    let home = inner
        .metrics
        .replicas_spawned
        .fetch_add(1, Ordering::Relaxed) as usize;
    inner.replicas_live.fetch_add(1, Ordering::SeqCst);
    let thread_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name("svd-replica".into())
        .spawn(move || replica_main(thread_inner, home))
        .expect("failed to spawn replica thread");
    inner.workers.lock().push(handle);
}

/// Replica thread: executes batches until the dispatch queue drains.
/// A panic while serving a batch fails that batch, retires this replica,
/// and spawns a replacement.
fn replica_main(inner: Arc<Inner>, home: usize) {
    let mut accelerators: HashMap<AcceleratorKey, (Accelerator, PlanInfo)> = HashMap::new();
    let mut accel_generation: u64 = 0;
    loop {
        match inner.dispatch.pop(home, batcher::POLL_TICK, &inner.metrics) {
            PopResult::Item(mut batch) => {
                // Read the live plan exactly once per batch: the whole
                // batch executes under this plan even if the controller
                // swaps mid-run (drain-and-replace).
                let plan = *inner.live_plan.lock();
                if plan.generation != accel_generation {
                    // The plan changed since this replica last built its
                    // accelerators; drop them so this batch (and every
                    // later one) rebuilds under the new plan.
                    accelerators.clear();
                    accel_generation = plan.generation;
                }
                let exec_started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute_batch(&inner, &mut accelerators, &mut batch, exec_started, plan)
                }));
                if let Err(payload) = outcome {
                    let err = ServeError::from(HeteroSvdError::worker_panicked(payload.as_ref()));
                    inner.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    fail_batch(&inner, &batch, &err);
                    inner.replicas_live.fetch_sub(1, Ordering::SeqCst);
                    // Replace the poisoned replica; during shutdown the
                    // replacement drains the closed queue and retires.
                    spawn_replica(&inner);
                    return;
                }
            }
            PopResult::TimedOut => continue,
            PopResult::Closed => break,
        }
    }
    inner.replicas_live.fetch_sub(1, Ordering::SeqCst);
}

/// Completes every still-pending request of `batch` with `err`.
fn fail_batch(inner: &Inner, batch: &Batch, err: &ServeError) {
    for entry in &batch.entries {
        if entry.request.state.complete(Err(err.clone())) {
            inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs one batch on this replica: last-moment lifecycle checks, then
/// the decompose or apply execution path for the batch's key.
fn execute_batch(
    inner: &Inner,
    accelerators: &mut HashMap<AcceleratorKey, (Accelerator, PlanInfo)>,
    batch: &mut Batch,
    exec_started: Instant,
    plan: LivePlan,
) {
    // Last-moment lifecycle checks: cancelled or expired requests are
    // completed here and excluded from the run.
    let now = Instant::now();
    let mut live: Vec<usize> = Vec::with_capacity(batch.entries.len());
    for (idx, entry) in batch.entries.iter().enumerate() {
        if entry.request.state.is_cancelled() {
            if entry.request.state.complete(Err(ServeError::Cancelled)) {
                inner.metrics.record_cancelled(entry.request.request_type());
            }
        } else if entry.request.deadline_elapsed(now) {
            // Second drop point, distinct from the batcher's pickup
            // check: the deadline passed while the batch was forming or
            // waiting for a replica. Counting it separately tells an
            // operator whether to shrink the linger or add replicas.
            if entry
                .request
                .state
                .complete(Err(ServeError::DeadlineExceeded))
            {
                inner
                    .metrics
                    .record_timed_out_exec(entry.request.request_type());
            }
        } else {
            live.push(idx);
        }
    }
    if live.is_empty() {
        return;
    }
    if let Some(&pill) = live.iter().find(|&&i| batch.entries[i].request.poison) {
        panic!(
            "poison pill {} detonated in replica",
            batch.entries[pill].request.id
        );
    }

    inner
        .metrics
        .batches_dispatched
        .fetch_add(1, Ordering::Relaxed);
    match batch.key {
        crate::request::BatchKey::Decompose { rows, cols } => {
            execute_decompose(
                inner,
                accelerators,
                batch,
                &live,
                exec_started,
                (rows, cols),
                plan,
            );
        }
        crate::request::BatchKey::Apply { .. } => {
            execute_apply(inner, batch, &live, exec_started, plan);
        }
        crate::request::BatchKey::Update { rows, cols } => {
            execute_update(
                inner,
                accelerators,
                batch,
                &live,
                exec_started,
                (rows, cols),
                plan,
            );
        }
    }
}

/// Runs one shape-uniform decompose batch on this replica's accelerator,
/// charging each request the shared Eq. (14) system time. Each live
/// request's matrix is *moved* into the accelerator (zero-copy) — except
/// a publish request's, which is cloned first because truncation may
/// need the original to recover `V` — while the entry itself stays
/// behind for completion bookkeeping and for [`fail_batch`] should this
/// replica panic.
fn execute_decompose(
    inner: &Inner,
    accelerators: &mut HashMap<AcceleratorKey, (Accelerator, PlanInfo)>,
    batch: &mut Batch,
    live: &[usize],
    exec_started: Instant,
    shape: (usize, usize),
    plan: LivePlan,
) {
    // Packing decision: a same-shape batch of w >= 2 small problems
    // executes as one wave of w co-resident tenants on disjoint
    // sub-grids. Any failure along the packed path (config, placement,
    // lanes, accelerator build) falls back to the sequential w = 1 path
    // rather than failing the batch.
    let mut tenants = inner
        .config
        .packed_tenants_at(shape, live.len(), plan.engine_parallelism);
    if tenants >= 2
        && (plan_wave_placement(inner, shape, tenants, plan).is_none()
            || cached_accelerator(accelerators, inner, shape, tenants, plan).is_err())
    {
        tenants = 1;
    }
    let (accelerator, plan_info) =
        match cached_accelerator(accelerators, inner, shape, tenants, plan) {
            Ok(pair) => pair,
            Err(e) => {
                let err = ServeError::from(e);
                for &i in live {
                    if batch.entries[i].request.state.complete(Err(err.clone())) {
                        inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                return;
            }
        };
    if tenants >= 2 {
        inner.metrics.record_packed(live.len() as u64);
    }

    // Move each matrix out of its entry instead of cloning it (the old
    // path copied rows × cols × 8 bytes per request per batch). The
    // empty placeholder does not allocate. Publish requests keep a copy
    // of the original: `SvdResult::truncate` recovers V from it.
    let mut matrices: Vec<Matrix<f32>> = Vec::with_capacity(live.len());
    let mut publishes: Vec<Option<(PublishSpec, Matrix<f32>)>> = Vec::with_capacity(live.len());
    for &i in live {
        match &mut batch.entries[i].request.payload {
            Payload::Decompose {
                matrix, publish, ..
            } => {
                let m = std::mem::replace(matrix, Matrix::zeros(0, 0));
                publishes.push(publish.map(|spec| (spec, m.clone())));
                matrices.push(m);
            }
            _ => unreachable!("non-decompose request in a decompose batch"),
        }
    }
    match accelerator.run_many_f32(matrices) {
        Ok((outputs, system_time)) => {
            if inner.config.observability {
                obs::global().record(
                    Stage::ReplicaExec,
                    None,
                    exec_started.elapsed(),
                    Some(system_time),
                );
                // Merge each run's utilization into the per-shape
                // aggregate: horizons and busy times add, so the busy
                // fractions stay per-run averages.
                let mut batch_util: Option<UtilizationReport> = None;
                for output in &outputs {
                    if let Some(util) = output.utilization.as_ref() {
                        match batch_util.as_mut() {
                            Some(acc) => acc.merge(util),
                            None => batch_util = Some(util.clone()),
                        }
                    }
                }
                if let Some(util) = batch_util {
                    merge_shape_utilization(inner, shape, util);
                }
            }
            for ((&i, output), publish) in live.iter().zip(outputs).zip(publishes) {
                let entry = &batch.entries[i];
                // Publish before completing the handle so a caller that
                // waits on the publish handle observes the new version.
                let mut publish_err = None;
                if let Some((spec, original)) = publish {
                    match output.result.truncate(&original, spec.rank) {
                        Ok(truncated) => {
                            inner.store.publish(spec.model, truncated);
                        }
                        Err(e) => publish_err = Some(e),
                    }
                }
                if let Some(e) = publish_err {
                    let err = ServeError::from(HeteroSvdError::Numeric(e));
                    if entry.request.state.complete(Err(err)) {
                        inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
                let latency = LatencyRecord {
                    queue_wait: entry
                        .picked_at
                        .saturating_duration_since(entry.request.submitted_at),
                    batch_linger: exec_started.saturating_duration_since(entry.picked_at),
                    sim_exec_ps: system_time.0,
                    batch_size: live.len(),
                    wall_total: entry.request.submitted_at.elapsed(),
                    plan: plan_info,
                };
                let response = SvdResponse {
                    id: entry.request.id,
                    output,
                    latency,
                };
                // Record before completing: complete() wakes the waiter,
                // and a caller snapshotting metrics right after wait()
                // must observe its own completion. A live entry has no
                // other completer (the batcher only completes requests it
                // never dispatched), so this replica always wins.
                inner
                    .metrics
                    .record_completed(RequestType::Decompose, entry.request.class);
                inner.metrics.record_latency(
                    &latency,
                    RequestType::Decompose,
                    Some(shape),
                    entry.request.class,
                );
                entry.request.state.complete(Ok(Completion::Svd(response)));
            }
        }
        Err(e) => {
            let err = ServeError::from(e);
            for &i in live {
                if batch.entries[i].request.state.complete(Err(err.clone())) {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Runs one (model, version)-uniform apply batch directly against the
/// pinned store-resident factors: the numeric work is the exact rank-r
/// product (no accelerator involvement, no factor copies), and every
/// request is charged the modeled Eq. 8–14 apply-pipeline system time
/// `⌈B / P_task⌉ · max_entry(t_apply)` from the replayed profile cache.
fn execute_apply(
    inner: &Inner,
    batch: &mut Batch,
    live: &[usize],
    exec_started: Instant,
    plan: LivePlan,
) {
    let factors: Arc<PublishedFactors> = match &batch.entries[live[0]].request.payload {
        Payload::Apply { factors, .. } => Arc::clone(factors),
        _ => unreachable!("non-apply request in an apply batch"),
    };
    let meta = factors.meta;

    // First pass: modeled timing (replayed after the first probe per
    // (shape, rank)) and the exact rank-r products.
    let mut worst_timing: Option<heterosvd::ApplyTiming> = None;
    let mut batch_util: Option<UtilizationReport> = None;
    let mut results: Vec<Option<(usize, Vec<f32>)>> = Vec::with_capacity(live.len());
    for &i in live {
        let (x, rank) = match &batch.entries[i].request.payload {
            Payload::Apply { x, rank, .. } => (x, *rank),
            _ => unreachable!("non-apply request in an apply batch"),
        };
        let outcome = ApplyShape::new(meta.rows, meta.cols, rank)
            .map_err(ServeError::from)
            .and_then(|shape| {
                let profile =
                    heterosvd::apply::global_profiles().get_or_probe(&inner.apply_model, shape);
                if worst_timing.is_none_or(|t| profile.timing.total > t.total) {
                    worst_timing = Some(profile.timing);
                }
                if inner.config.observability {
                    let util = UtilizationReport::from_stats(
                        &profile.stats,
                        ResourceCounts {
                            plio_ports: 2,
                            aie_cores: inner.apply_model.engine_parallelism(),
                            dma_channels: 0,
                            ddr_controllers: 0,
                        },
                    );
                    match batch_util.as_mut() {
                        Some(acc) => acc.merge(&util),
                        None => batch_util = Some(util),
                    }
                }
                factors
                    .factors
                    .apply_rank(x, rank)
                    .map_err(|e| ServeError::from(HeteroSvdError::Numeric(e)))
            });
        match outcome {
            Ok(y) => results.push(Some((rank, y))),
            Err(err) => {
                if batch.entries[i].request.state.complete(Err(err)) {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
                results.push(None);
            }
        }
    }

    // Eq. 14 over the batch: the slowest entry's apply time paces each
    // wave of P_task concurrent applies.
    let system =
        worst_timing.map(|t| t.system_time(live.len(), inner.apply_model.task_parallelism()));
    let system_ps = system.map_or(0, |t| t.0);
    if inner.config.observability {
        obs::global().record(Stage::Apply, None, exec_started.elapsed(), system);
        if let Some(util) = batch_util {
            merge_shape_utilization(inner, (meta.rows, meta.cols), util);
        }
    }

    // Second pass: complete with the shared batch system time.
    for (&i, result) in live.iter().zip(results) {
        let Some((rank, y)) = result else { continue };
        let entry = &batch.entries[i];
        let latency = LatencyRecord {
            queue_wait: entry
                .picked_at
                .saturating_duration_since(entry.request.submitted_at),
            batch_linger: exec_started.saturating_duration_since(entry.picked_at),
            sim_exec_ps: system_ps,
            batch_size: live.len(),
            wall_total: entry.request.submitted_at.elapsed(),
            // Apply never touches the accelerator array: its pipeline is
            // modeled from the frozen base config, whatever the live
            // decompose plan is.
            plan: PlanInfo {
                engine_parallelism: inner.config.engine_parallelism,
                task_parallelism: inner.config.task_parallelism,
                generation: plan.generation,
            },
        };
        let response = crate::request::ApplyResponse {
            id: entry.request.id,
            model: factors.model,
            version: factors.version,
            rank,
            y,
            meta,
            latency,
        };
        // Record before completing (see execute_decompose): the waiter
        // wakes on complete() and may snapshot metrics immediately.
        inner
            .metrics
            .record_completed(RequestType::Apply, entry.request.class);
        inner
            .metrics
            .record_latency(&latency, RequestType::Apply, None, entry.request.class);
        entry
            .request
            .state
            .complete(Ok(Completion::Apply(response)));
    }
}

/// Runs one shape-uniform update batch. Unlike decompose there is no
/// shared accelerator run: each live request rides its own client's
/// cached basis along the route pinned at admission, so requests
/// execute independently — a warm-started solve through this replica's
/// accelerator, a host-only low-rank bump, or a full recompute.
fn execute_update(
    inner: &Inner,
    accelerators: &mut HashMap<AcceleratorKey, (Accelerator, PlanInfo)>,
    batch: &mut Batch,
    live: &[usize],
    exec_started: Instant,
    shape: (usize, usize),
    plan: LivePlan,
) {
    for &i in live {
        let (matrix, client, cached, class) = match &mut batch.entries[i].request.payload {
            Payload::Update {
                matrix,
                client,
                entry,
                class,
                ..
            } => (
                // Moved, never cloned — same discipline as decompose.
                std::mem::replace(matrix, Matrix::zeros(0, 0)),
                *client,
                entry.take(),
                class.take(),
            ),
            _ => unreachable!("non-update request in an update batch"),
        };
        let route = class
            .as_ref()
            .map_or(UpdateRoute::Full(FallbackReason::ColdStart), |c| c.route);
        let delta_rel = class.as_ref().map_or(0.0, |c| c.delta_rel);
        let started = Instant::now();
        let outcome = run_update_route(
            inner,
            accelerators,
            shape,
            client,
            matrix,
            cached,
            class,
            plan,
        );
        let entry = &batch.entries[i];
        match outcome {
            Ok((sigma, output, modeled, plan_info)) => {
                match route {
                    UpdateRoute::WarmStart => inner.metrics.record_warm_start_hit(),
                    UpdateRoute::LowRank { .. } => inner.metrics.record_lowrank_hit(),
                    // Cold-start fulls are cache misses, not staleness;
                    // only classification-driven fallbacks count here.
                    UpdateRoute::Full(FallbackReason::ColdStart) => {}
                    UpdateRoute::Full(_) => inner.metrics.record_staleness_fallback(),
                }
                if inner.config.observability {
                    obs::global().record(
                        Stage::Update,
                        Some(entry.request.id.0),
                        started.elapsed(),
                        modeled,
                    );
                    if let Some(util) = output.as_ref().and_then(|o| o.utilization.as_ref()) {
                        merge_shape_utilization(inner, shape, util.clone());
                    }
                }
                let latency = LatencyRecord {
                    queue_wait: entry
                        .picked_at
                        .saturating_duration_since(entry.request.submitted_at),
                    batch_linger: exec_started.saturating_duration_since(entry.picked_at),
                    // 0 for the host-only low-rank route: no modeled
                    // accelerator time exists (that's the speedup).
                    sim_exec_ps: modeled.map_or(0, |t| t.0),
                    batch_size: live.len(),
                    wall_total: entry.request.submitted_at.elapsed(),
                    plan: plan_info,
                };
                let warm_start = output.as_ref().and_then(|o| o.warm_start);
                let response = UpdateResponse {
                    id: entry.request.id,
                    client,
                    route,
                    delta_rel,
                    sigma,
                    output,
                    warm_start,
                    latency,
                };
                // Record before completing (see execute_decompose).
                inner
                    .metrics
                    .record_completed(RequestType::Update, entry.request.class);
                inner.metrics.record_latency(
                    &latency,
                    RequestType::Update,
                    Some(shape),
                    entry.request.class,
                );
                entry
                    .request
                    .state
                    .complete(Ok(Completion::Update(response)));
            }
            Err(err) => {
                if entry.request.state.complete(Err(err)) {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// What [`run_update_route`] hands back per request: the served
/// spectrum, the accelerator output when one ran, the modeled task
/// time (`None` for the host-only low-rank route), and the plan the
/// route executed under (the frozen base plan for host-only routes).
type UpdateOutcome = (Vec<f32>, Option<HeteroSvdOutput>, Option<TimePs>, PlanInfo);

/// Executes one update along its admitted route and refreshes the
/// client's cache entry.
#[allow(clippy::too_many_arguments)]
fn run_update_route(
    inner: &Inner,
    accelerators: &mut HashMap<AcceleratorKey, (Accelerator, PlanInfo)>,
    shape: (usize, usize),
    client: ClientId,
    matrix: Matrix<f32>,
    cached: Option<Arc<FactorCacheEntry>>,
    class: Option<UpdateClass<f32>>,
    plan: LivePlan,
) -> Result<UpdateOutcome, ServeError> {
    let route = class
        .as_ref()
        .map_or(UpdateRoute::Full(FallbackReason::ColdStart), |c| c.route);
    // Truncation rank of the refreshed cache entry, clamped per shape.
    let cache_rank = inner
        .config
        .update_cache_rank
        .min(shape.0.min(shape.1))
        .max(1);
    // Host-only routes never touch the accelerator array; their plan
    // attribution is the frozen base plan at the current generation.
    let host_plan = PlanInfo {
        engine_parallelism: inner.config.engine_parallelism,
        task_parallelism: inner.config.task_parallelism,
        generation: plan.generation,
    };
    let numeric = |e| ServeError::from(HeteroSvdError::Numeric(e));
    match route {
        UpdateRoute::LowRank { rank: 0 } => {
            // Identical resubmission: the cached truncated factors
            // already answer it. No solve, no republish.
            let cached = cached.expect("rank-0 route requires a cache entry");
            Ok((cached.truncated.sigma.clone(), None, None, host_plan))
        }
        UpdateRoute::LowRank { .. } => {
            let cached = cached.expect("low-rank route requires a cache entry");
            let factor = class
                .and_then(|c| c.factor)
                .expect("low-rank route carries the factored delta");
            let updated = lowrank_update(&cached.truncated, &factor, &core_jacobi_options(inner))
                .map_err(numeric)?;
            let sigma = updated.sigma.clone();
            // The full basis and spectrum stay stale (the warm-solve
            // budget bounds how long before a full refresh); only the
            // truncated factors and the fingerprint advance.
            inner.factor_cache.publish(FactorCacheEntry::new(
                client,
                matrix,
                cached.v.clone(),
                cached.sigma.clone(),
                updated,
                cached.warm_solves_since_full + 1,
            ));
            Ok((sigma, None, None, host_plan))
        }
        UpdateRoute::WarmStart => {
            let cached = cached.expect("warm route requires a cache entry");
            let (accelerator, plan_info) = cached_accelerator(accelerators, inner, shape, 1, plan)
                .map_err(ServeError::from)?;
            let output = accelerator
                .run_warm_f32(&matrix, &cached.v)
                .map_err(ServeError::from)?;
            let modeled = output.timing.task_time;
            let v = output.result.v.clone().expect("warm runs compose V");
            let truncated = output
                .result
                .truncate(&matrix, cache_rank)
                .map_err(numeric)?;
            let sigma = sorted_sigma(&output.result.sigma);
            inner.factor_cache.publish(FactorCacheEntry::new(
                client,
                matrix,
                v,
                sigma.clone(),
                truncated,
                cached.warm_solves_since_full + 1,
            ));
            Ok((sigma, Some(output), Some(modeled), plan_info))
        }
        UpdateRoute::Full(_) => {
            let (accelerator, plan_info) = cached_accelerator(accelerators, inner, shape, 1, plan)
                .map_err(ServeError::from)?;
            let output = accelerator.run_f32(&matrix).map_err(ServeError::from)?;
            let modeled = output.timing.task_time;
            let v = output.result.recover_v(&matrix).map_err(numeric)?;
            let truncated = output
                .result
                .truncate(&matrix, cache_rank)
                .map_err(numeric)?;
            let sigma = sorted_sigma(&output.result.sigma);
            // Full refresh: the staleness counter restarts.
            inner.factor_cache.publish(FactorCacheEntry::new(
                client,
                matrix,
                v,
                sigma.clone(),
                truncated,
                0,
            ));
            Ok((sigma, Some(output), Some(modeled), plan_info))
        }
    }
}

/// The accelerator reports singular values in pipeline column order;
/// the update path serves them descending (matching the truncated
/// factors the low-rank route serves), so the order is a contract, not
/// an artifact of the route taken.
fn sorted_sigma(sigma: &[f32]) -> Vec<f32> {
    let mut sorted = sigma.to_vec();
    sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("sigma is finite"));
    sorted
}

/// Jacobi options for the host-side low-rank core solve: `f32` core
/// arithmetic cannot push the off-diagonal as far as the accelerator's
/// default `f64`-tuned precision, so the configured precision is
/// floored at an `f32`-reachable level.
fn core_jacobi_options(inner: &Inner) -> JacobiOptions {
    JacobiOptions {
        precision: inner.config.precision.max(1e-5),
        compute_v: true,
        adaptive: false,
        ..JacobiOptions::default()
    }
}

/// Merges `util` into the per-shape aggregate under `shape`.
fn merge_shape_utilization(inner: &Inner, shape: (usize, usize), util: UtilizationReport) {
    let mut shapes = inner.utilization.lock();
    match shapes.get_mut(&shape) {
        Some(acc) => acc.merge(&util),
        None => {
            shapes.insert(shape, util);
        }
    }
}

/// Replica accelerator-cache key: request shape plus the wave's tenant
/// count (1 = the sequential path). Packed and solo accelerators are
/// distinct because the tenant count changes both the Eq. (14) wave
/// width and the contention class of the timing profile.
type AcceleratorKey = ((usize, usize), usize);

/// Resolves the accelerator config for `shape` under the live plan,
/// plus the plan attribution actually in effect. A shape the live plan
/// cannot serve — first seen *after* a swap, violating the new
/// `P_eng`'s divisibility constraint (the mix DSE only guarantees
/// feasibility for shapes observed before it swept) — falls back to
/// the frozen base plan, which admission already validated against.
fn plan_config(
    inner: &Inner,
    shape: (usize, usize),
    tenants: usize,
    plan: LivePlan,
) -> Result<(heterosvd::HeteroSvdConfig, PlanInfo), HeteroSvdError> {
    let live = if tenants >= 2 {
        inner
            .config
            .packed_accelerator_config_at(shape, plan.engine_parallelism, tenants)
    } else {
        inner
            .config
            .accelerator_config_at(shape, plan.engine_parallelism, plan.task_parallelism)
    };
    let config = match live {
        Ok(config) => config,
        Err(e) if plan.engine_parallelism == inner.config.engine_parallelism => return Err(e),
        Err(_) => {
            if tenants >= 2 {
                inner.config.packed_accelerator_config(shape, tenants)?
            } else {
                inner.config.accelerator_config(shape)?
            }
        }
    };
    let info = PlanInfo {
        engine_parallelism: config.engine_parallelism,
        task_parallelism: config.task_parallelism,
        generation: plan.generation,
    };
    Ok((config, info))
}

/// Returns this replica's accelerator for `shape` at `tenants`-way
/// co-residency under the live plan, building it on first use, plus
/// the plan attribution it was built under.
fn cached_accelerator<'a>(
    accelerators: &'a mut HashMap<AcceleratorKey, (Accelerator, PlanInfo)>,
    inner: &Inner,
    shape: (usize, usize),
    tenants: usize,
    plan: LivePlan,
) -> Result<(&'a Accelerator, PlanInfo), HeteroSvdError> {
    use std::collections::hash_map::Entry;
    match accelerators.entry((shape, tenants)) {
        Entry::Occupied(slot) => {
            let (accelerator, info) = slot.into_mut();
            Ok((accelerator, *info))
        }
        Entry::Vacant(slot) => {
            let (config, info) = plan_config(inner, shape, tenants, plan)?;
            let accelerator = Accelerator::new(config)?;
            let (accelerator, info) = slot.insert((accelerator, info));
            Ok((accelerator, *info))
        }
    }
}

/// Places one packed wave: carves `tenants` disjoint full-height stripes
/// out of the device and assigns each its private PLIO lane block.
/// Returns `None` when the wave does not fit (the caller falls back to
/// the sequential path). The stripes are released when the allocator
/// drops — placement is per-wave, so a replica's next wave (possibly a
/// different shape) starts from an empty array.
fn plan_wave_placement(
    inner: &Inner,
    shape: (usize, usize),
    tenants: usize,
    plan: LivePlan,
) -> Option<Vec<heterosvd::SubGrid>> {
    let (config, _) = plan_config(inner, shape, 1, plan).ok()?;
    let mut allocator = heterosvd::SubGridAllocator::new(config.geometry());
    let stripes: Vec<heterosvd::SubGrid> = (0..tenants)
        .map(|_| allocator.allocate_tenant(config.engine_parallelism))
        .collect::<Option<Vec<_>>>()?;
    heterosvd::assign_tenant_lanes(tenants, config.device.budget.plio).ok()?;
    Some(stripes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn test_matrix(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64 * 31 + c as u64 * 7 + salt * 13) % 17;
            x as f64 / 4.0 - 2.0 + if r == c { 3.0 } else { 0.0 }
        })
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_request_round_trip() {
        let service = SvdService::start(quick_config()).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 1)).unwrap();
        let response = handle.wait().unwrap();
        assert_eq!(response.output.result.sigma.len(), 8);
        assert!(response.latency.sim_exec_ps > 0);
        service.shutdown();
        let m = service.metrics();
        assert_eq!(m.completed_ok, 1);
        assert_eq!(m.replicas_live, 0);
    }

    #[test]
    fn packed_waves_are_bit_identical_to_sequential() {
        // The same eight matrices through a packing service and a
        // sequential one: every factor must match bitwise (the
        // contention model never touches the math), and the packing
        // service must have actually packed at least one wave.
        let matrices: Vec<_> = (0..8).map(|s| test_matrix(16, 16, s)).collect();
        let run = |packing: bool| {
            let config = ServeConfig {
                workers: 1,
                max_batch: 8,
                // Long linger so the batcher reliably forms multi-request
                // batches from the burst below.
                max_linger: Duration::from_millis(50),
                array_packing: packing,
                ..quick_config()
            };
            let service = SvdService::start(config).unwrap();
            let handles: Vec<_> = matrices
                .iter()
                .map(|m| service.try_submit(m.clone()).unwrap())
                .collect();
            let outputs: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
            service.shutdown();
            (outputs, service.metrics())
        };
        let (packed, packed_metrics) = run(true);
        let (sequential, sequential_metrics) = run(false);
        assert!(
            packed_metrics.packed_batches >= 1,
            "packing service never packed: {packed_metrics:?}"
        );
        assert!(
            packed_metrics.packed_requests >= 2,
            "a packed wave covers at least two requests: {packed_metrics:?}"
        );
        assert_eq!(sequential_metrics.packed_batches, 0);
        for (p, s) in packed.iter().zip(&sequential) {
            assert_eq!(p.output.result.sigma, s.output.result.sigma);
            assert_eq!(p.output.result.u.as_slice(), s.output.result.u.as_slice());
        }
    }

    #[test]
    fn unpackable_shape_falls_back_to_sequential() {
        // P_eng = 8 stripes span the whole array (capacity 1), so even a
        // full batch must take the sequential path — and still succeed.
        let config = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_linger: Duration::from_millis(50),
            engine_parallelism: 8,
            // A P_eng = 8 pipeline nearly fills the array; replicated
            // pipelines would blow the Eq. 16 AIE budget outright.
            task_parallelism: 1,
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|s| service.try_submit(test_matrix(16, 16, s)).unwrap())
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        service.shutdown();
        let m = service.metrics();
        assert_eq!(m.completed_ok, 4);
        assert_eq!(m.packed_batches, 0, "capacity-1 shape must not pack");
    }

    #[test]
    fn invalid_shape_is_rejected_at_admission() {
        let service = SvdService::start(quick_config()).unwrap();
        // P_eng = 2 means cols must be a multiple of 4.
        let err = service.try_submit(test_matrix(9, 6, 0)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        assert_eq!(service.metrics().rejected_invalid, 1);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let service = SvdService::start(quick_config()).unwrap();
        service.shutdown();
        let err = service.try_submit(test_matrix(8, 8, 0)).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
        let err = service
            .try_submit_apply(ModelId(0), &[0.0; 8], None)
            .unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn cancelled_request_completes_with_cancelled() {
        // One slow-to-start service path: saturate with a linger so the
        // cancel lands while the request is still queued.
        let config = ServeConfig {
            max_linger: Duration::from_millis(50),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 2)).unwrap();
        handle.cancel();
        match handle.wait() {
            Err(ServeError::Cancelled) => {}
            // The race is legal: the batch may already have executed.
            Ok(response) => assert_eq!(response.output.result.sigma.len(), 8),
            Err(other) => panic!("unexpected terminal state: {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn zero_timeout_requests_time_out() {
        let service = SvdService::start(quick_config()).unwrap();
        let handle = service
            .try_submit_with(
                test_matrix(8, 8, 3),
                SubmitOptions {
                    timeout: Some(Duration::ZERO),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(service.metrics().timed_out, 1);
        service.shutdown();
    }

    #[test]
    fn deadline_expiring_during_linger_is_counted_at_batcher() {
        // The request is alive when the batcher picks it up (generous
        // 100 ms deadline) but the batch lingers 400 ms waiting to fill,
        // so the deadline has passed by the time the batch seals. The
        // regression this guards: the batcher's dispatch-time re-filter
        // must drop (and count) the expired request on its side of the
        // boundary — before the fix it rode the formed batch and was
        // miscounted as a replica-side timeout, which tells an operator
        // to grow the pool when the actual remedy is a shorter linger.
        let config = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_linger: Duration::from_millis(400),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service
            .try_submit_with(
                test_matrix(8, 8, 4),
                SubmitOptions {
                    timeout: Some(Duration::from_millis(100)),
                    ..SubmitOptions::default()
                },
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let m = service.metrics();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.timed_out_at_batcher, 1);
        assert_eq!(m.timed_out_at_exec, 0);
        assert_eq!(m.per_type.decompose.timed_out_at_batcher, 1);
        service.shutdown();
    }

    #[test]
    fn publish_then_apply_round_trip_is_bit_identical() {
        let service = SvdService::start(quick_config()).unwrap();
        let a = test_matrix(8, 8, 5);
        let model = ModelId(1);
        service
            .try_submit_publish(model, a.clone(), 4)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(service.store().version_of(model), Some(1));

        let x: Vec<f64> = (0..8).map(|i| i as f64 / 3.0 - 1.0).collect();
        let response = service
            .try_submit_apply(model, &x, None)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(response.model, model);
        assert_eq!(response.version, 1);
        assert_eq!(response.rank, 4);
        assert!(response.latency.sim_exec_ps > 0);
        assert!(response.meta.retained_energy > 0.0);

        // Bit-identical to the direct truncated product at the same rank.
        let pinned = service.store().get(model).unwrap();
        let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
        let expect = pinned.factors.apply_rank(&xf, 4).unwrap();
        assert_eq!(response.y, expect);

        let m = service.metrics();
        assert_eq!(m.per_type.apply.completed_ok, 1);
        assert_eq!(m.per_type.decompose.completed_ok, 1);
        assert_eq!(m.per_type.apply.submitted, 1);
        assert!(m.per_type.apply.sim_exec_ps.p50 > 0);
        service.shutdown();
    }

    #[test]
    fn rank_hint_caps_the_applied_rank() {
        let service = SvdService::start(quick_config()).unwrap();
        let model = ModelId(9);
        service
            .try_submit_publish(model, test_matrix(8, 8, 6), 6)
            .unwrap()
            .wait()
            .unwrap();
        let x = vec![0.5; 8];
        let response = service
            .try_submit_apply(model, &x, Some(2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(response.rank, 2);
        // A rank-2 apply must equal the rank-2 prefix of the factors.
        let pinned = service.store().get(model).unwrap();
        let expect = pinned.factors.apply_rank(&[0.5f32; 8], 2).unwrap();
        assert_eq!(response.y, expect);
        service.shutdown();
    }

    #[test]
    fn apply_validation_rejects_bad_requests() {
        let service = SvdService::start(quick_config()).unwrap();
        // Unknown model.
        let err = service
            .try_submit_apply(ModelId(404), &[0.0; 8], None)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        // Publish, then bad vector length and bad rank hints.
        let model = ModelId(2);
        service
            .try_submit_publish(model, test_matrix(8, 8, 7), 4)
            .unwrap()
            .wait()
            .unwrap();
        for (x_len, hint) in [(7, None), (8, Some(0)), (8, Some(5))] {
            let err = service
                .try_submit_apply(model, &vec![0.0; x_len], hint)
                .unwrap_err();
            assert!(
                matches!(err, ServeError::InvalidRequest(_)),
                "{x_len} {hint:?}"
            );
        }
        // Publish rank outside 1..=cols.
        let err = service
            .try_submit_publish(ModelId(3), test_matrix(8, 8, 8), 9)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        assert_eq!(service.metrics().rejected_invalid, 5);
        service.shutdown();
    }

    fn incremental_config() -> ServeConfig {
        ServeConfig {
            incremental: true,
            ..quick_config()
        }
    }

    #[test]
    fn updates_require_the_incremental_knob() {
        let service = SvdService::start(quick_config()).unwrap();
        let err = service
            .try_submit_update(ClientId(1), test_matrix(8, 8, 0))
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        assert_eq!(service.metrics().rejected_invalid, 1);
        service.shutdown();
    }

    #[test]
    fn update_routes_cold_identical_and_warm() {
        let service = SvdService::start(incremental_config()).unwrap();
        let client = ClientId(7);
        let a0 = test_matrix(8, 8, 20);

        // Cold start: no cached entry, full solve, cache refreshed.
        let cold = service
            .try_submit_update(client, a0.clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(cold.route, UpdateRoute::Full(FallbackReason::ColdStart));
        assert_eq!(cold.sigma.len(), 8);
        assert!(cold.latency.sim_exec_ps > 0);
        assert!(cold.output.is_some());
        assert!(service.factor_cache().get(client).is_some());

        // Identical resubmission: served from the cached truncated
        // factors with zero modeled accelerator time.
        let same = service
            .try_submit_update(client, a0.clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(same.route, UpdateRoute::LowRank { rank: 0 });
        assert_eq!(same.latency.sim_exec_ps, 0);
        assert!(same.output.is_none());
        assert_eq!(same.sigma, cold.sigma);

        // Small dense drift: the default cache rank fills min(m, n), so
        // no low-rank headroom remains and the warm start runs.
        let a1 = Matrix::from_fn(8, 8, |r, c| {
            a0[(r, c)] + ((r * 7 + c * 13) % 5) as f64 * 1e-4
        });
        let warm = service
            .try_submit_update(client, a1.clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(warm.route, UpdateRoute::WarmStart);
        assert!(warm.delta_rel > 0.0 && warm.delta_rel < 0.25);
        let counters = warm.warm_start.expect("warm route reports counters");
        assert_eq!(counters.basis_cols, 8);
        assert!(warm.latency.sim_exec_ps > 0);
        // Warm accuracy: the spectrum matches a cold decompose of the
        // same matrix to f32 working precision.
        let golden = service.try_submit(a1).unwrap().wait().unwrap();
        let golden_sigma = sorted_sigma(&golden.output.result.sigma);
        let sig_max = f64::from(golden_sigma[0]);
        for (w, g) in warm.sigma.iter().zip(&golden_sigma) {
            assert!(
                (f64::from(*w) - f64::from(*g)).abs() / sig_max < 1e-4,
                "warm {w} vs cold {g}"
            );
        }

        let m = service.metrics();
        assert_eq!(m.lowrank_hits, 1);
        assert_eq!(m.warm_start_hits, 1);
        assert_eq!(m.staleness_fallbacks, 0);
        assert_eq!(m.per_type.update.submitted, 3);
        assert_eq!(m.per_type.update.completed_ok, 3);
        service.shutdown();
    }

    #[test]
    fn column_perturbation_takes_the_lowrank_fast_path() {
        // A small cache rank leaves low-rank headroom (r + k <= n), and
        // a single-column perturbation factors to a rank-1 delta.
        let config = ServeConfig {
            update_cache_rank: 4,
            ..incremental_config()
        };
        let service = SvdService::start(config).unwrap();
        let client = ClientId(3);
        let a0 = test_matrix(8, 8, 30);
        service
            .try_submit_update(client, a0.clone())
            .unwrap()
            .wait()
            .unwrap();
        let a1 = Matrix::from_fn(8, 8, |r, c| {
            a0[(r, c)] + if c == 2 { 1e-3 * (r + 1) as f64 } else { 0.0 }
        });
        let bumped = service
            .try_submit_update(client, a1)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(bumped.route, UpdateRoute::LowRank { rank: 1 });
        assert_eq!(bumped.sigma.len(), 4, "low-rank serves the cached rank");
        assert_eq!(bumped.latency.sim_exec_ps, 0, "host-only route");
        assert!(bumped.output.is_none());
        assert_eq!(service.metrics().lowrank_hits, 1);
        service.shutdown();
    }

    #[test]
    fn staleness_fallback_is_bit_identical_to_incremental_off() {
        // A large delta trips the staleness bound; the resulting full
        // solve must be bit-identical to the same matrix served by a
        // service with the knob off (the fallback IS the cold path).
        let a0 = test_matrix(8, 8, 40);
        let a1 = Matrix::from_fn(8, 8, |r, c| a0[(r, c)] + test_matrix(8, 8, 41)[(r, c)]);

        let on = SvdService::start(incremental_config()).unwrap();
        let client = ClientId(11);
        on.try_submit_update(client, a0.clone())
            .unwrap()
            .wait()
            .unwrap();
        let fallback = on
            .try_submit_update(client, a1.clone())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            fallback.route,
            UpdateRoute::Full(FallbackReason::DeltaTooLarge)
        );
        assert!(fallback.delta_rel > 0.25);
        assert_eq!(on.metrics().staleness_fallbacks, 1);
        on.shutdown();

        let off = SvdService::start(quick_config()).unwrap();
        let golden = off.try_submit(a1).unwrap().wait().unwrap();
        off.shutdown();
        // The served spectrum is the golden one reordered descending —
        // the same bits, by contract of the update path.
        assert_eq!(fallback.sigma, sorted_sigma(&golden.output.result.sigma));
        let output = fallback.output.expect("full route carries the output");
        assert_eq!(
            output.result.u.as_slice(),
            golden.output.result.u.as_slice()
        );
    }

    #[test]
    fn warm_budget_exhaustion_forces_a_full_refresh() {
        let config = ServeConfig {
            max_warm_solves: 2,
            ..incremental_config()
        };
        let service = SvdService::start(config).unwrap();
        let client = ClientId(5);
        let mut a = test_matrix(8, 8, 50);
        service
            .try_submit_update(client, a.clone())
            .unwrap()
            .wait()
            .unwrap();
        let mut routes = Vec::new();
        for step in 0..3 {
            a = Matrix::from_fn(8, 8, |r, c| {
                a[(r, c)] + ((r * 3 + c * 5 + step) % 7) as f64 * 1e-4
            });
            let response = service
                .try_submit_update(client, a.clone())
                .unwrap()
                .wait()
                .unwrap();
            routes.push(response.route);
        }
        assert_eq!(routes[0], UpdateRoute::WarmStart);
        assert_eq!(routes[1], UpdateRoute::WarmStart);
        assert_eq!(
            routes[2],
            UpdateRoute::Full(FallbackReason::WarmBudgetExhausted),
            "third consecutive warm solve exceeds the budget of 2"
        );
        // The full refresh restarted the counter: warm again.
        let a_next = Matrix::from_fn(8, 8, |r, c| a[(r, c)] + 1e-4 * ((r + c) % 3) as f64);
        let after = service
            .try_submit_update(client, a_next)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(after.route, UpdateRoute::WarmStart);
        assert_eq!(service.metrics().staleness_fallbacks, 1);
        service.shutdown();
    }

    #[test]
    fn evicted_clients_cold_start_instead_of_serving_stale_factors() {
        // A budget that holds exactly one client: publishing a second
        // evicts the first, whose next update must re-classify as a
        // cold start (never a stale rank-0 serve).
        let config = ServeConfig {
            factor_cache_bytes: 2_000,
            ..incremental_config()
        };
        let service = SvdService::start(config).unwrap();
        let a = test_matrix(8, 8, 60);
        service
            .try_submit_update(ClientId(1), a.clone())
            .unwrap()
            .wait()
            .unwrap();
        service
            .try_submit_update(ClientId(2), test_matrix(8, 8, 61))
            .unwrap()
            .wait()
            .unwrap();
        let stats = service.factor_cache().stats();
        assert!(stats.evictions >= 1, "budget holds one client: {stats:?}");
        assert!(service.factor_cache().get(ClientId(1)).is_none());
        let redo = service
            .try_submit_update(ClientId(1), a)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(redo.route, UpdateRoute::Full(FallbackReason::ColdStart));
        service.shutdown();
    }

    #[test]
    fn update_report_exports_cache_and_route_counters() {
        let service = SvdService::start(incremental_config()).unwrap();
        let client = ClientId(42);
        let a = test_matrix(8, 8, 70);
        service
            .try_submit_update(client, a.clone())
            .unwrap()
            .wait()
            .unwrap();
        service
            .try_submit_update(client, a)
            .unwrap()
            .wait()
            .unwrap();
        let report = service.metrics_report();
        assert_eq!(report.snapshot.lowrank_hits, 1);
        assert_eq!(report.snapshot.per_type.update.completed_ok, 2);
        assert_eq!(report.caches.factor_cache.publishes, 1);
        assert_eq!(report.caches.factor_cache.misses, 1);
        assert_eq!(report.caches.factor_cache.hits, 1);
        assert_eq!(report.caches.factor_cache.resident_clients, 1);
        assert_eq!(report.caches.factor_cache.clients.len(), 1);
        assert_eq!(report.caches.factor_cache.clients[0].client, 42);
        let prom = report.to_prometheus();
        assert!(prom.contains("hsvd_lowrank_hits_total 1"));
        assert!(prom.contains("hsvd_factor_cache_hits_total 1"));
        assert!(prom.contains("hsvd_factor_cache_client_bytes{client=\"42\"}"));
        assert!(prom.contains("hsvd_completed_ok_by_type_total{type=\"update\"} 2"));
        // The update stage reached the span journal.
        let update_stage = report
            .journal
            .stages
            .iter()
            .find(|s| s.stage == "update")
            .expect("update spans recorded");
        assert!(update_stage.count >= 1);
        service.shutdown();
    }

    #[test]
    fn metrics_report_carries_utilization_and_journal() {
        let service = SvdService::start(quick_config()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|salt| service.try_submit(test_matrix(8, 8, salt)).unwrap())
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let report = service.metrics_report();
        assert_eq!(report.snapshot.completed_ok, 4);
        let shape = report
            .utilization
            .iter()
            .find(|s| (s.rows, s.cols) == (8, 8))
            .expect("utilization recorded for the served shape");
        let aie = shape.report.resource(heterosvd::obs::ResourceKind::AieCore);
        assert!(aie.ops > 0, "AIE cores did work");
        assert!(aie.busy_fraction > 0.0 && aie.busy_fraction <= 1.0);
        // The journal saw the serving stages (spans are process-global,
        // so other tests may have added more — only lower-bound them).
        let admit = report
            .journal
            .stages
            .iter()
            .find(|s| s.stage == "admit")
            .unwrap();
        assert!(admit.count >= 4);
        // Both renderings include the per-shape utilization.
        assert!(report.to_json().contains("\"critical\""));
        assert!(report
            .to_prometheus()
            .contains("hsvd_critical_resource{shape=\"8x8\""));
        service.shutdown();
    }

    #[test]
    fn report_exports_cache_and_store_counters() {
        let service = SvdService::start(quick_config()).unwrap();
        let model = ModelId(77);
        service
            .try_submit_publish(model, test_matrix(8, 8, 12), 3)
            .unwrap()
            .wait()
            .unwrap();
        let x = vec![1.0; 8];
        for _ in 0..3 {
            service
                .try_submit_apply(model, &x, None)
                .unwrap()
                .wait()
                .unwrap();
        }
        let report = service.metrics_report();
        assert_eq!(report.caches.factor_store.publishes, 1);
        assert!(report.caches.factor_store.hits >= 3);
        assert_eq!(report.caches.factor_store.resident_models, 1);
        // The plan cache served the decompose; the profile cache saw the
        // applies (global counters — lower-bound only).
        assert!(report.caches.plan.hits + report.caches.plan.misses >= 1);
        assert!(report.caches.apply_profiles.hits + report.caches.apply_profiles.misses >= 3);
        let prom = report.to_prometheus();
        assert!(prom.contains("hsvd_factor_store_hits_total"));
        assert!(prom.contains("hsvd_plan_cache_hits_total"));
        assert!(prom.contains("hsvd_apply_profile_cache_hits_total"));
        assert!(prom.contains("type=\"apply\""));
        service.shutdown();
    }

    #[test]
    fn scraper_captures_reports_periodically() {
        let config = ServeConfig {
            metrics_scrape_interval: Some(Duration::from_millis(10)),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 9)).unwrap();
        handle.wait().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let scrape = loop {
            if let Some(scrape) = service.latest_scrape() {
                if scrape.snapshot.completed_ok >= 1 {
                    break scrape;
                }
            }
            assert!(
                Instant::now() < deadline,
                "scraper never captured the completion"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(scrape.snapshot.completed_ok, 1);
        // Shutdown joins the scraper promptly (no interval-long stall).
        let begun = Instant::now();
        service.shutdown();
        assert!(begun.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn observability_off_keeps_results_and_skips_reports() {
        let config = ServeConfig {
            observability: false,
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 11)).unwrap();
        let response = handle.wait().unwrap();
        assert_eq!(response.output.result.sigma.len(), 8);
        assert!(response.output.utilization.is_none());
        let report = service.metrics_report();
        assert!(report.utilization.is_empty());
        service.shutdown();
    }

    #[test]
    fn rare_interactive_class_jumps_a_dominant_batch_backlog() {
        // A 95:5-style mix on one worker: 40 dominant (16,16)
        // Batch-class requests flood the queue, then 4 rare (8,8)
        // Interactive requests arrive behind them. Under shape-blind
        // FIFO the rare requests drain after the whole backlog; with the
        // class scheduler their 100 ms EDF horizon seeds them ahead, so
        // every rare request must finish faster than the slowest
        // dominant one.
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 64,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            shape_classed: true,
            ..ServeConfig::default()
        };
        let service = SvdService::start(config).unwrap();
        let dominant: Vec<_> = (0..40)
            .map(|s| {
                service
                    .try_submit_with(
                        test_matrix(16, 16, s),
                        SubmitOptions {
                            class: SloClass::Batch,
                            ..SubmitOptions::default()
                        },
                    )
                    .unwrap()
            })
            .collect();
        let rare: Vec<_> = (0..4)
            .map(|s| {
                service
                    .try_submit_with(
                        test_matrix(8, 8, 100 + s),
                        SubmitOptions {
                            class: SloClass::Interactive,
                            ..SubmitOptions::default()
                        },
                    )
                    .unwrap()
            })
            .collect();
        let rare_walls: Vec<Duration> = rare
            .into_iter()
            .map(|h| h.wait().unwrap().latency.wall_total)
            .collect();
        let dominant_walls: Vec<Duration> = dominant
            .into_iter()
            .map(|h| h.wait().unwrap().latency.wall_total)
            .collect();
        let worst_dominant = *dominant_walls.iter().max().unwrap();
        for (i, wall) in rare_walls.iter().enumerate() {
            assert!(
                *wall < worst_dominant,
                "rare request {i} waited out the backlog: {wall:?} vs worst dominant {worst_dominant:?}"
            );
        }
        let m = service.metrics();
        assert_eq!(m.per_class.interactive.completed_ok, 4);
        assert_eq!(m.per_class.batch.completed_ok, 40);
        assert!(m.per_class.interactive.wall_us.p99 <= m.per_class.batch.wall_us.p99);
        service.shutdown();
    }

    #[test]
    fn classed_service_factors_match_fifo_service() {
        // Scheduling only reorders *when* requests execute: the same six
        // matrices through a shape-classed service and a FIFO one must
        // produce bitwise-identical factors.
        let matrices: Vec<_> = (0..6).map(|s| test_matrix(16, 16, 40 + s)).collect();
        let run = |classed: bool| {
            let config = ServeConfig {
                workers: 1,
                shape_classed: classed,
                ..quick_config()
            };
            let service = SvdService::start(config).unwrap();
            let outputs: Vec<_> = matrices
                .iter()
                .map(|m| service.try_submit(m.clone()).unwrap())
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.wait().unwrap())
                .collect();
            service.shutdown();
            outputs
        };
        let classed = run(true);
        let fifo = run(false);
        for (c, f) in classed.iter().zip(&fifo) {
            assert_eq!(c.output.result.sigma, f.output.result.sigma);
            assert_eq!(c.output.result.u.as_slice(), f.output.result.u.as_slice());
        }
    }
}
