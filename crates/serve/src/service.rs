//! The serving front end: admission, dispatch, replica pool, lifecycle.

use crate::batcher::{self, Batch, FormOutcome};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::queue::{BoundedQueue, PopResult, PushError};
use crate::report::{MetricsReport, ShapeUtilization};
use crate::request::{
    LatencyRecord, PendingRequest, RequestHandle, RequestId, RequestState, SubmitOptions,
    SvdResponse,
};
use heterosvd::obs::{self, Stage, UtilizationReport};
use heterosvd::{Accelerator, HeteroSvdError};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use svd_kernels::Matrix;

/// A batch-serving SVD service.
///
/// Requests enter through a bounded admission queue ([`SvdService::try_submit`]
/// exerts backpressure with [`ServeError::QueueFull`]), a batcher thread
/// coalesces same-shape requests into batches, and a pool of accelerator
/// replicas executes each batch via [`Accelerator::run_many`], charging
/// every request in a batch the Eq. (14) system time
/// `⌈B / P_task⌉ · t_task`.
///
/// A replica that panics while serving a batch is contained: the batch's
/// requests fail with [`ServeError::WorkerPanicked`], the replica thread
/// retires, and a replacement is spawned so capacity recovers.
/// [`SvdService::shutdown`] (also run on drop) closes admission, drains
/// everything already queued, and joins all threads.
pub struct SvdService {
    inner: Arc<Inner>,
    batcher: Mutex<Option<JoinHandle<()>>>,
    scraper: Mutex<Option<JoinHandle<()>>>,
    shutdown_done: AtomicBool,
}

struct Inner {
    config: ServeConfig,
    admission: BoundedQueue<PendingRequest>,
    dispatch: BoundedQueue<Batch>,
    metrics: Metrics,
    next_id: AtomicU64,
    replicas_live: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    shutting_down: AtomicBool,
    /// Per-shape resource utilization, merged across every batch each
    /// replica completes (empty with observability off).
    utilization: Mutex<HashMap<(usize, usize), UtilizationReport>>,
    /// Latest capture taken by the scraper thread (None until the first
    /// interval elapses, or when no scraper is configured).
    latest_scrape: Mutex<Option<MetricsReport>>,
    /// Scraper parking spot: `scraper_stop` flips on shutdown and
    /// `scraper_cv` wakes the thread so it exits without waiting out its
    /// interval.
    scraper_stop: Mutex<bool>,
    scraper_cv: Condvar,
}

impl Inner {
    /// Builds one exportable observability capture: metrics snapshot +
    /// per-shape utilization + global span-journal summary.
    fn metrics_report(&self) -> MetricsReport {
        let snapshot = self.metrics.snapshot(
            self.admission.len(),
            self.replicas_live.load(Ordering::SeqCst),
        );
        let mut utilization: Vec<ShapeUtilization> = self
            .utilization
            .lock()
            .iter()
            .map(|(&(rows, cols), report)| ShapeUtilization {
                rows,
                cols,
                report: report.clone(),
            })
            .collect();
        utilization.sort_by_key(|s| (s.rows, s.cols));
        MetricsReport {
            snapshot,
            utilization,
            journal: obs::global().summary(),
        }
    }
}

/// Scraper thread: captures a [`MetricsReport`] every `interval` until
/// shutdown flips `scraper_stop`.
fn scraper_main(inner: Arc<Inner>, interval: std::time::Duration) {
    let mut stop = inner.scraper_stop.lock();
    loop {
        if *stop {
            return;
        }
        if inner.scraper_cv.wait_for(&mut stop, interval).timed_out() {
            drop(stop);
            let report = inner.metrics_report();
            *inner.latest_scrape.lock() = Some(report);
            stop = inner.scraper_stop.lock();
        }
    }
}

impl SvdService {
    /// Validates `config`, spawns the batcher and the replica pool, and
    /// starts serving.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] when the configuration is invalid.
    pub fn start(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let inner = Arc::new(Inner {
            admission: BoundedQueue::new(config.queue_capacity),
            dispatch: BoundedQueue::new(config.workers.max(1) * 2),
            metrics: Metrics::new(),
            next_id: AtomicU64::new(0),
            replicas_live: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
            shutting_down: AtomicBool::new(false),
            utilization: Mutex::new(HashMap::new()),
            latest_scrape: Mutex::new(None),
            scraper_stop: Mutex::new(false),
            scraper_cv: Condvar::new(),
            config,
        });
        for _ in 0..inner.config.workers {
            spawn_replica(&inner);
        }
        let batcher_inner = Arc::clone(&inner);
        let batcher = std::thread::Builder::new()
            .name("svd-batcher".into())
            .spawn(move || batcher_main(batcher_inner))
            .expect("failed to spawn batcher thread");
        let scraper = inner.config.metrics_scrape_interval.map(|interval| {
            let scraper_inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("svd-metrics-scraper".into())
                .spawn(move || scraper_main(scraper_inner, interval))
                .expect("failed to spawn scraper thread")
        });
        Ok(SvdService {
            inner,
            batcher: Mutex::new(Some(batcher)),
            scraper: Mutex::new(scraper),
            shutdown_done: AtomicBool::new(false),
        })
    }

    /// Submits `matrix` with the service's default options.
    ///
    /// # Errors
    ///
    /// See [`SvdService::try_submit_with`].
    pub fn try_submit(&self, matrix: Matrix<f64>) -> Result<RequestHandle, ServeError> {
        self.try_submit_with(matrix, SubmitOptions::default())
    }

    /// Submits `matrix`, never blocking: a full queue is reported as
    /// [`ServeError::QueueFull`] so the caller can back off.
    ///
    /// # Errors
    ///
    /// * [`ServeError::InvalidRequest`] — the shape violates the replica
    ///   constraints ([`ServeConfig::check_shape`]).
    /// * [`ServeError::QueueFull`] — backpressure; retry later.
    /// * [`ServeError::ShuttingDown`] — the service no longer admits.
    pub fn try_submit_with(
        &self,
        matrix: Matrix<f64>,
        options: SubmitOptions,
    ) -> Result<RequestHandle, ServeError> {
        self.submit_pending(matrix, options, false)
    }

    /// Chaos/test hook: admits a request whose replica panics instead of
    /// executing it, exercising the containment and replacement path.
    #[doc(hidden)]
    pub fn try_submit_poison(&self, rows: usize, cols: usize) -> Result<RequestHandle, ServeError> {
        self.submit_pending(Matrix::zeros(rows, cols), SubmitOptions::default(), true)
    }

    fn submit_pending(
        &self,
        matrix: Matrix<f64>,
        options: SubmitOptions,
        poison: bool,
    ) -> Result<RequestHandle, ServeError> {
        let inner = &self.inner;
        if inner.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        if let Err(e) = inner.config.check_shape(matrix.rows(), matrix.cols()) {
            inner
                .metrics
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let submitted_at = Instant::now();
        let timeout = options.timeout.or(inner.config.default_timeout);
        let id = RequestId(inner.next_id.fetch_add(1, Ordering::Relaxed));
        let state = RequestState::new();
        let request = PendingRequest {
            id,
            shape: (matrix.rows(), matrix.cols()),
            // Cast to the device's native f32 once, here: the request
            // queues at half the memory and the replica moves the data
            // straight into the accelerator with no further conversion.
            matrix: matrix.cast::<f32>(),
            state: Arc::clone(&state),
            submitted_at,
            deadline: timeout.map(|t| submitted_at + t),
            poison,
        };
        match inner.admission.try_push(request) {
            Ok(()) => {
                inner.metrics.submitted.fetch_add(1, Ordering::Relaxed);
                if inner.config.observability {
                    obs::global().record(Stage::Admit, Some(id.0), submitted_at.elapsed(), None);
                }
                Ok(RequestHandle { id, state })
            }
            Err(PushError::Full(_)) => {
                inner.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::QueueFull {
                    capacity: inner.admission.capacity(),
                })
            }
            Err(PushError::Closed(_)) => Err(ServeError::ShuttingDown),
        }
    }

    /// A point-in-time view of the service's counters and latency
    /// percentiles.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(
            self.inner.admission.len(),
            self.inner.replicas_live.load(Ordering::SeqCst),
        )
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// One exportable observability capture: the metrics snapshot,
    /// per-shape resource utilization merged across every completed
    /// batch, and the global span-journal summary. Render it with
    /// [`MetricsReport::to_json`] or [`MetricsReport::to_prometheus`].
    pub fn metrics_report(&self) -> MetricsReport {
        self.inner.metrics_report()
    }

    /// The most recent capture taken by the in-process scraper, or
    /// `None` when no scrape has happened yet (including when
    /// [`ServeConfig::metrics_scrape_interval`] is unset).
    pub fn latest_scrape(&self) -> Option<MetricsReport> {
        self.inner.latest_scrape.lock().clone()
    }

    /// Stops admitting, drains every queued request to a terminal state,
    /// and joins the batcher and all replicas. Idempotent; also run on
    /// drop.
    pub fn shutdown(&self) {
        if self.shutdown_done.swap(true, Ordering::SeqCst) {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        self.inner.admission.close();
        *self.inner.scraper_stop.lock() = true;
        self.inner.scraper_cv.notify_all();
        if let Some(handle) = self.scraper.lock().take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.batcher.lock().take() {
            let _ = handle.join();
        }
        // The batcher closed the dispatch queue on exit; replicas drain
        // it and retire. Replacement replicas may register while we join,
        // so loop until the registry is empty.
        loop {
            let drained: Vec<JoinHandle<()>> = {
                let mut workers = self.inner.workers.lock();
                workers.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for handle in drained {
                let _ = handle.join();
            }
        }
    }
}

impl Drop for SvdService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Batcher thread: forms batches until admission is closed and drained,
/// then closes the dispatch queue so replicas retire.
fn batcher_main(inner: Arc<Inner>) {
    loop {
        match batcher::form_batch(&inner.admission, &inner.config, &inner.metrics) {
            FormOutcome::Formed(batch) => {
                if let Err(PushError::Closed(batch)) = inner.dispatch.push(batch) {
                    // Dispatch can only close after this thread exits, but
                    // fail the batch defensively rather than dropping it.
                    fail_batch(&inner, &batch, &ServeError::ShuttingDown);
                    break;
                }
            }
            FormOutcome::Idle => continue,
            FormOutcome::Drained => break,
        }
    }
    inner.dispatch.close();
}

/// Spawns one replica thread and registers it for shutdown joining.
fn spawn_replica(inner: &Arc<Inner>) {
    inner
        .metrics
        .replicas_spawned
        .fetch_add(1, Ordering::Relaxed);
    inner.replicas_live.fetch_add(1, Ordering::SeqCst);
    let thread_inner = Arc::clone(inner);
    let handle = std::thread::Builder::new()
        .name("svd-replica".into())
        .spawn(move || replica_main(thread_inner))
        .expect("failed to spawn replica thread");
    inner.workers.lock().push(handle);
}

/// Replica thread: executes batches until the dispatch queue drains.
/// A panic while serving a batch fails that batch, retires this replica,
/// and spawns a replacement.
fn replica_main(inner: Arc<Inner>) {
    let mut accelerators: HashMap<(usize, usize), Accelerator> = HashMap::new();
    loop {
        match inner.dispatch.pop(batcher::POLL_TICK) {
            PopResult::Item(mut batch) => {
                let exec_started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    execute_batch(&inner, &mut accelerators, &mut batch, exec_started)
                }));
                if let Err(payload) = outcome {
                    let err = ServeError::from(HeteroSvdError::worker_panicked(payload.as_ref()));
                    inner.metrics.worker_panics.fetch_add(1, Ordering::Relaxed);
                    fail_batch(&inner, &batch, &err);
                    inner.replicas_live.fetch_sub(1, Ordering::SeqCst);
                    // Replace the poisoned replica; during shutdown the
                    // replacement drains the closed queue and retires.
                    spawn_replica(&inner);
                    return;
                }
            }
            PopResult::TimedOut => continue,
            PopResult::Closed => break,
        }
    }
    inner.replicas_live.fetch_sub(1, Ordering::SeqCst);
}

/// Completes every still-pending request of `batch` with `err`.
fn fail_batch(inner: &Inner, batch: &Batch, err: &ServeError) {
    for entry in &batch.entries {
        if entry.request.state.complete(Err(err.clone())) {
            inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs one shape-uniform batch on this replica's accelerator, charging
/// each request the shared Eq. (14) system time. Takes the batch
/// mutably: each live request's matrix is *moved* into the accelerator
/// (zero-copy) while the entry itself stays behind for completion
/// bookkeeping — and for [`fail_batch`] should this replica panic.
fn execute_batch(
    inner: &Inner,
    accelerators: &mut HashMap<(usize, usize), Accelerator>,
    batch: &mut Batch,
    exec_started: Instant,
) {
    // Last-moment lifecycle checks: cancelled or expired requests are
    // completed here and excluded from the accelerator run.
    let now = Instant::now();
    let mut live: Vec<usize> = Vec::with_capacity(batch.entries.len());
    for (idx, entry) in batch.entries.iter().enumerate() {
        if entry.request.state.is_cancelled() {
            if entry.request.state.complete(Err(ServeError::Cancelled)) {
                inner.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
        } else if entry.request.deadline_elapsed(now) {
            // Second drop point, distinct from the batcher's pickup
            // check: the deadline passed while the batch was forming or
            // waiting for a replica. Counting it separately tells an
            // operator whether to shrink the linger or add replicas.
            if entry
                .request
                .state
                .complete(Err(ServeError::DeadlineExceeded))
            {
                inner.metrics.timed_out_exec.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            live.push(idx);
        }
    }
    if live.is_empty() {
        return;
    }
    if let Some(&pill) = live.iter().find(|&&i| batch.entries[i].request.poison) {
        panic!(
            "poison pill {} detonated in replica",
            batch.entries[pill].request.id
        );
    }

    inner
        .metrics
        .batches_dispatched
        .fetch_add(1, Ordering::Relaxed);
    let accelerator = match cached_accelerator(accelerators, inner, batch.shape) {
        Ok(a) => a,
        Err(e) => {
            let err = ServeError::from(e);
            for &i in &live {
                if batch.entries[i].request.state.complete(Err(err.clone())) {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
            return;
        }
    };

    // Move each matrix out of its entry instead of cloning it (the old
    // path copied rows × cols × 8 bytes per request per batch). The
    // empty placeholder does not allocate.
    let matrices: Vec<Matrix<f32>> = live
        .iter()
        .map(|&i| std::mem::replace(&mut batch.entries[i].request.matrix, Matrix::zeros(0, 0)))
        .collect();
    match accelerator.run_many_f32(matrices) {
        Ok((outputs, system_time)) => {
            if inner.config.observability {
                obs::global().record(
                    Stage::ReplicaExec,
                    None,
                    exec_started.elapsed(),
                    Some(system_time),
                );
                // Merge each run's utilization into the per-shape
                // aggregate: horizons and busy times add, so the busy
                // fractions stay per-run averages.
                let mut batch_util: Option<UtilizationReport> = None;
                for output in &outputs {
                    if let Some(util) = output.utilization.as_ref() {
                        match batch_util.as_mut() {
                            Some(acc) => acc.merge(util),
                            None => batch_util = Some(util.clone()),
                        }
                    }
                }
                if let Some(util) = batch_util {
                    let mut shapes = inner.utilization.lock();
                    match shapes.get_mut(&batch.shape) {
                        Some(acc) => acc.merge(&util),
                        None => {
                            shapes.insert(batch.shape, util);
                        }
                    }
                }
            }
            for (&i, output) in live.iter().zip(outputs) {
                let entry = &batch.entries[i];
                let latency = LatencyRecord {
                    queue_wait: entry
                        .picked_at
                        .saturating_duration_since(entry.request.submitted_at),
                    batch_linger: exec_started.saturating_duration_since(entry.picked_at),
                    sim_exec_ps: system_time.0,
                    batch_size: live.len(),
                    wall_total: entry.request.submitted_at.elapsed(),
                };
                let response = SvdResponse {
                    id: entry.request.id,
                    output,
                    latency,
                };
                if entry.request.state.complete(Ok(response)) {
                    inner.metrics.completed_ok.fetch_add(1, Ordering::Relaxed);
                    inner.metrics.record_latency(&latency);
                }
            }
        }
        Err(e) => {
            let err = ServeError::from(e);
            for &i in &live {
                if batch.entries[i].request.state.complete(Err(err.clone())) {
                    inner.metrics.failed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Returns this replica's accelerator for `shape`, building it on first
/// use. Each replica keeps one accelerator per distinct request shape.
fn cached_accelerator<'a>(
    accelerators: &'a mut HashMap<(usize, usize), Accelerator>,
    inner: &Inner,
    shape: (usize, usize),
) -> Result<&'a Accelerator, HeteroSvdError> {
    use std::collections::hash_map::Entry;
    match accelerators.entry(shape) {
        Entry::Occupied(slot) => Ok(slot.into_mut()),
        Entry::Vacant(slot) => {
            let accelerator = Accelerator::new(inner.config.accelerator_config(shape)?)?;
            Ok(slot.insert(accelerator))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn test_matrix(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, |r, c| {
            let x = (r as u64 * 31 + c as u64 * 7 + salt * 13) % 17;
            x as f64 / 4.0 - 2.0 + if r == c { 3.0 } else { 0.0 }
        })
    }

    fn quick_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            ..ServeConfig::default()
        }
    }

    #[test]
    fn single_request_round_trip() {
        let service = SvdService::start(quick_config()).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 1)).unwrap();
        let response = handle.wait().unwrap();
        assert_eq!(response.output.result.sigma.len(), 8);
        assert!(response.latency.sim_exec_ps > 0);
        service.shutdown();
        let m = service.metrics();
        assert_eq!(m.completed_ok, 1);
        assert_eq!(m.replicas_live, 0);
    }

    #[test]
    fn invalid_shape_is_rejected_at_admission() {
        let service = SvdService::start(quick_config()).unwrap();
        // P_eng = 2 means cols must be a multiple of 4.
        let err = service.try_submit(test_matrix(9, 6, 0)).unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
        assert_eq!(service.metrics().rejected_invalid, 1);
    }

    #[test]
    fn submissions_after_shutdown_are_refused() {
        let service = SvdService::start(quick_config()).unwrap();
        service.shutdown();
        let err = service.try_submit(test_matrix(8, 8, 0)).unwrap_err();
        assert_eq!(err, ServeError::ShuttingDown);
    }

    #[test]
    fn cancelled_request_completes_with_cancelled() {
        // One slow-to-start service path: saturate with a linger so the
        // cancel lands while the request is still queued.
        let config = ServeConfig {
            max_linger: Duration::from_millis(50),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 2)).unwrap();
        handle.cancel();
        match handle.wait() {
            Err(ServeError::Cancelled) => {}
            // The race is legal: the batch may already have executed.
            Ok(response) => assert_eq!(response.output.result.sigma.len(), 8),
            Err(other) => panic!("unexpected terminal state: {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn zero_timeout_requests_time_out() {
        let service = SvdService::start(quick_config()).unwrap();
        let handle = service
            .try_submit_with(
                test_matrix(8, 8, 3),
                SubmitOptions {
                    timeout: Some(Duration::ZERO),
                },
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        assert_eq!(service.metrics().timed_out, 1);
        service.shutdown();
    }

    #[test]
    fn deadline_expiring_during_linger_is_counted_at_exec() {
        // The request is alive when the batcher picks it up (generous
        // 100 ms deadline) but the batch lingers 400 ms waiting to fill,
        // so the deadline has passed by exec start. The regression this
        // guards: this drop point must be counted separately from the
        // batcher's pickup check, or an operator cannot tell whether to
        // shrink the linger or grow the pool.
        let config = ServeConfig {
            workers: 1,
            max_batch: 4,
            max_linger: Duration::from_millis(400),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service
            .try_submit_with(
                test_matrix(8, 8, 4),
                SubmitOptions {
                    timeout: Some(Duration::from_millis(100)),
                },
            )
            .unwrap();
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        let m = service.metrics();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.timed_out_at_exec, 1);
        assert_eq!(m.timed_out_at_batcher, 0);
        service.shutdown();
    }

    #[test]
    fn metrics_report_carries_utilization_and_journal() {
        let service = SvdService::start(quick_config()).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|salt| service.try_submit(test_matrix(8, 8, salt)).unwrap())
            .collect();
        for handle in handles {
            handle.wait().unwrap();
        }
        let report = service.metrics_report();
        assert_eq!(report.snapshot.completed_ok, 4);
        let shape = report
            .utilization
            .iter()
            .find(|s| (s.rows, s.cols) == (8, 8))
            .expect("utilization recorded for the served shape");
        let aie = shape.report.resource(heterosvd::obs::ResourceKind::AieCore);
        assert!(aie.ops > 0, "AIE cores did work");
        assert!(aie.busy_fraction > 0.0 && aie.busy_fraction <= 1.0);
        // The journal saw the serving stages (spans are process-global,
        // so other tests may have added more — only lower-bound them).
        let admit = report
            .journal
            .stages
            .iter()
            .find(|s| s.stage == "admit")
            .unwrap();
        assert!(admit.count >= 4);
        // Both renderings include the per-shape utilization.
        assert!(report.to_json().contains("\"critical\""));
        assert!(report
            .to_prometheus()
            .contains("hsvd_critical_resource{shape=\"8x8\""));
        service.shutdown();
    }

    #[test]
    fn scraper_captures_reports_periodically() {
        let config = ServeConfig {
            metrics_scrape_interval: Some(Duration::from_millis(10)),
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 9)).unwrap();
        handle.wait().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let scrape = loop {
            if let Some(scrape) = service.latest_scrape() {
                if scrape.snapshot.completed_ok >= 1 {
                    break scrape;
                }
            }
            assert!(
                Instant::now() < deadline,
                "scraper never captured the completion"
            );
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(scrape.snapshot.completed_ok, 1);
        // Shutdown joins the scraper promptly (no interval-long stall).
        let begun = Instant::now();
        service.shutdown();
        assert!(begun.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn observability_off_keeps_results_and_skips_reports() {
        let config = ServeConfig {
            observability: false,
            ..quick_config()
        };
        let service = SvdService::start(config).unwrap();
        let handle = service.try_submit(test_matrix(8, 8, 11)).unwrap();
        let response = handle.wait().unwrap();
        assert_eq!(response.output.result.sigma.len(), 8);
        assert!(response.output.utilization.is_none());
        let report = service.metrics_report();
        assert!(report.utilization.is_empty());
        service.shutdown();
    }
}
