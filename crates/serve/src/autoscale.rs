//! Closed-loop online DSE: the autoscale controller thread.
//!
//! The controller closes the loop between the service's observability
//! plane and the analytic Eq. 15–16 design-space sweep. Each tick it
//!
//! 1. **observes** — diffs the cumulative per-shape completion
//!    counters, the factor-cache hit/miss totals, and the packed-wave
//!    counters against its previous tick, building an observed
//!    [`WorkloadMix`] (per-shape arrival weight, batch fill, and the
//!    apply/update routing split that decides how much update traffic
//!    actually reaches the array);
//! 2. **re-plans** — re-runs the workload-mix DSE against that model
//!    through a [`MixSearch`], which reuses the cached sweep while the
//!    mix stays similar (a stationary service costs one similarity
//!    check per tick, not a sweep);
//! 3. **maybe swaps** — commits the winning `(P_eng, P_task)` plan to
//!    the replicas' shared [`LivePlan`] with drain-and-replace
//!    semantics, but only past three hysteresis gates: a post-swap
//!    cooldown (skip re-scoring until post-swap windows reflect the
//!    new plan), a minimum dwell time on the current plan, and a
//!    relative improvement threshold the candidate must clear.
//!
//! Everything the controller reads is a *cumulative* counter: it never
//! drains the windowed state the metrics scrape owns, so running the
//! controller does not perturb what operators see.

use crate::metrics::ShapeTotals;
use crate::service::{Inner, LivePlan};
use heterosvd_dse::{DseConfig, MixSearch, ObservedShape, WorkloadMix};
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Relative tolerance under which two successive observed mixes count
/// as the same traffic and the cached sweep is reused.
const MIX_SIMILARITY_TOL: f64 = 0.15;

/// Controller thread: observe → re-plan → maybe-swap every
/// [`crate::ServeConfig::autoscale_interval`] until shutdown flips
/// `autoscale_stop` (same parking protocol as the metrics scraper).
pub(crate) fn autoscale_main(inner: Arc<Inner>) {
    let interval = inner.config.autoscale_interval;
    let mut controller = Controller::new(&inner);
    let mut stop = inner.autoscale_stop.lock();
    loop {
        if *stop {
            return;
        }
        if inner.autoscale_cv.wait_for(&mut stop, interval).timed_out() {
            drop(stop);
            controller.tick(&inner);
            stop = inner.autoscale_stop.lock();
        }
    }
}

/// Cumulative counter sample one tick diffs against the previous.
#[derive(Default)]
struct Sample {
    shapes: HashMap<(usize, usize), ShapeTotals>,
    cache_hits: u64,
    cache_misses: u64,
    warm_hits: u64,
    lowrank_hits: u64,
    packed_requests: u64,
    packed_batches: u64,
}

struct Controller {
    search: MixSearch,
    prev: Sample,
    started: Instant,
    last_swap: Option<Instant>,
    /// DSE problem template; per-shape rows/cols/batch/iterations are
    /// overridden by the mix evaluation.
    base: DseConfig,
}

impl Controller {
    fn new(inner: &Inner) -> Self {
        let unit = inner.config.min_cols();
        let base =
            DseConfig::new(unit, unit).iterations(inner.config.fixed_iterations.unwrap_or(6));
        Controller {
            search: MixSearch::new(MIX_SIMILARITY_TOL),
            prev: Sample::default(),
            started: Instant::now(),
            last_swap: None,
            base,
        }
    }

    fn sample(inner: &Inner) -> Sample {
        Sample {
            shapes: inner
                .metrics
                .shape_totals()
                .into_iter()
                .map(|t| ((t.rows, t.cols), t))
                .collect(),
            // lookup_totals (not stats()) keeps the scrape-owned
            // hit-rate window untouched.
            cache_hits: inner.factor_cache.lookup_totals().0,
            cache_misses: inner.factor_cache.lookup_totals().1,
            warm_hits: inner.metrics.warm_start_hits.load(Ordering::Relaxed),
            lowrank_hits: inner.metrics.lowrank_hits.load(Ordering::Relaxed),
            packed_requests: inner.metrics.packed_requests.load(Ordering::Relaxed),
            packed_batches: inner.metrics.packed_batches.load(Ordering::Relaxed),
        }
    }

    /// Builds the observed mix from the delta between `now` and the
    /// previous tick's sample. Returns `None` when no shape-bearing
    /// traffic completed since.
    fn observe(&self, inner: &Inner, now: &Sample) -> Option<WorkloadMix> {
        // How much of the update traffic actually reached the array:
        // cache misses recompute in full, and cache hits split between
        // the warm-start route (array) and the host-only low-rank fast
        // path by the observed route counters.
        let hits_d = now.cache_hits.saturating_sub(self.prev.cache_hits);
        let misses_d = now.cache_misses.saturating_sub(self.prev.cache_misses);
        let warm_d = now.warm_hits.saturating_sub(self.prev.warm_hits);
        let lowrank_d = now.lowrank_hits.saturating_sub(self.prev.lowrank_hits);
        let lookups = hits_d + misses_d;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits_d as f64 / lookups as f64
        };
        let routed = warm_d + lowrank_d;
        let warm_frac = if routed == 0 {
            1.0
        } else {
            warm_d as f64 / routed as f64
        };
        let array_update_fraction = (1.0 - hit_rate) + hit_rate * warm_frac;

        let mut shapes = Vec::new();
        for (&(rows, cols), totals) in &now.shapes {
            let prev = self.prev.shapes.get(&(rows, cols));
            let delta =
                |pick: fn(&ShapeTotals) -> u64| pick(totals).saturating_sub(prev.map_or(0, pick));
            let decompose_d = delta(|t| t.completed[0]);
            let update_d = delta(|t| t.completed[2]);
            let weight = decompose_d as f64 + update_d as f64 * array_update_fraction;
            if weight <= 0.0 {
                continue;
            }
            let fill_sum = delta(|t| t.batch_fill_sum);
            let fill_count = delta(|t| t.batch_fill_count);
            let mut batch_fill = if fill_count == 0 {
                1.0
            } else {
                (fill_sum as f64 / fill_count as f64).max(1.0)
            };
            // Shape-classed scheduling makes batch size a policy output,
            // not just an arrival artifact: the per-class batcher fills
            // PLIO-critical shapes to the packed-stripe capacity. Plan
            // for that steady state rather than the startup transient —
            // floor the observed fill at the stripe capacity the current
            // plan could co-schedule (capped by the configured batch).
            if inner.config.shape_classed && inner.config.array_packing {
                let p_eng = inner.live_plan.lock().engine_parallelism;
                let capacity = inner
                    .config
                    .packed_tenants_at((rows, cols), usize::MAX, p_eng);
                if capacity >= 2 {
                    batch_fill = batch_fill.max(capacity.min(inner.config.max_batch) as f64);
                }
            }
            shapes.push(ObservedShape {
                rows,
                cols,
                weight,
                batch_fill,
            });
        }
        if shapes.is_empty() {
            return None;
        }
        shapes.sort_by_key(|s| (s.rows, s.cols));
        let packed_req_d = now
            .packed_requests
            .saturating_sub(self.prev.packed_requests);
        let packed_batch_d = now.packed_batches.saturating_sub(self.prev.packed_batches);
        // 0.0 = no packed waves observed yet: leave the packing credit
        // uncapped so the sweep can discover packing gains the current
        // plan's stripe capacity forbids.
        let observed_wave_width = if packed_batch_d == 0 {
            0.0
        } else {
            packed_req_d as f64 / packed_batch_d as f64
        };
        Some(WorkloadMix {
            shapes,
            iterations: self.base.iterations,
            array_packing: inner.config.array_packing,
            observed_wave_width,
        })
    }

    fn tick(&mut self, inner: &Inner) {
        let now = Self::sample(inner);
        // Post-swap cooldown: let the windows refill under the new plan
        // before re-scoring (the sample still advances so the next
        // scored tick diffs post-swap traffic only).
        if let Some(last) = self.last_swap {
            if last.elapsed() < inner.config.autoscale_cooldown {
                self.prev = now;
                return;
            }
        }
        let Some(mix) = self.observe(inner, &now) else {
            self.prev = now;
            return;
        };
        self.prev = now;

        let searches_before = self.search.searches;
        let result = self.search.research(&self.base, &mix);
        if self.search.searches > searches_before {
            inner.metrics.record_dse_run();
        }
        let Some(best) = result.best() else { return };

        let plan = *inner.live_plan.lock();
        if (best.engine_parallelism, best.task_parallelism)
            == (plan.engine_parallelism, plan.task_parallelism)
        {
            return;
        }
        // Improvement gate: the candidate must beat the current plan's
        // mix score by the configured fraction. A current plan that
        // cannot serve the observed mix at all (no score) always loses.
        let current = result.score_of(plan.engine_parallelism, plan.task_parallelism);
        let improves = match current {
            Some(score) => {
                best.weighted_throughput > score * (1.0 + inner.config.autoscale_improvement)
            }
            None => true,
        };
        if !improves {
            return;
        }
        // Dwell gate: stay on the current plan at least min_dwell.
        let dwelled = self.last_swap.unwrap_or(self.started).elapsed();
        if dwelled < inner.config.autoscale_min_dwell {
            return;
        }
        // Prewarm the winning plan for every observed shape in the
        // shared probe-once plan cache, so no in-band request pays the
        // plan build after the swap. Any prewarm failure vetoes the
        // swap (the DSE claimed feasibility; disagreeing means the
        // analytic model and the builder diverged — stay put).
        for shape in &mix.shapes {
            let Ok(config) = inner.config.accelerator_config_at(
                (shape.rows, shape.cols),
                best.engine_parallelism,
                best.task_parallelism,
            ) else {
                return;
            };
            if heterosvd::plan_cache::global().prewarm(&config).is_err() {
                return;
            }
        }
        // Commit: bump the generation and publish. Replicas read the
        // plan once per batch, so in-flight batches drain under the old
        // plan and everything after executes under the new one.
        {
            let mut live = inner.live_plan.lock();
            *live = LivePlan {
                engine_parallelism: best.engine_parallelism,
                task_parallelism: best.task_parallelism,
                generation: live.generation + 1,
            };
            inner.metrics.set_current_plan(
                live.engine_parallelism,
                live.task_parallelism,
                live.generation,
            );
        }
        inner.metrics.record_plan_swap();
        self.last_swap = Some(Instant::now());
    }
}
