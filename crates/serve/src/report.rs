//! Aggregated metrics export: one serializable report combining the
//! counter/percentile snapshot, per-shape accelerator resource
//! utilization, and the span-journal summary, renderable as JSON or
//! Prometheus text exposition.

use crate::metrics::{ClassSnapshot, MetricsSnapshot, TypeSnapshot};
use factor_store::FactorStoreStats;
use heterosvd::obs::{JournalSummary, UtilizationReport};
use heterosvd::{CacheStats, FactorCacheStats};
use serde::Serialize;
use std::fmt::Write as _;

/// Resource utilization aggregated over every batch of one request
/// shape (rows x cols) served so far.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShapeUtilization {
    /// Request rows.
    pub rows: usize,
    /// Request cols.
    pub cols: usize,
    /// Per-resource busy fractions and the critical resource, merged
    /// across all completed runs of this shape.
    pub report: UtilizationReport,
}

/// Hit/miss/eviction counters of the caches and the factor store the
/// serving path leans on. The plan and apply-profile caches are
/// process-global; the factor store belongs to the service.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CacheReport {
    /// The global execution-plan cache (decompose path).
    pub plan: CacheStats,
    /// The global apply-profile cache (one timing probe per shape,
    /// replayed for every steady-state apply).
    pub apply_profiles: CacheStats,
    /// The service's factor store (publishes, lookup hits/misses,
    /// evictions, resident bytes).
    pub factor_store: FactorStoreStats,
    /// The service's per-client factor cache backing incremental
    /// updates (hits/misses/evictions, resident and per-client bytes,
    /// windowed hit rate).
    pub factor_cache: FactorCacheStats,
}

/// One exportable observability capture of the whole service: the
/// metrics snapshot, per-shape resource utilization, cache/store
/// counters, and the global span-journal summary.
///
/// Produced by [`crate::SvdService::metrics_report`] (or periodically by
/// the in-process scraper when
/// [`crate::ServeConfig::metrics_scrape_interval`] is set) and rendered
/// by [`MetricsReport::to_json`] / [`MetricsReport::to_prometheus`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsReport {
    /// Counters, gauges, and latency percentiles.
    pub snapshot: MetricsSnapshot,
    /// Resource utilization per served request shape, sorted by
    /// (rows, cols). Empty when observability is disabled or nothing
    /// has completed yet.
    pub utilization: Vec<ShapeUtilization>,
    /// Plan-cache, apply-profile-cache, and factor-store counters.
    pub caches: CacheReport,
    /// Per-stage span summary from the global journal.
    pub journal: JournalSummary,
}

impl MetricsReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MetricsReport serializes infallibly")
    }

    /// Renders the report in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, one sample per line,
    /// labels for quantiles, span stages, and per-shape resources.
    pub fn to_prometheus(&self) -> String {
        fn counter(out: &mut String, name: &str, help: &str, value: u64) {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} counter");
            let _ = writeln!(out, "hsvd_{name} {value}");
        }
        fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} gauge");
            let _ = writeln!(out, "hsvd_{name} {value}");
        }
        let mut buf = String::new();
        let out = &mut buf;
        let s = &self.snapshot;
        counter(out, "submitted_total", "Requests admitted.", s.submitted);
        counter(
            out,
            "rejected_queue_full_total",
            "Submissions rejected by backpressure.",
            s.rejected_queue_full,
        );
        counter(
            out,
            "rejected_invalid_total",
            "Submissions rejected for shape/validation reasons.",
            s.rejected_invalid,
        );
        counter(
            out,
            "completed_ok_total",
            "Requests completed successfully.",
            s.completed_ok,
        );
        counter(
            out,
            "failed_total",
            "Requests that ended in an error.",
            s.failed,
        );
        counter(
            out,
            "cancelled_total",
            "Requests cancelled before execution.",
            s.cancelled,
        );
        counter(
            out,
            "worker_panics_total",
            "Replica panics contained by the service.",
            s.worker_panics,
        );
        counter(
            out,
            "replicas_spawned_total",
            "Replicas spawned over the service lifetime.",
            s.replicas_spawned,
        );
        counter(
            out,
            "batches_dispatched_total",
            "Batches handed to replicas.",
            s.batches_dispatched,
        );
        counter(
            out,
            "packed_batches_total",
            "Batches executed as packed multi-tenant waves.",
            s.packed_batches,
        );
        counter(
            out,
            "packed_requests_total",
            "Requests served inside packed waves.",
            s.packed_requests,
        );
        counter(
            out,
            "warm_start_hits_total",
            "Update requests served via the warm-start route.",
            s.warm_start_hits,
        );
        counter(
            out,
            "lowrank_hits_total",
            "Update requests served via the host-only low-rank fast path.",
            s.lowrank_hits,
        );
        counter(
            out,
            "staleness_fallbacks_total",
            "Update requests that classified stale and recomputed in full.",
            s.staleness_fallbacks,
        );
        let _ = writeln!(
            out,
            "# HELP hsvd_timed_out_total Deadline expiries by drop point."
        );
        let _ = writeln!(out, "# TYPE hsvd_timed_out_total counter");
        let _ = writeln!(
            out,
            "hsvd_timed_out_total{{point=\"batcher\"}} {}",
            s.timed_out_at_batcher
        );
        let _ = writeln!(
            out,
            "hsvd_timed_out_total{{point=\"exec\"}} {}",
            s.timed_out_at_exec
        );
        gauge(
            out,
            "replicas_live",
            "Replicas currently alive.",
            s.replicas_live as f64,
        );
        gauge(
            out,
            "queue_depth",
            "Admission queue depth.",
            s.queue_depth as f64,
        );
        gauge(
            out,
            "mean_batch_size",
            "Mean executed batch size over the sample window.",
            s.mean_batch_size,
        );
        gauge(
            out,
            "throughput_rps",
            "Completed requests per second since start (lifetime).",
            s.throughput_rps,
        );
        gauge(
            out,
            "throughput_rps_window",
            "Completed requests per second since the previous snapshot.",
            s.throughput_rps_window,
        );

        // Autoscale controller: plan swaps, DSE runs, the live plan.
        counter(
            out,
            "plan_swaps_total",
            "Plan swaps committed by the autoscale controller.",
            s.plan_swaps,
        );
        counter(
            out,
            "dse_runs_total",
            "Workload-mix DSE sweeps the controller actually ran.",
            s.dse_runs,
        );
        let _ = writeln!(
            out,
            "# HELP hsvd_current_plan The plan replicas currently execute under."
        );
        let _ = writeln!(out, "# TYPE hsvd_current_plan gauge");
        for (param, value) in [
            ("engine_parallelism", s.current_plan.engine_parallelism),
            ("task_parallelism", s.current_plan.task_parallelism),
            ("generation", s.current_plan.generation),
        ] {
            let _ = writeln!(out, "hsvd_current_plan{{param=\"{param}\"}} {value}");
        }

        // Per-shape windowed series (decompose/update traffic only;
        // apply requests carry no matrix shape).
        let _ = writeln!(
            out,
            "# HELP hsvd_completed_by_shape_total Completions per matrix shape by request type."
        );
        let _ = writeln!(out, "# TYPE hsvd_completed_by_shape_total counter");
        for sh in &s.per_shape {
            for (label, v) in [
                ("decompose", sh.completed_decompose),
                ("apply", sh.completed_apply),
                ("update", sh.completed_update),
            ] {
                let _ = writeln!(
                    out,
                    "hsvd_completed_by_shape_total{{shape=\"{}x{}\",type=\"{label}\"}} {v}",
                    sh.rows, sh.cols
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_throughput_rps_window_by_shape Windowed completion rate per matrix shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_throughput_rps_window_by_shape gauge");
        for sh in &s.per_shape {
            let _ = writeln!(
                out,
                "hsvd_throughput_rps_window_by_shape{{shape=\"{}x{}\"}} {}",
                sh.rows, sh.cols, sh.throughput_rps_window
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_mean_batch_fill_by_shape Mean executed batch size per matrix shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_mean_batch_fill_by_shape gauge");
        for sh in &s.per_shape {
            let _ = writeln!(
                out,
                "hsvd_mean_batch_fill_by_shape{{shape=\"{}x{}\"}} {}",
                sh.rows, sh.cols, sh.mean_batch_fill
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_sim_exec_ps_by_shape Modeled execution time per matrix shape (picoseconds)."
        );
        let _ = writeln!(out, "# TYPE hsvd_sim_exec_ps_by_shape summary");
        for sh in &s.per_shape {
            let p = &sh.sim_exec_ps;
            for (q, v) in [("0.5", p.p50), ("0.95", p.p95), ("0.99", p.p99)] {
                let _ = writeln!(
                    out,
                    "hsvd_sim_exec_ps_by_shape{{shape=\"{}x{}\",quantile=\"{q}\"}} {v}",
                    sh.rows, sh.cols
                );
            }
            let _ = writeln!(
                out,
                "hsvd_sim_exec_ps_by_shape_max{{shape=\"{}x{}\"}} {}",
                sh.rows, sh.cols, p.max
            );
        }

        // Per-request-type split: the same counters with a type label.
        let per_type: [(&str, &TypeSnapshot); 3] = [
            ("decompose", &s.per_type.decompose),
            ("apply", &s.per_type.apply),
            ("update", &s.per_type.update),
        ];
        for (name, help, pick) in [
            (
                "submitted_by_type_total",
                "Requests admitted, by request type.",
                (|t: &TypeSnapshot| t.submitted) as fn(&TypeSnapshot) -> u64,
            ),
            (
                "completed_ok_by_type_total",
                "Requests completed successfully, by request type.",
                |t| t.completed_ok,
            ),
            (
                "timed_out_at_batcher_by_type_total",
                "Deadline expiries at batch formation, by request type.",
                |t| t.timed_out_at_batcher,
            ),
            (
                "timed_out_at_exec_by_type_total",
                "Deadline expiries at replica-exec start, by request type.",
                |t| t.timed_out_at_exec,
            ),
            (
                "cancelled_by_type_total",
                "Requests cancelled before execution, by request type.",
                |t| t.cancelled,
            ),
        ] {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} counter");
            for (label, t) in per_type {
                let _ = writeln!(out, "hsvd_{name}{{type=\"{label}\"}} {}", pick(t));
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_throughput_rps_window_by_type Windowed completion rate by request type."
        );
        let _ = writeln!(out, "# TYPE hsvd_throughput_rps_window_by_type gauge");
        for (label, t) in per_type {
            let _ = writeln!(
                out,
                "hsvd_throughput_rps_window_by_type{{type=\"{label}\"}} {}",
                t.throughput_rps_window
            );
        }
        for (name, help, pick) in [
            (
                "queue_wait_us_by_type",
                "Queue wait by request type (microseconds).",
                (|t: &TypeSnapshot| t.queue_wait_us) as fn(&TypeSnapshot) -> crate::Percentiles,
            ),
            (
                "sim_exec_ps_by_type",
                "Modeled execution time by request type (picoseconds).",
                |t| t.sim_exec_ps,
            ),
        ] {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} summary");
            for (label, t) in per_type {
                let p = pick(t);
                for (q, v) in [("0.5", p.p50), ("0.95", p.p95), ("0.99", p.p99)] {
                    let _ = writeln!(out, "hsvd_{name}{{type=\"{label}\",quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "hsvd_{name}_max{{type=\"{label}\"}} {}", p.max);
            }
        }

        // Per-SLO-class split (shape-classed scheduling) and the
        // scheduler's own counters. All-zero in shape-blind mode.
        let per_class: [(&str, &ClassSnapshot); 3] = [
            ("interactive", &s.per_class.interactive),
            ("standard", &s.per_class.standard),
            ("batch", &s.per_class.batch),
        ];
        for (name, help, pick) in [
            (
                "submitted_by_class_total",
                "Requests admitted, by SLO class.",
                (|c: &ClassSnapshot| c.submitted) as fn(&ClassSnapshot) -> u64,
            ),
            (
                "completed_ok_by_class_total",
                "Requests completed successfully, by SLO class.",
                |c| c.completed_ok,
            ),
            (
                "shed_by_class_total",
                "Requests refused or evicted by the overload policy, by SLO class.",
                |c| c.shed,
            ),
        ] {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} counter");
            for (label, c) in per_class {
                let _ = writeln!(out, "hsvd_{name}{{class=\"{label}\"}} {}", pick(c));
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_wall_us_by_class End-to-end wall latency by SLO class (microseconds)."
        );
        let _ = writeln!(out, "# TYPE hsvd_wall_us_by_class summary");
        for (label, c) in per_class {
            let p = &c.wall_us;
            for (q, v) in [("0.5", p.p50), ("0.95", p.p95), ("0.99", p.p99)] {
                let _ = writeln!(
                    out,
                    "hsvd_wall_us_by_class{{class=\"{label}\",quantile=\"{q}\"}} {v}"
                );
            }
            let _ = writeln!(
                out,
                "hsvd_wall_us_by_class_max{{class=\"{label}\"}} {}",
                p.max
            );
        }
        counter(
            out,
            "shed_total",
            "Requests refused or evicted by the overload policy.",
            s.shed,
        );
        counter(
            out,
            "batches_stolen_total",
            "Batches a replica stole from another sub-pool.",
            s.batches_stolen,
        );
        gauge(
            out,
            "shed_level",
            "Current load-shedding tier (0 none, 1 batch, 2 batch+standard).",
            s.shed_level as f64,
        );

        // Plan/profile-cache and factor-store counters.
        for (prefix, stats) in [
            ("plan_cache", &self.caches.plan),
            ("apply_profile_cache", &self.caches.apply_profiles),
        ] {
            counter(
                out,
                &format!("{prefix}_hits_total"),
                "Cache lookups served from a resident entry.",
                stats.hits,
            );
            counter(
                out,
                &format!("{prefix}_misses_total"),
                "Cache lookups that built/probed a new entry.",
                stats.misses,
            );
            counter(
                out,
                &format!("{prefix}_evictions_total"),
                "Entries evicted by the LRU policy.",
                stats.evictions,
            );
            gauge(
                out,
                &format!("{prefix}_resident"),
                "Entries currently resident.",
                stats.resident as f64,
            );
        }
        let fs = &self.caches.factor_store;
        counter(
            out,
            "factor_store_hits_total",
            "Factor lookups that found a resident version.",
            fs.hits,
        );
        counter(
            out,
            "factor_store_misses_total",
            "Factor lookups for models with no resident version.",
            fs.misses,
        );
        counter(
            out,
            "factor_store_evictions_total",
            "Factor versions evicted by the byte-budget LRU policy.",
            fs.evictions,
        );
        counter(
            out,
            "factor_store_publishes_total",
            "Factor versions published.",
            fs.publishes,
        );
        gauge(
            out,
            "factor_store_resident_bytes",
            "Bytes of resident truncated factors.",
            fs.resident_bytes as f64,
        );
        gauge(
            out,
            "factor_store_resident_models",
            "Models with a resident factor version.",
            fs.resident_models as f64,
        );
        gauge(
            out,
            "factor_store_hit_rate_window",
            "Factor-store hit fraction since the previous stats capture.",
            fs.hit_rate_window,
        );
        let fc = &self.caches.factor_cache;
        counter(
            out,
            "factor_cache_hits_total",
            "Update cache lookups that found the client's entry.",
            fc.hits,
        );
        counter(
            out,
            "factor_cache_misses_total",
            "Update cache lookups for clients with no resident entry.",
            fc.misses,
        );
        counter(
            out,
            "factor_cache_evictions_total",
            "Client entries evicted by the byte-budget LRU policy.",
            fc.evictions,
        );
        counter(
            out,
            "factor_cache_publishes_total",
            "Client entries published (refreshed factors).",
            fc.publishes,
        );
        gauge(
            out,
            "factor_cache_resident_bytes",
            "Bytes of resident per-client update state.",
            fc.resident_bytes as f64,
        );
        gauge(
            out,
            "factor_cache_resident_clients",
            "Clients with a resident cache entry.",
            fc.resident_clients as f64,
        );
        gauge(
            out,
            "factor_cache_hit_rate_window",
            "Factor-cache hit fraction since the previous stats capture.",
            fc.hit_rate_window,
        );
        let _ = writeln!(
            out,
            "# HELP hsvd_factor_cache_client_bytes Resident bytes per cached client."
        );
        let _ = writeln!(out, "# TYPE hsvd_factor_cache_client_bytes gauge");
        for cb in &fc.clients {
            let _ = writeln!(
                out,
                "hsvd_factor_cache_client_bytes{{client=\"{}\"}} {}",
                cb.client, cb.bytes
            );
        }

        for (name, help, p) in [
            (
                "queue_wait_us",
                "Queue wait (microseconds).",
                &s.queue_wait_us,
            ),
            (
                "batch_linger_us",
                "Batch linger (microseconds).",
                &s.batch_linger_us,
            ),
            (
                "sim_exec_ps",
                "Simulated Eq. (14) execution time (picoseconds).",
                &s.sim_exec_ps,
            ),
        ] {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} summary");
            for (q, v) in [("0.5", p.p50), ("0.95", p.p95), ("0.99", p.p99)] {
                let _ = writeln!(out, "hsvd_{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "hsvd_{name}_max {}", p.max);
        }

        let _ = writeln!(
            out,
            "# HELP hsvd_stage_spans_total Spans recorded per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_spans_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_spans_total{{stage=\"{}\"}} {}",
                st.stage, st.count
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_stage_wall_us_total Wall-clock microseconds spent per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_wall_us_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_wall_us_total{{stage=\"{}\"}} {}",
                st.stage, st.wall_us_total
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_stage_modeled_ps_total Modeled picoseconds accumulated per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_modeled_ps_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_modeled_ps_total{{stage=\"{}\"}} {}",
                st.stage, st.modeled_ps_total
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_spans_sampled_out_total Span records dropped by sampling."
        );
        let _ = writeln!(out, "# TYPE hsvd_spans_sampled_out_total counter");
        let _ = writeln!(
            out,
            "hsvd_spans_sampled_out_total {}",
            self.journal.sampled_out
        );

        let _ = writeln!(
            out,
            "# HELP hsvd_resource_busy_fraction Busy fraction per resource class per shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_resource_busy_fraction gauge");
        for shape in &self.utilization {
            for r in &shape.report.resources {
                let _ = writeln!(
                    out,
                    "hsvd_resource_busy_fraction{{shape=\"{}x{}\",resource=\"{}\"}} {}",
                    shape.rows,
                    shape.cols,
                    r.kind.name(),
                    r.busy_fraction
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_resource_ops_total Operations per resource class per shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_resource_ops_total counter");
        for shape in &self.utilization {
            for r in &shape.report.resources {
                let _ = writeln!(
                    out,
                    "hsvd_resource_ops_total{{shape=\"{}x{}\",resource=\"{}\"}} {}",
                    shape.rows,
                    shape.cols,
                    r.kind.name(),
                    r.ops
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_critical_resource The busiest resource class per shape (value always 1)."
        );
        let _ = writeln!(out, "# TYPE hsvd_critical_resource gauge");
        for shape in &self.utilization {
            let _ = writeln!(
                out,
                "hsvd_critical_resource{{shape=\"{}x{}\",resource=\"{}\"}} 1",
                shape.rows,
                shape.cols,
                shape.report.critical.name()
            );
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use crate::request::{LatencyRecord, PlanInfo, RequestType, SloClass};
    use aie_sim::{SimStats, TimePs};
    use heterosvd::obs::{ResourceCounts, UtilizationReport};
    use std::time::Duration;

    fn sample_report() -> MetricsReport {
        let metrics = Metrics::new();
        metrics.set_current_plan(8, 3, 1);
        metrics.record_plan_swap();
        metrics.record_dse_run();
        metrics.record_cancelled(RequestType::Apply);
        metrics.record_shed(SloClass::Batch);
        metrics.record_batch_stolen();
        metrics.set_shed_level(1);
        metrics.record_completed(RequestType::Decompose, SloClass::Standard);
        metrics.record_latency(
            &LatencyRecord {
                queue_wait: Duration::from_micros(1),
                batch_linger: Duration::ZERO,
                sim_exec_ps: 5_000,
                batch_size: 2,
                wall_total: Duration::from_micros(2),
                plan: PlanInfo {
                    engine_parallelism: 8,
                    task_parallelism: 3,
                    generation: 1,
                },
            },
            RequestType::Decompose,
            Some((64, 64)),
            SloClass::Standard,
        );
        let snapshot = metrics.snapshot(0, 2);
        let stats = SimStats {
            orth_invocations: 8,
            norm_invocations: 4,
            dma_transfers: 6,
            plio_transfers: 16,
            ddr_transfers: 3,
            elapsed: TimePs(1_000),
            orth_busy: TimePs(900),
            dma_busy: TimePs(200),
            ddr_busy: TimePs(100),
            ..SimStats::default()
        };
        let report = UtilizationReport::from_stats(
            &stats,
            ResourceCounts {
                plio_ports: 4,
                aie_cores: 4,
                dma_channels: 4,
                ddr_controllers: 1,
            },
        );
        MetricsReport {
            snapshot,
            utilization: vec![ShapeUtilization {
                rows: 256,
                cols: 256,
                report,
            }],
            caches: CacheReport {
                plan: CacheStats {
                    hits: 10,
                    misses: 2,
                    evictions: 1,
                    resident: 1,
                    capacity: 32,
                },
                apply_profiles: CacheStats::default(),
                factor_store: FactorStoreStats {
                    hits: 40,
                    misses: 1,
                    evictions: 0,
                    publishes: 2,
                    resident_bytes: 4096,
                    resident_models: 2,
                    byte_budget: 1 << 20,
                    hit_rate_window: 0.975,
                },
                factor_cache: FactorCacheStats {
                    hits: 12,
                    misses: 3,
                    evictions: 1,
                    publishes: 5,
                    resident_bytes: 8192,
                    resident_clients: 2,
                    byte_budget: 2 << 20,
                    hit_rate_window: 0.8,
                    clients: vec![
                        heterosvd::ClientBytes {
                            client: 7,
                            bytes: 4096,
                        },
                        heterosvd::ClientBytes {
                            client: 9,
                            bytes: 4096,
                        },
                    ],
                },
            },
            journal: heterosvd::obs::SpanJournal::with_capacity(4).summary(),
        }
    }

    #[test]
    fn json_round_trips_key_fields() {
        let json = sample_report().to_json();
        assert!(json.contains("\"snapshot\""));
        assert!(json.contains("\"utilization\""));
        assert!(json.contains("\"journal\""));
        assert!(json.contains("\"critical\""));
        assert!(json.contains("\"rows\": 256"));
        assert!(json.contains("\"caches\""));
        assert!(json.contains("\"factor_store\""));
        assert!(json.contains("\"factor_cache\""));
        assert!(json.contains("\"hit_rate_window\""));
        assert!(json.contains("\"warm_start_hits\""));
        assert!(json.contains("\"per_type\""));
        assert!(json.contains("\"update\""));
        assert!(json.contains("\"per_shape\""));
        assert!(json.contains("\"current_plan\""));
        assert!(json.contains("\"plan_swaps\": 1"));
        assert!(json.contains("\"dse_runs\": 1"));
        assert!(json.contains("\"engine_parallelism\": 8"));
        // Shape-classed scheduling fields and the cancellation split.
        assert!(json.contains("\"per_class\""));
        assert!(json.contains("\"interactive\""));
        assert!(json.contains("\"wall_us\""));
        assert!(json.contains("\"cancelled\": 1"));
        assert!(json.contains("\"shed\": 1"));
        assert!(json.contains("\"batches_stolen\": 1"));
        assert!(json.contains("\"shed_level\": 1"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample_report().to_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("hsvd_"),
                "unexpected exposition line: {line}"
            );
        }
        assert!(text.contains("# TYPE hsvd_submitted_total counter"));
        assert!(text.contains("hsvd_timed_out_total{point=\"batcher\"}"));
        assert!(text.contains("hsvd_queue_wait_us{quantile=\"0.95\"}"));
        assert!(text.contains("hsvd_stage_spans_total{stage=\"admit\"}"));
        assert!(text.contains("hsvd_submitted_by_type_total{type=\"apply\"}"));
        assert!(text.contains("hsvd_sim_exec_ps_by_type{type=\"decompose\",quantile=\"0.99\"}"));
        assert!(text.contains("hsvd_plan_cache_hits_total 10"));
        assert!(text.contains("hsvd_factor_store_publishes_total 2"));
        assert!(text.contains("hsvd_factor_store_resident_bytes 4096"));
        assert!(text.contains("hsvd_factor_store_hit_rate_window 0.975"));
        assert!(text.contains("hsvd_warm_start_hits_total 0"));
        assert!(text.contains("hsvd_lowrank_hits_total 0"));
        assert!(text.contains("hsvd_staleness_fallbacks_total 0"));
        assert!(text.contains("hsvd_submitted_by_type_total{type=\"update\"}"));
        assert!(text.contains("hsvd_factor_cache_hits_total 12"));
        assert!(text.contains("hsvd_factor_cache_resident_bytes 8192"));
        assert!(text.contains("hsvd_factor_cache_hit_rate_window 0.8"));
        assert!(text.contains("hsvd_factor_cache_client_bytes{client=\"7\"} 4096"));
        assert!(text.contains("hsvd_resource_busy_fraction{shape=\"256x256\",resource=\"plio\"}"));
        assert!(text.contains("hsvd_critical_resource{shape=\"256x256\""));
        assert!(text.contains("hsvd_plan_swaps_total 1"));
        assert!(text.contains("hsvd_dse_runs_total 1"));
        assert!(text.contains("hsvd_current_plan{param=\"engine_parallelism\"} 8"));
        assert!(text.contains("hsvd_current_plan{param=\"generation\"} 1"));
        assert!(
            text.contains("hsvd_completed_by_shape_total{shape=\"64x64\",type=\"decompose\"} 1")
        );
        assert!(text.contains("hsvd_throughput_rps_window_by_shape{shape=\"64x64\"}"));
        assert!(text.contains("hsvd_mean_batch_fill_by_shape{shape=\"64x64\"} 2"));
        assert!(text.contains("hsvd_sim_exec_ps_by_shape{shape=\"64x64\",quantile=\"0.99\"}"));
        assert!(text.contains("hsvd_sim_exec_ps_by_shape_max{shape=\"64x64\"} 5000"));
        // Cancellation split and the shape-classed scheduler families.
        assert!(text.contains("hsvd_cancelled_by_type_total{type=\"apply\"} 1"));
        assert!(text.contains("hsvd_cancelled_by_type_total{type=\"decompose\"} 0"));
        assert!(text.contains("hsvd_submitted_by_class_total{class=\"interactive\"}"));
        assert!(text.contains("hsvd_completed_ok_by_class_total{class=\"standard\"} 1"));
        assert!(text.contains("hsvd_shed_by_class_total{class=\"batch\"} 1"));
        assert!(text.contains("hsvd_wall_us_by_class{class=\"standard\",quantile=\"0.99\"}"));
        assert!(text.contains("hsvd_shed_total 1"));
        assert!(text.contains("hsvd_batches_stolen_total 1"));
        assert!(text.contains("hsvd_shed_level 1"));
    }

    #[test]
    fn every_type_header_precedes_its_samples() {
        let text = sample_report().to_prometheus();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split_whitespace().next().unwrap().to_string());
            } else if !line.starts_with('#') && !line.is_empty() {
                let metric = line
                    .split(['{', ' '])
                    .next()
                    .unwrap()
                    .trim_end_matches("_max");
                assert!(
                    typed.contains(metric),
                    "sample {metric} appears before its # TYPE header"
                );
            }
        }
    }
}
