//! Aggregated metrics export: one serializable report combining the
//! counter/percentile snapshot, per-shape accelerator resource
//! utilization, and the span-journal summary, renderable as JSON or
//! Prometheus text exposition.

use crate::metrics::MetricsSnapshot;
use heterosvd::obs::{JournalSummary, UtilizationReport};
use serde::Serialize;
use std::fmt::Write as _;

/// Resource utilization aggregated over every batch of one request
/// shape (rows x cols) served so far.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShapeUtilization {
    /// Request rows.
    pub rows: usize,
    /// Request cols.
    pub cols: usize,
    /// Per-resource busy fractions and the critical resource, merged
    /// across all completed runs of this shape.
    pub report: UtilizationReport,
}

/// One exportable observability capture of the whole service: the
/// metrics snapshot, per-shape resource utilization, and the global
/// span-journal summary.
///
/// Produced by [`crate::SvdService::metrics_report`] (or periodically by
/// the in-process scraper when
/// [`crate::ServeConfig::metrics_scrape_interval`] is set) and rendered
/// by [`MetricsReport::to_json`] / [`MetricsReport::to_prometheus`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsReport {
    /// Counters, gauges, and latency percentiles.
    pub snapshot: MetricsSnapshot,
    /// Resource utilization per served request shape, sorted by
    /// (rows, cols). Empty when observability is disabled or nothing
    /// has completed yet.
    pub utilization: Vec<ShapeUtilization>,
    /// Per-stage span summary from the global journal.
    pub journal: JournalSummary,
}

impl MetricsReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("MetricsReport serializes infallibly")
    }

    /// Renders the report in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` headers, one sample per line,
    /// labels for quantiles, span stages, and per-shape resources.
    pub fn to_prometheus(&self) -> String {
        fn counter(out: &mut String, name: &str, help: &str, value: u64) {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} counter");
            let _ = writeln!(out, "hsvd_{name} {value}");
        }
        fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} gauge");
            let _ = writeln!(out, "hsvd_{name} {value}");
        }
        let mut buf = String::new();
        let out = &mut buf;
        let s = &self.snapshot;
        counter(out, "submitted_total", "Requests admitted.", s.submitted);
        counter(
            out,
            "rejected_queue_full_total",
            "Submissions rejected by backpressure.",
            s.rejected_queue_full,
        );
        counter(
            out,
            "rejected_invalid_total",
            "Submissions rejected for shape/validation reasons.",
            s.rejected_invalid,
        );
        counter(
            out,
            "completed_ok_total",
            "Requests completed successfully.",
            s.completed_ok,
        );
        counter(
            out,
            "failed_total",
            "Requests that ended in an error.",
            s.failed,
        );
        counter(
            out,
            "cancelled_total",
            "Requests cancelled before execution.",
            s.cancelled,
        );
        counter(
            out,
            "worker_panics_total",
            "Replica panics contained by the service.",
            s.worker_panics,
        );
        counter(
            out,
            "replicas_spawned_total",
            "Replicas spawned over the service lifetime.",
            s.replicas_spawned,
        );
        counter(
            out,
            "batches_dispatched_total",
            "Batches handed to replicas.",
            s.batches_dispatched,
        );
        let _ = writeln!(
            out,
            "# HELP hsvd_timed_out_total Deadline expiries by drop point."
        );
        let _ = writeln!(out, "# TYPE hsvd_timed_out_total counter");
        let _ = writeln!(
            out,
            "hsvd_timed_out_total{{point=\"batcher\"}} {}",
            s.timed_out_at_batcher
        );
        let _ = writeln!(
            out,
            "hsvd_timed_out_total{{point=\"exec\"}} {}",
            s.timed_out_at_exec
        );
        gauge(
            out,
            "replicas_live",
            "Replicas currently alive.",
            s.replicas_live as f64,
        );
        gauge(
            out,
            "queue_depth",
            "Admission queue depth.",
            s.queue_depth as f64,
        );
        gauge(
            out,
            "mean_batch_size",
            "Mean executed batch size over the sample window.",
            s.mean_batch_size,
        );
        gauge(
            out,
            "throughput_rps",
            "Completed requests per second since start (lifetime).",
            s.throughput_rps,
        );
        gauge(
            out,
            "throughput_rps_window",
            "Completed requests per second since the previous snapshot.",
            s.throughput_rps_window,
        );

        for (name, help, p) in [
            (
                "queue_wait_us",
                "Queue wait (microseconds).",
                &s.queue_wait_us,
            ),
            (
                "batch_linger_us",
                "Batch linger (microseconds).",
                &s.batch_linger_us,
            ),
            (
                "sim_exec_ps",
                "Simulated Eq. (14) execution time (picoseconds).",
                &s.sim_exec_ps,
            ),
        ] {
            let _ = writeln!(out, "# HELP hsvd_{name} {help}");
            let _ = writeln!(out, "# TYPE hsvd_{name} summary");
            for (q, v) in [("0.5", p.p50), ("0.95", p.p95), ("0.99", p.p99)] {
                let _ = writeln!(out, "hsvd_{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "hsvd_{name}_max {}", p.max);
        }

        let _ = writeln!(
            out,
            "# HELP hsvd_stage_spans_total Spans recorded per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_spans_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_spans_total{{stage=\"{}\"}} {}",
                st.stage, st.count
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_stage_wall_us_total Wall-clock microseconds spent per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_wall_us_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_wall_us_total{{stage=\"{}\"}} {}",
                st.stage, st.wall_us_total
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_stage_modeled_ps_total Modeled picoseconds accumulated per stage."
        );
        let _ = writeln!(out, "# TYPE hsvd_stage_modeled_ps_total counter");
        for st in &self.journal.stages {
            let _ = writeln!(
                out,
                "hsvd_stage_modeled_ps_total{{stage=\"{}\"}} {}",
                st.stage, st.modeled_ps_total
            );
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_spans_sampled_out_total Span records dropped by sampling."
        );
        let _ = writeln!(out, "# TYPE hsvd_spans_sampled_out_total counter");
        let _ = writeln!(
            out,
            "hsvd_spans_sampled_out_total {}",
            self.journal.sampled_out
        );

        let _ = writeln!(
            out,
            "# HELP hsvd_resource_busy_fraction Busy fraction per resource class per shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_resource_busy_fraction gauge");
        for shape in &self.utilization {
            for r in &shape.report.resources {
                let _ = writeln!(
                    out,
                    "hsvd_resource_busy_fraction{{shape=\"{}x{}\",resource=\"{}\"}} {}",
                    shape.rows,
                    shape.cols,
                    r.kind.name(),
                    r.busy_fraction
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_resource_ops_total Operations per resource class per shape."
        );
        let _ = writeln!(out, "# TYPE hsvd_resource_ops_total counter");
        for shape in &self.utilization {
            for r in &shape.report.resources {
                let _ = writeln!(
                    out,
                    "hsvd_resource_ops_total{{shape=\"{}x{}\",resource=\"{}\"}} {}",
                    shape.rows,
                    shape.cols,
                    r.kind.name(),
                    r.ops
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP hsvd_critical_resource The busiest resource class per shape (value always 1)."
        );
        let _ = writeln!(out, "# TYPE hsvd_critical_resource gauge");
        for shape in &self.utilization {
            let _ = writeln!(
                out,
                "hsvd_critical_resource{{shape=\"{}x{}\",resource=\"{}\"}} 1",
                shape.rows,
                shape.cols,
                shape.report.critical.name()
            );
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;
    use aie_sim::{SimStats, TimePs};
    use heterosvd::obs::{ResourceCounts, UtilizationReport};

    fn sample_report() -> MetricsReport {
        let metrics = Metrics::new();
        let snapshot = metrics.snapshot(0, 2);
        let stats = SimStats {
            orth_invocations: 8,
            norm_invocations: 4,
            dma_transfers: 6,
            plio_transfers: 16,
            ddr_transfers: 3,
            elapsed: TimePs(1_000),
            orth_busy: TimePs(900),
            dma_busy: TimePs(200),
            ddr_busy: TimePs(100),
            ..SimStats::default()
        };
        let report = UtilizationReport::from_stats(
            &stats,
            ResourceCounts {
                plio_ports: 4,
                aie_cores: 4,
                dma_channels: 4,
                ddr_controllers: 1,
            },
        );
        MetricsReport {
            snapshot,
            utilization: vec![ShapeUtilization {
                rows: 256,
                cols: 256,
                report,
            }],
            journal: heterosvd::obs::SpanJournal::with_capacity(4).summary(),
        }
    }

    #[test]
    fn json_round_trips_key_fields() {
        let json = sample_report().to_json();
        assert!(json.contains("\"snapshot\""));
        assert!(json.contains("\"utilization\""));
        assert!(json.contains("\"journal\""));
        assert!(json.contains("\"critical\""));
        assert!(json.contains("\"rows\": 256"));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample_report().to_prometheus();
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.starts_with("hsvd_"),
                "unexpected exposition line: {line}"
            );
        }
        assert!(text.contains("# TYPE hsvd_submitted_total counter"));
        assert!(text.contains("hsvd_timed_out_total{point=\"batcher\"}"));
        assert!(text.contains("hsvd_queue_wait_us{quantile=\"0.95\"}"));
        assert!(text.contains("hsvd_stage_spans_total{stage=\"admit\"}"));
        assert!(text.contains("hsvd_resource_busy_fraction{shape=\"256x256\",resource=\"plio\"}"));
        assert!(text.contains("hsvd_critical_resource{shape=\"256x256\""));
    }

    #[test]
    fn every_type_header_precedes_its_samples() {
        let text = sample_report().to_prometheus();
        let mut typed: std::collections::HashSet<String> = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split_whitespace().next().unwrap().to_string());
            } else if !line.starts_with('#') && !line.is_empty() {
                let metric = line
                    .split(['{', ' '])
                    .next()
                    .unwrap()
                    .trim_end_matches("_max");
                assert!(
                    typed.contains(metric),
                    "sample {metric} appears before its # TYPE header"
                );
            }
        }
    }
}
