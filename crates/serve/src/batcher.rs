//! Dynamic batching: coalesces compatible requests into Eq. (14) batches.

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PopResult};
use crate::request::{BatchKey, PendingRequest};
use std::time::{Duration, Instant};

/// How long one admission-queue poll blocks before the batcher rechecks
/// for shutdown.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(20);

/// One request inside a formed batch, stamped when the batcher took it.
pub(crate) struct BatchEntry {
    pub(crate) request: PendingRequest,
    pub(crate) picked_at: Instant,
}

/// A batch ready for a replica: decompose batches are shape-uniform,
/// apply batches are (model, version)-uniform.
pub(crate) struct Batch {
    pub(crate) key: BatchKey,
    pub(crate) entries: Vec<BatchEntry>,
}

/// Outcome of one batch-formation attempt.
pub(crate) enum FormOutcome {
    /// A batch is ready for dispatch.
    Formed(Batch),
    /// The queue stayed empty for a poll tick; caller decides what next.
    Idle,
    /// The queue is closed and fully drained; the batcher should exit.
    Drained,
}

/// Pulls one seed request off the queue, then lingers — up to
/// `config.max_linger` — sweeping requests with the same [`BatchKey`]
/// into the batch until it is full. Cancelled and deadline-expired
/// requests are completed (with their terminal error) as they are
/// encountered and never reach a replica.
pub(crate) fn form_batch(
    queue: &BoundedQueue<PendingRequest>,
    config: &ServeConfig,
    metrics: &Metrics,
) -> FormOutcome {
    // Find a live seed request.
    let seed = loop {
        match queue.pop(POLL_TICK) {
            PopResult::Item(req) => {
                if let Some(req) = admit_or_complete(req, metrics) {
                    break req;
                }
            }
            PopResult::TimedOut => return FormOutcome::Idle,
            PopResult::Closed => return FormOutcome::Drained,
        }
    };

    let key = seed.batch_key();
    let linger_deadline = Instant::now() + config.max_linger;
    let mut entries = vec![BatchEntry {
        request: seed,
        picked_at: Instant::now(),
    }];

    while entries.len() < config.max_batch {
        // Snapshot the push sequence *before* sweeping: a push that
        // races with the sweep advances it and the wait below returns
        // immediately instead of sleeping through the arrival.
        let seen = queue.push_seq();
        let wanted = config.max_batch - entries.len();
        let picked_at = Instant::now();
        for request in queue.take_matching(wanted, |r| r.batch_key() == key) {
            if let Some(request) = admit_or_complete(request, metrics) {
                entries.push(BatchEntry { request, picked_at });
            }
        }
        if entries.len() >= config.max_batch {
            break;
        }
        if Instant::now() >= linger_deadline {
            break;
        }
        // Sleep on the queue's condvar, bounded by the linger deadline,
        // instead of the old fixed-slice sleep-poll: a new arrival wakes
        // the batcher in one signal (no up-to-a-slice added latency) and
        // an idle linger burns no CPU. `false` means the deadline passed
        // or the queue closed without growing — either way no new
        // request can join this batch, so stop lingering.
        if !queue.wait_for_push(seen, linger_deadline) {
            break;
        }
    }

    finish_batch(key, entries, config, metrics)
}

/// Shared batch-formation tail (FIFO and shape-classed paths): the
/// dispatch-time deadline re-filter, the observability spans, and the
/// final outcome.
///
/// The re-filter matters: a deadline can expire *during* the linger
/// (the seed is only checked at pickup). Such a request must not ride
/// the formed batch to a replica — it would be executed for nothing and
/// miscounted as an exec-side timeout when the replica finally notices.
/// Dropping it here keeps the batcher/exec timeout split honest: the
/// request never left the batcher in time.
pub(crate) fn finish_batch(
    key: BatchKey,
    mut entries: Vec<BatchEntry>,
    config: &ServeConfig,
    metrics: &Metrics,
) -> FormOutcome {
    entries.retain(|entry| {
        if entry.request.deadline_elapsed(Instant::now()) {
            if entry
                .request
                .state
                .complete(Err(ServeError::DeadlineExceeded))
            {
                metrics.record_timed_out_batcher(entry.request.request_type());
            }
            false
        } else {
            true
        }
    });
    if entries.is_empty() {
        return FormOutcome::Idle;
    }

    if config.observability {
        let journal = heterosvd::obs::global();
        for entry in &entries {
            journal.record(
                heterosvd::obs::Stage::Queue,
                Some(entry.request.id.0),
                entry
                    .picked_at
                    .saturating_duration_since(entry.request.submitted_at),
                None,
            );
        }
        // One formation span per batch: how long the batch lingered
        // from its seed pick to dispatch readiness, stamped with the
        // seed's request id.
        journal.record(
            heterosvd::obs::Stage::BatchForm,
            Some(entries[0].request.id.0),
            Instant::now().saturating_duration_since(entries[0].picked_at),
            None,
        );
    }

    FormOutcome::Formed(Batch { key, entries })
}

/// Filters one request at pickup: completes it with its terminal error
/// if it was cancelled or its deadline elapsed, otherwise passes it on.
pub(crate) fn admit_or_complete(
    request: PendingRequest,
    metrics: &Metrics,
) -> Option<PendingRequest> {
    if request.state.is_cancelled() {
        if request.state.complete(Err(ServeError::Cancelled)) {
            metrics.record_cancelled(request.request_type());
        }
        return None;
    }
    if request.deadline_elapsed(Instant::now()) {
        if request.state.complete(Err(ServeError::DeadlineExceeded)) {
            metrics.record_timed_out_batcher(request.request_type());
        }
        return None;
    }
    Some(request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Payload, RequestId, RequestState, RequestType, SloClass};
    use factor_store::{FactorMeta, ModelId, PublishedFactors};
    use std::sync::atomic::Ordering;
    use std::sync::Arc;
    use svd_kernels::{Matrix, TruncatedSvd};

    fn pending(id: u64, shape: (usize, usize)) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            payload: Payload::Decompose {
                matrix: Matrix::zeros(shape.0, shape.1),
                shape,
                publish: None,
            },
            state: RequestState::new(),
            submitted_at: Instant::now(),
            deadline: None,
            class: SloClass::Standard,
            poison: false,
        }
    }

    fn published(model: u64, version: u64) -> Arc<PublishedFactors> {
        let factors = TruncatedSvd {
            u: Matrix::zeros(4, 2),
            sigma: vec![2.0f32, 1.0],
            v: Matrix::zeros(4, 2),
            tail_sigma: 0.0,
            retained_energy: 1.0,
        };
        let bytes = factors.approx_bytes();
        Arc::new(PublishedFactors {
            model: ModelId(model),
            version,
            meta: FactorMeta {
                rows: 4,
                cols: 4,
                rank: 2,
                tail_sigma: 0.0,
                retained_energy: 1.0,
                bytes,
            },
            factors,
        })
    }

    fn pending_apply(id: u64, factors: Arc<PublishedFactors>) -> PendingRequest {
        PendingRequest {
            id: RequestId(id),
            payload: Payload::Apply {
                x: vec![0.0; factors.meta.cols],
                rank: factors.meta.rank,
                factors,
            },
            state: RequestState::new(),
            submitted_at: Instant::now(),
            deadline: None,
            class: SloClass::Standard,
            poison: false,
        }
    }

    fn config(max_batch: usize, linger: Duration) -> ServeConfig {
        ServeConfig {
            max_batch,
            max_linger: linger,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn coalesces_only_matching_shapes() {
        let queue = BoundedQueue::new(16);
        let metrics = Metrics::new();
        queue.try_push(pending(1, (8, 8))).unwrap();
        queue.try_push(pending(2, (12, 8))).unwrap();
        queue.try_push(pending(3, (8, 8))).unwrap();
        let out = form_batch(&queue, &config(4, Duration::from_millis(1)), &metrics);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.key, BatchKey::Decompose { rows: 8, cols: 8 });
        let ids: Vec<u64> = batch.entries.iter().map(|e| e.request.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(queue.len(), 1, "the (12,8) request stays queued");
    }

    #[test]
    fn apply_batches_split_by_model_and_version() {
        // Same model, two versions: a version bump mid-stream must not
        // mix pinned factor sets inside one batch.
        let queue = BoundedQueue::new(16);
        let metrics = Metrics::new();
        let v1 = published(7, 1);
        let v2 = published(7, 2);
        queue.try_push(pending_apply(1, Arc::clone(&v1))).unwrap();
        queue.try_push(pending_apply(2, Arc::clone(&v2))).unwrap();
        queue.try_push(pending_apply(3, v1)).unwrap();
        let out = form_batch(&queue, &config(4, Duration::from_millis(1)), &metrics);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(
            batch.key,
            BatchKey::Apply {
                model: 7,
                version: 1
            }
        );
        let ids: Vec<u64> = batch.entries.iter().map(|e| e.request.id.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(queue.len(), 1, "the v2 request stays queued");
        assert!(batch
            .entries
            .iter()
            .all(|e| e.request.request_type() == RequestType::Apply));
    }

    #[test]
    fn apply_and_decompose_never_share_a_batch() {
        let queue = BoundedQueue::new(16);
        let metrics = Metrics::new();
        queue.try_push(pending(1, (4, 4))).unwrap();
        queue.try_push(pending_apply(2, published(1, 1))).unwrap();
        let out = form_batch(&queue, &config(4, Duration::from_millis(1)), &metrics);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.key, BatchKey::Decompose { rows: 4, cols: 4 });
        assert_eq!(batch.entries.len(), 1);
        assert_eq!(queue.len(), 1, "the apply request stays queued");
    }

    #[test]
    fn full_batch_short_circuits_the_linger() {
        let queue = BoundedQueue::new(16);
        let metrics = Metrics::new();
        for id in 0..3 {
            queue.try_push(pending(id, (8, 8))).unwrap();
        }
        let start = Instant::now();
        let out = form_batch(&queue, &config(3, Duration::from_secs(5)), &metrics);
        assert!(matches!(out, FormOutcome::Formed(b) if b.entries.len() == 3));
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn cancelled_requests_never_reach_a_batch() {
        let queue = BoundedQueue::new(16);
        let metrics = Metrics::new();
        let doomed = pending(1, (8, 8));
        doomed.state.cancelled.store(true, Ordering::SeqCst);
        let doomed_state = std::sync::Arc::clone(&doomed.state);
        queue.try_push(doomed).unwrap();
        queue.try_push(pending(2, (8, 8))).unwrap();
        let out = form_batch(&queue, &config(2, Duration::from_millis(1)), &metrics);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.entries.len(), 1);
        assert_eq!(batch.entries[0].request.id, RequestId(2));
        assert!(!doomed_state.complete(Err(ServeError::Cancelled)));
        assert_eq!(metrics.cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn expired_deadline_is_a_terminal_timeout() {
        let queue = BoundedQueue::new(4);
        let metrics = Metrics::new();
        let mut stale = pending(1, (8, 8));
        stale.deadline = Some(Instant::now() - Duration::from_millis(1));
        queue.try_push(stale).unwrap();
        let out = form_batch(&queue, &config(2, Duration::from_millis(1)), &metrics);
        assert!(matches!(out, FormOutcome::Idle));
        assert_eq!(metrics.timed_out_batcher.load(Ordering::Relaxed), 1);
        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.per_type.decompose.timed_out_at_batcher, 1);
        assert_eq!(snapshot.per_type.apply.timed_out_at_batcher, 0);
    }

    /// Regression test: a request whose deadline expires *during* the
    /// linger used to ride the formed batch to a replica anyway (the
    /// deadline is only checked at pickup), where it burned a batch slot
    /// and was miscounted as an exec-side timeout. The dispatch-time
    /// re-filter must drop it batcher-side — here it is the only entry,
    /// so the whole batch dissolves into `Idle`.
    #[test]
    fn deadline_expiring_during_linger_is_dropped_before_dispatch() {
        let queue = BoundedQueue::new(8);
        let metrics = Metrics::new();
        let mut seed = pending(1, (8, 8));
        seed.deadline = Some(Instant::now() + Duration::from_millis(50));
        let state = Arc::clone(&seed.state);
        queue.try_push(seed).unwrap();
        // The seed is live at pickup, but the 300 ms linger outlives its
        // 50 ms deadline and nothing else arrives to fill the batch.
        let out = form_batch(&queue, &config(4, Duration::from_millis(300)), &metrics);
        assert!(
            matches!(out, FormOutcome::Idle),
            "expired entry must not form a batch"
        );
        assert_eq!(metrics.timed_out_batcher.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.timed_out_exec.load(Ordering::Relaxed), 0);
        // The request was completed with the timeout by the batcher.
        assert!(!state.complete(Err(ServeError::DeadlineExceeded)));
    }

    #[test]
    fn linger_wakes_promptly_on_new_arrival() {
        // With a 10 s linger, the old sleep-poll batcher would add up to
        // one fixed slice of latency per arrival; the condvar wait must
        // instead complete the batch almost immediately after the second
        // request lands (generous bound for loaded CI machines).
        let queue = std::sync::Arc::new(BoundedQueue::new(8));
        let metrics = Metrics::new();
        queue.try_push(pending(1, (8, 8))).unwrap();
        let q2 = std::sync::Arc::clone(&queue);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            q2.try_push(pending(2, (8, 8))).unwrap();
        });
        let start = Instant::now();
        let out = form_batch(&queue, &config(2, Duration::from_secs(10)), &metrics);
        pusher.join().unwrap();
        assert!(matches!(out, FormOutcome::Formed(b) if b.entries.len() == 2));
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "batch took {:?}; the linger slept through the arrival",
            start.elapsed()
        );
    }

    #[test]
    fn closed_queue_with_nonmatching_leftover_ends_the_linger() {
        // A closed queue holding only a different shape can never grow
        // this batch: the linger must end immediately instead of
        // sleeping out its full budget (the pre-condvar code did the
        // latter).
        let queue = BoundedQueue::new(8);
        let metrics = Metrics::new();
        queue.try_push(pending(1, (8, 8))).unwrap();
        queue.try_push(pending(2, (12, 8))).unwrap();
        queue.close();
        let start = Instant::now();
        let out = form_batch(&queue, &config(4, Duration::from_secs(10)), &metrics);
        let batch = match out {
            FormOutcome::Formed(b) => b,
            _ => panic!("expected a batch"),
        };
        assert_eq!(batch.entries.len(), 1);
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "lingered {:?} on a closed queue",
            start.elapsed()
        );
    }

    #[test]
    fn empty_queue_reports_idle_then_drained_after_close() {
        let queue: BoundedQueue<PendingRequest> = BoundedQueue::new(4);
        let metrics = Metrics::new();
        assert!(matches!(
            form_batch(&queue, &config(2, Duration::from_millis(1)), &metrics),
            FormOutcome::Idle
        ));
        queue.close();
        assert!(matches!(
            form_batch(&queue, &config(2, Duration::from_millis(1)), &metrics),
            FormOutcome::Drained
        ));
    }
}
