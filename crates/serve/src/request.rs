//! Request lifecycle: submission options, handles, and latency records.

use crate::error::ServeError;
use factor_store::{FactorMeta, ModelId, PublishedFactors};
use heterosvd::factor_cache::{ClientId, FactorCacheEntry};
use heterosvd::{HeteroSvdOutput, WarmStartCounters};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use svd_kernels::incremental::{UpdateClass, UpdateRoute};
use svd_kernels::Matrix;

/// Opaque id assigned at admission, unique within a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// The request kinds the service admits, batched and metered separately
/// so apply traffic does not dilute decompose latency stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestType {
    /// Full factorization of a submitted matrix.
    Decompose,
    /// Rank-r matvec against store-resident factors.
    Apply,
    /// Incremental re-factorization of a client's evolving matrix
    /// against its cached factors (warm start / low-rank fast path).
    Update,
}

impl serde::Serialize for RequestType {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl RequestType {
    /// Every request type, in metrics/report order.
    pub const ALL: [RequestType; 3] = [
        RequestType::Decompose,
        RequestType::Apply,
        RequestType::Update,
    ];

    /// Stable snake_case name (used in exports).
    pub fn name(self) -> &'static str {
        match self {
            RequestType::Decompose => "decompose",
            RequestType::Apply => "apply",
            RequestType::Update => "update",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            RequestType::Decompose => 0,
            RequestType::Apply => 1,
            RequestType::Update => 2,
        }
    }
}

/// Service-level-objective class attached at submission. The class
/// drives the shape-classed scheduler (see `scheduler`): it sets the
/// request's *scheduling horizon* — the effective deadline the EDF
/// seed pick and admission-eviction order on when no explicit timeout
/// was given — and its shedding priority under overload. It never, by
/// itself, times a request out: only an explicit per-request timeout
/// (or the service default) produces `DeadlineExceeded`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Latency-sensitive traffic: shortest scheduling horizon, shed
    /// last, and batched under a quartered linger budget.
    Interactive,
    /// The default class: the service's pre-SLO behavior.
    #[default]
    Standard,
    /// Throughput traffic: longest horizon, first to be shed or
    /// evicted when an urgent request arrives at a full queue.
    Batch,
}

impl serde::Serialize for SloClass {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl SloClass {
    /// Every class, in metrics/report order.
    pub const ALL: [SloClass; 3] = [SloClass::Interactive, SloClass::Standard, SloClass::Batch];

    /// Stable snake_case name (used in exports and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            SloClass::Interactive => "interactive",
            SloClass::Standard => "standard",
            SloClass::Batch => "batch",
        }
    }

    /// Parses the stable name (CLI flags).
    ///
    /// # Errors
    ///
    /// The offending string when it names no class.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "interactive" => Ok(SloClass::Interactive),
            "standard" => Ok(SloClass::Standard),
            "batch" => Ok(SloClass::Batch),
            other => Err(format!(
                "unknown SLO class {other} (expected interactive|standard|batch)"
            )),
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            SloClass::Interactive => 0,
            SloClass::Standard => 1,
            SloClass::Batch => 2,
        }
    }

    /// Shedding/eviction priority; higher is more urgent and kept
    /// longer under overload.
    pub(crate) fn priority(self) -> u8 {
        match self {
            SloClass::Interactive => 2,
            SloClass::Standard => 1,
            SloClass::Batch => 0,
        }
    }

    /// The scheduling horizon: how far past submission the request's
    /// effective deadline sits when the caller gave no explicit
    /// timeout. Orders the EDF pick; never enforced as a timeout.
    pub(crate) fn horizon(self) -> Duration {
        match self {
            SloClass::Interactive => Duration::from_millis(100),
            SloClass::Standard => Duration::from_secs(1),
            SloClass::Batch => Duration::from_secs(10),
        }
    }
}

/// Instruction attached to a decompose request: after the factorization
/// succeeds, truncate it to `rank` and publish the factors as the next
/// version of `model` in the service's factor store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishSpec {
    /// The model the factors belong to.
    pub model: ModelId,
    /// Truncation rank (validated against the matrix at admission).
    pub rank: usize,
}

/// Per-request options accepted at submission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Overrides the service's default deadline. The deadline covers
    /// wall-clock queueing and lingering; once a batch starts executing
    /// the request is carried to completion.
    pub timeout: Option<Duration>,
    /// The request's SLO class (default [`SloClass::Standard`]).
    /// Ignored unless the service runs with `shape_classed`
    /// scheduling, where it orders the EDF pick and the shed/evict
    /// policy.
    pub class: SloClass,
}

/// The plan a request executed under. Autoscale swaps change the live
/// plan between batches, so callers auditing results (e.g. the bench
/// bit-identity gate) group responses by generation: every request in
/// one generation ran wholly under one plan, and its factors match a
/// static service pinned at that plan bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PlanInfo {
    /// Engine parallelism (P_eng) the executing accelerator used.
    pub engine_parallelism: usize,
    /// Task parallelism (P_task) the executing accelerator used.
    pub task_parallelism: usize,
    /// Plan generation at execution time (bumps once per committed
    /// autoscale swap; 0 until the first swap).
    pub generation: u64,
}

/// Where each slice of a request's life went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRecord {
    /// Wall-clock time from admission until the batcher picked the
    /// request out of the queue.
    pub queue_wait: Duration,
    /// Wall-clock time the request spent inside the batcher while the
    /// batch filled (bounded by the configured max linger).
    pub batch_linger: Duration,
    /// Simulated execution time charged to the request: the Eq. (14)
    /// batch system time `⌈B / P_task⌉ · t_task`, in picoseconds. Every
    /// request in a batch is charged the same amount.
    pub sim_exec_ps: u64,
    /// Size of the batch the request executed in.
    pub batch_size: usize,
    /// Wall-clock time from admission until completion.
    pub wall_total: Duration,
    /// The plan the request executed under (base plan for apply and
    /// host-only routes, which never touch the accelerator array).
    pub plan: PlanInfo,
}

/// Successful result of a served decompose request.
#[derive(Debug, Clone)]
pub struct SvdResponse {
    /// Id echoed from the handle.
    pub id: RequestId,
    /// The accelerator output (factors, stats, per-task timing).
    pub output: HeteroSvdOutput,
    /// The request's latency decomposition.
    pub latency: LatencyRecord,
}

/// Successful result of a served apply request.
#[derive(Debug, Clone)]
pub struct ApplyResponse {
    /// Id echoed from the handle.
    pub id: RequestId,
    /// The model whose factors served the request.
    pub model: ModelId,
    /// The factor version the request was pinned to at admission.
    pub version: u64,
    /// The rank actually applied.
    pub rank: usize,
    /// The rank-r product `y = U_r·Σ_r·V_rᵀ·x`.
    pub y: Vec<f32>,
    /// Rank/accuracy metadata of the serving factor version.
    pub meta: FactorMeta,
    /// The request's latency decomposition (`sim_exec_ps` charges the
    /// Eq. 8–14 apply pipeline system time).
    pub latency: LatencyRecord,
}

/// Successful result of a served incremental-update request.
#[derive(Debug, Clone)]
pub struct UpdateResponse {
    /// Id echoed from the handle.
    pub id: RequestId,
    /// The client whose cached factors routed the request.
    pub client: ClientId,
    /// The route the update actually executed (pinned at admission).
    pub route: UpdateRoute,
    /// Measured `‖ΔA‖_F / ‖A‖_F` against the cached previous matrix
    /// (`∞` on shape change, `0` with no cache entry — the cold path).
    pub delta_rel: f64,
    /// Singular values served, descending. Warm-start and full routes
    /// return the complete spectrum; the low-rank route returns the
    /// cached truncation rank.
    pub sigma: Vec<f32>,
    /// The accelerator output when one ran (warm-start and full routes;
    /// `None` for the host-only low-rank route).
    pub output: Option<HeteroSvdOutput>,
    /// Warm-start sweep accounting when the warm route executed.
    pub warm_start: Option<WarmStartCounters>,
    /// The request's latency decomposition (`sim_exec_ps` is 0 for the
    /// host-only low-rank route).
    pub latency: LatencyRecord,
}

/// Either terminal payload a request can complete with; typed handles
/// unwrap their own variant. The variants differ in size (an
/// `SvdResponse` carries full factors), but exactly one instance
/// exists per in-flight request and it is moved, never copied, so the
/// indirection boxing would buy costs more than the slack bytes.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub(crate) enum Completion {
    Svd(SvdResponse),
    Apply(ApplyResponse),
    Update(UpdateResponse),
}

/// Caller-side handle to an admitted decompose request.
///
/// Waiting consumes the handle, so a result is delivered exactly once.
#[derive(Debug)]
pub struct RequestHandle {
    pub(crate) id: RequestId,
    pub(crate) state: Arc<RequestState>,
}

impl RequestHandle {
    /// The id assigned at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Requests cancellation. Best-effort: a request already executing
    /// is carried to completion; one still queued or lingering completes
    /// with [`ServeError::Cancelled`].
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a result is already available (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Blocks until the request completes and takes the result.
    ///
    /// # Errors
    ///
    /// Whatever terminal error the request ended with.
    pub fn wait(self) -> Result<SvdResponse, ServeError> {
        take_svd(self.state.wait_take())
    }

    /// Blocks up to `timeout` for completion.
    ///
    /// # Errors
    ///
    /// `Err(self)` hands the handle back on timeout so the caller can
    /// keep waiting or cancel.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<SvdResponse, ServeError>, Self> {
        match self.state.wait_take_until(Instant::now() + timeout) {
            Some(result) => Ok(take_svd(result)),
            None => Err(self),
        }
    }
}

/// Caller-side handle to an admitted apply request.
///
/// Same lifecycle as [`RequestHandle`], delivering an [`ApplyResponse`].
#[derive(Debug)]
pub struct ApplyHandle {
    pub(crate) id: RequestId,
    pub(crate) state: Arc<RequestState>,
}

impl ApplyHandle {
    /// The id assigned at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Requests cancellation (best-effort, as for [`RequestHandle`]).
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a result is already available (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Blocks until the request completes and takes the result.
    ///
    /// # Errors
    ///
    /// Whatever terminal error the request ended with.
    pub fn wait(self) -> Result<ApplyResponse, ServeError> {
        take_apply(self.state.wait_take())
    }

    /// Blocks up to `timeout` for completion; `Err(self)` hands the
    /// handle back on timeout.
    ///
    /// # Errors
    ///
    /// `Err(self)` on timeout.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<ApplyResponse, ServeError>, Self> {
        match self.state.wait_take_until(Instant::now() + timeout) {
            Some(result) => Ok(take_apply(result)),
            None => Err(self),
        }
    }
}

/// Caller-side handle to an admitted incremental-update request.
///
/// Same lifecycle as [`RequestHandle`], delivering an [`UpdateResponse`].
#[derive(Debug)]
pub struct UpdateHandle {
    pub(crate) id: RequestId,
    pub(crate) state: Arc<RequestState>,
}

impl UpdateHandle {
    /// The id assigned at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Requests cancellation (best-effort, as for [`RequestHandle`]).
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a result is already available (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Blocks until the request completes and takes the result.
    ///
    /// # Errors
    ///
    /// Whatever terminal error the request ended with.
    pub fn wait(self) -> Result<UpdateResponse, ServeError> {
        take_update(self.state.wait_take())
    }

    /// Blocks up to `timeout` for completion; `Err(self)` hands the
    /// handle back on timeout.
    ///
    /// # Errors
    ///
    /// `Err(self)` on timeout.
    pub fn wait_timeout(
        self,
        timeout: Duration,
    ) -> Result<Result<UpdateResponse, ServeError>, Self> {
        match self.state.wait_take_until(Instant::now() + timeout) {
            Some(result) => Ok(take_update(result)),
            None => Err(self),
        }
    }
}

fn take_svd(result: Result<Completion, ServeError>) -> Result<SvdResponse, ServeError> {
    result.map(|completion| match completion {
        Completion::Svd(response) => response,
        // A decompose handle is only ever completed by the decompose
        // path; the payload/handle pairing is fixed at admission.
        _ => unreachable!("decompose handle completed with a foreign response"),
    })
}

fn take_apply(result: Result<Completion, ServeError>) -> Result<ApplyResponse, ServeError> {
    result.map(|completion| match completion {
        Completion::Apply(response) => response,
        _ => unreachable!("apply handle completed with a foreign response"),
    })
}

fn take_update(result: Result<Completion, ServeError>) -> Result<UpdateResponse, ServeError> {
    result.map(|completion| match completion {
        Completion::Update(response) => response,
        _ => unreachable!("update handle completed with a foreign response"),
    })
}

/// Shared completion slot between the handle and the service threads.
#[derive(Debug)]
pub(crate) struct RequestState {
    slot: Mutex<Option<Result<Completion, ServeError>>>,
    done: Condvar,
    pub(crate) cancelled: AtomicBool,
}

impl RequestState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(RequestState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Completes the request if still pending; the first completion
    /// wins and later ones are dropped. Returns whether this call won.
    pub(crate) fn complete(&self, result: Result<Completion, ServeError>) -> bool {
        let mut slot = self.slot.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(result);
        drop(slot);
        self.done.notify_all();
        true
    }

    /// Shorthand for failing the request with `err`.
    #[cfg(test)]
    pub(crate) fn fail(&self, err: ServeError) -> bool {
        self.complete(Err(err))
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }

    fn wait_take(&self) -> Result<Completion, ServeError> {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.done.wait(&mut slot);
        }
        slot.take().expect("slot filled")
    }

    fn wait_take_until(&self, deadline: Instant) -> Option<Result<Completion, ServeError>> {
        let mut slot = self.slot.lock();
        loop {
            if let Some(result) = slot.take() {
                return Some(result);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.done.wait_for(&mut slot, deadline - now);
        }
    }
}

/// The work a pending request carries: a matrix to decompose or a vector
/// to stream through store-resident factors.
#[derive(Debug)]
pub(crate) enum Payload {
    Decompose {
        /// The request's matrix in the device's native `f32`: cast once
        /// at admission (halving queued-request memory vs. storing the
        /// caller's `f64`), then *moved* — never cloned — into the
        /// accelerator when its batch executes.
        matrix: Matrix<f32>,
        shape: (usize, usize),
        /// When set, the replica truncates and publishes the successful
        /// factorization into the service's factor store.
        publish: Option<PublishSpec>,
    },
    Apply {
        /// The input vector in device `f32`.
        x: Vec<f32>,
        /// The factor version pinned at admission: the `Arc` keeps it
        /// alive (and bit-identical) even if a republish or eviction
        /// replaces it in the store mid-flight, and the replica applies
        /// it without copying any factor data.
        factors: Arc<PublishedFactors>,
        /// The rank actually applied (`<=` the stored rank).
        rank: usize,
    },
    Update {
        /// The updated matrix in device `f32` (same move-not-clone
        /// discipline as `Decompose`).
        matrix: Matrix<f32>,
        shape: (usize, usize),
        /// The client whose factor-cache slot keys this update stream.
        client: ClientId,
        /// The cache entry pinned at admission (`None` on a cold
        /// start): the `Arc` keeps the previous basis alive even if
        /// the cache evicts it mid-flight, so the replica never reads
        /// a basis the classification didn't see.
        entry: Option<Arc<FactorCacheEntry>>,
        /// The route decided at admission against the pinned entry;
        /// `None` on a cold start (full solve, no classification ran).
        class: Option<UpdateClass<f32>>,
    },
}

/// What the batcher coalesces on: decompose batches are shape-uniform
/// (one accelerator run), apply batches are (model, version)-uniform
/// (one pinned factor set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum BatchKey {
    Decompose {
        rows: usize,
        cols: usize,
    },
    Apply {
        model: u64,
        version: u64,
    },
    /// Update batches are shape-uniform like decompose, but execute
    /// per-request (each rides its own cached basis and route).
    Update {
        rows: usize,
        cols: usize,
    },
}

/// A request travelling through the service internals.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) id: RequestId,
    pub(crate) payload: Payload,
    pub(crate) state: Arc<RequestState>,
    pub(crate) submitted_at: Instant,
    pub(crate) deadline: Option<Instant>,
    /// SLO class stamped at admission; read by the shape-classed
    /// scheduler and the per-class metrics.
    pub(crate) class: SloClass,
    /// Test/chaos hook: the replica that picks this request up panics
    /// (inside its containment boundary) instead of executing it.
    pub(crate) poison: bool,
}

impl PendingRequest {
    pub(crate) fn deadline_elapsed(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }

    /// The instant the EDF scheduler orders this request by: the
    /// explicit deadline when one was set, otherwise submission time
    /// plus the class horizon. Purely a scheduling key — a request
    /// whose *effective* deadline passes is served late, not timed out.
    pub(crate) fn effective_deadline(&self) -> Instant {
        self.deadline
            .unwrap_or_else(|| self.submitted_at + self.class.horizon())
    }

    pub(crate) fn batch_key(&self) -> BatchKey {
        match &self.payload {
            Payload::Decompose { shape, .. } => BatchKey::Decompose {
                rows: shape.0,
                cols: shape.1,
            },
            Payload::Apply { factors, .. } => BatchKey::Apply {
                model: factors.model.0,
                version: factors.version,
            },
            Payload::Update { shape, .. } => BatchKey::Update {
                rows: shape.0,
                cols: shape.1,
            },
        }
    }

    pub(crate) fn request_type(&self) -> RequestType {
        match &self.payload {
            Payload::Decompose { .. } => RequestType::Decompose,
            Payload::Apply { .. } => RequestType::Apply,
            Payload::Update { .. } => RequestType::Update,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins() {
        let state = RequestState::new();
        assert!(state.fail(ServeError::Cancelled));
        assert!(!state.fail(ServeError::DeadlineExceeded));
        // The losing write did not clobber the winner.
        let handle = RequestHandle {
            id: RequestId(1),
            state,
        };
        assert_eq!(handle.wait().unwrap_err(), ServeError::Cancelled);
    }

    #[test]
    fn wait_returns_the_stored_result() {
        let state = RequestState::new();
        let handle = RequestHandle {
            id: RequestId(7),
            state: Arc::clone(&state),
        };
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            state.fail(ServeError::DeadlineExceeded);
        });
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        writer.join().unwrap();
    }

    #[test]
    fn wait_timeout_hands_the_handle_back() {
        let state = RequestState::new();
        let handle = RequestHandle {
            id: RequestId(9),
            state,
        };
        let handle = handle
            .wait_timeout(Duration::from_millis(2))
            .expect_err("nothing completed it");
        handle.cancel();
        assert!(handle.state.is_cancelled());
    }

    #[test]
    fn apply_handle_round_trips_its_response() {
        let state = RequestState::new();
        let handle = ApplyHandle {
            id: RequestId(3),
            state: Arc::clone(&state),
        };
        let response = ApplyResponse {
            id: RequestId(3),
            model: ModelId(42),
            version: 2,
            rank: 4,
            y: vec![1.0, 2.0],
            meta: FactorMeta {
                rows: 2,
                cols: 2,
                rank: 4,
                tail_sigma: 0.0,
                retained_energy: 1.0,
                bytes: 64,
            },
            latency: LatencyRecord {
                queue_wait: Duration::ZERO,
                batch_linger: Duration::ZERO,
                sim_exec_ps: 10,
                batch_size: 1,
                wall_total: Duration::ZERO,
                plan: PlanInfo::default(),
            },
        };
        assert!(state.complete(Ok(Completion::Apply(response))));
        let got = handle.wait().unwrap();
        assert_eq!(got.model, ModelId(42));
        assert_eq!(got.y, vec![1.0, 2.0]);
    }

    #[test]
    fn slo_class_names_round_trip_and_order() {
        assert_eq!(SloClass::default(), SloClass::Standard);
        for (i, class) in SloClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert_eq!(SloClass::parse(class.name()).unwrap(), *class);
        }
        assert!(SloClass::parse("bulk").is_err());
        // Interactive is most urgent on both axes the scheduler uses.
        assert!(SloClass::Interactive.priority() > SloClass::Standard.priority());
        assert!(SloClass::Standard.priority() > SloClass::Batch.priority());
        assert!(SloClass::Interactive.horizon() < SloClass::Standard.horizon());
        assert!(SloClass::Standard.horizon() < SloClass::Batch.horizon());
    }

    #[test]
    fn effective_deadline_prefers_the_explicit_timeout() {
        let now = Instant::now();
        let mut req = PendingRequest {
            id: RequestId(1),
            payload: Payload::Decompose {
                matrix: Matrix::zeros(4, 4),
                shape: (4, 4),
                publish: None,
            },
            state: RequestState::new(),
            submitted_at: now,
            deadline: None,
            class: SloClass::Batch,
            poison: false,
        };
        assert_eq!(req.effective_deadline(), now + SloClass::Batch.horizon());
        req.deadline = Some(now + Duration::from_millis(3));
        assert_eq!(req.effective_deadline(), now + Duration::from_millis(3));
    }

    #[test]
    fn request_type_names_are_stable() {
        assert_eq!(RequestType::Decompose.name(), "decompose");
        assert_eq!(RequestType::Apply.name(), "apply");
        assert_eq!(RequestType::Update.name(), "update");
        assert_eq!(RequestType::ALL.len(), 3);
        for (i, rtype) in RequestType::ALL.iter().enumerate() {
            assert_eq!(rtype.index(), i);
        }
    }
}
