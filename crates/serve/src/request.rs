//! Request lifecycle: submission options, handles, and latency records.

use crate::error::ServeError;
use heterosvd::HeteroSvdOutput;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use svd_kernels::Matrix;

/// Opaque id assigned at admission, unique within a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub(crate) u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req-{}", self.0)
    }
}

/// Per-request options accepted at submission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitOptions {
    /// Overrides the service's default deadline. The deadline covers
    /// wall-clock queueing and lingering; once a batch starts executing
    /// the request is carried to completion.
    pub timeout: Option<Duration>,
}

/// Where each slice of a request's life went.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyRecord {
    /// Wall-clock time from admission until the batcher picked the
    /// request out of the queue.
    pub queue_wait: Duration,
    /// Wall-clock time the request spent inside the batcher while the
    /// batch filled (bounded by the configured max linger).
    pub batch_linger: Duration,
    /// Simulated execution time charged to the request: the Eq. (14)
    /// batch system time `⌈B / P_task⌉ · t_task`, in picoseconds. Every
    /// request in a batch is charged the same amount.
    pub sim_exec_ps: u64,
    /// Size of the batch the request executed in.
    pub batch_size: usize,
    /// Wall-clock time from admission until completion.
    pub wall_total: Duration,
}

/// Successful result of a served request.
#[derive(Debug, Clone)]
pub struct SvdResponse {
    /// Id echoed from the handle.
    pub id: RequestId,
    /// The accelerator output (factors, stats, per-task timing).
    pub output: HeteroSvdOutput,
    /// The request's latency decomposition.
    pub latency: LatencyRecord,
}

/// Caller-side handle to an admitted request.
///
/// Waiting consumes the handle, so a result is delivered exactly once.
#[derive(Debug)]
pub struct RequestHandle {
    pub(crate) id: RequestId,
    pub(crate) state: Arc<RequestState>,
}

impl RequestHandle {
    /// The id assigned at admission.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Requests cancellation. Best-effort: a request already executing
    /// is carried to completion; one still queued or lingering completes
    /// with [`ServeError::Cancelled`].
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether a result is already available (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.state.slot.lock().is_some()
    }

    /// Blocks until the request completes and takes the result.
    ///
    /// # Errors
    ///
    /// Whatever terminal error the request ended with.
    pub fn wait(self) -> Result<SvdResponse, ServeError> {
        let mut slot = self.state.slot.lock();
        while slot.is_none() {
            self.state.done.wait(&mut slot);
        }
        slot.take().expect("slot filled")
    }

    /// Blocks up to `timeout` for completion.
    ///
    /// # Errors
    ///
    /// `Err(self)` hands the handle back on timeout so the caller can
    /// keep waiting or cancel.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Result<SvdResponse, ServeError>, Self> {
        let deadline = Instant::now() + timeout;
        {
            let mut slot = self.state.slot.lock();
            loop {
                if let Some(result) = slot.take() {
                    return Ok(result);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                self.state.done.wait_for(&mut slot, deadline - now);
            }
        }
        Err(self)
    }
}

/// Shared completion slot between the handle and the service threads.
#[derive(Debug)]
pub(crate) struct RequestState {
    slot: Mutex<Option<Result<SvdResponse, ServeError>>>,
    done: Condvar,
    pub(crate) cancelled: AtomicBool,
}

impl RequestState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(RequestState {
            slot: Mutex::new(None),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
        })
    }

    /// Completes the request if still pending; the first completion
    /// wins and later ones are dropped. Returns whether this call won.
    pub(crate) fn complete(&self, result: Result<SvdResponse, ServeError>) -> bool {
        let mut slot = self.slot.lock();
        if slot.is_some() {
            return false;
        }
        *slot = Some(result);
        drop(slot);
        self.done.notify_all();
        true
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

/// A request travelling through the service internals.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub(crate) id: RequestId,
    /// The request's matrix in the device's native `f32`: cast once at
    /// admission (halving queued-request memory vs. storing the caller's
    /// `f64`), then *moved* — never cloned — into the accelerator when
    /// its batch executes.
    pub(crate) matrix: Matrix<f32>,
    pub(crate) shape: (usize, usize),
    pub(crate) state: Arc<RequestState>,
    pub(crate) submitted_at: Instant,
    pub(crate) deadline: Option<Instant>,
    /// Test/chaos hook: the replica that picks this request up panics
    /// (inside its containment boundary) instead of executing it.
    pub(crate) poison: bool,
}

impl PendingRequest {
    pub(crate) fn deadline_elapsed(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_completion_wins() {
        let state = RequestState::new();
        assert!(state.complete(Err(ServeError::Cancelled)));
        assert!(!state.complete(Err(ServeError::DeadlineExceeded)));
        // The losing write did not clobber the winner.
        let handle = RequestHandle {
            id: RequestId(1),
            state,
        };
        assert_eq!(handle.wait().unwrap_err(), ServeError::Cancelled);
    }

    #[test]
    fn wait_returns_the_stored_result() {
        let state = RequestState::new();
        let handle = RequestHandle {
            id: RequestId(7),
            state: Arc::clone(&state),
        };
        let writer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            state.complete(Err(ServeError::DeadlineExceeded));
        });
        assert_eq!(handle.wait().unwrap_err(), ServeError::DeadlineExceeded);
        writer.join().unwrap();
    }

    #[test]
    fn wait_timeout_hands_the_handle_back() {
        let state = RequestState::new();
        let handle = RequestHandle {
            id: RequestId(9),
            state,
        };
        let handle = handle
            .wait_timeout(Duration::from_millis(2))
            .expect_err("nothing completed it");
        handle.cancel();
        assert!(handle.state.is_cancelled());
    }
}
