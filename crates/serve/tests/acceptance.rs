//! Acceptance tests for the serving runtime's three headline behaviors:
//! exact backpressure at the queue bound, worker-panic containment with
//! replica replacement, and Eq. (14) batch time charging consistent with
//! `Accelerator::run_many`.

use heterosvd::{Accelerator, HeteroSvdConfig};
use heterosvd_serve::{ServeConfig, ServeError, SubmitOptions, SvdService};
use std::time::Duration;
use svd_kernels::Matrix;

fn well_conditioned(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r as u64 * 29 + c as u64 * 11 + salt * 7) % 13) as f64 / 3.0
            + if r == c { 5.0 } else { 0.0 }
    })
}

/// Backpressure: while the batcher lingers on one shape, submissions of
/// a *different* shape accumulate in the admission queue; once it holds
/// `queue_capacity` requests the next submission is rejected with
/// `QueueFull`, and every admitted request still completes.
#[test]
fn backpressure_rejects_beyond_queue_bound() {
    let capacity = 6;
    let service = SvdService::start(ServeConfig {
        workers: 1,
        queue_capacity: capacity,
        max_batch: 64,
        // Long linger: the batcher sits on the first shape while the
        // other-shape burst below fills the queue.
        max_linger: Duration::from_millis(400),
        ..ServeConfig::default()
    })
    .unwrap();

    // Seed the batcher with shape (8, 8)...
    let seed = service.try_submit(well_conditioned(8, 8, 0)).unwrap();
    std::thread::sleep(Duration::from_millis(50));

    // ...then burst more (12, 8) requests than the queue can hold. The
    // lingering batcher only sweeps (8, 8), so these stay queued.
    let mut admitted = vec![seed];
    let mut rejections = 0;
    for salt in 0..(capacity as u64 + 4) {
        match service.try_submit(well_conditioned(12, 8, salt)) {
            Ok(handle) => admitted.push(handle),
            Err(ServeError::QueueFull { capacity: c }) => {
                assert_eq!(c, capacity);
                rejections += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(
        rejections >= 4,
        "expected the burst to overflow the bound, got {rejections} rejections"
    );

    // Backpressure is loss-free for admitted work: everything completes.
    for handle in admitted {
        handle.wait().expect("admitted request must complete");
    }
    service.shutdown();
    let m = service.metrics();
    assert_eq!(m.rejected_queue_full, rejections);
    assert_eq!(m.completed_ok, m.submitted);
}

/// Panic containment: a poison request kills its replica but only its
/// own batch fails; the pool replaces the replica and the next request
/// succeeds.
#[test]
fn worker_panic_degrades_to_single_failed_request() {
    let service = SvdService::start(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 1, // isolate the poison pill in its own batch
        max_linger: Duration::from_millis(1),
        ..ServeConfig::default()
    })
    .unwrap();

    let poisoned = service.try_submit_poison(8, 8).unwrap();
    match poisoned.wait() {
        Err(ServeError::WorkerPanicked(msg)) => {
            assert!(msg.contains("poison"), "payload lost: {msg}")
        }
        other => panic!("expected WorkerPanicked, got {other:?}"),
    }

    // The replacement replica serves the next request normally.
    let after = service.try_submit(well_conditioned(8, 8, 3)).unwrap();
    let response = after.wait().expect("service must recover after a panic");
    assert_eq!(response.output.result.sigma.len(), 8);

    service.shutdown();
    let m = service.metrics();
    assert_eq!(m.worker_panics, 1);
    assert_eq!(m.failed, 1);
    assert_eq!(m.completed_ok, 1);
    assert_eq!(m.replicas_spawned, 2, "poisoned replica must be replaced");
    assert_eq!(m.replicas_live, 0);
}

/// Eq. (14) charging: every request in a batch of size `B` is charged
/// `⌈B / P_task⌉ · t_task`, exactly what `Accelerator::run_many` reports
/// for the same batch.
#[test]
fn batched_requests_are_charged_eq14_system_time() {
    let p_task = 3;
    let service = SvdService::start(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 5,
        max_linger: Duration::from_millis(300),
        task_parallelism: p_task,
        // This test pins the *sequential* Eq. (14) charge; the packed
        // wave charge has its own acceptance test below.
        array_packing: false,
        ..ServeConfig::default()
    })
    .unwrap();

    // Identical matrices: every batch member has the same task time, so
    // each response is self-checkable regardless of how the requests
    // were grouped into batches.
    let matrix = well_conditioned(8, 8, 5);
    let handles: Vec<_> = (0..5)
        .map(|_| {
            service
                .try_submit_with(matrix.clone(), SubmitOptions::default())
                .unwrap()
        })
        .collect();

    let responses: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("batch request must complete"))
        .collect();

    let mut saw_real_batch = false;
    for response in &responses {
        let batch = response.latency.batch_size;
        assert!((1..=5).contains(&batch));
        saw_real_batch |= batch > 1;
        let t_task = response.output.timing.task_time.0;
        let expected = t_task * batch.div_ceil(p_task) as u64;
        assert_eq!(
            response.latency.sim_exec_ps, expected,
            "Eq. 14 violated for batch of {batch}"
        );

        // Cross-check against run_many on an identical batch.
        let config = HeteroSvdConfig::builder(8, 8)
            .engine_parallelism(2)
            .task_parallelism(p_task)
            .precision(1e-6)
            .build()
            .unwrap();
        let accelerator = Accelerator::new(config).unwrap();
        let copies: Vec<Matrix<f64>> = (0..batch).map(|_| matrix.clone()).collect();
        let (_, system_time) = accelerator.run_many(&copies).unwrap();
        assert_eq!(
            response.latency.sim_exec_ps, system_time.0,
            "service charge disagrees with run_many for batch of {batch}"
        );
    }
    assert!(
        saw_real_batch,
        "linger window failed to coalesce any batch; responses all ran solo"
    );
    service.shutdown();
}

/// Packed Eq. (14) charging: with `array_packing` on (the default) a
/// small-shape batch executes as one wave of `w = min(capacity, B)`
/// co-resident tenants, so every member is charged `⌈B / w⌉ · t_task` —
/// one wave when the whole batch fits the array, regardless of the
/// configured `task_parallelism`.
#[test]
fn packed_batch_is_charged_on_the_wave() {
    let service = SvdService::start(ServeConfig {
        workers: 1,
        queue_capacity: 16,
        max_batch: 5,
        max_linger: Duration::from_millis(300),
        task_parallelism: 3,
        ..ServeConfig::default()
    })
    .unwrap();

    let matrix = well_conditioned(8, 8, 5);
    let handles: Vec<_> = (0..5)
        .map(|_| {
            service
                .try_submit_with(matrix.clone(), SubmitOptions::default())
                .unwrap()
        })
        .collect();
    let mut saw_real_batch = false;
    for handle in handles {
        let response = handle.wait().expect("packed request must complete");
        let batch = response.latency.batch_size;
        saw_real_batch |= batch > 1;
        // P_eng = 2 stripes have capacity 16 on the VCK190, so w = batch
        // and the wave count ⌈batch / w⌉ is always 1: the charge is the
        // (contention-scaled) task time itself. The response's own
        // timing already reflects the wave's co-residency class.
        assert_eq!(
            response.latency.sim_exec_ps, response.output.timing.task_time.0,
            "wave charge violated for batch of {batch}"
        );
    }
    assert!(
        saw_real_batch,
        "linger window failed to coalesce any batch; responses all ran solo"
    );
    service.shutdown();
    let m = service.metrics();
    assert!(m.packed_batches >= 1, "no wave was packed: {m:?}");
    assert_eq!(m.completed_ok, 5);
}
