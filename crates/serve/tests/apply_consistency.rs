//! Acceptance tests for the decompose-once / apply-constantly path:
//! the store-served rank-r product must be *bit-identical* to the
//! direct truncated product computed from the same resident factors,
//! across a sweep of (n, r) design points, and the modeled apply
//! timing must be replay-invariant (the profile cache returns the same
//! Eq. 8–14 charge for every repeat of a shape).

use heterosvd_serve::{ModelId, ServeConfig, SvdService};
use std::time::Duration;
use svd_kernels::Matrix;

fn well_conditioned(n: usize, salt: u64) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r as u64 * 29 + c as u64 * 11 + salt * 7) % 13) as f64 / 3.0
            + if r == c { 5.0 } else { 0.0 }
    })
}

fn probe(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as u64 * 13 + salt * 5 + 1) % 17) as f64 / 4.0 - 2.0)
        .collect()
}

fn service() -> SvdService {
    SvdService::start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        max_linger: Duration::from_micros(200),
        ..ServeConfig::default()
    })
    .unwrap()
}

/// The headline bit-identity sweep: for every (n, r) design point,
/// publish rank-r factors of an n×n matrix and check the served `y`
/// against `TruncatedSvd::apply_rank` evaluated directly on the
/// store-resident factors — `assert_eq!` on the raw f32 vectors, no
/// tolerance.
#[test]
fn served_apply_is_bit_identical_across_n_r_sweep() {
    let service = service();
    let mut points = 0u64;
    for (i, &n) in [8usize, 16, 24, 32].iter().enumerate() {
        let model = ModelId(100 + i as u64);
        // Publish at the largest rank of the sweep so one decompose
        // serves every smaller rank via the rank hint.
        let full = n / 2;
        service
            .try_submit_publish(model, well_conditioned(n, i as u64), full)
            .unwrap()
            .wait()
            .expect("publish decompose must converge");
        let pinned = service.store().get(model).expect("factors just published");
        assert_eq!(pinned.version, 1);
        assert_eq!(pinned.meta.rank, full);

        let mut ranks = vec![1, 2, full / 2, full];
        ranks.dedup();
        for rank in ranks {
            let x = probe(n, rank as u64);
            // The admission path casts the caller's f64 probe to f32
            // once; the reference must see the same f32 input.
            let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
            let direct = pinned.factors.apply_rank(&xf, rank).unwrap();
            let response = service
                .try_submit_apply(model, &x, Some(rank))
                .unwrap()
                .wait()
                .expect("apply must complete");
            assert_eq!(response.model, model);
            assert_eq!(response.version, 1);
            assert_eq!(response.rank, rank);
            assert_eq!(
                response.y, direct,
                "served y diverged from the direct truncated product at n={n} r={rank}"
            );
            points += 1;
        }
    }
    assert!(points >= 12, "sweep degenerated to {points} design points");

    // Shutdown joins the workers, so the counters below are final.
    service.shutdown();
    let m = service.metrics();
    assert_eq!(m.per_type.apply.completed_ok, points);
    assert_eq!(m.per_type.decompose.completed_ok, 4);
}

/// Replay invariance of the modeled apply timing: repeats of the same
/// (shape, rank) apply are charged exactly the same `sim_exec_ps` —
/// the first request probes the pipeline model, every later one
/// replays the cached profile.
#[test]
fn modeled_apply_timing_is_replay_invariant() {
    let service = service();
    let model = ModelId(7001);
    service
        .try_submit_publish(model, well_conditioned(16, 3), 6)
        .unwrap()
        .wait()
        .expect("publish decompose must converge");

    let x = probe(16, 9);
    let mut charges = Vec::new();
    let mut outputs = Vec::new();
    for _ in 0..5 {
        // One at a time: every request forms a singleton batch, so the
        // Eq. 14 system time has the same batch factor each round.
        let response = service
            .try_submit_apply(model, &x, None)
            .unwrap()
            .wait()
            .expect("apply must complete");
        charges.push(response.latency.sim_exec_ps);
        outputs.push(response.y);
    }
    assert!(charges[0] > 0, "apply pipeline charged zero modeled time");
    assert!(
        charges.iter().all(|&c| c == charges[0]),
        "modeled apply timing drifted across replays: {charges:?}"
    );
    assert!(
        outputs.iter().all(|y| *y == outputs[0]),
        "served results drifted across replays"
    );
    service.shutdown();
}

/// Version pinning: a republish bumps the served version, and applies
/// admitted after the bump are served by the new factors while the old
/// `Arc` stays valid for anything still holding it.
#[test]
fn republish_bumps_version_and_serves_new_factors() {
    let service = service();
    let model = ModelId(42);
    service
        .try_submit_publish(model, well_conditioned(8, 1), 4)
        .unwrap()
        .wait()
        .expect("publish v1 must converge");
    let v1 = service.store().get(model).unwrap();

    service
        .try_submit_publish(model, well_conditioned(8, 2), 3)
        .unwrap()
        .wait()
        .expect("publish v2 must converge");

    let x = probe(8, 4);
    let response = service
        .try_submit_apply(model, &x, None)
        .unwrap()
        .wait()
        .expect("apply must complete");
    assert_eq!(response.version, 2);
    assert_eq!(response.rank, 3);

    // The superseded version is unchanged and still applies cleanly.
    assert_eq!(v1.version, 1);
    let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    v1.factors.apply_rank(&xf, 4).unwrap();
    service.shutdown();
}
