//! Plan-cache integration: a replica pool must plan each design once
//! (not once per replica), and the parallel rotation mode must be
//! bit-identical to serial end to end through the service.

use heterosvd_serve::{ServeConfig, SvdService};
use std::time::Duration;
use svd_kernels::Matrix;

fn well_conditioned(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r as u64 * 29 + c as u64 * 11 + salt * 7) % 13) as f64 / 3.0
            + if r == c { 5.0 } else { 0.0 }
    })
}

/// Replica startup no longer re-plans per worker: after a pool of four
/// replicas has served requests of one shape, the global plan cache
/// records exactly one build of that design.
#[test]
fn replica_pool_shares_one_plan() {
    // A shape/knob combination no other test uses, so the probe below
    // counts only this test's builds.
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 32,
        max_batch: 2,
        max_linger: Duration::from_millis(1),
        engine_parallelism: 3,
        task_parallelism: 5,
        // Pin the sequential path: with packing on, multi-request
        // batches build their own per-co-residency-class plans (probed
        // once each — see `plan_cache::co_residency_classes_split_plans`)
        // and the solo plan counted below might never build.
        array_packing: false,
        ..ServeConfig::default()
    };
    let shape = (42, 12);
    let accel_cfg = config.accelerator_config(shape).unwrap();
    assert_eq!(heterosvd::plan_cache::global().builds_for(&accel_cfg), 0);

    let service = SvdService::start(config).unwrap();
    let handles: Vec<_> = (0..8)
        .map(|salt| {
            service
                .try_submit(well_conditioned(shape.0, shape.1, salt))
                .unwrap()
        })
        .collect();
    for handle in handles {
        handle.wait().expect("request must complete");
    }
    service.shutdown();

    assert_eq!(
        heterosvd::plan_cache::global().builds_for(&accel_cfg),
        1,
        "every replica must share the one cached plan"
    );
}

/// The `functional_parallelism` knob changes wall-clock only: a serial
/// service and a parallel service produce bit-identical factorizations
/// (sigma bit patterns, sweep counts, simulated stats).
#[test]
fn parallel_and_serial_services_agree_bitwise() {
    let run = |functional_parallelism: usize| {
        let service = SvdService::start(ServeConfig {
            workers: 2,
            queue_capacity: 32,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            functional_parallelism,
            ..ServeConfig::default()
        })
        .unwrap();
        let handles: Vec<_> = (0..6)
            .map(|salt| service.try_submit(well_conditioned(16, 8, salt)).unwrap())
            .collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("request must complete"))
            .collect();
        service.shutdown();
        responses
    };

    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let s_bits: Vec<u32> = s.output.result.sigma.iter().map(|x| x.to_bits()).collect();
        let p_bits: Vec<u32> = p.output.result.sigma.iter().map(|x| x.to_bits()).collect();
        assert_eq!(s_bits, p_bits, "sigma must match bit for bit");
        assert_eq!(
            s.output.result.u.as_slice(),
            p.output.result.u.as_slice(),
            "U must match exactly"
        );
        assert_eq!(s.output.result.sweeps, p.output.result.sweeps);
        assert_eq!(s.output.stats, p.output.stats);
    }
}
