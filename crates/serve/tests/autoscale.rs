//! Closed-loop online-DSE acceptance: the autoscale controller must
//! (a) hold still under a stationary mix that cannot clear the
//! improvement gate, (b) swap the live plan within bounded wall time
//! after a step change in traffic, and (c) preserve drain-and-replace
//! bit-identity — every response's factors match a solo accelerator
//! pinned at the plan the response reports it executed under.

use heterosvd::Accelerator;
use heterosvd_serve::{ServeConfig, SvdService};
use std::collections::HashSet;
use std::time::{Duration, Instant};
use svd_kernels::Matrix;

fn well_conditioned(rows: usize, cols: usize, salt: u64) -> Matrix<f64> {
    Matrix::from_fn(rows, cols, |r, c| {
        ((r as u64 * 29 + c as u64 * 11 + salt * 7) % 13) as f64 / 3.0
            + if r == c { 5.0 } else { 0.0 }
    })
}

/// One burst: submit `n` same-shape requests, wait for all responses.
fn burst(
    service: &SvdService,
    shape: (usize, usize),
    n: usize,
    salt: u64,
) -> Vec<heterosvd_serve::SvdResponse> {
    let handles: Vec<_> = (0..n)
        .map(|i| {
            service
                .try_submit(well_conditioned(shape.0, shape.1, salt + i as u64))
                .expect("queue sized for the burst")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.wait().expect("burst request must complete"))
        .collect()
}

/// Stationary traffic against an improvement bar no candidate can
/// clear: the controller observes and re-plans (dse_runs advances) but
/// the hysteresis gate holds the plan — zero swaps, generation 0.
#[test]
fn stationary_mix_survives_the_improvement_gate() {
    let service = SvdService::start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        max_batch: 16,
        max_linger: Duration::from_millis(10),
        autoscale: true,
        autoscale_interval: Duration::from_millis(15),
        autoscale_min_dwell: Duration::from_millis(15),
        autoscale_cooldown: Duration::from_millis(15),
        // No plan beats the current one by 100x: every tick's winner
        // dies at the improvement gate, whatever the sweep says.
        autoscale_improvement: 100.0,
        ..ServeConfig::default()
    })
    .unwrap();

    let deadline = Instant::now() + Duration::from_secs(8);
    let mut salt = 0;
    while Instant::now() < deadline && service.metrics().dse_runs < 3 {
        burst(&service, (16, 16), 8, salt);
        salt += 100;
        std::thread::sleep(Duration::from_millis(20));
    }
    service.shutdown();

    let m = service.metrics();
    assert!(
        m.dse_runs >= 1,
        "controller never ran a sweep against live traffic: {m:?}"
    );
    assert_eq!(m.plan_swaps, 0, "improvement gate must hold: {m:?}");
    assert_eq!(m.current_plan.generation, 0);
    assert_eq!(m.current_plan.engine_parallelism, 2);
    assert_eq!(m.current_plan.task_parallelism, 4);
    assert_eq!(service.current_plan().generation, 0);
}

/// Step change + bit identity. The service starts pinned at the worst
/// reasonable plan for deep small-shape bursts — `P_eng = 8, P_task =
/// 1` serializes a 16-deep batch into 16 full waves and its stripe
/// capacity of 1 forbids packing — then receives exactly that traffic.
/// The controller must swap to a better plan within bounded wall time
/// (>= 1 swap, responses spanning >= 2 distinct plans), and every
/// response must be bitwise equal to a solo accelerator run at the
/// plan its latency record reports, proving batches drain wholly under
/// one generation.
#[test]
fn step_change_swaps_plans_and_preserves_bit_identity() {
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 64,
        max_batch: 16,
        max_linger: Duration::from_millis(10),
        engine_parallelism: 8,
        task_parallelism: 1,
        autoscale: true,
        autoscale_interval: Duration::from_millis(15),
        autoscale_min_dwell: Duration::from_millis(30),
        autoscale_cooldown: Duration::from_millis(15),
        autoscale_improvement: 0.05,
        ..ServeConfig::default()
    };
    let service = SvdService::start(config.clone()).unwrap();

    let shape = (16, 16);
    let mut responses = Vec::new();
    let mut matrices = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut salt = 0;
    // Keep bursting until the controller has demonstrably swapped and
    // we hold post-swap responses (or the generous deadline trips and
    // the asserts below report what actually happened).
    loop {
        let wave: Vec<_> = (0..16u64)
            .map(|i| well_conditioned(shape.0, shape.1, salt + i))
            .collect();
        let handles: Vec<_> = wave
            .iter()
            .map(|m| {
                service
                    .try_submit(m.clone())
                    .expect("queue sized for the burst")
            })
            .collect();
        for (handle, matrix) in handles.into_iter().zip(wave) {
            responses.push(handle.wait().expect("burst request must complete"));
            matrices.push(matrix);
        }
        salt += 16;
        let m = service.metrics();
        let swapped = m.plan_swaps >= 1;
        let post_swap_seen = responses.iter().any(|r| r.latency.plan.generation >= 1);
        if (swapped && post_swap_seen) || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    service.shutdown();

    let m = service.metrics();
    assert!(
        m.plan_swaps >= 1,
        "controller never swapped off the bad plan: {m:?}"
    );
    assert!(m.dse_runs >= 1);
    assert!(m.current_plan.generation >= 1);
    assert_ne!(
        (
            m.current_plan.engine_parallelism,
            m.current_plan.task_parallelism
        ),
        (8, 1),
        "swap must leave the seed plan"
    );

    // Drain-and-replace: responses span both the seed plan and at
    // least one swapped-in plan...
    let plans: HashSet<_> = responses
        .iter()
        .map(|r| {
            (
                r.latency.plan.engine_parallelism,
                r.latency.plan.task_parallelism,
                r.latency.plan.generation,
            )
        })
        .collect();
    assert!(
        plans.len() >= 2,
        "traffic never straddled a swap: {plans:?}"
    );
    assert!(responses.iter().any(|r| r.latency.plan.generation == 0));
    assert!(responses.iter().any(|r| r.latency.plan.generation >= 1));

    // ...and each one is bit-identical to a solo accelerator pinned at
    // the plan it reports (one reference accelerator per distinct
    // plan/shape; P_task and co-residency never touch the math).
    let mut references = std::collections::HashMap::new();
    for (response, matrix) in responses.iter().zip(&matrices) {
        let plan = response.latency.plan;
        let reference = references
            .entry((plan.engine_parallelism, plan.task_parallelism))
            .or_insert_with(|| {
                let cfg = config
                    .accelerator_config_at(shape, plan.engine_parallelism, plan.task_parallelism)
                    .expect("a committed plan must build for the shapes it serves");
                Accelerator::new(cfg).unwrap()
            });
        let expected = reference.run(matrix).unwrap();
        let got = &response.output.result;
        let want = &expected.result;
        let got_bits: Vec<u32> = got.sigma.iter().map(|x| x.to_bits()).collect();
        let want_bits: Vec<u32> = want.sigma.iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            got_bits, want_bits,
            "sigma diverged from plan {plan:?} reference"
        );
        assert_eq!(got.u.as_slice(), want.u.as_slice());
        assert_eq!(got.sweeps, want.sweeps);
    }
}
