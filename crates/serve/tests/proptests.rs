//! Property-based tests of the serving runtime.
//!
//! Two invariants the batcher and queue must hold under arbitrary
//! traffic: the admission queue never exceeds its bound (backpressure is
//! exact, not approximate), and no request is ever dropped or completed
//! twice regardless of arrival order, cancellations, and deadlines.

use heterosvd::FidelityMode;
use heterosvd_serve::queue::{BoundedQueue, PopResult, PushError};
use heterosvd_serve::{ServeConfig, ServeError, SvdService};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::time::Duration;
use svd_kernels::Matrix;

/// A fast, lifecycle-heavy configuration: timing-only replicas so the
/// accelerator step is instantaneous and the properties concentrate on
/// the queue/batcher/lifecycle machinery.
fn lifecycle_config(queue_capacity: usize, max_batch: usize) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity,
        max_batch,
        max_linger: Duration::from_micros(500),
        fidelity: FidelityMode::TimingOnly,
        fixed_iterations: Some(2),
        ..ServeConfig::default()
    }
}

fn matrix_for(shape_idx: usize) -> Matrix<f64> {
    // All shapes valid for P_eng = 2 (cols a multiple of 4).
    let (rows, cols) = [(8, 8), (12, 8), (12, 12)][shape_idx % 3];
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 13 + c * 5 + shape_idx) % 11) as f64 - 5.0 + if r == c { 6.0 } else { 0.0 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The queue primitive agrees with a model VecDeque under a random
    /// push/pop/sweep interleaving, and its depth never exceeds the
    /// configured bound.
    #[test]
    fn queue_matches_model_and_respects_bound(
        capacity in 1usize..9,
        ops in prop::collection::vec((0u8..3, 0u64..50), 1..64),
    ) {
        let queue = BoundedQueue::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for (op, value) in ops {
            match op {
                0 => {
                    // try_push: succeeds iff the model has room.
                    match queue.try_push(value) {
                        Ok(()) => {
                            prop_assert!(model.len() < capacity);
                            model.push_back(value);
                        }
                        Err(PushError::Full(v)) => {
                            prop_assert_eq!(v, value);
                            prop_assert_eq!(model.len(), capacity);
                        }
                        Err(PushError::Closed(_)) => prop_assert!(false, "queue never closed"),
                    }
                }
                1 => {
                    // pop: FIFO against the model.
                    match queue.pop(Duration::from_millis(1)) {
                        PopResult::Item(v) => {
                            prop_assert_eq!(Some(v), model.pop_front());
                        }
                        PopResult::TimedOut => prop_assert!(model.is_empty()),
                        PopResult::Closed => prop_assert!(false, "queue never closed"),
                    }
                }
                _ => {
                    // Shape-style sweep: take up to 2 items below a pivot.
                    let taken = queue.take_matching(2, |v| *v < value);
                    let mut expected = Vec::new();
                    let mut rest = VecDeque::new();
                    while let Some(v) = model.pop_front() {
                        if expected.len() < 2 && v < value {
                            expected.push(v);
                        } else {
                            rest.push_back(v);
                        }
                    }
                    model = rest;
                    prop_assert_eq!(taken, expected);
                }
            }
            prop_assert!(queue.len() <= capacity, "depth exceeded the bound");
        }
    }

    /// Under random arrivals, cancellations, and instant deadlines,
    /// every admitted request reaches exactly one terminal state and the
    /// ledger balances: admitted = completed + cancelled + timed out +
    /// failed, with nothing dropped and nothing double-counted.
    #[test]
    fn no_request_is_dropped_or_duplicated(
        arrivals in prop::collection::vec((0usize..3, 0u8..4), 1..24),
        capacity in 4usize..12,
    ) {
        let service = SvdService::start(lifecycle_config(capacity, 4)).unwrap();
        let mut handles = Vec::new();
        let mut admitted = 0u64;
        for (shape_idx, fate) in arrivals {
            let options = heterosvd_serve::SubmitOptions {
                // fate 1: a deadline that has effectively already passed.
                timeout: if fate == 1 { Some(Duration::ZERO) } else { None },
                ..heterosvd_serve::SubmitOptions::default()
            };
            match service.try_submit_with(matrix_for(shape_idx), options) {
                Ok(handle) => {
                    admitted += 1;
                    if fate == 2 {
                        handle.cancel();
                    }
                    handles.push(handle);
                }
                Err(ServeError::QueueFull { .. }) => {}
                Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
            }
        }
        // Each handle yields exactly one result (wait consumes it).
        let mut terminal = 0u64;
        for handle in handles {
            match handle.wait() {
                Ok(_)
                | Err(ServeError::Cancelled)
                | Err(ServeError::DeadlineExceeded) => terminal += 1,
                Err(other) => return Err(TestCaseError::fail(format!("bad terminal: {other}"))),
            }
        }
        prop_assert_eq!(terminal, admitted);
        service.shutdown();
        let m = service.metrics();
        prop_assert_eq!(m.submitted, admitted);
        prop_assert_eq!(
            m.completed_ok + m.cancelled + m.timed_out + m.failed,
            admitted,
            "ledger does not balance: {:?}",
            m
        );
        prop_assert_eq!(m.failed, 0);
        prop_assert_eq!(m.queue_depth, 0);
    }
}
