//! Quality-of-results study (extension): accuracy of the accelerator's
//! f32 factorization against the f64 golden model across sizes — the
//! numerical side of the paper's QoR claims.

use crate::workload::random_matrix;
use heterosvd::{Accelerator, HeteroSvdConfig, HeteroSvdError};
use serde::{Deserialize, Serialize};
use svd_kernels::{hestenes_jacobi, verify, JacobiOptions};

/// One accuracy measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Matrix size `n`.
    pub n: usize,
    /// Engine parallelism used.
    pub p_eng: usize,
    /// Iterations the accelerator needed at 1e-6.
    pub iterations: usize,
    /// Max relative singular-value error vs the f64 golden model.
    pub sv_error: f64,
    /// Column-orthogonality error of the returned `U`.
    pub orthogonality: f64,
    /// Relative reconstruction error via recovered `V`.
    pub reconstruction: f64,
}

/// Runs the accuracy study.
///
/// # Errors
///
/// Propagates accelerator and kernel errors.
pub fn run(sizes: &[usize], p_eng: usize) -> Result<Vec<AccuracyRow>, HeteroSvdError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let a = random_matrix(n, n, 7_000 + n as u64);
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .precision(1e-6)
            .build()?;
        let out = Accelerator::new(cfg)?.run(&a)?;

        let golden = hestenes_jacobi(&a, &JacobiOptions::default())?;
        let sv_error = verify::singular_value_error(
            &golden.sorted_singular_values(),
            &out.result.sorted_singular_values(),
        );
        let orthogonality = verify::column_orthogonality_error(&out.result.u);
        let a32 = a.cast::<f32>();
        let v = out.result.recover_v(&a32)?;
        let reconstruction =
            verify::reconstruction_error(&a32, &out.result.u, &out.result.sigma, &v);

        rows.push(AccuracyRow {
            n,
            p_eng,
            iterations: out.result.sweeps,
            sv_error,
            orthogonality,
            reconstruction,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_stays_near_f32_epsilon() {
        for r in run(&[32, 64], 4).unwrap() {
            assert!(r.sv_error < 1e-4, "n={}: sv error {}", r.n, r.sv_error);
            assert!(r.orthogonality < 1e-3);
            assert!(r.reconstruction < 1e-3);
        }
    }

    #[test]
    fn engine_parallelism_does_not_change_accuracy_class() {
        let a2 = run(&[32], 2).unwrap()[0];
        let a8 = run(&[32], 8).unwrap()[0];
        assert!(a2.sv_error < 1e-4 && a8.sv_error < 1e-4);
    }
}
