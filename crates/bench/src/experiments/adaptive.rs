//! Adaptive sweep engine benchmark: full SVDs with the
//! convergence-adaptive engine (threshold-Jacobi gating + dirty-column
//! pair memoization) against the exact engine.
//!
//! Both variants run the *same* deployment protocol as the paper's
//! Table II/VI evaluation: a fixed iteration budget (the worst-case
//! sweep count a deployment without host-side convergence feedback must
//! provision — the accelerator streams every pass regardless of
//! convergence). The exact engine pays the full α/β/γ + rotation +
//! apply cost on every one of the n·(n−1)/2 pair passes of every
//! budgeted iteration; the adaptive engine gates converged pairs after
//! the dot products and memo-skips pairs whose columns are untouched
//! since a gated visit, so post-convergence iterations collapse to
//! near-O(n) bookkeeping.
//!
//! Modeled hardware timing and statistics are identical between the two
//! variants by construction (the knob only cuts host functional
//! compute); the harness asserts this per size and reports it in the
//! emitted `BENCH_adaptive.json`.
//!
//! Accuracy is measured against an `f64` `hestenes_jacobi` golden run
//! on the same input: the repo-standard singular-value relative error
//! (max |Δσ|/σ_max over sorted values) and the U-orthogonality residual
//! (max deviation of UᵀU from identity). The adaptive-vs-exact
//! singular-value delta is reported separately — that difference is the
//! part attributable to gating rather than to f32 arithmetic.

use heterosvd::{Accelerator, HeteroSvdConfig, HeteroSvdError, HeteroSvdOutput};
use serde::{Deserialize, Serialize};
use std::time::Instant;
use svd_kernels::jacobi::{hestenes_jacobi, JacobiOptions};
use svd_kernels::verify::column_orthogonality_error;
use svd_kernels::Matrix;

/// One engine variant measured on one matrix size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveVariantRow {
    /// `"exact"` or `"adaptive"`.
    pub variant: String,
    /// Wall-clock seconds for one full SVD (after a warm-up run that
    /// primes the shared plan and timing-profile caches).
    pub wall_secs: f64,
    /// Iteration at which the Eq. (6) measure first dropped below the
    /// precision (`None` if the budget was too small — a gate failure).
    pub converged_sweep: Option<usize>,
    /// Rotations actually applied across the run (from the sweep
    /// history).
    pub rotations: u64,
    /// Pair visits answered from the dirty-pair memo without touching
    /// column data (0 for the exact engine).
    pub memo_skips: u64,
    /// Pair passes whose rotation + apply was gated off after the dot
    /// products (0 for the exact engine).
    pub gated_rotations: u64,
    /// max |Δσ|/σ_max against the f64 golden values.
    pub sv_error_vs_golden: f64,
    /// max |(UᵀU − I)ᵢⱼ| of the computed factor.
    pub u_orth_error: f64,
}

/// Exact-vs-adaptive comparison on one matrix size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveSizeReport {
    /// Matrix dimension (n×n).
    pub n: usize,
    /// The exact engine (`adaptive_sweeps` off).
    pub exact: AdaptiveVariantRow,
    /// The adaptive engine (`adaptive_sweeps` on).
    pub adaptive: AdaptiveVariantRow,
    /// `exact.wall_secs / adaptive.wall_secs`.
    pub speedup: f64,
    /// max |σ_adaptive − σ_exact|/σ_max — the singular-value difference
    /// attributable to gating (both engines share the f32 floor).
    pub sv_delta_adaptive_vs_exact: f64,
    /// Modeled timing breakdown bit-identical between variants.
    pub timing_identical: bool,
    /// Simulated hardware statistics bit-identical between variants.
    pub stats_identical: bool,
}

/// The complete report (serialized to `BENCH_adaptive.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveReport {
    /// Convergence precision of the Eq. (6) measure.
    pub precision: f64,
    /// Fixed iteration budget both variants execute.
    pub fixed_iterations: usize,
    /// Engine parallelism `P_eng`.
    pub p_eng: usize,
    /// One comparison per matrix size.
    pub sizes: Vec<AdaptiveSizeReport>,
}

/// The iteration budget both engines run: the repo's default
/// `max_iterations` — what a deployment must provision when the host
/// gets no convergence feedback mid-stream.
pub const FIXED_ITERATIONS: usize = 30;

/// Accuracy gates on the emitted report (vs the f64 golden and between
/// the engines). `repro` fails the run when any is exceeded.
///
/// The vs-golden singular-value gate applies verbatim up to n = 512
/// (the acceptance size); above that it scales by √(n/512), tracking
/// the random-walk growth of the f32 rotation-roundoff floor both
/// engines share (measured ≈ 5e-6 at 512, ≈ 1.0e-5 at 1024). The
/// adaptive-vs-exact delta — the error gating itself could introduce —
/// stays at the absolute gate for every size.
pub const SV_ERROR_GATE: f64 = 1e-5;
/// See [`SV_ERROR_GATE`].
pub const U_ORTH_GATE: f64 = 1e-5;

/// The vs-golden singular-value gate for one size (see
/// [`SV_ERROR_GATE`]).
pub fn sv_gate_for(n: usize) -> f64 {
    SV_ERROR_GATE * (n as f64 / 512.0).max(1.0).sqrt()
}

fn random_matrix(n: usize, seed: u64) -> Matrix<f64> {
    // xorshift so the workload needs no rand dependency and stays
    // bit-reproducible across platforms.
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state % 2_000_000) as f64 - 1_000_000.0) / 1_000_000.0
    };
    Matrix::from_fn(n, n, |_, _| next())
}

fn accelerator(
    n: usize,
    p_eng: usize,
    precision: f64,
    adaptive: bool,
) -> Result<Accelerator, HeteroSvdError> {
    let cfg = HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .precision(precision)
        .fixed_iterations(FIXED_ITERATIONS)
        .adaptive_sweeps(adaptive)
        .functional_parallelism(1)
        .build()?;
    Accelerator::new(cfg)
}

fn variant_row(
    name: &str,
    out: &HeteroSvdOutput,
    wall_secs: f64,
    precision: f64,
    golden_sorted: &[f64],
) -> AdaptiveVariantRow {
    let sigma_max = golden_sorted.first().copied().unwrap_or(0.0).max(1e-300);
    let computed = out.result.sorted_singular_values();
    let sv_error = golden_sorted
        .iter()
        .zip(computed.iter())
        .map(|(g, v)| (g - f64::from(*v)).abs() / sigma_max)
        .fold(0.0_f64, f64::max);
    AdaptiveVariantRow {
        variant: name.to_string(),
        wall_secs,
        converged_sweep: out
            .result
            .history
            .iter()
            .position(|s| s.max_convergence < precision)
            .map(|i| i + 1),
        rotations: out.result.history.iter().map(|s| s.rotations as u64).sum(),
        memo_skips: out.adaptive.map_or(0, |c| c.memo_skips),
        gated_rotations: out.adaptive.map_or(0, |c| c.gated_rotations),
        sv_error_vs_golden: sv_error,
        u_orth_error: column_orthogonality_error(&out.result.u),
    }
}

/// Runs the exact and adaptive engines on each size and returns the
/// report. Does not apply the gates — `repro` does, so the JSON is
/// written even on a failing run.
pub fn run(
    sizes: &[usize],
    p_eng: usize,
    precision: f64,
) -> Result<AdaptiveReport, HeteroSvdError> {
    let mut reports = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let a = random_matrix(n, 42);
        let golden = hestenes_jacobi(
            &a,
            &JacobiOptions {
                compute_v: false,
                ..JacobiOptions::default()
            },
        )
        .expect("square input is valid");
        let golden_sorted = golden.sorted_singular_values();

        let run_variant = |adaptive: bool| -> Result<(HeteroSvdOutput, f64), HeteroSvdError> {
            let acc = accelerator(n, p_eng, precision, adaptive)?;
            let _ = acc.run(&a)?; // warm-up: primes plan + profile caches
            let start = Instant::now();
            let out = acc.run(&a)?;
            Ok((out, start.elapsed().as_secs_f64()))
        };
        let (exact_out, exact_secs) = run_variant(false)?;
        let (adaptive_out, adaptive_secs) = run_variant(true)?;

        let sigma_max = golden_sorted.first().copied().unwrap_or(0.0).max(1e-300);
        let exact_sv = exact_out.result.sorted_singular_values();
        let adaptive_sv = adaptive_out.result.sorted_singular_values();
        let sv_delta = exact_sv
            .iter()
            .zip(adaptive_sv.iter())
            .map(|(e, v)| f64::from((e - v).abs()) / sigma_max)
            .fold(0.0_f64, f64::max);

        reports.push(AdaptiveSizeReport {
            n,
            speedup: exact_secs / adaptive_secs,
            sv_delta_adaptive_vs_exact: sv_delta,
            timing_identical: exact_out.timing == adaptive_out.timing,
            stats_identical: exact_out.stats == adaptive_out.stats,
            exact: variant_row("exact", &exact_out, exact_secs, precision, &golden_sorted),
            adaptive: variant_row(
                "adaptive",
                &adaptive_out,
                adaptive_secs,
                precision,
                &golden_sorted,
            ),
        });
    }
    Ok(AdaptiveReport {
        precision,
        fixed_iterations: FIXED_ITERATIONS,
        p_eng,
        sizes: reports,
    })
}

/// Gate check used by `repro` and the CI smoke run: returns every
/// violated gate as a human-readable line (empty = pass).
///
/// The speedup floor only applies at sizes ≥ `speedup_gate_n` — small
/// sizes are bookkeeping-bound and only need to not regress (≥ 1.0 at
/// n ≥ 256).
pub fn gate_violations(report: &AdaptiveReport, speedup_gate_n: usize) -> Vec<String> {
    let mut violations = Vec::new();
    for size in &report.sizes {
        let n = size.n;
        if !size.timing_identical {
            violations.push(format!("n={n}: modeled timing differs between variants"));
        }
        if !size.stats_identical {
            violations.push(format!("n={n}: simulated stats differ between variants"));
        }
        if n >= speedup_gate_n && size.speedup < 1.8 {
            violations.push(format!(
                "n={n}: speedup {:.2}x below the 1.8x gate",
                size.speedup
            ));
        } else if n >= 256 && size.speedup < 1.0 {
            violations.push(format!(
                "n={n}: adaptive slower than exact ({:.2}x)",
                size.speedup
            ));
        }
        for row in [&size.exact, &size.adaptive] {
            if row.sv_error_vs_golden > sv_gate_for(n) {
                violations.push(format!(
                    "n={n} {}: sv error {:.3e} exceeds {:.2e}",
                    row.variant,
                    row.sv_error_vs_golden,
                    sv_gate_for(n)
                ));
            }
            if row.u_orth_error > U_ORTH_GATE {
                violations.push(format!(
                    "n={n} {}: U-orthogonality {:.3e} exceeds {U_ORTH_GATE:.0e}",
                    row.variant, row.u_orth_error
                ));
            }
            if row.converged_sweep.is_none() {
                violations.push(format!(
                    "n={n} {}: did not reach precision within the budget",
                    row.variant
                ));
            }
        }
        if size.sv_delta_adaptive_vs_exact > SV_ERROR_GATE {
            violations.push(format!(
                "n={n}: adaptive-vs-exact sv delta {:.3e} exceeds {SV_ERROR_GATE:.0e}",
                size.sv_delta_adaptive_vs_exact
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_consistent_and_timing_identical() {
        let report = run(&[32], 4, 1e-6).unwrap();
        assert_eq!(report.sizes.len(), 1);
        let size = &report.sizes[0];
        assert!(size.timing_identical, "timing must not depend on the knob");
        assert!(size.stats_identical, "stats must not depend on the knob");
        assert_eq!(size.exact.memo_skips, 0, "exact engine never memoizes");
        assert_eq!(size.exact.gated_rotations, 0);
        assert!(
            size.adaptive.memo_skips > 0,
            "a 30-iteration budget on a 32x32 input must produce memo skips"
        );
        assert!(size.exact.wall_secs > 0.0 && size.adaptive.wall_secs > 0.0);
        assert!(size.exact.sv_error_vs_golden < 1e-4);
        assert!(size.adaptive.sv_error_vs_golden < 1e-4);
    }

    #[test]
    fn gates_flag_a_degenerate_report() {
        let mut report = run(&[32], 4, 1e-6).unwrap();
        assert!(
            gate_violations(&report, usize::MAX).is_empty(),
            "{:?}",
            gate_violations(&report, usize::MAX)
        );
        report.sizes[0].exact.sv_error_vs_golden = 1.0;
        report.sizes[0].timing_identical = false;
        let violations = gate_violations(&report, usize::MAX);
        assert_eq!(violations.len(), 2, "{violations:?}");
    }
}
