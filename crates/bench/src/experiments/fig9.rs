//! Fig. 9: throughput and core/memory utilization vs design size, GPU
//! against HeteroSVD (batch 100).
//!
//! The mechanism the figure illustrates: the GPU's utilization *rises*
//! with the problem size (bigger kernels fill more SMs), while HeteroSVD
//! loses task parallelism to PL memory limits and PL frequency derating,
//! so its relative throughput falls — the Table III crossover.

use crate::workload::iterations_to_converge;
use baselines::GpuBaseline;
use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_dse::{run_dse, DseConfig, Objective};
use serde::{Deserialize, Serialize};

/// Batch size of the Fig. 9 protocol.
pub const BATCH: usize = 100;

/// One regenerated data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Row {
    /// Matrix size.
    pub n: usize,
    /// GPU batch throughput (tasks/s).
    pub gpu_throughput: f64,
    /// GPU compute-core utilization (0–1).
    pub gpu_core_util: f64,
    /// GPU memory-system utilization (0–1).
    pub gpu_mem_util: f64,
    /// HeteroSVD batch throughput (tasks/s).
    pub hsvd_throughput: f64,
    /// HeteroSVD orth-AIE core utilization (0–1).
    pub hsvd_core_util: f64,
    /// HeteroSVD PLIO bandwidth utilization (0–1).
    pub hsvd_mem_util: f64,
    /// HeteroSVD task parallelism chosen by the DSE.
    pub p_task: usize,
}

/// Regenerates Fig. 9 for the given sizes.
///
/// # Errors
///
/// Propagates configuration errors from the accelerator and DSE.
pub fn run(sizes: &[usize]) -> Result<Vec<Fig9Row>, HeteroSvdError> {
    let gpu = GpuBaseline::published();
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let iterations = iterations_to_converge(n, 8, 0xFEED);
        let dse = run_dse(&DseConfig::new(n, n).batch(BATCH).iterations(iterations));
        let best = dse
            .best(Objective::MaxThroughput)
            .ok_or_else(|| HeteroSvdError::InvalidConfig(format!("no feasible design for {n}")))?
            .clone();

        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(best.point.engine_parallelism)
            .task_parallelism(best.point.task_parallelism)
            .pl_freq_mhz(best.point.pl_freq_mhz)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(iterations.max(1))
            .build()?;
        let acc = Accelerator::new(cfg)?;
        let (out, sys) = acc.run_batch(&svd_kernels::Matrix::zeros(n, n), BATCH)?;

        let counts = acc.placement().counts();
        let hsvd_throughput = BATCH as f64 / sys.as_secs();
        rows.push(Fig9Row {
            n,
            gpu_throughput: gpu.throughput(n, BATCH),
            gpu_core_util: gpu.core_utilization(n),
            gpu_mem_util: gpu.memory_utilization(n),
            hsvd_throughput,
            hsvd_core_util: out.stats.core_utilization(counts.orth),
            hsvd_mem_util: out
                .stats
                .bandwidth_utilization(heterosvd::routing::PLIO_PER_TASK),
            p_task: best.point.task_parallelism,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_utilization_rises_with_size() {
        let rows = run(&[128, 256]).unwrap();
        assert!(rows[1].gpu_core_util > rows[0].gpu_core_util);
    }

    #[test]
    fn utilizations_are_fractions() {
        for r in run(&[64, 128]).unwrap() {
            for u in [
                r.gpu_core_util,
                r.gpu_mem_util,
                r.hsvd_core_util,
                r.hsvd_mem_util,
            ] {
                assert!((0.0..=1.0).contains(&u), "utilization {u}");
            }
            assert!(r.hsvd_throughput > 0.0);
        }
    }
}
