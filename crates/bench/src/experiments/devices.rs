//! Device porting study (extension): the same DSE flow on the paper's
//! VCK190 and on an **estimated** AIE-ML device (fewer tiles, double the
//! per-tile memory, smaller PL).
//!
//! The point: the whole framework — placement, feasibility, performance
//! model, power — depends only on the device profile, so porting the
//! accelerator is a parameter swap. The AIE-ML numbers are a what-if
//! (public specs, no board calibration).

use aie_sim::device::DeviceProfile;
use heterosvd_dse::{run_dse, DseConfig, Objective};
use serde::{Deserialize, Serialize};

/// One device's DSE outcome for one problem size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRow {
    /// Device name.
    pub device: String,
    /// Matrix size.
    pub n: usize,
    /// Feasible design points.
    pub feasible: usize,
    /// Latency-optimal `(P_eng, P_task)`.
    pub latency_config: (usize, usize),
    /// Latency-optimal single-task latency (ms).
    pub latency_ms: f64,
    /// Throughput-optimal `(P_eng, P_task)`.
    pub throughput_config: (usize, usize),
    /// Throughput-optimal batch-100 throughput (tasks/s).
    pub throughput: f64,
}

/// Runs the study for the given sizes on both devices.
pub fn run(sizes: &[usize], iterations: usize) -> Vec<DeviceRow> {
    let mut rows = Vec::new();
    for &device in &[DeviceProfile::VCK190, DeviceProfile::VE2802_ESTIMATE] {
        for &n in sizes {
            let result = run_dse(
                &DseConfig::new(n, n)
                    .batch(100)
                    .iterations(iterations)
                    .device(device),
            );
            let Some(lat) = result.best(Objective::MinLatency) else {
                continue;
            };
            let Some(tput) = result.best(Objective::MaxThroughput) else {
                continue;
            };
            rows.push(DeviceRow {
                device: device.name().to_string(),
                n,
                feasible: result.evaluations.len(),
                latency_config: (lat.point.engine_parallelism, lat.point.task_parallelism),
                latency_ms: lat.latency.as_millis(),
                throughput_config: (tput.point.engine_parallelism, tput.point.task_parallelism),
                throughput: tput.throughput,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_devices_produce_designs() {
        let rows = run(&[128, 256], 6);
        assert_eq!(rows.len(), 4);
        let vck: Vec<_> = rows
            .iter()
            .filter(|r| r.device.contains("VCK190"))
            .collect();
        let ml: Vec<_> = rows
            .iter()
            .filter(|r| r.device.contains("AIE-ML"))
            .collect();
        assert_eq!(vck.len(), 2);
        assert_eq!(ml.len(), 2);
        // The smaller device supports fewer designs and lower throughput.
        for (v, m) in vck.iter().zip(&ml) {
            assert!(m.feasible < v.feasible);
            assert!(m.throughput <= v.throughput * 1.01);
        }
    }

    #[test]
    fn latency_optima_are_comparable_across_devices() {
        // The latency-optimal design needs only one pipeline; both
        // devices fit it, so single-task latency is similar.
        let rows = run(&[128], 6);
        let vck = rows.iter().find(|r| r.device.contains("VCK190")).unwrap();
        let ml = rows.iter().find(|r| r.device.contains("AIE-ML")).unwrap();
        let rel = (vck.latency_ms - ml.latency_ms).abs() / vck.latency_ms;
        assert!(rel < 0.35, "latency gap {rel}");
    }
}
