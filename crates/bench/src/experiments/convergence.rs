//! Convergence study (extension): iterations to reach the Eq. (6)
//! precision as a function of matrix size, block size and precision —
//! the methodology behind the paper's "six iterations" protocol
//! (Tables II/VI) and "converge at 1e-6" protocol (Table III).

use crate::workload::random_matrix;
use serde::{Deserialize, Serialize};
use svd_kernels::block::{block_jacobi, BlockJacobiOptions};

/// One convergence measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceRow {
    /// Matrix size `n`.
    pub n: usize,
    /// Block size (`P_eng`).
    pub block_cols: usize,
    /// Convergence precision.
    pub precision: f64,
    /// Iterations needed (averaged over `samples` seeds).
    pub mean_iterations: f64,
    /// Worst case over the samples.
    pub max_iterations: usize,
    /// Final convergence measure of the last sweep (mean).
    pub final_measure: f64,
}

/// Measures convergence across sizes and precisions.
pub fn run(
    sizes: &[usize],
    precisions: &[f64],
    block_cols: usize,
    samples: usize,
) -> Vec<ConvergenceRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        for &precision in precisions {
            let mut total = 0usize;
            let mut worst = 0usize;
            let mut final_measure = 0.0;
            for s in 0..samples.max(1) {
                let a = random_matrix(n, n, 1000 + s as u64);
                let opts = BlockJacobiOptions {
                    block_cols,
                    precision,
                    max_iterations: 40,
                    fixed_iterations: None,
                    adaptive: false,
                };
                match block_jacobi(&a, &opts) {
                    Ok(r) => {
                        total += r.sweeps;
                        worst = worst.max(r.sweeps);
                        final_measure += r.history.last().map(|h| h.max_convergence).unwrap_or(0.0);
                    }
                    Err(_) => {
                        total += 40;
                        worst = worst.max(40);
                    }
                }
            }
            rows.push(ConvergenceRow {
                n,
                block_cols,
                precision,
                mean_iterations: total as f64 / samples.max(1) as f64,
                max_iterations: worst,
                final_measure: final_measure / samples.max(1) as f64,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_grow_slowly_with_size() {
        let rows = run(&[16, 32, 64], &[1e-6], 4, 2);
        assert!(rows[0].mean_iterations <= rows[2].mean_iterations + 1.0);
        // Log-like growth: doubling the size adds at most ~2 iterations.
        assert!(rows[2].mean_iterations - rows[0].mean_iterations <= 4.0);
    }

    #[test]
    fn tighter_precision_needs_more_iterations() {
        let rows = run(&[32], &[1e-2, 1e-6, 1e-10], 4, 2);
        assert!(rows[0].mean_iterations <= rows[1].mean_iterations);
        assert!(rows[1].mean_iterations <= rows[2].mean_iterations);
    }

    #[test]
    fn final_measure_is_below_precision() {
        for r in run(&[24], &[1e-4, 1e-8], 4, 2) {
            assert!(
                r.final_measure < r.precision,
                "{} >= {}",
                r.final_measure,
                r.precision
            );
        }
    }

    #[test]
    fn six_iterations_cover_paper_sizes_at_1e6() {
        // The paper's fixed-six protocol: random 64-col problems converge
        // to 1e-6 in <= 10 sweeps; six gets within striking distance.
        let rows = run(&[64], &[1e-6], 8, 3);
        assert!(rows[0].max_iterations <= 12, "{}", rows[0].max_iterations);
    }
}
