//! Apply-path benchmark: decompose-once / apply-constantly serving
//! (serialized to `BENCH_apply.json`).
//!
//! Three phases, all through the real [`heterosvd_serve::SvdService`]:
//!
//! * **Throughput sweep** — for each matrix size `n`, measure the
//!   decompose rate (functional factorizations, fixed 6 iterations),
//!   then publish rank-r factors once and measure the rank-r apply
//!   rate for each `r`. The row's `speedup_vs_decompose` is the
//!   headline "serve the factorization, don't re-run it" ratio.
//! * **Bit-identity + replay** — every served `y` is compared
//!   (`max_abs_delta`, must be exactly 0.0) against
//!   `TruncatedSvd::apply_rank` evaluated directly on the
//!   store-resident factors, and singleton-batch applies of one shape
//!   must be charged an identical modeled `sim_exec_ps` every time
//!   (`replay_identical`).
//! * **Mixed traffic** — an interleaved apply:decompose stream (the
//!   inference-serving mix) with per-type percentiles from the
//!   service's metrics and the factor-store hit rate.

use heterosvd::FidelityMode;
use heterosvd_serve::{
    FactorStoreStats, ModelId, Percentiles, ServeConfig, ServeError, SvdService, TypeSnapshot,
};
use std::time::Duration;
use svd_kernels::Matrix;

/// Engine parallelism of every measured service.
pub const P_ENG: usize = 4;
/// Task parallelism (Eq. 14 divisor) of every measured service.
pub const P_TASK: usize = 4;
/// Fixed iteration count per decompose request.
pub const ITERATIONS: usize = 6;

/// One (n, rank) point of the throughput sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ApplyRow {
    /// Matrix dimension of the published model (n×n).
    pub n: usize,
    /// Rank actually applied (`rank_hint` at submission).
    pub rank: usize,
    /// Apply requests measured.
    pub applies: usize,
    /// Completed applies per wall-clock second.
    pub applies_per_sec: f64,
    /// Completed decomposes per wall-clock second at the same `n`
    /// (measured once per size, repeated on each of its rows).
    pub decomposes_per_sec: f64,
    /// `applies_per_sec / decomposes_per_sec`.
    pub speedup_vs_decompose: f64,
    /// Median apply wall latency (admission → completion), µs.
    pub p50_wall_us: u64,
    /// 99th-percentile apply wall latency, µs.
    pub p99_wall_us: u64,
    /// Modeled Eq. 8–14 apply-pipeline charge of a singleton batch, ps.
    pub sim_exec_ps: u64,
}

/// The mixed apply:decompose phase.
#[derive(Debug, Clone, serde::Serialize)]
pub struct MixedReport {
    /// Matrix dimension of the mixed workload (n×n).
    pub n: usize,
    /// Requests submitted (excluding the warm-up publishes).
    pub requests: usize,
    /// Apply requests per decompose request (deterministic interleave).
    pub apply_ratio: f64,
    /// Per-type service metrics for the apply side (counters, windowed
    /// rate, queue-wait and modeled-exec percentiles — the p99s the
    /// acceptance gate requires).
    pub apply: TypeSnapshot,
    /// Per-type service metrics for the decompose side.
    pub decompose: TypeSnapshot,
    /// Client-measured apply wall latency percentiles, µs.
    pub apply_wall_us: Percentiles,
    /// Client-measured decompose wall latency percentiles, µs.
    pub decompose_wall_us: Percentiles,
    /// `hits / (hits + misses)` of the factor store over the mix.
    pub store_hit_rate: f64,
    /// End-of-run factor-store counters.
    pub store: FactorStoreStats,
}

/// The complete apply report (serialized to `BENCH_apply.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ApplyReport {
    /// Engine parallelism of every service.
    pub p_eng: usize,
    /// Task parallelism of every service.
    pub p_task: usize,
    /// Fixed iteration count per decompose.
    pub iterations: usize,
    /// One row per (n, rank) design point.
    pub rows: Vec<ApplyRow>,
    /// The mixed-traffic phase.
    pub mixed: MixedReport,
    /// Whether every singleton-batch apply of one shape was charged an
    /// identical modeled time (profile-cache replay invariance).
    pub replay_identical: bool,
    /// Largest |served − direct| over every served element; the apply
    /// path is bit-identical, so anything but 0.0 fails the gate.
    pub max_abs_delta: f64,
}

fn service(queue_capacity: usize) -> Result<SvdService, ServeError> {
    SvdService::start(ServeConfig {
        workers: 2,
        queue_capacity,
        max_batch: 8,
        max_linger: Duration::from_micros(200),
        engine_parallelism: P_ENG,
        task_parallelism: P_TASK,
        fidelity: FidelityMode::Functional,
        fixed_iterations: Some(ITERATIONS),
        ..ServeConfig::default()
    })
}

fn model_matrix(n: usize, salt: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r * 31 + c * 17 + salt * 7 + 3) % 13) as f64 / 3.0 - 2.0 + if r == c { 4.0 } else { 0.0 }
    })
}

fn probe(n: usize, salt: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 13 + salt * 5 + 1) % 17) as f64 / 4.0 - 2.0)
        .collect()
}

/// |served − direct| over one response, where `direct` is the truncated
/// product evaluated straight on the store-resident factors with the
/// same f32-cast input the admission path uses.
fn abs_delta(
    served: &[f32],
    factors: &heterosvd_serve::PublishedFactors,
    x: &[f64],
    rank: usize,
) -> f64 {
    let xf: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let direct = factors
        .factors
        .apply_rank(&xf, rank)
        .expect("direct apply of resident factors");
    served
        .iter()
        .zip(&direct)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .fold(0.0, f64::max)
}

struct SweepOutcome {
    rows: Vec<ApplyRow>,
    replay_identical: bool,
    max_abs_delta: f64,
}

/// The throughput sweep plus the bit-identity/replay checks riding on
/// the same service.
fn run_sweep(
    sizes: &[usize],
    ranks: &[usize],
    applies_per_row: usize,
    decompose_probes: usize,
) -> Result<SweepOutcome, ServeError> {
    let service = service(applies_per_row.max(decompose_probes) + 8)?;
    let mut rows = Vec::new();
    let mut replay_identical = true;
    let mut max_abs_delta = 0.0f64;

    for (i, &n) in sizes.iter().enumerate() {
        // Decompose throughput at this size: the "re-run the
        // factorization per query" alternative the apply path replaces.
        let decompose_wall = {
            let start = std::time::Instant::now();
            let handles: Vec<_> = (0..decompose_probes)
                .map(|s| service.try_submit(model_matrix(n, s + 1)))
                .collect::<Result<_, _>>()?;
            for handle in handles {
                handle.wait()?;
            }
            start.elapsed()
        };
        let decomposes_per_sec = decompose_probes as f64 / decompose_wall.as_secs_f64();

        // Publish once at the largest rank this size serves; every row
        // then applies with a rank hint against the same factors.
        let pub_rank = ranks.iter().copied().max().unwrap_or(1).min(n / 2);
        let model = ModelId(i as u64 + 1);
        service
            .try_submit_publish(model, model_matrix(n, 0), pub_rank)?
            .wait()?;
        let pinned = service
            .store()
            .get(model)
            .expect("factors published just above");

        for &rank in ranks.iter().filter(|&&r| r <= pub_rank) {
            // Replay invariance + the row's modeled charge: sequential
            // singleton batches of the same shape must cost the same.
            let mut singleton_charge = 0u64;
            for repeat in 0..3 {
                let x = probe(n, rank);
                let response = service.try_submit_apply(model, &x, Some(rank))?.wait()?;
                max_abs_delta = max_abs_delta.max(abs_delta(&response.y, &pinned, &x, rank));
                if repeat == 0 {
                    singleton_charge = response.latency.sim_exec_ps;
                } else if response.latency.sim_exec_ps != singleton_charge {
                    replay_identical = false;
                }
            }

            // Throughput: the full burst submitted up front, batching on.
            let probes: Vec<Vec<f64>> = (0..applies_per_row).map(|s| probe(n, s + rank)).collect();
            let start = std::time::Instant::now();
            let handles: Vec<_> = probes
                .iter()
                .map(|x| service.try_submit_apply(model, x, Some(rank)))
                .collect::<Result<_, _>>()?;
            let mut wall_us: Vec<u64> = Vec::with_capacity(applies_per_row);
            for (handle, x) in handles.into_iter().zip(&probes) {
                let response = handle.wait()?;
                wall_us.push(response.latency.wall_total.as_micros() as u64);
                max_abs_delta = max_abs_delta.max(abs_delta(&response.y, &pinned, x, rank));
            }
            let wall = start.elapsed();
            let applies_per_sec = applies_per_row as f64 / wall.as_secs_f64();
            let pct = Percentiles::from_samples(&mut wall_us);
            rows.push(ApplyRow {
                n,
                rank,
                applies: applies_per_row,
                applies_per_sec,
                decomposes_per_sec,
                speedup_vs_decompose: applies_per_sec / decomposes_per_sec,
                p50_wall_us: pct.p50,
                p99_wall_us: pct.p99,
                sim_exec_ps: singleton_charge,
            });
        }
    }
    service.shutdown();
    Ok(SweepOutcome {
        rows,
        replay_identical,
        max_abs_delta,
    })
}

/// The mixed inference-serving phase: a deterministic interleave of
/// `ratio` applies per decompose over `models` published models.
fn run_mixed(
    n: usize,
    models: usize,
    requests: usize,
    ratio: usize,
) -> Result<MixedReport, ServeError> {
    let service = service(requests + 8)?;
    let pub_rank = 32.min(n / 2);
    let published: Vec<ModelId> = (0..models)
        .map(|m| {
            let model = ModelId(1000 + m as u64);
            service
                .try_submit_publish(model, model_matrix(n, m), pub_rank)?
                .wait()?;
            Ok(model)
        })
        .collect::<Result<_, ServeError>>()?;

    enum Handle {
        Apply(heterosvd_serve::ApplyHandle),
        Decompose(heterosvd_serve::RequestHandle),
    }
    let handles: Vec<Handle> = (0..requests)
        .map(|i| {
            // Every (ratio+1)-th request re-factorizes; the rest serve.
            if i % (ratio + 1) == 0 {
                service
                    .try_submit(model_matrix(n, i + 7))
                    .map(Handle::Decompose)
            } else {
                let model = published[i % published.len()];
                service
                    .try_submit_apply(model, &probe(n, i), None)
                    .map(Handle::Apply)
            }
        })
        .collect::<Result<_, _>>()?;

    let mut apply_wall_us = Vec::new();
    let mut decompose_wall_us = Vec::new();
    for handle in handles {
        match handle {
            Handle::Apply(h) => apply_wall_us.push(h.wait()?.latency.wall_total.as_micros() as u64),
            Handle::Decompose(h) => {
                decompose_wall_us.push(h.wait()?.latency.wall_total.as_micros() as u64)
            }
        }
    }
    service.shutdown();
    let metrics = service.metrics();
    let store = service.store().stats();
    let looked_up = store.hits + store.misses;
    Ok(MixedReport {
        n,
        requests,
        apply_ratio: ratio as f64,
        apply: metrics.per_type.apply,
        decompose: metrics.per_type.decompose,
        apply_wall_us: Percentiles::from_samples(&mut apply_wall_us),
        decompose_wall_us: Percentiles::from_samples(&mut decompose_wall_us),
        store_hit_rate: if looked_up > 0 {
            store.hits as f64 / looked_up as f64
        } else {
            0.0
        },
        store,
    })
}

/// Measures the sweep and the mixed phase and returns the report.
///
/// `sizes` are the n×n design points (multiples of `2 * P_ENG`),
/// `ranks` the apply ranks (rows are emitted for `rank <= n/2` only);
/// the mixed phase runs at the largest size with `mixed_requests`
/// requests interleaved `mixed_ratio` applies per decompose.
///
/// # Errors
///
/// Service errors from any phase.
pub fn run(
    sizes: &[usize],
    ranks: &[usize],
    applies_per_row: usize,
    decompose_probes: usize,
    mixed_requests: usize,
    mixed_ratio: usize,
) -> Result<ApplyReport, ServeError> {
    assert!(!sizes.is_empty() && !ranks.is_empty(), "empty design space");
    let sweep = run_sweep(sizes, ranks, applies_per_row, decompose_probes)?;
    let mixed = run_mixed(*sizes.last().unwrap(), 2, mixed_requests, mixed_ratio)?;
    Ok(ApplyReport {
        p_eng: P_ENG,
        p_task: P_TASK,
        iterations: ITERATIONS,
        rows: sweep.rows,
        mixed,
        replay_identical: sweep.replay_identical,
        max_abs_delta: sweep.max_abs_delta,
    })
}

/// The acceptance gates `repro -- apply` enforces (exit 1 on any):
/// rank-≤32 serving at n=256 must beat re-factorizing by ≥ 10×, the
/// mix must hold ≥ 20:1 with a ≥ 90% store hit rate and live per-type
/// p99s, and the exactness invariants must hold bit-for-bit.
pub fn gate_violations(report: &ApplyReport) -> Vec<String> {
    let mut violations = Vec::new();
    let mut gated_rows = 0;
    for row in &report.rows {
        if row.n == 256 && row.rank <= 32 {
            gated_rows += 1;
            if row.speedup_vs_decompose < 10.0 {
                violations.push(format!(
                    "apply throughput at n=256 r={} is only {:.1}x decompose (need >= 10x)",
                    row.rank, row.speedup_vs_decompose
                ));
            }
        }
    }
    if gated_rows == 0 {
        violations.push("no n=256 rank<=32 row to gate".to_string());
    }
    if report.mixed.apply_ratio < 20.0 {
        violations.push(format!(
            "mixed ratio {:.0}:1 below the 20:1 serving mix",
            report.mixed.apply_ratio
        ));
    }
    if report.mixed.store_hit_rate < 0.9 {
        violations.push(format!(
            "store hit rate {:.1}% below 90%",
            report.mixed.store_hit_rate * 100.0
        ));
    }
    if report.mixed.apply.completed_ok == 0 || report.mixed.decompose.completed_ok == 0 {
        violations.push("mixed phase starved one request type".to_string());
    }
    if report.mixed.apply_wall_us.p99 == 0 || report.mixed.apply.sim_exec_ps.p99 == 0 {
        violations.push("mixed apply p99s missing or zero".to_string());
    }
    if !report.replay_identical {
        violations.push("modeled apply timing not replay-invariant".to_string());
    }
    if report.max_abs_delta != 0.0 {
        violations.push(format!(
            "served apply diverged from the direct truncated product by {:e}",
            report.max_abs_delta
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny end-to-end run: rows for every admissible (n, r) point,
    /// exactness invariants intact, and a consistent mixed phase.
    #[test]
    fn tiny_run_report_is_consistent() {
        let report = run(&[8, 16], &[2, 4], 12, 2, 22, 10).unwrap();
        // n=8 serves ranks {2, 4}; n=16 serves {2, 4} as well.
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            assert!(row.applies_per_sec > 0.0, "zero rate at n={}", row.n);
            assert!(row.sim_exec_ps > 0, "no modeled charge at n={}", row.n);
            assert!(row.p99_wall_us >= row.p50_wall_us);
        }
        assert!(report.replay_identical);
        assert_eq!(report.max_abs_delta, 0.0);
        assert_eq!(report.mixed.n, 16);
        // 22 requests at 10:1 plus the 2 warm-up publish decomposes.
        assert_eq!(report.mixed.apply.completed_ok, 20);
        assert_eq!(report.mixed.decompose.completed_ok, 4);
        assert_eq!(report.mixed.store_hit_rate, 1.0);

        // The tiny design space trips exactly the scale gates, not the
        // exactness gates.
        let violations = gate_violations(&report);
        assert!(violations.iter().any(|v| v.contains("no n=256")));
        assert!(violations.iter().any(|v| v.contains("mixed ratio")));
        assert!(!violations.iter().any(|v| v.contains("diverged")));
        assert!(!violations.iter().any(|v| v.contains("replay")));
    }
}
