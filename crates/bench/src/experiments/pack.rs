//! Multi-problem array-packing benchmark (serialized to
//! `BENCH_pack.json`): packed vs sequential serve throughput for
//! small-`n` SVDs on the same deterministic request trace.
//!
//! Two services run the identical workload per matrix size:
//!
//! * **sequential** — `array_packing` off and `P_task = 1`: every batch
//!   is a queue of sequential runs, charged `B · t_task` (the Eq. 14
//!   degenerate case the packing tentpole replaces for small shapes).
//! * **packed** — `array_packing` on (same `P_task = 1` service knob):
//!   each batch executes as a wave of `w = min(capacity, B)` co-resident
//!   tenants on disjoint sub-grid stripes, charged `⌈B / w⌉ · t_task(w)`
//!   where `t_task(w)` includes the `w`-way PLIO/DDR contention of
//!   Eq. 9–12.
//!
//! Throughput is **modeled**: completed requests divided by the summed
//! Eq. 14 batch charges (the simulated makespan of a one-replica
//! service), so the comparison measures the accelerator model, not host
//! CPU load. Exactness is enforced alongside: per-matrix factors must be
//! bit-identical between the two services, and the packed co-residency
//! class must be timing replay-invariant (live simulation vs replayed
//! profile).

use heterosvd::{tenant_capacity, Accelerator, HeteroSvdConfig, HeteroSvdError};
use heterosvd_serve::{ServeConfig, SvdService};
use std::time::Duration;
use svd_kernels::Matrix;

/// Engine parallelism of every measured service: `P_eng = 4` stripes
/// are 10 columns wide, so the VCK190's 50 columns host 5 tenants.
pub const P_ENG: usize = 4;
/// Fixed iteration count per decompose request (paper's typical budget).
pub const ITERATIONS: usize = 6;

/// One matrix-size point of the packed-vs-sequential comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PackRow {
    /// Matrix dimension of the workload (n×n).
    pub n: usize,
    /// Tenants per wave (`k`): the device stripe capacity at `P_eng`.
    pub tenants: usize,
    /// Requests pushed through each variant.
    pub requests: usize,
    /// Modeled sequential makespan (summed Eq. 14 charges), ms.
    pub sequential_modeled_ms: f64,
    /// Modeled packed makespan, ms.
    pub packed_modeled_ms: f64,
    /// Requests per modeled second, sequential service.
    pub sequential_throughput: f64,
    /// Requests per modeled second, packed service.
    pub packed_throughput: f64,
    /// `packed_throughput / sequential_throughput`.
    pub speedup: f64,
    /// Waves the packed service executed as multi-tenant batches.
    pub packed_waves: u64,
    /// Whether every per-matrix factor pair (σ and U) matched bitwise
    /// between the packed and sequential runs.
    pub bit_identical: bool,
    /// Whether the packed co-residency class's modeled timing is
    /// identical between live simulation and replayed profile.
    pub replay_invariant: bool,
}

/// The complete packing report (serialized to `BENCH_pack.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct PackReport {
    /// Engine parallelism of every service.
    pub p_eng: usize,
    /// Fixed iteration count per request.
    pub iterations: usize,
    /// One row per measured matrix size.
    pub rows: Vec<PackRow>,
}

fn request_matrix(n: usize, seed: usize) -> Matrix<f64> {
    Matrix::from_fn(n, n, |r, c| {
        ((r * 31 + c * 17 + seed * 7 + 3) % 13) as f64 / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    })
}

/// Per-request `(σ, U)` factor pairs in submission order.
type Factors = Vec<(Vec<f32>, Vec<f32>)>;

/// One serve run: the seeded trace through a one-replica service, with
/// `array_packing` on or off. Returns per-request `(σ, U)` factors in
/// submission order, the modeled makespan in picoseconds (summed
/// distinct batch charges), and the packed-wave count.
fn run_variant(
    n: usize,
    tenants: usize,
    requests: usize,
    packing: bool,
) -> Result<(Factors, u64, u64), HeteroSvdError> {
    let service = SvdService::start(ServeConfig {
        workers: 1,
        queue_capacity: requests,
        max_batch: tenants,
        // Long linger so the burst below coalesces into full waves.
        max_linger: Duration::from_millis(50),
        engine_parallelism: P_ENG,
        // P_task = 1 on both variants: the sequential service charges
        // B · t_task per batch, and the packed service derives its wave
        // width from the stripe capacity instead of this knob — the
        // comparison isolates the spatial co-schedule.
        task_parallelism: 1,
        fixed_iterations: Some(ITERATIONS),
        array_packing: packing,
        ..ServeConfig::default()
    })
    .map_err(|e| HeteroSvdError::InvalidConfig(format!("pack service failed to start: {e}")))?;

    let handles: Vec<_> = (0..requests)
        .map(|i| service.try_submit(request_matrix(n, i)))
        .collect::<Result<_, _>>()
        .map_err(|e| HeteroSvdError::InvalidConfig(format!("pack submit failed: {e}")))?;
    let mut factors = Vec::with_capacity(requests);
    // Each member of a batch carries the batch's shared Eq. 14 charge;
    // summing `charge / batch_size` over members recovers the sum of
    // distinct batch charges — the modeled makespan of one replica
    // executing the batches back to back.
    let mut makespan_ps = 0.0f64;
    for handle in handles {
        let response = handle
            .wait()
            .map_err(|e| HeteroSvdError::InvalidConfig(format!("pack request failed: {e}")))?;
        makespan_ps += response.latency.sim_exec_ps as f64 / response.latency.batch_size as f64;
        let result = response.output.result;
        factors.push((result.sigma, result.u.as_slice().to_vec()));
    }
    let packed_waves = service.metrics().packed_batches;
    service.shutdown();
    Ok((factors, makespan_ps.round() as u64, packed_waves))
}

/// Checks that the packed co-residency class replays exactly: the same
/// matrix through a live-simulated and a profile-replayed accelerator
/// of the same packed config must report identical modeled timing.
fn replay_invariant(n: usize, tenants: usize) -> Result<bool, HeteroSvdError> {
    let build = |replay: bool| -> Result<_, HeteroSvdError> {
        let config = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(P_ENG)
            .task_parallelism(tenants)
            .co_residency(tenants)
            .fixed_iterations(ITERATIONS)
            .timing_replay(replay)
            .build()?;
        Accelerator::new(config)
    };
    let a = request_matrix(n, 0);
    let live = build(false)?.run(&a)?;
    let replayed = build(true)?.run(&a)?;
    Ok(live.timing.task_time == replayed.timing.task_time
        && live.timing.ddr_time == replayed.timing.ddr_time
        && live.timing.norm_time == replayed.timing.norm_time
        && live.timing.iteration_ends == replayed.timing.iteration_ends)
}

/// Measures packed vs sequential serving at each size in `sizes` with
/// `requests` requests per variant.
///
/// # Errors
///
/// Service or accelerator errors from either variant.
pub fn run(sizes: &[usize], requests: usize) -> Result<PackReport, HeteroSvdError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let geometry = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(P_ENG)
            .build()?
            .geometry();
        let tenants = tenant_capacity(geometry, P_ENG);
        let (packed_factors, packed_ps, packed_waves) = run_variant(n, tenants, requests, true)?;
        let (sequential_factors, sequential_ps, _) = run_variant(n, tenants, requests, false)?;
        let bit_identical = packed_factors == sequential_factors;
        let replay_invariant = replay_invariant(n, tenants)?;
        let throughput = |ps: u64| {
            if ps > 0 {
                requests as f64 / (ps as f64 * 1e-12)
            } else {
                0.0
            }
        };
        let sequential_throughput = throughput(sequential_ps);
        let packed_throughput = throughput(packed_ps);
        rows.push(PackRow {
            n,
            tenants,
            requests,
            sequential_modeled_ms: sequential_ps as f64 / 1e9,
            packed_modeled_ms: packed_ps as f64 / 1e9,
            sequential_throughput,
            packed_throughput,
            speedup: if sequential_throughput > 0.0 {
                packed_throughput / sequential_throughput
            } else {
                f64::NAN
            },
            packed_waves,
            bit_identical,
            replay_invariant,
        });
    }
    Ok(PackReport {
        p_eng: P_ENG,
        iterations: ITERATIONS,
        rows,
    })
}

/// The packing acceptance gates: ≥3× modeled serve throughput at
/// n=128 and ≥2× at n=256 (k-way packing vs the sequential path on the
/// same trace), bit-identical per-matrix factors, replay-invariant
/// packed timing, and at least one actually-packed wave per row.
pub fn gate_violations(report: &PackReport) -> Vec<String> {
    let mut violations = Vec::new();
    for row in &report.rows {
        if !row.bit_identical {
            violations.push(format!(
                "n={}: packed factors are not bit-identical to sequential",
                row.n
            ));
        }
        if !row.replay_invariant {
            violations.push(format!(
                "n={}: packed timing differs between live sim and replay",
                row.n
            ));
        }
        if row.packed_waves == 0 {
            violations.push(format!("n={}: no wave was actually packed", row.n));
        }
        if row.tenants < 4 {
            violations.push(format!(
                "n={}: only {}-way packing (gate requires k >= 4)",
                row.n, row.tenants
            ));
        }
        let floor = match row.n {
            128 => Some(3.0),
            256 => Some(2.0),
            _ => None,
        };
        if let Some(floor) = floor {
            if row.speedup < floor {
                violations.push(format!(
                    "n={}: packed speedup {:.2}x below the {:.0}x gate",
                    row.n, row.speedup, floor
                ));
            }
        }
    }
    for n in [128usize, 256] {
        if !report.rows.iter().any(|r| r.n == n) {
            violations.push(format!("no n={n} row to gate"));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny run is internally consistent: the exactness gates
    /// (bit-identity, replay invariance, actually-packed waves) hold
    /// even at a size the scale gates don't cover.
    #[test]
    fn tiny_run_report_is_consistent() {
        let report = run(&[16], 6).unwrap();
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.tenants, 5, "P_eng=4 stripes: 5 per VCK190");
        assert!(row.bit_identical, "packed factors must match sequential");
        assert!(row.replay_invariant, "packed class must replay exactly");
        assert!(row.packed_waves >= 1, "no wave packed");
        assert!(row.sequential_throughput > 0.0 && row.packed_throughput > 0.0);
        assert!(row.speedup > 1.0, "packing must beat sequential charging");
        // The scale gates complain about the missing 128/256 rows but
        // not about exactness.
        let violations = gate_violations(&report);
        assert!(
            violations.iter().all(|v| v.contains("row to gate")),
            "{violations:?}"
        );
    }
}
