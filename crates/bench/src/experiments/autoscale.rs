//! Closed-loop online-DSE benchmark (serialized to `BENCH_dse.json`):
//! an autoscaling service vs every static plan on the same bursty
//! shifting-mix trace.
//!
//! Three services replay the identical seeded trace
//! ([`crate::workload::bursty_trace`]): large-matrix singles, then
//! deep small-matrix bursts, then singles again (two step changes).
//!
//! * **static A / static B** — autoscale off, pinned at the analytic
//!   mix-DSE winner of the singles phase (A) and of the burst phase
//!   (B). Each is optimal for one phase and pays for the other.
//! * **adaptive** — autoscale on, seeded at plan A: the controller
//!   must observe each mix shift and swap (>= 2 swaps over the trace).
//!
//! Throughput is **modeled** exactly as in the packing benchmark:
//! completed requests divided by the summed per-batch Eq. 14 charges
//! (`Σ sim_exec_ps / batch_size`), so the comparison measures the
//! accelerator model under each plan schedule, not host CPU load.
//! Exactness rides along: every adaptive response must be bit-identical
//! to a solo accelerator pinned at the plan its latency record reports
//! (drain-and-replace never touches the math), and a stationary trace
//! through a second adaptive service seeded at its own winner must see
//! zero swaps (hysteresis holds).

use crate::workload::{bursty_trace, random_matrix, TraceEvent, TracePhase};
use heterosvd::Accelerator;
use heterosvd_dse::{run_mix_dse, DseConfig, ObservedShape, WorkloadMix};
use heterosvd_serve::{ServeConfig, SvdResponse, SvdService};
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// Fixed iteration count per decompose request (paper's typical budget).
pub const ITERATIONS: usize = 6;

/// One phase of the replayed trace, as serialized into the report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PhaseInfo {
    /// Request rows.
    pub rows: usize,
    /// Request cols.
    pub cols: usize,
    /// Requests per burst.
    pub burst: usize,
    /// Bursts in the phase.
    pub bursts: usize,
    /// Mean inter-burst gap (ms) at the diurnal-ramp trough.
    pub mean_gap_ms: f64,
}

/// One `(plan, shape)` slice of a variant's traffic: which plan served
/// how much of which shape, and what it cost — the attribution that
/// makes plan swaps legible in the export.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlanSliceRow {
    /// Plan `P_eng` the slice executed under (as reported per response).
    pub engine_parallelism: usize,
    /// Plan `P_task` (the packed wave width for packed batches).
    pub task_parallelism: usize,
    /// Request rows.
    pub rows: usize,
    /// Request cols.
    pub cols: usize,
    /// Requests in the slice.
    pub requests: usize,
    /// Summed Eq. 14 batch charges of the slice, ms.
    pub modeled_ms: f64,
}

/// One measured service variant on the shifting trace.
#[derive(Debug, Clone, serde::Serialize)]
pub struct VariantRow {
    /// `adaptive`, `static-A`, or `static-B`.
    pub label: String,
    /// The plan the service started on (`P_eng`).
    pub engine_parallelism: usize,
    /// The plan the service started on (`P_task`).
    pub task_parallelism: usize,
    /// Whether the online-DSE controller was running.
    pub autoscale: bool,
    /// Requests completed.
    pub requests: usize,
    /// Modeled makespan (summed Eq. 14 batch charges), ms.
    pub modeled_ms: f64,
    /// Requests per modeled second.
    pub throughput_rps: f64,
    /// Plan swaps the controller committed.
    pub plan_swaps: u64,
    /// Mix-DSE sweeps the controller actually ran.
    pub dse_runs: u64,
    /// Per-`(plan, shape)` traffic attribution, heaviest slice first.
    pub plan_mix: Vec<PlanSliceRow>,
}

/// The stationary-trace control: an adaptive service seeded at the
/// trace's own winner must hold still.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StationaryRow {
    /// The seeded (and expected-final) plan.
    pub engine_parallelism: usize,
    /// The seeded (and expected-final) `P_task`.
    pub task_parallelism: usize,
    /// Requests completed.
    pub requests: usize,
    /// Plan swaps (gated to zero).
    pub plan_swaps: u64,
    /// Mix-DSE sweeps the controller ran (must be >= 1: the controller
    /// was live, it just had no reason to move).
    pub dse_runs: u64,
    /// Requests per modeled second.
    pub throughput_rps: f64,
}

/// The complete closed-loop DSE report (serialized to `BENCH_dse.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct DseBenchReport {
    /// Fixed iteration count per request.
    pub iterations: usize,
    /// The shifting-mix phase plan.
    pub phases: Vec<PhaseInfo>,
    /// Events in the shifting trace.
    pub trace_events: usize,
    /// The adaptive service's row.
    pub adaptive: VariantRow,
    /// The static-plan rows (phase-A winner, phase-B winner).
    pub statics: Vec<VariantRow>,
    /// `adaptive.throughput_rps / max(statics.throughput_rps)`.
    pub speedup_vs_best_static: f64,
    /// Distinct `(P_eng, P_task)` plans adaptive responses executed
    /// under.
    pub distinct_plans: usize,
    /// Whether every adaptive response matched a solo accelerator
    /// pinned at its reported plan, bit for bit.
    pub bit_identical: bool,
    /// The stationary-trace control run.
    pub stationary: StationaryRow,
}

/// The analytic mix-DSE winner for one phase's nominal traffic.
fn phase_winner(phase: &TracePhase) -> Result<(usize, usize), String> {
    let (rows, cols) = phase.shape;
    let base = DseConfig::new(rows, cols).iterations(ITERATIONS);
    let mix = WorkloadMix {
        shapes: vec![ObservedShape {
            rows,
            cols,
            weight: 1.0,
            batch_fill: phase.burst as f64,
        }],
        iterations: ITERATIONS,
        array_packing: true,
        observed_wave_width: 0.0,
    };
    run_mix_dse(&base, &mix)
        .best()
        .map(|b| (b.engine_parallelism, b.task_parallelism))
        .ok_or_else(|| format!("no feasible plan for {rows}x{cols}"))
}

fn service_config(plan: (usize, usize), autoscale: bool, queue: usize) -> ServeConfig {
    ServeConfig {
        workers: 2,
        queue_capacity: queue,
        max_batch: 16,
        max_linger: Duration::from_millis(3),
        engine_parallelism: plan.0,
        task_parallelism: plan.1,
        fixed_iterations: Some(ITERATIONS),
        array_packing: true,
        autoscale,
        autoscale_interval: Duration::from_millis(10),
        autoscale_min_dwell: Duration::from_millis(25),
        autoscale_cooldown: Duration::from_millis(10),
        autoscale_improvement: 0.05,
        ..ServeConfig::default()
    }
}

/// Replays the trace open-loop (sleeping to each event's arrival
/// offset) and waits every response. Returns responses in submission
/// order plus the end-of-run metrics snapshot.
fn replay(
    config: ServeConfig,
    events: &[TraceEvent],
) -> Result<(Vec<SvdResponse>, heterosvd_serve::MetricsSnapshot), String> {
    let service = SvdService::start(config).map_err(|e| format!("service start: {e}"))?;
    let start = Instant::now();
    let mut handles = Vec::with_capacity(events.len());
    for event in events {
        let due = Duration::from_secs_f64(event.at_ms / 1e3);
        let elapsed = start.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
        let matrix = random_matrix(event.shape.0, event.shape.1, event.seed);
        handles.push(
            service
                .try_submit(matrix)
                .map_err(|e| format!("submit at {:.1}ms: {e}", event.at_ms))?,
        );
    }
    let responses = handles
        .into_iter()
        .map(|h| h.wait().map_err(|e| format!("request failed: {e}")))
        .collect::<Result<Vec<_>, _>>()?;
    service.shutdown();
    Ok((responses, service.metrics()))
}

/// Modeled makespan (ps): each batch member carries the batch's shared
/// Eq. 14 charge, so summing `charge / batch_size` over members
/// recovers the sum of distinct batch charges.
fn makespan_ps(responses: &[SvdResponse]) -> f64 {
    responses
        .iter()
        .map(|r| r.latency.sim_exec_ps as f64 / r.latency.batch_size as f64)
        .sum()
}

/// Groups responses by `(plan, shape)` (zipping the submission-order
/// trace for shapes) and sums each slice's Eq. 14 charge share.
fn plan_mix(events: &[TraceEvent], responses: &[SvdResponse]) -> Vec<PlanSliceRow> {
    let mut slices: HashMap<(usize, usize, usize, usize), (usize, f64)> = HashMap::new();
    for (event, response) in events.iter().zip(responses) {
        let plan = response.latency.plan;
        let key = (
            plan.engine_parallelism,
            plan.task_parallelism,
            event.shape.0,
            event.shape.1,
        );
        let entry = slices.entry(key).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += response.latency.sim_exec_ps as f64 / response.latency.batch_size as f64;
    }
    let mut rows: Vec<PlanSliceRow> = slices
        .into_iter()
        .map(|((p_eng, p_task, r, c), (n, ps))| PlanSliceRow {
            engine_parallelism: p_eng,
            task_parallelism: p_task,
            rows: r,
            cols: c,
            requests: n,
            modeled_ms: ps / 1e9,
        })
        .collect();
    rows.sort_by(|a, b| b.modeled_ms.total_cmp(&a.modeled_ms));
    rows
}

fn variant_row(
    label: &str,
    plan: (usize, usize),
    autoscale: bool,
    events: &[TraceEvent],
    responses: &[SvdResponse],
    metrics: &heterosvd_serve::MetricsSnapshot,
) -> VariantRow {
    let ps = makespan_ps(responses);
    VariantRow {
        label: label.to_string(),
        engine_parallelism: plan.0,
        task_parallelism: plan.1,
        autoscale,
        requests: responses.len(),
        modeled_ms: ps / 1e9,
        throughput_rps: if ps > 0.0 {
            responses.len() as f64 / (ps * 1e-12)
        } else {
            0.0
        },
        plan_swaps: metrics.plan_swaps,
        dse_runs: metrics.dse_runs,
        plan_mix: plan_mix(events, responses),
    }
}

/// Checks every adaptive response bitwise against a solo accelerator
/// pinned at the plan its latency record reports — the static-service
/// reference drain-and-replace promises.
fn check_bit_identity(
    config: &ServeConfig,
    events: &[TraceEvent],
    responses: &[SvdResponse],
) -> Result<bool, String> {
    let mut references: HashMap<(usize, usize, usize, usize), Accelerator> = HashMap::new();
    for (event, response) in events.iter().zip(responses) {
        let plan = response.latency.plan;
        let key = (
            plan.engine_parallelism,
            plan.task_parallelism,
            event.shape.0,
            event.shape.1,
        );
        let reference = match references.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let cfg = config
                    .accelerator_config_at(
                        event.shape,
                        plan.engine_parallelism,
                        plan.task_parallelism,
                    )
                    .map_err(|err| format!("reference config for plan {plan:?}: {err}"))?;
                e.insert(Accelerator::new(cfg).map_err(|err| format!("reference build: {err}"))?)
            }
        };
        let matrix = random_matrix(event.shape.0, event.shape.1, event.seed);
        let expected = reference
            .run(&matrix)
            .map_err(|err| format!("reference run: {err}"))?;
        let got = &response.output.result;
        let want = &expected.result;
        let same = got
            .sigma
            .iter()
            .zip(&want.sigma)
            .all(|(a, b)| a.to_bits() == b.to_bits())
            && got.sigma.len() == want.sigma.len()
            && got.u.as_slice() == want.u.as_slice();
        if !same {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Runs the full comparison: the shifting trace through adaptive +
/// both statics, the stationary control, and the bit-identity audit.
///
/// # Errors
///
/// Service/accelerator failures or an infeasible phase plan (as text,
/// for the CLI to print).
pub fn run(
    phases: &[TracePhase],
    stationary_trace: &[TracePhase],
    seed: u64,
) -> Result<DseBenchReport, String> {
    let events = bursty_trace(phases, seed);
    if events.is_empty() {
        return Err("empty trace".into());
    }
    let plan_a = phase_winner(&phases[0])?;
    let plan_b = phase_winner(&phases[1 % phases.len()])?;
    let queue = events.len().max(8);

    // Adaptive service seeded at plan A, so both step changes (into the
    // burst phase and back out of it) demand a swap.
    let adaptive_config = service_config(plan_a, true, queue);
    let (adaptive_responses, adaptive_metrics) = replay(adaptive_config.clone(), &events)?;
    if std::env::var("BENCH_DSE_DEBUG").is_ok() {
        for (i, (e, r)) in events.iter().zip(&adaptive_responses).enumerate() {
            eprintln!(
                "dbg {i:3} at={:7.1}ms shape={}x{} plan=({},{}) gen={} queue={:.1}ms wall={:.1}ms batch={}",
                e.at_ms,
                e.shape.0,
                e.shape.1,
                r.latency.plan.engine_parallelism,
                r.latency.plan.task_parallelism,
                r.latency.plan.generation,
                r.latency.queue_wait.as_secs_f64() * 1e3,
                r.latency.wall_total.as_secs_f64() * 1e3,
                r.latency.batch_size,
            );
        }
    }
    let (static_a_responses, static_a_metrics) =
        replay(service_config(plan_a, false, queue), &events)?;
    let (static_b_responses, static_b_metrics) =
        replay(service_config(plan_b, false, queue), &events)?;

    let adaptive = variant_row(
        "adaptive",
        plan_a,
        true,
        &events,
        &adaptive_responses,
        &adaptive_metrics,
    );
    let statics = vec![
        variant_row(
            "static-A",
            plan_a,
            false,
            &events,
            &static_a_responses,
            &static_a_metrics,
        ),
        variant_row(
            "static-B",
            plan_b,
            false,
            &events,
            &static_b_responses,
            &static_b_metrics,
        ),
    ];
    let best_static = statics
        .iter()
        .map(|s| s.throughput_rps)
        .fold(0.0f64, f64::max);
    let distinct_plans: BTreeSet<(usize, usize)> = adaptive_responses
        .iter()
        .map(|r| {
            (
                r.latency.plan.engine_parallelism,
                r.latency.plan.task_parallelism,
            )
        })
        .collect();
    let bit_identical = check_bit_identity(&adaptive_config, &events, &adaptive_responses)?;
    let speedup_vs_best_static = if best_static > 0.0 {
        adaptive.throughput_rps / best_static
    } else {
        f64::NAN
    };

    // Stationary control: the same burst traffic forever, adaptive
    // service seeded at that traffic's own winner.
    let stationary_events = bursty_trace(stationary_trace, seed + 1);
    let stationary_plan = phase_winner(&stationary_trace[0])?;
    let (stationary_responses, stationary_metrics) = replay(
        service_config(stationary_plan, true, stationary_events.len().max(8)),
        &stationary_events,
    )?;
    let stationary_ps = makespan_ps(&stationary_responses);

    Ok(DseBenchReport {
        iterations: ITERATIONS,
        phases: phases
            .iter()
            .map(|p| PhaseInfo {
                rows: p.shape.0,
                cols: p.shape.1,
                burst: p.burst,
                bursts: p.bursts,
                mean_gap_ms: p.mean_gap_ms,
            })
            .collect(),
        trace_events: events.len(),
        adaptive,
        statics,
        speedup_vs_best_static,
        distinct_plans: distinct_plans.len(),
        bit_identical,
        stationary: StationaryRow {
            engine_parallelism: stationary_plan.0,
            task_parallelism: stationary_plan.1,
            requests: stationary_responses.len(),
            plan_swaps: stationary_metrics.plan_swaps,
            dse_runs: stationary_metrics.dse_runs,
            throughput_rps: if stationary_ps > 0.0 {
                stationary_responses.len() as f64 / (stationary_ps * 1e-12)
            } else {
                0.0
            },
        },
    })
}

/// The closed-loop DSE acceptance gates: under the shifting trace the
/// adaptive service must beat the best static plan by `speedup_floor`
/// (1.3x full, relaxed for the CI quick smoke) and every static
/// individually; the controller must swap at least twice; the
/// stationary control must never swap (but must have re-planned at
/// least once); and the bit-identity audit must hold.
pub fn gate_violations(report: &DseBenchReport, speedup_floor: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let best_static = report
        .statics
        .iter()
        .map(|s| s.throughput_rps)
        .fold(0.0f64, f64::max);
    // Negated so a NaN throughput counts as a violation too.
    let meets_floor = report.adaptive.throughput_rps >= speedup_floor * best_static;
    if !meets_floor {
        violations.push(format!(
            "adaptive throughput {:.1} req/s below {:.2}x best static ({:.1} req/s)",
            report.adaptive.throughput_rps, speedup_floor, best_static
        ));
    }
    for s in &report.statics {
        if report.adaptive.throughput_rps < s.throughput_rps {
            violations.push(format!(
                "adaptive throughput {:.1} req/s loses to {} ({:.1} req/s)",
                report.adaptive.throughput_rps, s.label, s.throughput_rps
            ));
        }
    }
    if report.adaptive.plan_swaps < 2 {
        violations.push(format!(
            "only {} plan swaps on the shifting trace (need >= 2)",
            report.adaptive.plan_swaps
        ));
    }
    if report.distinct_plans < 2 {
        violations.push(format!(
            "adaptive responses span {} plan(s) (need >= 2)",
            report.distinct_plans
        ));
    }
    if !report.bit_identical {
        violations.push("adaptive factors diverged from the pinned-plan references".into());
    }
    if report.stationary.plan_swaps != 0 {
        violations.push(format!(
            "{} swaps on the stationary trace (hysteresis must hold)",
            report.stationary.plan_swaps
        ));
    }
    if report.stationary.dse_runs == 0 {
        violations.push("stationary controller never re-planned (was it running?)".into());
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny trace is internally consistent: throughputs are positive,
    /// the bit-identity audit holds, and the stationary control never
    /// swaps. (Swap-count and speedup gates need the full-size trace;
    /// they are exercised by `repro -- dse`.)
    #[test]
    fn tiny_run_report_is_consistent() {
        let phases = [
            TracePhase {
                shape: (64, 64),
                burst: 1,
                bursts: 3,
                mean_gap_ms: 4.0,
            },
            TracePhase {
                shape: (16, 16),
                burst: 8,
                bursts: 3,
                mean_gap_ms: 6.0,
            },
        ];
        let stationary = [TracePhase {
            shape: (16, 16),
            burst: 8,
            bursts: 3,
            mean_gap_ms: 6.0,
        }];
        let report = run(&phases, &stationary, 11).unwrap();
        assert_eq!(report.trace_events, 3 + 24);
        assert_eq!(report.adaptive.requests, 27);
        assert!(report.adaptive.throughput_rps > 0.0);
        assert_eq!(report.statics.len(), 2);
        assert!(report.statics.iter().all(|s| s.throughput_rps > 0.0));
        assert!(report.bit_identical, "swap must never touch the math");
        assert_eq!(
            report.stationary.plan_swaps, 0,
            "stationary mix at its own winner must hold still"
        );
        assert!(report.distinct_plans >= 1);
    }
}
