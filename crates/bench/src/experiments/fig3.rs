//! Fig. 3: DMA-transfer counts of the traditional ring ordering vs the
//! co-designed shifting ring, per block-pair pass, as a function of the
//! engine parallelism `k`.

use serde::{Deserialize, Serialize};
use svd_orderings::movement::{analyze, DataflowKind, OrderingKind};

/// One regenerated data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Engine parallelism `k` (block pair holds `2k` columns).
    pub k: usize,
    /// Traditional design: ring ordering + naive memory (paper: `2k(k−1)`).
    pub ring_naive: usize,
    /// Ablation: ring ordering + relocated dataflow.
    pub ring_relocated: usize,
    /// Ablation: shifting ring + naive memory.
    pub shifting_naive: usize,
    /// Alternative traditional ordering: Brent–Luk round-robin \[17\]
    /// with relocated dataflow (its best case) — quadratic in `k`, since
    /// the fold's bidirectional flow cannot be shifted into alignment.
    pub round_robin_relocated: usize,
    /// Co-design: shifting ring + relocated dataflow (paper: `2(k−1)`).
    pub codesign: usize,
    /// Reduction factor of the full co-design over the traditional design.
    pub reduction: f64,
}

/// Regenerates the Fig. 3 analysis for `k = 1..=max_k`.
pub fn run(max_k: usize) -> Vec<Fig3Row> {
    (1..=max_k)
        .map(|k| {
            let ring_naive =
                analyze(OrderingKind::Ring, DataflowKind::NaiveMemory, k).dma_transfers;
            let ring_relocated =
                analyze(OrderingKind::Ring, DataflowKind::Relocated, k).dma_transfers;
            let shifting_naive =
                analyze(OrderingKind::ShiftingRing, DataflowKind::NaiveMemory, k).dma_transfers;
            let codesign =
                analyze(OrderingKind::ShiftingRing, DataflowKind::Relocated, k).dma_transfers;
            let round_robin_relocated =
                analyze(OrderingKind::RoundRobin, DataflowKind::Relocated, k).dma_transfers;
            Fig3Row {
                k,
                ring_naive,
                ring_relocated,
                shifting_naive,
                round_robin_relocated,
                codesign,
                reduction: if codesign == 0 {
                    1.0
                } else {
                    ring_naive as f64 / codesign as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_match_paper_formulas() {
        use svd_orderings::movement::{codesign_dma_count, ring_naive_dma_count};
        for row in run(11) {
            assert_eq!(row.ring_naive, ring_naive_dma_count(row.k));
            assert_eq!(row.codesign, codesign_dma_count(row.k));
        }
    }

    #[test]
    fn reduction_grows_linearly_with_k() {
        // 2k(k-1) / 2(k-1) = k.
        for row in run(11).iter().skip(1) {
            assert!((row.reduction - row.k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn ablations_sit_between_corners() {
        for row in run(11).iter().skip(1) {
            assert!(row.codesign < row.ring_relocated);
            assert!(row.ring_relocated < row.ring_naive);
            assert!(row.codesign < row.shifting_naive);
        }
    }

    #[test]
    fn round_robin_is_quadratic_while_codesign_is_linear() {
        for row in run(11).iter().skip(2) {
            assert_eq!(row.round_robin_relocated, 2 * (row.k - 1) * (row.k - 1));
            assert!(row.round_robin_relocated > row.codesign);
        }
    }
}
