//! One module per regenerated table/figure of the paper's evaluation.

pub mod ablation;
pub mod accuracy;
pub mod adaptive;
pub mod apply;
pub mod autoscale;
pub mod convergence;
pub mod devices;
pub mod dse_report;
pub mod fig3;
pub mod fig9;
pub mod hotpath;
pub mod pack;
pub mod scalability;
pub mod serve;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod update;
