//! DSE flow report (Eq. 15–16, Fig. 8): sweeps the full design space for
//! a problem and reports the feasible set and per-objective optima —
//! together with how long the exploration took, the paper's headline
//! ("within minutes" vs "seven hours per design point" through the EDA
//! flow; our analytic sweep finishes in milliseconds).

use heterosvd_dse::{run_dse, DesignEvaluation, DseConfig, DseResult, Objective};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Summary of one DSE sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DseReport {
    /// Matrix size.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// Feasible design points found.
    pub feasible: usize,
    /// Candidates rejected by stage 1.
    pub infeasible: usize,
    /// Wall-clock milliseconds the sweep took.
    pub sweep_ms: f64,
    /// Latency-optimal point.
    pub best_latency: Option<DesignEvaluation>,
    /// Throughput-optimal point.
    pub best_throughput: Option<DesignEvaluation>,
    /// Energy-efficiency-optimal point.
    pub best_ee: Option<DesignEvaluation>,
}

/// Runs the sweep and summarizes it.
pub fn run(n: usize, batch: usize, iterations: usize) -> DseReport {
    let start = Instant::now();
    let result: DseResult = run_dse(&DseConfig::new(n, n).batch(batch).iterations(iterations));
    let sweep_ms = start.elapsed().as_secs_f64() * 1e3;
    DseReport {
        n,
        batch,
        feasible: result.evaluations.len(),
        infeasible: result.infeasible,
        sweep_ms,
        best_latency: result.best(Objective::MinLatency).cloned(),
        best_throughput: result.best(Objective::MaxThroughput).cloned(),
        best_ee: result.best(Objective::MaxEnergyEfficiency).cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_completes_quickly_and_finds_optima() {
        let report = run(256, 100, 6);
        assert!(report.feasible > 0);
        assert!(report.best_latency.is_some());
        assert!(report.best_throughput.is_some());
        assert!(report.best_ee.is_some());
        // "Within minutes" in the paper; milliseconds here.
        assert!(report.sweep_ms < 60_000.0);
    }

    #[test]
    fn objectives_disagree_in_general() {
        let report = run(256, 100, 6);
        let lat = report.best_latency.unwrap();
        let tput = report.best_throughput.unwrap();
        assert!(lat.point.engine_parallelism >= tput.point.engine_parallelism);
    }
}
