//! Table IV: accuracy of the performance model against the "on-board"
//! measurement (our cycle-approximate simulator), single iteration at a
//! fixed 208.3 MHz PL clock.

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use perf_model::{estimate, DesignPoint};
use serde::{Deserialize, Serialize};

/// The fixed PL frequency of the Table IV protocol.
pub const FREQ_MHZ: f64 = 208.3;

/// Paper's published Table IV rows: `(n, P_eng, on-board ms, model ms)`.
pub const PAPER_ROWS: [(usize, usize, f64, f64); 9] = [
    (128, 2, 0.993, 1.022),
    (256, 2, 6.151, 6.338),
    (512, 2, 43.229, 42.020),
    (128, 4, 0.395, 0.391),
    (256, 4, 2.853, 2.806),
    (512, 4, 21.584, 21.265),
    (128, 8, 0.214, 0.219),
    (256, 8, 1.475, 1.476),
    (512, 8, 10.965, 10.903),
];

/// One regenerated row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Matrix size.
    pub n: usize,
    /// Engine parallelism.
    pub p_eng: usize,
    /// Simulated ("on-board") single-iteration time in ms.
    pub measured_ms: f64,
    /// Analytic-model single-iteration time in ms.
    pub model_ms: f64,
    /// Relative error of the model against the measurement.
    pub error: f64,
}

/// Regenerates Table IV for the given `(n, P_eng)` pairs.
///
/// # Errors
///
/// Propagates configuration/placement errors from the accelerator.
pub fn run(configs: &[(usize, usize)]) -> Result<Vec<Table4Row>, HeteroSvdError> {
    let mut rows = Vec::with_capacity(configs.len());
    for &(n, p_eng) in configs {
        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(p_eng)
            .pl_freq_mhz(FREQ_MHZ)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .build()?;
        let acc = Accelerator::new(cfg)?;
        let out = acc.run(&svd_kernels::Matrix::zeros(n, n))?;
        let measured_ms = out.timing.avg_iteration().as_millis();

        let est = estimate(&DesignPoint {
            rows: n,
            cols: n,
            engine_parallelism: p_eng,
            task_parallelism: 1,
            pl_freq_mhz: FREQ_MHZ,
            iterations: 1,
        });
        let model_ms = est.iteration.as_millis();
        rows.push(Table4Row {
            n,
            p_eng,
            measured_ms,
            model_ms,
            error: (model_ms - measured_ms).abs() / measured_ms,
        });
    }
    Ok(rows)
}

/// The paper's `(n, P_eng)` grid.
pub fn paper_configs() -> Vec<(usize, usize)> {
    PAPER_ROWS.iter().map(|&(n, p, _, _)| (n, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulator_within_10_percent() {
        // Paper reports <= 3.03% model-vs-board error; our analytic model
        // stays within 10% of our simulator on the small grid.
        let rows = run(&[(128, 2), (128, 4), (64, 2)]).unwrap();
        for r in &rows {
            assert!(
                r.error < 0.10,
                "n={} P_eng={}: model {:.3} vs sim {:.3} ms (err {:.3})",
                r.n,
                r.p_eng,
                r.model_ms,
                r.measured_ms,
                r.error
            );
        }
    }

    #[test]
    fn measured_times_near_paper_anchors() {
        let rows = run(&[(128, 2), (128, 8)]).unwrap();
        let paper: f64 = 0.993;
        assert!((rows[0].measured_ms - paper).abs() / paper < 0.25);
        let paper8: f64 = 0.214;
        assert!((rows[1].measured_ms - paper8).abs() / paper8 < 0.25);
    }
}
