//! Scalability what-if (extension): the paper conjectures that "with
//! adequate RAM resources and optimized operating frequency, HeteroSVD
//! has the potential to outperform GPU solutions" at the large sizes
//! where Table III shows the GPU winning (§V-B, Fig. 9 discussion).
//!
//! This experiment tests that conjecture inside the model: scale the
//! URAM budget (the resource that caps task parallelism at large sizes)
//! and lift the frequency derating, then re-run the DSE and compare the
//! resulting throughput against the GPU baseline.

use baselines::GpuBaseline;
use heterosvd_dse::{run_dse, DseConfig, Objective};
use perf_model::estimate;
use serde::{Deserialize, Serialize};

/// One what-if data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityRow {
    /// Matrix size.
    pub n: usize,
    /// URAM budget multiplier applied to the VCK190's 463 blocks.
    pub uram_scale: usize,
    /// Whether the frequency derating was lifted (fixed 450 MHz).
    pub optimistic_frequency: bool,
    /// Throughput-optimal task parallelism found.
    pub p_task: usize,
    /// HeteroSVD batch-100 throughput (tasks/s, analytic model).
    pub hsvd_throughput: f64,
    /// GPU batch-100 throughput (tasks/s).
    pub gpu_throughput: f64,
    /// HeteroSVD / GPU throughput ratio.
    pub ratio: f64,
}

/// Runs the what-if sweep at the given sizes with the given iteration
/// counts (size-matched, like Table III's convergence protocol).
pub fn run(sizes_iters: &[(usize, usize)]) -> Vec<ScalabilityRow> {
    let gpu = GpuBaseline::published();
    let mut rows = Vec::new();
    for &(n, iterations) in sizes_iters {
        let gpu_throughput = gpu.throughput(n, 100);
        for (uram_scale, optimistic) in [(1usize, false), (2, false), (4, true), (8, true)] {
            let mut cfg = DseConfig::new(n, n).batch(100).iterations(iterations);
            cfg.budget.uram *= uram_scale;
            if optimistic {
                cfg = cfg.freq_mhz(450.0);
            }
            let result = run_dse(&cfg);
            let Some(best) = result.best(Objective::MaxThroughput) else {
                continue;
            };
            // Recompute throughput from the model at the chosen point
            // (best.throughput already is; keep it explicit).
            let est = estimate(&best.point);
            let hsvd_throughput = est.throughput(100, best.point.task_parallelism);
            rows.push(ScalabilityRow {
                n,
                uram_scale,
                optimistic_frequency: optimistic,
                p_task: best.point.task_parallelism,
                hsvd_throughput,
                gpu_throughput,
                ratio: hsvd_throughput / gpu_throughput,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_uram_buys_task_parallelism_at_512() {
        let rows = run(&[(512, 13)]);
        let base = rows.iter().find(|r| r.uram_scale == 1).unwrap();
        let scaled = rows.iter().find(|r| r.uram_scale == 4).unwrap();
        assert!(
            scaled.p_task > base.p_task,
            "P_task {} -> {}",
            base.p_task,
            scaled.p_task
        );
        assert!(scaled.hsvd_throughput > base.hsvd_throughput);
    }

    #[test]
    fn paper_conjecture_holds_in_the_model_at_512() {
        // Baseline VCK190 loses to the GPU at 512 (Table III: 0.89x);
        // with more URAM + optimistic frequency the model flips the sign,
        // supporting the paper's S V-B conjecture.
        let rows = run(&[(512, 13)]);
        let base = rows.iter().find(|r| r.uram_scale == 1).unwrap();
        let best = rows
            .iter()
            .map(|r| r.ratio)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > base.ratio);
        assert!(best > 1.0, "scaled ratio {best} should beat the GPU");
    }

    #[test]
    fn rows_cover_all_scales() {
        let rows = run(&[(256, 11)]);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.gpu_throughput > 0.0));
    }
}
