//! Table V: model accuracy across application scenarios — the DSE picks
//! the minimum-execution-time configuration for each `(size, batch)`
//! scenario, then the model's prediction is compared against the
//! simulated measurement (single iteration, as in the paper).

use heterosvd::{Accelerator, FidelityMode, HeteroSvdConfig, HeteroSvdError};
use heterosvd_dse::{run_dse, DseConfig, Objective};
use serde::{Deserialize, Serialize};

/// Paper's published Table V rows:
/// `(n, batch, freq MHz, P_eng, P_task, on-board ms, model ms)`.
pub const PAPER_ROWS: [(usize, usize, f64, usize, usize, f64, f64); 8] = [
    (128, 1, 450.0, 8, 1, 0.357, 0.384),
    (256, 1, 420.0, 8, 1, 1.202, 1.120),
    (512, 1, 350.0, 8, 1, 7.815, 7.510),
    (1024, 1, 310.0, 8, 1, 58.885, 58.255),
    (128, 100, 330.0, 4, 9, 6.099, 6.412),
    (256, 100, 310.0, 4, 9, 27.836, 26.623),
    (512, 100, 310.0, 4, 7, 238.002, 224.301),
    (1024, 100, 310.0, 8, 1, 5872.181, 5878.970),
];

/// One regenerated row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table5Row {
    /// Matrix size.
    pub n: usize,
    /// Batch size.
    pub batch: usize,
    /// DSE-selected PL frequency (MHz).
    pub freq_mhz: f64,
    /// DSE-selected engine parallelism.
    pub p_eng: usize,
    /// DSE-selected task parallelism.
    pub p_task: usize,
    /// Simulated batch processing time (ms, one iteration).
    pub measured_ms: f64,
    /// Model-predicted batch processing time (ms).
    pub model_ms: f64,
    /// Relative model error.
    pub error: f64,
}

/// Regenerates Table V for the given `(size, batch)` scenarios.
///
/// # Errors
///
/// Propagates configuration errors; fails when no design is feasible.
pub fn run(scenarios: &[(usize, usize)]) -> Result<Vec<Table5Row>, HeteroSvdError> {
    let mut rows = Vec::with_capacity(scenarios.len());
    for &(n, batch) in scenarios {
        let dse = run_dse(&DseConfig::new(n, n).batch(batch).iterations(1));
        let objective = if batch > 1 {
            Objective::MaxThroughput
        } else {
            Objective::MinLatency
        };
        let best = dse
            .best(objective)
            .ok_or_else(|| HeteroSvdError::InvalidConfig(format!("no feasible design for {n}")))?
            .clone();

        let cfg = HeteroSvdConfig::builder(n, n)
            .engine_parallelism(best.point.engine_parallelism)
            .task_parallelism(best.point.task_parallelism)
            .pl_freq_mhz(best.point.pl_freq_mhz)
            .fidelity(FidelityMode::TimingOnly)
            .fixed_iterations(1)
            .build()?;
        let acc = Accelerator::new(cfg)?;
        let (out, sys) = acc.run_batch(&svd_kernels::Matrix::zeros(n, n), batch)?;
        let _ = out;
        let measured_ms = sys.as_millis();
        let model_ms = best.system_time.as_millis();

        rows.push(Table5Row {
            n,
            batch,
            freq_mhz: best.point.pl_freq_mhz,
            p_eng: best.point.engine_parallelism,
            p_task: best.point.task_parallelism,
            measured_ms,
            model_ms,
            error: (model_ms - measured_ms).abs() / measured_ms,
        });
    }
    Ok(rows)
}

/// The paper's scenario grid.
pub fn paper_scenarios() -> Vec<(usize, usize)> {
    PAPER_ROWS.iter().map(|&(n, b, ..)| (n, b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_simulator_within_12_percent() {
        // Paper reports <= 7.52% across scenarios.
        let rows = run(&[(128, 1), (128, 10)]).unwrap();
        for r in &rows {
            assert!(
                r.error < 0.12,
                "n={} batch={}: model {:.3} vs sim {:.3} ms (err {:.3})",
                r.n,
                r.batch,
                r.model_ms,
                r.measured_ms,
                r.error
            );
        }
    }

    #[test]
    fn single_task_scenarios_pick_high_p_eng() {
        let rows = run(&[(128, 1)]).unwrap();
        assert!(rows[0].p_eng >= 4, "P_eng = {}", rows[0].p_eng);
        assert_eq!(rows[0].p_task, 1);
    }

    #[test]
    fn batch_scenarios_pick_multiple_tasks() {
        let rows = run(&[(128, 50)]).unwrap();
        assert!(rows[0].p_task > 1, "P_task = {}", rows[0].p_task);
    }
}
