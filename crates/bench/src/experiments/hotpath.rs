//! Hot-path microbenchmark: the orthogonalization sweep before and
//! after the PR-2 optimizations.
//!
//! Three variants run the same functional workload (one full round-robin
//! sweep over every block pair):
//!
//! * **baseline** — a frozen copy of the pre-optimization
//!   `OrthPipeline`: scalar (non-chunked) rotation kernels, per-pass
//!   `pair_columns` allocation, per-layer `pairs_by_slot` clones and
//!   fresh scratch `Vec`s, and a private `Placement::plan` per pipeline.
//! * **optimized-serial** — the current pipeline (hoisted scratch,
//!   chunked 8-lane kernels, shared [`heterosvd::PlanHandle`]) with
//!   `functional_parallelism = 1`.
//! * **optimized-parallel** — the same pipeline driving a
//!   [`svd_kernels::parallel::RotationPool`].
//!
//! Reported per variant: mean ns per block-pair pass, full sweeps per
//! second, heap allocations per pass (from a counting allocator the
//! calling binary installs), and a matrix checksum after the measured
//! sweeps — the serial and parallel optimized variants must agree on
//! it bit for bit.

use heterosvd::orth_pipeline::OrthPipeline;
use heterosvd::{HeteroSvdConfig, HeteroSvdError, Placement, PlanHandle, PlioPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use aie_sim::dma::DmaModel;
use aie_sim::kernel::KernelCostModel;
use aie_sim::pl::PlModel;
use aie_sim::plio::{PlioDirection, PlioModel};
use aie_sim::stats::SimStats;
use aie_sim::time::TimePs;
use aie_sim::timeline::Timeline;
use svd_kernels::block::{BlockPairSchedule, BlockPartition};
use svd_kernels::parallel::with_pool;
use svd_kernels::rotation::orthogonalize_pair_gated_scalar;
use svd_kernels::Matrix;
use svd_orderings::movement::{classify, AccessKind, Movement};
use svd_orderings::HardwareSchedule;

/// Counting [`GlobalAlloc`] for the binaries that drive this benchmark.
///
/// Delegates to [`System`] and counts every `alloc`/`realloc`; install
/// with `#[global_allocator]` and pass `&|| ALLOC.count()` to [`run`] so
/// allocations-per-pass can be reported.
pub struct CountingAllocator {
    count: AtomicU64,
}

impl CountingAllocator {
    /// A fresh zero-count allocator (const so it can back a static).
    pub const fn new() -> Self {
        CountingAllocator {
            count: AtomicU64::new(0),
        }
    }

    /// Allocations (plus reallocations) observed so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.count.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.count.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// One measured variant of the sweep hot path.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HotpathRow {
    /// `baseline`, `optimized-serial`, or `optimized-parallel`.
    pub variant: String,
    /// Mean wall-clock nanoseconds per block-pair pass.
    pub ns_per_pass: f64,
    /// Full round-robin sweeps per second.
    pub sweeps_per_sec: f64,
    /// Heap allocations per pass during the measured sweeps.
    pub allocations_per_pass: f64,
    /// Sum of all matrix entries after the measured sweeps (bit-exact
    /// agreement expected between the two optimized variants).
    pub checksum: f64,
    /// Rotation-pool workers used (1 for the serial variants).
    pub workers: usize,
}

/// The complete hot-path report (serialized to `BENCH_hotpath.json`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct HotpathReport {
    /// Matrix dimension of the workload (n×n).
    pub n: usize,
    /// Engine parallelism `P_eng` (k orth-AIEs per layer).
    pub p_eng: usize,
    /// Block-pair passes in one full sweep.
    pub passes_per_sweep: usize,
    /// Measured sweeps per variant (after one warm-up sweep).
    pub measured_sweeps: usize,
    /// One row per measured variant (the parallel row is absent when
    /// the host degrades it, see [`Self::parallel_status`]).
    pub results: Vec<HotpathRow>,
    /// `baseline.ns_per_pass / optimized-serial.ns_per_pass`.
    pub speedup_serial: f64,
    /// `baseline.ns_per_pass / optimized-parallel.ns_per_pass`, or
    /// `None` when the variant was skipped as degraded.
    pub speedup_parallel: Option<f64>,
    /// `"measured"`, or `"degraded"` when `functional_parallelism`
    /// auto-degrades to one worker (single-hardware-thread host). A
    /// degraded pool is the serial path plus coordination overhead
    /// (measured ~1.7x *slower* than serial), so the variant is skipped
    /// rather than published as a parallel number.
    pub parallel_status: String,
    /// `std::thread::available_parallelism()` on the benchmarking host.
    pub host_parallelism: usize,
    /// Whether `functional_parallelism` was auto-degraded to serial
    /// because the host has a single hardware thread.
    pub parallel_auto_degraded: bool,
}

fn test_matrix(n: usize) -> Matrix<f32> {
    Matrix::from_fn(n, n, |r, c| {
        (((r * 31 + c * 17 + 3) % 13) as f32) / 3.0 - 2.0 + if r == c { 2.0 } else { 0.0 }
    })
}

fn checksum(b: &Matrix<f32>) -> f64 {
    b.as_slice().iter().map(|&x| x as f64).sum()
}

fn config(n: usize, p_eng: usize, workers: usize) -> Result<HeteroSvdConfig, HeteroSvdError> {
    HeteroSvdConfig::builder(n, n)
        .engine_parallelism(p_eng)
        .functional_parallelism(workers)
        .pl_freq_mhz(208.3)
        .build()
}

/// Measures all three variants on an `n×n` functional workload and
/// returns the report. `alloc_count` reads the calling binary's
/// [`CountingAllocator`] (pass `&|| 0` to skip allocation accounting).
pub fn run(
    n: usize,
    p_eng: usize,
    measured_sweeps: usize,
    alloc_count: &dyn Fn() -> u64,
) -> Result<HotpathReport, HeteroSvdError> {
    assert!(measured_sweeps > 0, "need at least one measured sweep");
    let cfg_serial = config(n, p_eng, 1)?;
    let passes_per_sweep = {
        let p = BlockPartition::new(n, p_eng)
            .expect("validated")
            .num_blocks();
        BlockPairSchedule::round_robin(p).iter().count()
    };

    let mut results = Vec::with_capacity(3);

    // ---- Baseline: frozen pre-optimization pipeline. ----
    {
        let placement = Placement::plan(&cfg_serial)?;
        let mut pipe = BaselinePipeline::new(&cfg_serial, &placement);
        let mut b = test_matrix(n);
        pipe.set_norm_floor_sq(b.column_norm_floor_sq());
        pipe.run_iteration(&mut b); // warm-up
        let allocs_before = alloc_count();
        let start = Instant::now();
        for _ in 0..measured_sweeps {
            pipe.run_iteration(&mut b);
        }
        let elapsed = start.elapsed();
        results.push(row(
            "baseline",
            elapsed,
            measured_sweeps,
            passes_per_sweep,
            alloc_count() - allocs_before,
            checksum(&b),
            1,
        ));
    }

    // ---- Optimized serial. ----
    {
        let plan = PlanHandle::build(&cfg_serial)?;
        let mut pipe = OrthPipeline::new(&cfg_serial, &plan);
        let mut b = test_matrix(n);
        pipe.set_norm_floor_sq(b.column_norm_floor_sq());
        pipe.run_iteration(&mut b); // warm-up
        let allocs_before = alloc_count();
        let start = Instant::now();
        for _ in 0..measured_sweeps {
            pipe.run_iteration(&mut b);
        }
        let elapsed = start.elapsed();
        results.push(row(
            "optimized-serial",
            elapsed,
            measured_sweeps,
            passes_per_sweep,
            alloc_count() - allocs_before,
            checksum(&b),
            1,
        ));
    }

    // ---- Optimized parallel (skipped when degraded to one worker:
    // a one-worker pool is the serial path plus coordination overhead,
    // and publishing it as "parallel" misreads as a parallel speedup). ----
    let cfg_parallel = config(n, p_eng, svd_kernels::parallel::available_workers())?;
    let parallel_workers = cfg_parallel.effective_functional_workers();
    let parallel_degraded = parallel_workers <= 1;
    if !parallel_degraded {
        let plan = PlanHandle::build(&cfg_parallel)?;
        let mut pipe = OrthPipeline::new(&cfg_parallel, &plan);
        let mut b = test_matrix(n);
        pipe.set_norm_floor_sq(b.column_norm_floor_sq());
        let (elapsed, allocs) = with_pool(parallel_workers, |pool| {
            pipe.run_iteration_with(&mut b, Some(pool)); // warm-up
            let allocs_before = alloc_count();
            let start = Instant::now();
            for _ in 0..measured_sweeps {
                pipe.run_iteration_with(&mut b, Some(pool));
            }
            (start.elapsed(), alloc_count() - allocs_before)
        });
        results.push(row(
            "optimized-parallel",
            elapsed,
            measured_sweeps,
            passes_per_sweep,
            allocs,
            checksum(&b),
            parallel_workers,
        ));
    }

    let ns = |variant: &str| {
        results
            .iter()
            .find(|r| r.variant == variant)
            .map(|r| r.ns_per_pass)
    };
    let baseline_ns = ns("baseline").unwrap_or(f64::NAN);
    let serial_ns = ns("optimized-serial").unwrap_or(f64::NAN);
    Ok(HotpathReport {
        n,
        p_eng,
        passes_per_sweep,
        measured_sweeps,
        speedup_serial: baseline_ns / serial_ns,
        speedup_parallel: ns("optimized-parallel").map(|p| baseline_ns / p),
        parallel_status: if parallel_degraded {
            "degraded".to_string()
        } else {
            "measured".to_string()
        },
        host_parallelism: svd_kernels::parallel::available_workers(),
        parallel_auto_degraded: parallel_degraded,
        results,
    })
}

/// Runs `sweeps` frozen-baseline sweeps on a fresh `n×n` workload and
/// returns the final matrix checksum (for `benches/hotpath.rs`).
pub fn sweep_baseline(n: usize, p_eng: usize, sweeps: usize) -> Result<f64, HeteroSvdError> {
    let cfg = config(n, p_eng, 1)?;
    let placement = Placement::plan(&cfg)?;
    let mut pipe = BaselinePipeline::new(&cfg, &placement);
    let mut b = test_matrix(n);
    pipe.set_norm_floor_sq(b.column_norm_floor_sq());
    for _ in 0..sweeps {
        pipe.run_iteration(&mut b);
    }
    Ok(checksum(&b))
}

/// Runs `sweeps` optimized sweeps (`workers = 1` for serial) on a fresh
/// `n×n` workload and returns the final matrix checksum.
pub fn sweep_optimized(
    n: usize,
    p_eng: usize,
    workers: usize,
    sweeps: usize,
) -> Result<f64, HeteroSvdError> {
    let cfg = config(n, p_eng, workers)?;
    let workers = cfg.effective_functional_workers();
    let plan = PlanHandle::build(&cfg)?;
    let mut pipe = OrthPipeline::new(&cfg, &plan);
    let mut b = test_matrix(n);
    pipe.set_norm_floor_sq(b.column_norm_floor_sq());
    if workers > 1 {
        with_pool(workers, |pool| {
            for _ in 0..sweeps {
                pipe.run_iteration_with(&mut b, Some(pool));
            }
        });
    } else {
        for _ in 0..sweeps {
            pipe.run_iteration(&mut b);
        }
    }
    Ok(checksum(&b))
}

fn row(
    variant: &str,
    elapsed: std::time::Duration,
    sweeps: usize,
    passes_per_sweep: usize,
    allocations: u64,
    checksum: f64,
    workers: usize,
) -> HotpathRow {
    let total_passes = (sweeps * passes_per_sweep) as f64;
    let secs = elapsed.as_secs_f64();
    HotpathRow {
        variant: variant.to_string(),
        ns_per_pass: secs * 1e9 / total_passes,
        sweeps_per_sec: sweeps as f64 / secs,
        allocations_per_pass: allocations as f64 / total_passes,
        checksum,
        workers,
    }
}

/// Frozen copy of the pre-optimization `OrthPipeline` (the PR-1 hot
/// path), kept verbatim as the benchmark baseline: scalar rotation
/// kernels, a `pair_columns` allocation per pass, and a `pairs_by_slot`
/// clone plus four fresh scratch `Vec`s per layer. Do not optimize —
/// its cost profile IS the measurement.
struct BaselinePipeline<'a> {
    config: &'a HeteroSvdConfig,
    placement: &'a Placement,
    schedule: HardwareSchedule,
    partition: BlockPartition,
    plan: PlioPlan,
    plio: PlioModel,
    dma: DmaModel,
    kernels: KernelCostModel,
    pl: PlModel,
    plio_in: Vec<Timeline>,
    plio_out: Vec<Timeline>,
    cores: Vec<Timeline>,
    dma_channels: Vec<Timeline>,
    wrap_channels: Vec<Timeline>,
    switch_channels: Vec<Timeline>,
    block_ready: Vec<TimePs>,
    norm_floor_sq: f32,
    stats: SimStats,
}

impl<'a> BaselinePipeline<'a> {
    fn new(config: &'a HeteroSvdConfig, placement: &'a Placement) -> Self {
        let k = config.engine_parallelism;
        let layers = placement.num_layers();
        let partition =
            BlockPartition::new(config.cols, k).expect("config validation guarantees divisibility");
        let plan = PlioPlan::standard();
        BaselinePipeline {
            config,
            placement,
            schedule: HardwareSchedule::new(k, config.ordering),
            partition,
            plan,
            plio: PlioModel::new(config.calibration, config.pl_freq),
            dma: DmaModel::new(config.calibration),
            kernels: KernelCostModel::new(config.calibration),
            pl: PlModel::new(config.calibration),
            plio_in: vec![Timeline::new(); plan.orth_in],
            plio_out: vec![Timeline::new(); plan.orth_out],
            cores: vec![Timeline::new(); layers * k],
            dma_channels: vec![Timeline::new(); layers.max(1) * k],
            wrap_channels: vec![Timeline::new(); layers.max(1)],
            switch_channels: vec![Timeline::new(); layers.max(1)],
            block_ready: vec![TimePs::ZERO; partition.num_blocks()],
            norm_floor_sq: 0.0,
            stats: SimStats::new(),
        }
    }

    fn set_norm_floor_sq(&mut self, floor_sq: f32) {
        self.norm_floor_sq = floor_sq;
    }

    fn run_iteration(&mut self, b: &mut Matrix<f32>) {
        let p = self.partition.num_blocks();
        let schedule = BlockPairSchedule::round_robin(p);
        for (u, v) in schedule.iter() {
            let cols = self.partition.pair_columns(u, v);
            self.run_pass(b, u, v, &cols);
        }
        self.stats.iterations += 1;
    }

    fn run_pass(&mut self, b: &mut Matrix<f32>, u: usize, v: usize, cols: &[usize]) -> TimePs {
        let k = self.config.engine_parallelism;
        let m_bytes = self.config.column_bytes();
        let num_cols = cols.len();
        let ready = self.block_ready[u].max(self.block_ready[v]);

        let tx_dur =
            self.plio
                .throttled_transfer_time(m_bytes, 1, PlioDirection::ToAie, self.plan.orth_in);
        let mut col_avail = vec![TimePs::ZERO; num_cols];
        for (local, _global) in cols.iter().enumerate() {
            let port = self.plan.input_port_of_column(local, k);
            let (_, end) = self.plio_in[port].schedule(ready, tx_dur);
            col_avail[local] = end;
            self.stats.plio_bytes_in += m_bytes;
            self.stats.plio_busy += tx_dur;
        }

        let layers = self.placement.num_layers();
        let mut prev_end = vec![TimePs::ZERO; k];
        for layer in 0..layers {
            let pairs = self.schedule.layers()[layer].pairs_by_slot.clone();
            let mut slot_ready = vec![TimePs::ZERO; k];

            if layer == 0 {
                for (s, &(i, j)) in pairs.iter().enumerate() {
                    slot_ready[s] = col_avail[i].max(col_avail[j]);
                }
            } else {
                self.movement_ready(layer, &prev_end, &mut slot_ready, m_bytes);
            }

            let orth_dur = self.kernels.orth_time(self.config.rows);
            let mut layer_end = vec![TimePs::ZERO; k];
            for (s, &(i, j)) in pairs.iter().enumerate() {
                let (_, end) = self.cores[layer * k + s].schedule(slot_ready[s], orth_dur);
                layer_end[s] = end;
                self.stats.orth_invocations += 1;
                self.stats.orth_busy += orth_dur;
                let (ci, cj) = b.col_pair_mut(cols[i], cols[j]);
                orthogonalize_pair_gated_scalar(ci, cj, self.norm_floor_sq);
            }
            prev_end = layer_end;
        }

        let last_pairs = &self.schedule.layers()[layers - 1].pairs_by_slot;
        let mut col_slot = vec![0usize; num_cols];
        for (s, &(i, j)) in last_pairs.iter().enumerate() {
            col_slot[i] = s;
            col_slot[j] = s;
        }
        let rx_dur =
            self.plio
                .throttled_transfer_time(m_bytes, 1, PlioDirection::ToPl, self.plan.orth_in);
        let mut block_u_end = TimePs::ZERO;
        let mut block_v_end = TimePs::ZERO;
        for local in 0..num_cols {
            let port = self.plan.output_port_of_column(local, k);
            let rx_ready = prev_end[col_slot[local]];
            let (_, end) = self.plio_out[port].schedule(rx_ready, rx_dur);
            self.stats.plio_bytes_out += m_bytes;
            self.stats.plio_busy += rx_dur;
            if local < k {
                block_u_end = block_u_end.max(end);
            } else {
                block_v_end = block_v_end.max(end);
            }
        }

        let hls = self.pl.hls_overhead(1, self.config.pl_freq);
        self.block_ready[u] = block_u_end + hls;
        self.block_ready[v] = block_v_end + hls;
        self.block_ready[u].max(self.block_ready[v])
    }

    fn movement_ready(
        &mut self,
        layer: usize,
        prev_end: &[TimePs],
        slot_ready: &mut [TimePs],
        m_bytes: usize,
    ) {
        let k = self.config.engine_parallelism;
        let src_row = self.placement.row_of_layer(layer - 1);
        let dest_row = self.placement.row_of_layer(layer);
        let band_break = self.placement.is_band_break(layer - 1);

        let movements = self
            .config
            .ordering
            .transition_movements_rows(src_row, dest_row, k);
        let neighbor = self.kernels.neighbor_handoff_time();
        let lateral_dur = self.dma.transfer_time_with_hops(m_bytes, 2);
        let wrap_dur = self.dma.transfer_time_with_hops(m_bytes, k as u64 + 1);
        let break_dur = self.dma.transfer_time_with_hops(m_bytes, 3);

        for (idx, movement) in movements.iter().enumerate() {
            let slot = idx % k;
            let producer = match movement {
                Movement::Straight => slot,
                Movement::Leftward => (slot + 1).min(k - 1),
                Movement::Rightward => slot.saturating_sub(1),
                Movement::Wraparound => k - 1,
            };
            let ready = prev_end[producer];
            let channel = layer * k + producer;
            let arrival = if band_break {
                let (_, mid) = self.dma_channels[channel].schedule(ready, break_dur);
                let (_, end) = self.dma_channels[channel].schedule(mid, break_dur);
                self.stats.dma_transfers += 2;
                self.stats.dma_bytes += 2 * m_bytes;
                end
            } else {
                match classify(*movement, dest_row, self.config.dataflow) {
                    AccessKind::Neighbor => {
                        self.stats.neighbor_accesses += 1;
                        ready + neighbor
                    }
                    AccessKind::Dma if *movement == Movement::Wraparound => {
                        let (_, end) = self.wrap_channels[layer].schedule(ready, wrap_dur);
                        self.stats.dma_transfers += 1;
                        self.stats.dma_bytes += m_bytes;
                        end
                    }
                    AccessKind::Dma => {
                        let (_, end) = self.switch_channels[layer].schedule(ready, lateral_dur);
                        self.stats.dma_transfers += 1;
                        self.stats.dma_bytes += m_bytes;
                        end
                    }
                }
            };
            slot_ready[slot] = slot_ready[slot].max(arrival);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The report is internally consistent on a small workload; on a
    /// multi-core host the optimized serial and parallel variants agree
    /// bit for bit, and on a single-thread host the parallel variant is
    /// recorded as degraded instead of being measured.
    #[test]
    fn small_workload_report_is_consistent() {
        let report = run(32, 4, 2, &|| 0).unwrap();
        assert_eq!(report.n, 32);
        for r in &report.results {
            assert!(
                r.ns_per_pass > 0.0,
                "{}: ns/pass must be positive",
                r.variant
            );
            assert!(r.sweeps_per_sec > 0.0);
            assert!(r.checksum.is_finite());
        }
        if report.parallel_auto_degraded {
            assert_eq!(report.results.len(), 2, "degraded parallel must be skipped");
            assert_eq!(report.parallel_status, "degraded");
            assert!(report.speedup_parallel.is_none());
            assert!(!report
                .results
                .iter()
                .any(|r| r.variant == "optimized-parallel"));
        } else {
            assert_eq!(report.results.len(), 3);
            assert_eq!(report.parallel_status, "measured");
            assert!(report.speedup_parallel.is_some());
            let serial = &report.results[1];
            let parallel = &report.results[2];
            assert!(parallel.workers > 1);
            assert_eq!(
                serial.checksum.to_bits(),
                parallel.checksum.to_bits(),
                "optimized serial and parallel sweeps must agree bit for bit"
            );
        }
    }

    /// The frozen baseline converges like the real pipeline: sweeps
    /// drive columns toward orthogonality.
    #[test]
    fn baseline_pipeline_orthogonalizes() {
        let cfg = config(16, 2, 1).unwrap();
        let placement = Placement::plan(&cfg).unwrap();
        let mut pipe = BaselinePipeline::new(&cfg, &placement);
        let mut b = test_matrix(16);
        pipe.set_norm_floor_sq(b.column_norm_floor_sq());
        for _ in 0..8 {
            pipe.run_iteration(&mut b);
        }
        let (c0, c1) = b.col_pair_mut(0, 1);
        let dot: f64 = c0
            .iter()
            .zip(c1.iter())
            .map(|(&x, &y)| (x * y) as f64)
            .sum();
        assert!(dot.abs() < 1e-3, "columns 0/1 still correlated: {dot}");
    }
}
